// The verification campaign compares lane-indexed SIMD results against
// scalar references; explicit indices keep the lane bookkeeping visible.
#![allow(clippy::needless_range_loop)]

//! Reproduction of *"SVE-enabling Lattice QCD Codes"* (Meyer, Georg,
//! Pleiter, Solbrig, Wettig — IEEE CLUSTER 2018, arXiv:1901.07294).
//!
//! The workspace splits along the paper's own structure:
//!
//! * [`sve`] — functional model of the ARM Scalable Vector Extension
//!   (registers, predicates, ACLE-style intrinsics, instruction accounting,
//!   silicon cost profiles, injectable toolchain faults);
//! * [`armie`] — ArmIE-like instruction-level emulator, with the paper's
//!   four Section IV assembly listings pre-encoded;
//! * [`grid`] — the Grid-style lattice QCD library with three SVE complex-
//!   arithmetic backends, virtual-node layout, Wilson Dirac operator,
//!   Krylov solvers and simulated multi-rank comms;
//! * [`qcd_trace`] — hierarchical region profiler threaded through the
//!   stack: RAII spans, per-opcode SVE instruction deltas, derived roofline
//!   metrics, and table / JSON / Chrome `trace_event` export;
//! * [`verification`] — the Section V-D campaign: 40 named checks runnable
//!   at any vector length, under a faithful or deliberately buggy
//!   "toolchain".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use armie;
pub use grid;
pub use qcd_trace;
pub use sve;

pub mod verification;
