//! The Section V-D verification campaign.
//!
//! "Grid implements about 100 ready-made tests and benchmarks. We have
//! selected 40 representative tests and benchmarks for verification of the
//! SVE-enabled version of Grid for different SVE vector lengths using ...
//! the ARM SVE instruction emulator ArmIE 18.1." (paper, Section V-D)
//!
//! This module is those 40 checks for the reproduction: each is a named,
//! self-contained validation that runs at any [`VectorLength`], against any
//! [`SimdBackend`], and optionally under an injected [`ToolchainFault`] —
//! reproducing the paper's observation that "some tests fail due to
//! incorrect results for some choices of the SVE vector length and
//! implementations of the predication".

use armie::listings;
use grid::prelude::*;
use grid::simd::SimdEngine;
use grid::{Coor, FermionField, GaugeField};
use std::sync::Arc;
use sve::{SveCtx, ToolchainFault, VectorLength};

/// Configuration one check runs under.
#[derive(Clone, Copy, Debug)]
pub struct CheckCfg {
    /// Vector length of the simulated silicon.
    pub vl: VectorLength,
    /// Complex-arithmetic lowering.
    pub backend: SimdBackend,
    /// Simulated toolchain defect ([`ToolchainFault::None`] = faithful).
    pub fault: ToolchainFault,
}

impl CheckCfg {
    /// A faithful configuration.
    pub fn new(vl: VectorLength, backend: SimdBackend) -> Self {
        CheckCfg {
            vl,
            backend,
            fault: ToolchainFault::None,
        }
    }

    fn ctx(&self) -> SveCtx {
        SveCtx::with_fault(self.vl, self.fault)
    }

    fn grid(&self) -> Arc<Grid> {
        Grid::with_ctx(LAT, Arc::new(self.ctx()), self.backend)
    }

    fn engine(&self) -> SimdEngine {
        SimdEngine::new(Arc::new(self.ctx()), self.backend)
    }
}

/// One verification check.
pub struct Check {
    /// Grid-style test name.
    pub name: &'static str,
    /// Subsystem grouping for the report.
    pub group: &'static str,
    /// The check body.
    pub run: fn(&CheckCfg) -> Result<(), String>,
}

const LAT: Coor = [4, 4, 4, 4];

fn ensure(cond: bool, msg: impl Into<String>) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

// ---------- SVE / listing level (VLA code paths — fault-sensitive) ----------

fn test_simd_real_vla(cfg: &CheckCfg) -> Result<(), String> {
    // Listing IV-A at a size that does NOT divide the vector length, so the
    // final iteration runs under a partial predicate.
    let n = 101;
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 5.0).collect();
    let y: Vec<f64> = (0..n).map(|i| 3.0 - i as f64 * 0.125).collect();
    let run = listings::run_mult_real(cfg.ctx(), &x, &y);
    let want = listings::mult_real_ref(&x, &y);
    for i in 0..n {
        if !close(run.z[i], want[i], 1e-13) {
            return Err(format!("element {i}: {} != {}", run.z[i], want[i]));
        }
    }
    Ok(())
}

fn test_simd_cplx_autovec(cfg: &CheckCfg) -> Result<(), String> {
    let n = 53; // prime: guarantees a partial tail at every VL
    let x: Vec<f64> = (0..2 * n).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.7).cos()).collect();
    let run = listings::run_mult_cplx_autovec(cfg.ctx(), &x, &y);
    let want = listings::mult_cplx_ref(&x, &y);
    for i in 0..2 * n {
        if !close(run.z[i], want[i], 1e-12) {
            return Err(format!("element {i}: {} != {}", run.z[i], want[i]));
        }
    }
    Ok(())
}

fn test_simd_cplx_fcmla_vla(cfg: &CheckCfg) -> Result<(), String> {
    let n = 53;
    let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.3).sin()).collect();
    let y: Vec<f64> = (0..2 * n).map(|i| 1.0 - (i as f64 * 0.1)).collect();
    let run = listings::run_mult_cplx_fcmla_vla(cfg.ctx(), &x, &y);
    let want = listings::mult_cplx_ref(&x, &y);
    for i in 0..2 * n {
        if !close(run.z[i], want[i], 1e-12) {
            return Err(format!("element {i}: {} != {}", run.z[i], want[i]));
        }
    }
    Ok(())
}

fn test_simd_cplx_fcmla_fixed(cfg: &CheckCfg) -> Result<(), String> {
    // The paper's fixed-size style: full vectors only, immune to
    // tail-predication toolchain bugs.
    let n = cfg.vl.lanes64();
    let x: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
    let y: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 + 1.0).collect();
    let run = listings::run_mult_cplx_fcmla_fixed(cfg.ctx(), &x, &y);
    let want = listings::mult_cplx_ref(&x, &y);
    for i in 0..n {
        if !close(run.z[i], want[i], 1e-12) {
            return Err(format!("element {i}"));
        }
    }
    Ok(())
}

fn test_predication_whilelt(cfg: &CheckCfg) -> Result<(), String> {
    // whilelt predicates partition 0..n exactly — the invariant the VLA
    // loop depends on; a tail-predication bug breaks it.
    use sve::intrinsics::svwhilelt;
    let ctx = cfg.ctx();
    let lanes = cfg.vl.lanes64() as u64;
    for n in [1u64, 5, lanes, lanes + 1, 3 * lanes - 1] {
        let mut covered = 0;
        let mut i = 0;
        while i < n {
            let pg = svwhilelt::<f64>(&ctx, i, n);
            covered += pg.active_count::<f64>(cfg.vl) as u64;
            i += lanes;
        }
        if covered != n {
            return Err(format!("whilelt covered {covered} of {n} elements"));
        }
    }
    Ok(())
}

fn test_structure_loads(cfg: &CheckCfg) -> Result<(), String> {
    use sve::intrinsics::{svld2, svptrue, svst2};
    let ctx = cfg.ctx();
    let pg = svptrue::<f64>(&ctx);
    let n = 2 * cfg.vl.lanes64();
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
    let (a, b) = svld2(&ctx, &pg, &data);
    let mut out = vec![0.0; n];
    svst2(&ctx, &pg, &mut out, &a, &b);
    ensure(out == data, "ld2/st2 round trip failed")
}

fn test_precision_convert(cfg: &CheckCfg) -> Result<(), String> {
    use sve::intrinsics::{cvt_pack_f64_to_f32, cvt_unpack_f32_to_f64, svptrue};
    use sve::VReg;
    let ctx = cfg.ctx();
    let pg = svptrue::<f64>(&ctx);
    let a = VReg::from_fn::<f64>(cfg.vl, |i| i as f64 + 0.5);
    let b = VReg::from_fn::<f64>(cfg.vl, |i| -(i as f64) * 2.0);
    let packed = cvt_pack_f64_to_f32(&ctx, &pg, &a, &b);
    let (ra, rb) = cvt_unpack_f32_to_f64(&ctx, &pg, &packed);
    ensure(
        ra.lanes_eq::<f64>(&a, cfg.vl) && rb.lanes_eq::<f64>(&b, cfg.vl),
        "f64<->f32 pack/unpack failed",
    )
}

fn test_f16_compression(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    let mut x = 1.0e-2;
    while x < 1.0e3 {
        let rel = ((x - sve::intrinsics::f64_through_f16(x)) / x).abs();
        if rel > 4.9e-4 {
            return Err(format!("f16 error {rel} at {x}"));
        }
        x *= 1.618;
    }
    Ok(())
}

// ---------- SIMD engine level ----------

fn test_mult_complex(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let a = eng.from_fn(|p| Complex::new(p as f64 + 1.0, -0.5 * p as f64));
    let b = eng.from_fn(|p| Complex::new(0.25 * p as f64 - 1.0, 2.0));
    let r = eng.mult(a, b);
    for p in 0..eng.lanes_c() {
        let want = Complex::new(p as f64 + 1.0, -0.5 * p as f64)
            * Complex::new(0.25 * p as f64 - 1.0, 2.0);
        if (eng.lane(r, p) - want).abs() > 1e-12 {
            return Err(format!("lane {p}"));
        }
    }
    Ok(())
}

fn test_mult_conj(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let a = eng.from_fn(|p| Complex::new(1.0, p as f64));
    let b = eng.from_fn(|p| Complex::new(p as f64, -2.0));
    let r = eng.mult_conj(a, b);
    for p in 0..eng.lanes_c() {
        let want = Complex::new(1.0, p as f64).conj() * Complex::new(p as f64, -2.0);
        if (eng.lane(r, p) - want).abs() > 1e-12 {
            return Err(format!("lane {p}"));
        }
    }
    Ok(())
}

fn test_times_i(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let a = eng.from_fn(|p| Complex::new(2.0 - p as f64, 0.5 * p as f64));
    let ti = eng.times_i(a);
    let tmi = eng.times_minus_i(ti);
    for p in 0..eng.lanes_c() {
        let z = Complex::new(2.0 - p as f64, 0.5 * p as f64);
        if eng.lane(ti, p) != z.times_i() || eng.lane(tmi, p) != z {
            return Err(format!("lane {p}"));
        }
    }
    Ok(())
}

fn test_madd(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let acc = eng.from_fn(|_| Complex::new(5.0, -5.0));
    let a = eng.from_fn(|p| Complex::new(p as f64, 1.0));
    let b = eng.from_fn(|_| Complex::new(1.0, 1.0));
    let r = eng.madd(acc, a, b);
    for p in 0..eng.lanes_c() {
        let want = Complex::new(5.0, -5.0) + Complex::new(p as f64, 1.0) * Complex::new(1.0, 1.0);
        if (eng.lane(r, p) - want).abs() > 1e-12 {
            return Err(format!("lane {p}"));
        }
    }
    Ok(())
}

fn test_reduce(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let a = eng.from_fn(|p| Complex::new(p as f64 + 1.0, -(p as f64)));
    let sum = eng.reduce_sum(a);
    let n = eng.lanes_c() as f64;
    ensure(
        close(sum.re, n * (n + 1.0) / 2.0, 1e-12) && close(sum.im, -n * (n - 1.0) / 2.0, 1e-12),
        format!("reduce gave {sum:?}"),
    )
}

fn test_permute(cfg: &CheckCfg) -> Result<(), String> {
    let eng = cfg.engine();
    let lanes = eng.lanes_c();
    let a = eng.from_fn(|p| Complex::new(p as f64, 100.0 + p as f64));
    let perm: Vec<usize> = (0..lanes).map(|p| (p + 1) % lanes).collect();
    let r = eng.permute(a, &perm);
    for p in 0..lanes {
        let src = (p + 1) % lanes;
        if eng.lane(r, p) != Complex::new(src as f64, 100.0 + src as f64) {
            return Err(format!("lane {p}"));
        }
    }
    Ok(())
}

fn test_inner_product(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let x = FermionField::random(g.clone(), 101);
    let y = FermionField::random(g.clone(), 102);
    let fast = x.inner(&y);
    // Scalar oracle.
    let mut want = Complex::ZERO;
    for c in g.coords() {
        for comp in 0..12 {
            want += x.peek(&c, comp).conj() * y.peek(&c, comp);
        }
    }
    ensure(
        (fast - want).abs() < 1e-9 * want.abs().max(1.0),
        format!("{fast:?} vs {want:?}"),
    )
}

fn test_norm2(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let x = FermionField::random(g.clone(), 103);
    let n = x.norm2();
    let mut want = 0.0;
    for c in g.coords() {
        for comp in 0..12 {
            want += x.peek(&c, comp).norm2();
        }
    }
    ensure(close(n, want, 1e-10), format!("{n} vs {want}"))
}

// ---------- tensor level ----------

fn test_gamma_algebra(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    use grid::tensor::gamma::Gamma;
    for mu in 0..4 {
        for nu in 0..4 {
            let a = Gamma::dir(mu).matrix();
            let b = Gamma::dir(nu).matrix();
            for r in 0..4 {
                for c in 0..4 {
                    let mut anti = Complex::ZERO;
                    for k in 0..4 {
                        anti += a[r][k] * b[k][c] + b[r][k] * a[k][c];
                    }
                    let want = if mu == nu && r == c { 2.0 } else { 0.0 };
                    if (anti - Complex::new(want, 0.0)).abs() > 1e-13 {
                        return Err(format!("{{γ{mu},γ{nu}}} at ({r},{c})"));
                    }
                }
            }
        }
    }
    Ok(())
}

fn test_gamma5(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    use grid::tensor::gamma::Gamma;
    let g5 = Gamma::Five.matrix();
    let mut prod = [[Complex::ZERO; 4]; 4];
    for (r, row) in prod.iter_mut().enumerate() {
        row[r] = Complex::ONE;
    }
    for g in [Gamma::X, Gamma::Y, Gamma::Z, Gamma::T] {
        let m = g.matrix();
        let mut next = [[Complex::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                for k in 0..4 {
                    next[r][c] += prod[r][k] * m[k][c];
                }
            }
        }
        prod = next;
    }
    for r in 0..4 {
        for c in 0..4 {
            if (prod[r][c] - g5[r][c]).abs() > 1e-13 {
                return Err(format!("γxγyγzγt != γ5 at ({r},{c})"));
            }
        }
    }
    Ok(())
}

fn test_proj_recon(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    use grid::tensor::gamma::{project, reconstruct, Gamma};
    let s: [Complex; 4] =
        std::array::from_fn(|i| Complex::new(i as f64 - 1.5, 0.5 * i as f64 + 0.25));
    for mu in 0..4 {
        for plus in [true, false] {
            let got = reconstruct(mu, plus, &project(mu, plus, &s));
            let gs = Gamma::dir(mu).apply(&s);
            let sign = if plus { 1.0 } else { -1.0 };
            for r in 0..4 {
                if (got[r] - (s[r] + gs[r] * sign)).abs() > 1e-13 {
                    return Err(format!("mu={mu} plus={plus} row {r}"));
                }
            }
        }
    }
    Ok(())
}

fn test_su3_unitarity(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    use grid::tensor::su3::{det, random_su3, unitarity_defect};
    for stream in 1..32 {
        let u = random_su3(7, stream);
        if unitarity_defect(&u) > 1e-12 {
            return Err(format!("stream {stream} not unitary"));
        }
        if (det(&u) - Complex::ONE).abs() > 1e-12 {
            return Err(format!("stream {stream} det != 1"));
        }
    }
    Ok(())
}

fn test_su3_matvec(cfg: &CheckCfg) -> Result<(), String> {
    use grid::tensor::su3::{mat_dag_vec, mat_vec, mat_vec_scalar, random_su3};
    let eng = cfg.engine();
    let mats: Vec<_> = (0..eng.lanes_c())
        .map(|l| random_su3(9, l as u64 + 1))
        .collect();
    let vecs: Vec<[Complex; 3]> = (0..eng.lanes_c())
        .map(|l| std::array::from_fn(|c| Complex::new(l as f64 - c as f64, 0.5)))
        .collect();
    let uw: [[grid::CVec; 3]; 3] =
        std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|l| mats[l][r][c])));
    let vw: [grid::CVec; 3] = std::array::from_fn(|c| eng.from_fn(|l| vecs[l][c]));
    let uv = mat_vec(&eng, &uw, &vw);
    for l in 0..eng.lanes_c() {
        let want = mat_vec_scalar(&mats[l], &vecs[l]);
        for r in 0..3 {
            if (eng.lane(uv[r], l) - want[r]).abs() > 1e-12 {
                return Err(format!("Uv lane {l} row {r}"));
            }
        }
    }
    // U†(Uv) == v.
    let back = mat_dag_vec(&eng, &uw, &uv);
    for l in 0..eng.lanes_c() {
        for r in 0..3 {
            if (eng.lane(back[r], l) - vecs[l][r]).abs() > 1e-11 {
                return Err(format!("U†Uv lane {l} row {r}"));
            }
        }
    }
    Ok(())
}

fn test_su3_gauge_field(cfg: &CheckCfg) -> Result<(), String> {
    use grid::tensor::su3::{peek_link, unitarity_defect};
    let g = cfg.grid();
    let u = random_gauge(g.clone(), 13);
    for x in g.coords().step_by(17) {
        for mu in 0..4 {
            if unitarity_defect(&peek_link(&u, &x, mu)) > 1e-12 {
                return Err(format!("{x:?} mu={mu}"));
            }
        }
    }
    Ok(())
}

// ---------- lattice / cshift level ----------

fn test_layout_roundtrip(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    for x in g.coords() {
        let (o, l) = g.coor_to_osite_lane(&x);
        if g.osite_lane_to_coor(o, l) != x {
            return Err(format!("{x:?}"));
        }
    }
    Ok(())
}

fn test_layout_cover(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let mut seen = vec![false; g.osites() * g.lanes_c()];
    for x in g.coords() {
        let (o, l) = g.coor_to_osite_lane(&x);
        let slot = o * g.lanes_c() + l;
        if seen[slot] {
            return Err(format!("slot collision at {x:?}"));
        }
        seen[slot] = true;
    }
    ensure(seen.iter().all(|&s| s), "uncovered storage slots")
}

fn test_cshift_roundtrip(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let f = FermionField::random(g.clone(), 23);
    for mu in 0..4 {
        let round = cshift(&cshift(&f, mu, 1), mu, -1);
        if round.max_abs_diff(&f) != 0.0 {
            return Err(format!("mu={mu}"));
        }
    }
    Ok(())
}

fn test_cshift_wrap(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let f = FermionField::random(g.clone(), 24);
    let mut s = f.clone();
    for _ in 0..g.fdims()[1] {
        s = cshift(&s, 1, 1);
    }
    ensure(s.max_abs_diff(&f) == 0.0, "L shifts != identity")
}

fn test_cshift_sites(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let mut f = grid::ComplexField::zero(g.clone());
    for x in g.coords() {
        f.poke(&x, 0, Complex::new(g.global_index(&x) as f64, 0.0));
    }
    for mu in 0..4 {
        let s = cshift(&f, mu, 1);
        for x in g.coords().step_by(7) {
            let mut y = x;
            y[mu] = (y[mu] + 1) % g.fdims()[mu];
            if s.peek(&x, 0) != f.peek(&y, 0) {
                return Err(format!("mu={mu} {x:?}"));
            }
        }
    }
    Ok(())
}

// ---------- Wilson operator level ----------

fn wilson(cfg: &CheckCfg, useed: u64, mass: f64) -> (WilsonDirac, Arc<Grid>) {
    let g = cfg.grid();
    (WilsonDirac::new(random_gauge(g.clone(), useed), mass), g)
}

fn test_wilson_free_field(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let d = WilsonDirac::new(unit_gauge(g.clone()), 0.25);
    let mut psi = FermionField::zero(g.clone());
    for x in g.coords() {
        for comp in 0..12 {
            psi.poke(&x, comp, Complex::new(comp as f64 + 1.0, -1.0));
        }
    }
    let m = d.apply(&psi);
    let mut want = psi.clone();
    want.scale(0.25);
    ensure(
        m.max_abs_diff(&want) < 1e-12 * 13.0,
        "free constant field is not an m-eigenvector",
    )
}

fn test_wilson_parity(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 31, 0.1);
    let mut psi = FermionField::zero(g.clone());
    for x in g.coords() {
        if g.parity(&x) == 0 {
            psi.poke(&x, 0, Complex::ONE);
        }
    }
    let hop = d.hopping(&psi);
    for x in g.coords() {
        if g.parity(&x) == 0 {
            let n: f64 = (0..12).map(|c| hop.peek(&x, c).norm2()).sum();
            if n > 1e-24 {
                return Err(format!("Dh leaks onto even site {x:?}"));
            }
        }
    }
    Ok(())
}

fn test_wilson_g5_hermiticity(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 32, 0.2);
    let psi = FermionField::random(g.clone(), 33);
    let lhs = gamma5(&d.apply(&gamma5(&psi)));
    let rhs = d.apply_dag(&psi);
    ensure(
        lhs.max_abs_diff(&rhs) < 1e-11,
        format!("γ5Mγ5 != M† (diff {})", lhs.max_abs_diff(&rhs)),
    )
}

fn test_wilson_adjoint(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 34, 0.15);
    let phi = FermionField::random(g.clone(), 35);
    let psi = FermionField::random(g.clone(), 36);
    let a = phi.inner(&d.apply(&psi));
    let b = d.apply_dag(&phi).inner(&psi);
    ensure((a - b).abs() < 1e-9 * a.abs().max(1.0), "adjoint mismatch")
}

fn test_wilson_backend_consistency(cfg: &CheckCfg) -> Result<(), String> {
    // This configuration's backend vs the FCMLA reference.
    let g = cfg.grid();
    let d = WilsonDirac::new(random_gauge(g.clone(), 37), 0.1);
    let hop = d.hopping(&FermionField::random(g.clone(), 38));
    let gref = Grid::with_ctx(LAT, Arc::new(cfg.ctx()), SimdBackend::Fcmla);
    let dref = WilsonDirac::new(random_gauge(gref.clone(), 37), 0.1);
    let href = dref.hopping(&FermionField::random(gref.clone(), 38));
    let diff = hop
        .data()
        .iter()
        .zip(href.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    ensure(diff < 1e-11, format!("backend deviates by {diff}"))
}

fn test_wilson_cshift_composition(cfg: &CheckCfg) -> Result<(), String> {
    let g = cfg.grid();
    let u = random_gauge(g.clone(), 39);
    let psi = FermionField::random(g.clone(), 40);
    let d = WilsonDirac::new(u.clone(), 0.1);
    let a = d.hopping(&psi);
    let b = hopping_via_cshift(&u, &psi);
    ensure(
        a.max_abs_diff(&b) < 1e-11,
        format!("formulations differ by {}", a.max_abs_diff(&b)),
    )
}

fn test_wilson_vl_independence(cfg: &CheckCfg) -> Result<(), String> {
    // Site values must match a VL128 reference run exactly.
    let (d, g) = wilson(cfg, 41, 0.1);
    let hop = d.hopping(&FermionField::random(g.clone(), 42));
    let gref = Grid::new(LAT, VectorLength::of(128), cfg.backend);
    let dref = WilsonDirac::new(random_gauge(gref.clone(), 41), 0.1);
    let href = dref.hopping(&FermionField::random(gref.clone(), 42));
    for x in g.coords().step_by(3) {
        for comp in 0..12 {
            if hop.peek(&x, comp) != href.peek(&x, comp) {
                return Err(format!("site {x:?} comp {comp} differs from VL128"));
            }
        }
    }
    Ok(())
}

// ---------- solver level ----------

fn test_cg(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 51, 0.3);
    let b = FermionField::random(g.clone(), 52);
    let (_, report) = cg(&d, &b, 1e-7, 1000);
    ensure(
        report.converged && report.residual < 1e-6,
        format!("CG: {report:?}"),
    )
}

fn test_bicgstab(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 53, 0.3);
    let b = FermionField::random(g.clone(), 54);
    let (x, report) = bicgstab(&d, &b, 1e-7, 1000);
    let mx = d.apply(&x);
    let mut diff = FermionField::zero(g);
    diff.sub(&mx, &b);
    let rel = (diff.norm2() / b.norm2()).sqrt();
    ensure(rel < 1e-5, format!("BiCGStab residual {rel}, {report:?}"))
}

fn test_solver_verifies(cfg: &CheckCfg) -> Result<(), String> {
    let (d, g) = wilson(cfg, 55, 0.4);
    let b = FermionField::random(g.clone(), 56);
    let (x, _) = solve_wilson(&d, &b, 1e-8, 1000);
    let mx = d.apply(&x);
    let mut diff = FermionField::zero(g);
    diff.sub(&mx, &b);
    let rel = (diff.norm2() / b.norm2()).sqrt();
    ensure(rel < 1e-6, format!("solution residual {rel}"))
}

// ---------- comms level ----------

fn test_dist_cshift(cfg: &CheckCfg) -> Result<(), String> {
    let global: Coor = [4, 4, 4, 8];
    let gg = Grid::with_ctx(global, Arc::new(cfg.ctx()), cfg.backend);
    let f = FermionField::random(gg.clone(), 61);
    let want = cshift(&f, 3, 1);
    let locals = run_multinode(global, 2, cfg.vl, cfg.backend, |ctx| {
        let mut lf = FermionField::zero(ctx.grid.clone());
        for lx in ctx.grid.coords() {
            let gx = ctx.to_global(&lx);
            for comp in 0..12 {
                lf.poke(&lx, comp, f.peek(&gx, comp));
            }
        }
        (ctx.offset, cshift_dist(ctx, &lf, 3, 1, Compression::None))
    });
    for (offset, local) in &locals {
        for lx in local.grid().coords().step_by(5) {
            let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
            if local.peek(&lx, 0) != want.peek(&gx, 0) {
                return Err(format!("{gx:?}"));
            }
        }
    }
    Ok(())
}

fn test_dist_hopping(cfg: &CheckCfg) -> Result<(), String> {
    let global: Coor = [4, 4, 4, 8];
    let gg = Grid::with_ctx(global, Arc::new(cfg.ctx()), cfg.backend);
    let u = random_gauge(gg.clone(), 62);
    let psi = FermionField::random(gg.clone(), 63);
    let want = WilsonDirac::new(u.clone(), 0.1).hopping(&psi);
    let locals = run_multinode(global, 2, cfg.vl, cfg.backend, |ctx| {
        let mut lu = GaugeField::zero(ctx.grid.clone());
        let mut lf = FermionField::zero(ctx.grid.clone());
        for lx in ctx.grid.coords() {
            let gx = ctx.to_global(&lx);
            for comp in 0..36 {
                lu.poke(&lx, comp, u.peek(&gx, comp));
            }
            for comp in 0..12 {
                lf.poke(&lx, comp, psi.peek(&gx, comp));
            }
        }
        (ctx.offset, hopping_dist(ctx, &lu, &lf, Compression::None))
    });
    for (offset, local) in &locals {
        for lx in local.grid().coords().step_by(3) {
            let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
            for comp in 0..12 {
                if (local.peek(&lx, comp) - want.peek(&gx, comp)).abs() > 1e-11 {
                    return Err(format!("{gx:?} comp {comp}"));
                }
            }
        }
    }
    Ok(())
}

fn test_comms_f16(cfg: &CheckCfg) -> Result<(), String> {
    let _ = cfg;
    let data: Vec<f64> = (0..512).map(|i| ((i as f64) * 0.11).sin()).collect();
    let msg = grid::comms::HaloMsg::encode(&data, Compression::F16);
    if msg.wire_bytes() * 4 != data.len() * 8 {
        return Err("compression ratio != 4".into());
    }
    for (a, b) in data.iter().zip(msg.decode()) {
        if (a - b).abs() > 5e-4 {
            return Err(format!("f16 error too large: {a} -> {b}"));
        }
    }
    Ok(())
}

/// The 40 representative checks of the Section V-D campaign.
pub fn all_checks() -> Vec<Check> {
    macro_rules! checks {
        ($(($name:literal, $group:literal, $f:ident),)*) => {
            vec![$(Check { name: $name, group: $group, run: $f },)*]
        };
    }
    checks![
        // SVE ISA / listings (VLA paths — sensitive to predication bugs)
        ("Test_simd_real_vla", "sve", test_simd_real_vla),
        ("Test_simd_cplx_autovec", "sve", test_simd_cplx_autovec),
        ("Test_simd_cplx_fcmla_vla", "sve", test_simd_cplx_fcmla_vla),
        (
            "Test_simd_cplx_fcmla_fixed",
            "sve",
            test_simd_cplx_fcmla_fixed
        ),
        ("Test_predication_whilelt", "sve", test_predication_whilelt),
        ("Test_structure_loads", "sve", test_structure_loads),
        ("Test_precision_convert", "sve", test_precision_convert),
        ("Test_f16_compression", "sve", test_f16_compression),
        // SIMD engine
        ("Test_simd_mult_complex", "simd", test_mult_complex),
        ("Test_simd_mult_conj", "simd", test_mult_conj),
        ("Test_simd_times_i", "simd", test_times_i),
        ("Test_simd_madd", "simd", test_madd),
        ("Test_simd_reduce", "simd", test_reduce),
        ("Test_simd_permute", "simd", test_permute),
        ("Test_inner_product", "simd", test_inner_product),
        ("Test_norm2", "simd", test_norm2),
        // Tensor algebra
        ("Test_gamma_algebra", "tensor", test_gamma_algebra),
        ("Test_gamma5_product", "tensor", test_gamma5),
        ("Test_spin_projection", "tensor", test_proj_recon),
        ("Test_su3_unitarity", "tensor", test_su3_unitarity),
        ("Test_su3_matvec", "tensor", test_su3_matvec),
        ("Test_su3_gauge_field", "tensor", test_su3_gauge_field),
        // Lattice / cshift
        ("Test_layout_roundtrip", "lattice", test_layout_roundtrip),
        ("Test_layout_cover", "lattice", test_layout_cover),
        ("Test_cshift_roundtrip", "lattice", test_cshift_roundtrip),
        ("Test_cshift_wrap", "lattice", test_cshift_wrap),
        ("Test_cshift_sites", "lattice", test_cshift_sites),
        // Wilson operator
        ("Test_wilson_free_field", "dirac", test_wilson_free_field),
        ("Test_wilson_parity", "dirac", test_wilson_parity),
        (
            "Test_wilson_g5_hermiticity",
            "dirac",
            test_wilson_g5_hermiticity
        ),
        ("Test_wilson_adjoint", "dirac", test_wilson_adjoint),
        (
            "Test_wilson_backends",
            "dirac",
            test_wilson_backend_consistency
        ),
        (
            "Test_wilson_cshift_form",
            "dirac",
            test_wilson_cshift_composition
        ),
        (
            "Test_wilson_vl_independent",
            "dirac",
            test_wilson_vl_independence
        ),
        // Solvers
        ("Benchmark_cg", "solver", test_cg),
        ("Benchmark_bicgstab", "solver", test_bicgstab),
        ("Test_solver_residual", "solver", test_solver_verifies),
        // Comms
        ("Test_dist_cshift", "comms", test_dist_cshift),
        ("Test_dist_hopping", "comms", test_dist_hopping),
        ("Test_comms_f16", "comms", test_comms_f16),
    ]
}

/// Result matrix of a verification sweep: `results[check][vl]`.
pub struct Matrix {
    /// Check names, row order.
    pub names: Vec<&'static str>,
    /// Check groups, row order.
    pub groups: Vec<&'static str>,
    /// Vector lengths, column order.
    pub vls: Vec<VectorLength>,
    /// `Ok(())` or the failure message.
    pub results: Vec<Vec<Result<(), String>>>,
}

impl Matrix {
    /// Number of passing cells.
    pub fn passed(&self) -> usize {
        self.results
            .iter()
            .flat_map(|row| row.iter())
            .filter(|r| r.is_ok())
            .count()
    }

    /// Total cells.
    pub fn total(&self) -> usize {
        self.results.iter().map(|r| r.len()).sum()
    }
}

/// Run the full campaign: every check at every vector length in `vls`.
pub fn run_matrix(vls: &[VectorLength], backend: SimdBackend, fault: ToolchainFault) -> Matrix {
    let checks = all_checks();
    let names = checks.iter().map(|c| c.name).collect();
    let groups = checks.iter().map(|c| c.group).collect();
    let results = checks
        .iter()
        .map(|check| {
            vls.iter()
                .map(|&vl| {
                    let cfg = CheckCfg { vl, backend, fault };
                    (check.run)(&cfg)
                })
                .collect()
        })
        .collect();
    Matrix {
        names,
        groups,
        vls: vls.to_vec(),
        results,
    }
}
