//! Quickstart: the paper's complex multiply on simulated SVE silicon, then
//! a small Wilson solve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grid::prelude::*;
use grid::simd::functors::{MultComplex, WordFunctor};
use std::sync::Arc;

fn main() {
    // --- Part 1: the Section V-C MultComplex functor, three backends ----
    println!("== MultComplex on one SIMD word (512-bit SVE) ==\n");
    let vl = VectorLength::of(512);
    for backend in SimdBackend::all() {
        let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), backend);
        // One vector's worth of interleaved complex data: 4 complex doubles.
        let x = [1.0, 2.0, -0.5, 3.0, 0.0, 1.0, 2.5, -1.5];
        let y = [3.0, -1.0, 2.0, 2.0, -1.0, 0.5, 0.0, -2.0];
        let mut z = [0.0; 8];
        eng.ctx().counters().reset(); // exclude engine-construction ops
        MultComplex.apply(&eng, &x, &y, &mut z);
        let counters = eng.ctx().counters();
        println!(
            "  backend {:<10}  z0 = {:+.2} {:+.2}i   instructions: {:>2}  (fcmla {}, fmla/fmul {})",
            backend.name(),
            z[0],
            z[1],
            counters.total(),
            counters.get(sve::Opcode::Fcmla),
            counters.get(sve::Opcode::Fmla) + counters.get(sve::Opcode::Fmul),
        );
    }

    // --- Part 2: invert the Wilson operator on a random gauge field -----
    println!("\n== Wilson solve on a 4^4 lattice (FCMLA backend) ==\n");
    let g = Grid::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
    println!(
        "  lattice {:?}, virtual nodes {:?} x sub-lattice {:?}",
        g.fdims(),
        g.simd_layout(),
        g.rdims()
    );
    let u = random_gauge(g.clone(), 7);
    let d = WilsonDirac::new(u, 0.2);
    let b = FermionField::random(g.clone(), 8);
    let (x, report) = solve_wilson(&d, &b, 1e-10, 2000);
    println!(
        "  CG converged in {} iterations, true residual {:.2e}",
        report.iterations, report.residual
    );
    let mx = d.apply(&x);
    let mut diff = FermionField::zero(g.clone());
    diff.sub(&mx, &b);
    println!(
        "  verification |Mx - b| / |b| = {:.2e}",
        (diff.norm2() / b.norm2()).sqrt()
    );
    let c = g.engine().ctx().counters();
    println!(
        "  SVE instructions retired: {:.1}M  ({:.1}M fcmla, {:.1}M loads)",
        c.total() as f64 / 1e6,
        c.get(sve::Opcode::Fcmla) as f64 / 1e6,
        c.get(sve::Opcode::Ld1) as f64 / 1e6,
    );
}
