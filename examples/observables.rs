//! Gauge-invariant observables on random SU(3) backgrounds — the
//! measurement side of a lattice QCD campaign, validating the physics layer
//! through exact invariances.
//!
//! ```text
//! cargo run --release --example observables
//! ```

use grid::prelude::*;

fn main() {
    let vl = VectorLength::of(512);
    let g = Grid::new([4, 4, 4, 8], vl, SimdBackend::Fcmla);
    println!("Observables on a {:?} lattice at VL {vl}\n", g.fdims());

    for (name, u) in [
        ("unit gauge (free field)", unit_gauge(g.clone())),
        ("random gauge (strong coupling)", random_gauge(g.clone(), 7)),
    ] {
        println!("== {name} ==");
        println!("  average plaquette      : {:+.6}", average_plaquette(&u));
        let p = average_polyakov_loop(&u);
        println!("  average Polyakov loop  : {:+.6} {:+.6}i", p.re, p.im);
        for (r, t) in [(1, 1), (1, 2), (2, 2), (2, 3)] {
            println!(
                "  Wilson loop W({r},{t})      : {:+.6}",
                wilson_loop(&u, 0, 3, r, t)
            );
        }
        println!();
    }

    // Gauge invariance demonstrated numerically.
    let u = random_gauge(g.clone(), 7);
    let t = random_transform(g.clone(), 8);
    let up = transform_links(&u, &t);
    println!("gauge invariance under a random local SU(3) rotation:");
    println!(
        "  |plaquette(U') - plaquette(U)|     = {:.2e}",
        (average_plaquette(&up) - average_plaquette(&u)).abs()
    );
    println!(
        "  |W(2,2)(U') - W(2,2)(U)|           = {:.2e}",
        (wilson_loop(&up, 0, 3, 2, 2) - wilson_loop(&u, 0, 3, 2, 2)).abs()
    );

    // Covariance of the Dirac operator: the physics test of the full stack.
    let psi = FermionField::random(g.clone(), 9);
    let lhs = WilsonDirac::new(up, 0.1).hopping(&transform_fermion(&psi, &t));
    let rhs = transform_fermion(&WilsonDirac::new(u, 0.1).hopping(&psi), &t);
    println!(
        "  |Dh[U'](gψ) - g(Dh[U]ψ)| (max)     = {:.2e}",
        lhs.max_abs_diff(&rhs)
    );
}
