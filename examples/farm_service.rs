//! Farm service walkthrough: submit a mixed ensemble/solve workload, cut
//! the service mid-mix, and recover it bit-identically from disk.
//!
//! ```text
//! cargo run --release --example farm_service
//! ```
//!
//! The example exits nonzero unless the killed-and-recovered farm
//! directory ends up byte-identical to an uninterrupted one — the same
//! guarantee the CI farm-smoke job checks with a real `kill -9`.

use grid::prelude::*;
use qcd_farm::{
    render_validated_status, verify_dirs, Farm, FarmConfig, HmcStreamSpec, JobSpec, Priority,
    SolveSpec,
};
use qcd_hmc::{HmcParams, IntegratorKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;

fn cfg() -> FarmConfig {
    FarmConfig {
        dims: [4, 4, 4, 4],
        vl_bits: 256,
        backend: SimdBackend::Fcmla,
    }
}

/// The workload: two low-priority ensemble streams and one high-priority
/// burst of six inversion requests. Every job is a deterministic spec, so
/// re-running any part of it reproduces the same bytes.
fn submit_mix(farm: &Farm) {
    for (name, seed) in [("stream-a", 41u64), ("stream-b", 42)] {
        farm.submit(JobSpec::Hmc(HmcStreamSpec {
            name: name.into(),
            priority: Priority::Low,
            seed,
            params: HmcParams {
                beta: 5.6,
                n_steps: 6,
                step_size: 1.0 / 12.0,
                integrator: IntegratorKind::Omelyan,
            },
            trajectories: 3,
            chunk: 1,
        }))
        .expect("submit stream");
    }
    farm.submit(JobSpec::Solve(SolveSpec {
        name: "burst-0".into(),
        priority: Priority::High,
        gauge_seed: 99,
        mass: 0.2,
        rhs_seeds: (0..6).map(|i| 700 + i).collect(),
        tol: 1e-7,
        max_iter: 2000,
        subspace: None,
    }))
    .expect("submit burst");
}

fn fresh(dir: &Path) -> PathBuf {
    std::fs::remove_dir_all(dir).ok();
    dir.to_path_buf()
}

fn main() {
    let base = std::env::temp_dir().join(format!("qcd-farm-example-{}", std::process::id()));

    // --- Part 1: drain the mix on two workers -------------------------
    println!("== An uninterrupted farm run (2 workers) ==\n");
    let ref_dir = fresh(&base.join("reference"));
    let reference = Farm::open(&ref_dir, cfg()).expect("open reference farm");
    submit_mix(&reference);
    let report = reference
        .run(2, &AtomicBool::new(false), None)
        .expect("reference run");
    for job in reference.job_views() {
        println!(
            "  {:<10} {:<10} {:<8} {}/{}",
            job.name,
            job.kind,
            job.state.name(),
            job.progress,
            job.target
        );
    }
    println!(
        "  {} unit(s) executed (the burst coalesced its 6 requests into [4, 2])\n",
        report.units
    );

    // --- Part 2: cut the service mid-mix, then recover ----------------
    println!("== Interrupted service + crash recovery ==\n");
    let cut_dir = fresh(&base.join("interrupted"));
    let farm = Farm::open(&cut_dir, cfg()).expect("open farm");
    submit_mix(&farm);
    // A 3-unit budget stops the pool early, exactly like a SIGTERM at a
    // checkpoint boundary (a kill -9 loses at most the current chunk).
    let report = farm
        .run(1, &AtomicBool::new(false), Some(3))
        .expect("interrupted run");
    println!(
        "  service stopped after {} unit(s); jobs left behind:",
        report.units
    );
    for job in farm.job_views() {
        println!(
            "    {:<10} {:<8} {}/{}",
            job.name,
            job.state.name(),
            job.progress,
            job.target
        );
    }
    drop(farm);

    // Reopen the same directory: the scan re-enqueues every spec without
    // a result digest, streams resume from their chain checkpoints.
    let recovered = Farm::open(&cut_dir, cfg()).expect("reopen farm");
    recovered
        .run(1, &AtomicBool::new(false), None)
        .expect("recovery run");
    assert!(recovered.all_done(), "recovery must drain every job");
    println!("\n  recovered and drained; status document:");
    let status = render_validated_status(&recovered).expect("validated status");
    println!("  {status}");

    // --- Part 3: the bit-identity guarantee ---------------------------
    match verify_dirs(&ref_dir, &cut_dir) {
        Ok(()) => println!("\n  OK: recovered results are byte-identical to the uninterrupted run"),
        Err(e) => {
            eprintln!("\n  FAIL: {e}");
            std::process::exit(1);
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
