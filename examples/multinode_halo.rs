//! Multi-rank domain decomposition with halo exchange — the coarsest level
//! of LQCD parallelism (paper, Section II-A) — including binary16
//! compression of the wire traffic, the paper's only use of fp16
//! (Section V-B).
//!
//! ```text
//! cargo run --release --example multinode_halo [nranks]
//! ```

use grid::prelude::*;
use grid::Coor;

fn main() {
    let nranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let global: Coor = [4, 4, 4, 4 * nranks.max(1)];
    let vl = VectorLength::of(512);
    println!(
        "Global lattice {:?} split over {nranks} ranks along t (VL {vl})\n",
        global
    );

    // Single-rank reference.
    let gg = Grid::new(global, vl, SimdBackend::Fcmla);
    let u = random_gauge(gg.clone(), 42);
    let psi = FermionField::random(gg.clone(), 43);
    let reference = WilsonDirac::new(u.clone(), 0.1).hopping(&psi);

    for compression in [Compression::None, Compression::F16] {
        let results = run_multinode(global, nranks, vl, SimdBackend::Fcmla, |ctx| {
            // Each rank reconstructs its local slice of the global fields
            // (layout-independent seeding makes this embarrassingly local).
            let mut lu = GaugeField::zero(ctx.grid.clone());
            let mut lf = FermionField::zero(ctx.grid.clone());
            for lx in ctx.grid.coords() {
                let gx = ctx.to_global(&lx);
                for comp in 0..36 {
                    lu.poke(&lx, comp, u.peek(&gx, comp));
                }
                for comp in 0..12 {
                    lf.poke(&lx, comp, psi.peek(&gx, comp));
                }
            }
            let hop = hopping_dist(ctx, &lu, &lf, compression);
            (ctx.rank, ctx.offset, hop, ctx.sent_bytes.get())
        });

        let mut worst: f64 = 0.0;
        let mut wire = 0usize;
        for (_rank, offset, local, sent) in &results {
            wire += sent;
            for lx in local.grid().coords() {
                let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
                for comp in 0..12 {
                    worst = worst.max((local.peek(&lx, comp) - reference.peek(&gx, comp)).abs());
                }
            }
        }
        println!(
            "compression {:?}: wire volume {:>9} bytes, max deviation from single-rank {:.3e}",
            compression, wire, worst
        );
    }
    println!(
        "\n(f16 quarters the wire volume; the deviation it introduces is\n\
         bounded by the binary16 epsilon and confined to halo sites.)"
    );
}
