//! Instruction audit of the paper's Section IV listings.
//!
//! Prints each listing's disassembly (compare line by line with the paper),
//! executes it under the emulator at every vector length — exactly what the
//! authors did with ArmIE ("we tested our examples emulating multiple vector
//! lengths") — and reports dynamic instruction counts and cycle estimates
//! under the three silicon cost profiles.
//!
//! ```text
//! cargo run --release --example instruction_audit
//! ```

use armie::listings;
use sve::{CostModel, SveCtx, VectorLength};

fn main() {
    // --- static code ----------------------------------------------------
    for (id, program) in listings::all_listings() {
        println!("==== Listing {id}: {} ====", program.name);
        println!("{}", program.disassemble());
    }

    // --- dynamic execution across vector lengths ------------------------
    let n = 96; // complex elements (192 doubles)
    let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.31).sin()).collect();
    let y: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.17).cos()).collect();
    let want = listings::mult_cplx_ref(&x, &y);
    let want_real = listings::mult_real_ref(&x, &y);

    println!("==== Dynamic instruction counts ({n} complex elements) ====\n");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>11}",
        "VL", "IV-A", "IV-B", "IV-C", "IV-D(/vec)"
    );
    for vl in VectorLength::sweep() {
        let a = listings::run_mult_real(SveCtx::new(vl), &x, &y);
        assert!(close(&a.z, &want_real), "IV-A wrong at {vl}");
        let b = listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y);
        assert!(close(&b.z, &want), "IV-B wrong at {vl}");
        let c = listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
        assert!(close(&c.z, &want), "IV-C wrong at {vl}");
        let lanes = vl.lanes64();
        let d = listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x[..lanes], &y[..lanes]);
        assert!(close(&d.z, &want[..lanes]), "IV-D wrong at {vl}");
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>11}",
            format!("{}", vl),
            a.report.steps,
            b.report.steps,
            c.report.steps,
            d.report.steps
        );
    }

    println!("\n==== Cycle estimates, complex multiply kernels (VL512) ====\n");
    let vl = VectorLength::of(512);
    println!(
        "{:<28} {:>9} {:>12} {:>12}",
        "kernel", "uniform", "fcmla-fast", "fcmla-slow"
    );
    let runs = [
        (
            "IV-B autovec (ld2d + real)",
            listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y),
        ),
        (
            "IV-C ACLE FCMLA (VLA loop)",
            listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y),
        ),
    ];
    for (name, run) in &runs {
        println!(
            "{:<28} {:>9} {:>12} {:>12}",
            name,
            run.machine.ctx.cycles(CostModel::Uniform),
            run.machine.ctx.cycles(CostModel::FcmlaFast),
            run.machine.ctx.cycles(CostModel::FcmlaSlow),
        );
    }
    println!(
        "\n(The Section V-E caveat in numbers: which kernel wins depends on\n\
         the silicon's FCMLA throughput — 'it is not guaranteed that the\n\
         FCMLA instruction outperforms alternative implementations'.)"
    );
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(p, q)| (p - q).abs() <= 1e-12 * q.abs().max(1.0))
}
