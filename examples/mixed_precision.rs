//! Mixed-precision solving — the production payoff of SVE's vectorized
//! precision conversion (paper, Sections II-C and III-A).
//!
//! Single-precision vectors carry twice the complex lanes, so the f32
//! lattice has twice the virtual nodes per vector; the defect-correction
//! loop keeps the answer at full double precision while retiring the bulk
//! of instructions at the cheaper width.
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```

use grid::prelude::*;

fn main() {
    let dims = [4, 4, 4, 8];
    let vl = VectorLength::of(512);
    let g = Grid::new(dims, vl, SimdBackend::Fcmla);
    println!(
        "Mixed-precision Wilson solve on {dims:?} at VL {vl}\n\
         f64 layout: {} virtual nodes/vector; f32 layout: {} virtual nodes/vector\n",
        g.lanes_c(),
        Grid::<f32>::new(dims, vl, SimdBackend::Fcmla).lanes_c()
    );

    let op = WilsonDirac::new(random_gauge(g.clone(), 5), 0.3);
    let b = FermionField::random(g.clone(), 6);

    // Reference: pure double precision.
    g.engine().ctx().counters().reset();
    let (x_ref, rep) = solve_wilson(&op, &b, 1e-10, 4000);
    let f64_only = g.engine().ctx().counters().total();
    println!(
        "pure f64 CG      : {} iterations, residual {:.2e}, {:.1}M instructions",
        rep.iterations,
        rep.residual,
        f64_only as f64 / 1e6
    );

    // Mixed precision.
    g.engine().ctx().counters().reset();
    let (x, mrep) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 2000);
    println!(
        "mixed f32/f64    : {} outer + {} inner iterations, residual {:.2e}",
        mrep.outer_iterations, mrep.inner_iterations, mrep.residual
    );
    println!(
        "                   {:.1}M f64 instructions + {:.1}M f32 instructions \
         ({:.0}% at single precision)",
        mrep.f64_instructions as f64 / 1e6,
        mrep.f32_instructions as f64 / 1e6,
        100.0 * mrep.f32_instructions as f64
            / (mrep.f32_instructions + mrep.f64_instructions) as f64
    );

    let diff = x.max_abs_diff(&x_ref);
    println!("\nsolutions agree to {diff:.2e} (both satisfy |Mx-b|/|b| < 1e-10)");
    println!(
        "\nOn silicon, f32 vectors process 2x the lanes per instruction, so\n\
         moving ~90% of the instruction stream to single precision is ~2x\n\
         arithmetic throughput — why Grid templates everything over precision\n\
         and why the port implements vectorized fcvt (paper, Section II-C)."
    );
}
