//! Checkpoint/restart with `qcd-io` — surviving node failure mid-campaign.
//!
//! Production lattice QCD runs last weeks on machines where nodes die
//! routinely (the Post-K/Fugaku line this paper's SVE port targets). This
//! example walks the full survivability story:
//!
//! 1. persist a gauge configuration in the `qcd-io/v1` container format
//!    and read it back with CRC + plaquette validation,
//! 2. corrupt a copy with the fault-injection layer and show the reader
//!    reports a typed error instead of returning wrong physics,
//! 3. kill a CG solve mid-flight, then resume it from the on-disk
//!    snapshot and verify it converges bit-identically to a run that was
//!    never interrupted.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use grid::prelude::*;
use qcd_io::{cg_checkpointed, read_gauge, resume_cg, write_gauge, Fault, FaultyWriter};
use std::io::Write;

fn main() {
    let dir = std::env::temp_dir().join("qcd-io-example");
    std::fs::create_dir_all(&dir).unwrap();

    let g = Grid::new([4, 4, 4, 8], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 13);

    // --- 1. Persist the gauge configuration -----------------------------
    let cfg = dir.join("config.qio");
    let bytes = write_gauge(&u, &cfg, Precision::F64).unwrap();
    let back = read_gauge(&cfg, &g).unwrap();
    println!(
        "gauge config: {bytes} bytes on disk, plaquette {:.15}\n\
         read-back validated (CRC per record + plaquette check), \
         max |diff| = {:.1e}\n",
        average_plaquette(&u),
        u.max_abs_diff(&back)
    );

    // --- 2. Corruption is detected, never silently accepted -------------
    let corrupted = dir.join("config-corrupt.qio");
    let original = std::fs::read(&cfg).unwrap();
    let mut w = FaultyWriter::new(
        std::fs::File::create(&corrupted).unwrap(),
        // Flip one bit in the middle of the gauge payload.
        Fault::BitFlip {
            offset: original.len() as u64 / 2,
            bit: 3,
        },
    );
    w.write_all(&original).unwrap();
    drop(w);
    match read_gauge(&corrupted, &g) {
        Err(e) => println!("single flipped bit -> typed error: {e}\n"),
        Ok(_) => unreachable!("corruption must not go unnoticed"),
    }

    // --- 3. Kill a solve, resume it, converge bit-identically -----------
    let op = WilsonDirac::new(u, 0.25);
    let b = FermionField::random(g.clone(), 14);
    let apply = |v: &FermionField| op.mdag_m(v);
    let (tol, max_iter) = (1e-10, 2000);

    // Reference: the solve nothing interrupts.
    let (x_ref, ref_report) = cg_op(apply, &b, tol, max_iter);
    println!(
        "uninterrupted CG : {} iterations, residual {:.3e}",
        ref_report.iterations, ref_report.residual
    );

    // "Node failure": cap the iteration budget at 14; the snapshot written
    // at iteration 10 (checkpoint interval 5) is what survives on disk.
    let ckpt = dir.join("cg.qio");
    let (_, partial, snaps) = cg_checkpointed(apply, &b, tol, 14, 5, &ckpt).unwrap();
    println!(
        "killed CG        : stopped at iteration {} ({snaps} snapshots written)",
        partial.iterations
    );

    // Restart: restore the state and finish the job.
    let (x, resumed, _) = resume_cg(apply, &b, tol, max_iter, 50, &ckpt).unwrap();
    println!(
        "resumed CG       : {} total iterations, residual {:.3e}",
        resumed.iterations, resumed.residual
    );

    assert_eq!(resumed.residual.to_bits(), ref_report.residual.to_bits());
    assert_eq!(x.max_abs_diff(&x_ref), 0.0);
    println!(
        "\nresumed solve is bit-identical to the uninterrupted one:\n\
         same iteration count, same residual bits, max |x - x_ref| = 0.\n\
         Checkpoints are atomic (temp file + fsync + rename), so a crash\n\
         during the save itself leaves the previous snapshot intact."
    );
}
