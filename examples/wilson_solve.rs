//! The paper's motivating workload: invert the Wilson Dirac operator on a
//! random SU(3) gauge background, the inner loop of every lattice QCD
//! campaign (paper, Section II-A), and account for the SVE instructions it
//! retires across backends and vector lengths.
//!
//! ```text
//! cargo run --release --example wilson_solve [L] [T]
//! ```

use grid::prelude::*;
use sve::OpClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let t: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let dims = [l, l, l, t];
    let volume: usize = dims.iter().product();
    println!("Wilson solve on a {l}^3 x {t} lattice (V = {volume} sites)\n");

    println!(
        "{:<10} {:<12} {:>6} {:>10} {:>14} {:>12}",
        "VL", "backend", "iters", "residual", "instructions", "insts/site"
    );
    for vl in [
        VectorLength::of(128),
        VectorLength::of(512),
        VectorLength::of(2048),
    ] {
        for backend in SimdBackend::all() {
            let g = Grid::new(dims, vl, backend);
            let u = random_gauge(g.clone(), 11);
            let d = WilsonDirac::new(u, 0.3);
            let b = FermionField::random(g.clone(), 12);
            g.engine().ctx().counters().reset();
            let (_, report) = cg(&d, &b, 1e-8, 2000);
            let c = g.engine().ctx().counters();
            let total = c.total();
            // Work per site per operator application: the figure of merit
            // the paper's wide-vector argument is about.
            let dh_apps = 2 * report.iterations; // M and M† per iteration
            let per_site = total as f64 / (dh_apps.max(1) * volume) as f64;
            println!(
                "{:<10} {:<12} {:>6} {:>10.2e} {:>13.1}M {:>12.1}",
                format!("{}", vl),
                backend.name(),
                report.iterations,
                report.residual,
                total as f64 / 1e6,
                per_site
            );
        }
    }

    // Convergence history for one configuration.
    println!("\nResidual history (VL512, FCMLA), every 10th iteration:");
    let g = Grid::new(dims, VectorLength::of(512), SimdBackend::Fcmla);
    let d = WilsonDirac::new(random_gauge(g.clone(), 11), 0.3);
    let b = FermionField::random(g.clone(), 12);
    let (_, report) = cg(&d, &b, 1e-8, 2000);
    for (i, r) in report.history.iter().enumerate().step_by(10) {
        println!("  iter {i:>4}: |r|/|b| = {r:.3e}");
    }
    println!(
        "  iter {:>4}: |r|/|b| = {:.3e}",
        report.iterations,
        report.history.last().unwrap()
    );

    // Instruction-mix profile of one hopping-term application.
    println!("\nInstruction mix of one Dh application (VL512, FCMLA):");
    let psi = FermionField::random(g.clone(), 13);
    g.engine().ctx().counters().reset();
    let _ = d.hopping(&psi);
    let c = g.engine().ctx().counters();
    for class in [
        OpClass::Load,
        OpClass::Store,
        OpClass::FpComplex,
        OpClass::FpArith,
        OpClass::Permute,
        OpClass::Move,
    ] {
        println!("  {:?}: {}", class, c.total_class(class));
    }
}
