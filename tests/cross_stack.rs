//! Cross-crate consistency: the three levels of the stack — emulated
//! assembly (armie), ACLE intrinsics (sve), and the Grid abstraction layer
//! (grid) — must compute identical complex arithmetic, and their instruction
//! accounting must agree where the code paths are the same.

use grid::simd::functors::{MultComplex, WordFunctor};
use grid::simd::{SimdBackend, SimdEngine};
use std::sync::Arc;
use sve::intrinsics::*;
use sve::{CostModel, Opcode, SveCtx, VectorLength};

fn interleaved(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37 + phase).sin() * 2.0)
        .collect()
}

#[test]
fn emulator_intrinsics_and_grid_agree_on_complex_multiply() {
    for vl in VectorLength::sweep() {
        let n = vl.lanes64();
        let x = interleaved(n, 0.0);
        let y = interleaved(n, 1.0);

        // Level 1: the paper's listing IV-D under the emulator.
        let run = armie::listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x, &y);

        // Level 2: direct ACLE intrinsics (the listing's source code).
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let sx = svld1(&ctx, &pg, &x);
        let sy = svld1(&ctx, &pg, &y);
        let zero = svdup::<f64>(&ctx, 0.0);
        let t = svcmla::<f64>(&ctx, &pg, &zero, &sx, &sy, Rot::R90);
        let sz = svcmla::<f64>(&ctx, &pg, &t, &sx, &sy, Rot::R0);
        let mut z_acle = vec![0.0; n];
        svst1(&ctx, &pg, &mut z_acle, &sz);

        // Level 3: Grid's MultComplex functor (Section V-C).
        let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), SimdBackend::Fcmla);
        let mut z_grid = vec![0.0; n];
        MultComplex.apply(&eng, &x, &y, &mut z_grid);

        assert_eq!(run.z, z_acle, "emulator vs intrinsics at {vl}");
        assert_eq!(z_acle, z_grid, "intrinsics vs grid functor at {vl}");
    }
}

#[test]
fn fcmla_counts_match_across_stack_levels() {
    let vl = VectorLength::of(512);
    let n = vl.lanes64();
    let x = interleaved(n, 0.3);
    let y = interleaved(n, 0.9);

    let run = armie::listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x, &y);
    let emulator_fcmla = run.machine.ctx.counters().get(Opcode::Fcmla);

    let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), SimdBackend::Fcmla);
    let mut out = vec![0.0; n];
    MultComplex.apply(&eng, &x, &y, &mut out);
    let grid_fcmla = eng.ctx().counters().get(Opcode::Fcmla);

    assert_eq!(emulator_fcmla, 2);
    assert_eq!(grid_fcmla, 2);
    // Both levels also perform exactly 2 loads and 1 store.
    assert_eq!(run.machine.ctx.counters().get(Opcode::Ld1), 2);
    assert_eq!(eng.ctx().counters().get(Opcode::Ld1), 2);
    assert_eq!(run.machine.ctx.counters().get(Opcode::St1), 1);
    assert_eq!(eng.ctx().counters().get(Opcode::St1), 1);
}

#[test]
fn cost_model_ranks_backends_consistently_at_every_vl() {
    // Section V-E quantified: per MultComplex word, fcmla wins under the
    // fcmla-fast profile and loses under fcmla-slow to the real-arithmetic
    // alternative, at every vector length.
    for vl in VectorLength::sweep() {
        let mut cycles = std::collections::HashMap::new();
        for backend in SimdBackend::all() {
            let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), backend);
            let x = interleaved(vl.lanes64(), 0.1);
            let y = interleaved(vl.lanes64(), 0.2);
            let mut out = vec![0.0; vl.lanes64()];
            eng.ctx().counters().reset();
            for _ in 0..100 {
                MultComplex.apply(&eng, &x, &y, &mut out);
            }
            cycles.insert(
                backend,
                (
                    eng.ctx().cycles(CostModel::FcmlaFast),
                    eng.ctx().cycles(CostModel::FcmlaSlow),
                ),
            );
        }
        let fcmla = cycles[&SimdBackend::Fcmla];
        let real = cycles[&SimdBackend::RealArith];
        assert!(fcmla.0 < real.0, "{vl}: fast profile must favour FCMLA");
        assert!(
            fcmla.1 > real.1,
            "{vl}: slow profile must favour real arithmetic"
        );
    }
}

#[test]
fn vla_loop_overhead_disappears_in_fixed_size_style() {
    // Section IV-D's point: for one vector's worth of data the fixed-size
    // kernel runs 8 instructions; the VLA loop (IV-C) pays loop control.
    let vl = VectorLength::of(512);
    let n = vl.lanes64();
    let x = interleaved(n, 0.0);
    let y = interleaved(n, 0.5);
    let fixed = armie::listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x, &y);
    let vla = armie::listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y);
    assert_eq!(fixed.z, vla.z, "same values either way");
    assert!(fixed.report.steps < vla.report.steps);
    assert_eq!(fixed.report.steps, 8);
}

#[test]
fn whole_stack_runs_at_the_architectural_extremes() {
    // 128-bit (NEON-width) and 2048-bit (architectural max) both work end
    // to end: listing, functor, Wilson operator, solver.
    use grid::prelude::*;
    for vl in [VectorLength::of(128), VectorLength::of(2048)] {
        let g = Grid::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let d = WilsonDirac::new(random_gauge(g.clone(), 5), 0.3);
        let b = FermionField::random(g.clone(), 6);
        let (_, report) = cg(&d, &b, 1e-7, 600);
        assert!(report.converged, "{vl}: {report:?}");
    }
}
