//! Physics-level integration: gauge covariance, preconditioning and mixed
//! precision working together across vector lengths — the extension layer
//! on top of the paper's verification campaign.

use grid::prelude::*;

#[test]
fn full_pipeline_at_every_grid_supported_vl() {
    // The paper enables 128/256/512 in Grid (Section V-B); run the whole
    // pipeline (gauge generation -> observables -> EO solve -> verification)
    // at each.
    for vl in VectorLength::grid_supported() {
        let g = Grid::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 201);
        // Observables sane.
        let p = average_plaquette(&u);
        assert!(p.abs() < 0.3, "{vl}: plaquette {p}");
        // EO-preconditioned solve verifies against the operator.
        let op = WilsonDirac::new(u, 0.25);
        let b = FermionField::random(g.clone(), 202);
        let (x, report) = solve_eo(&op, &b, 1e-9, 2000);
        assert!(report.residual < 1e-7, "{vl}: {report:?}");
        let mx = op.apply(&x);
        let mut diff = FermionField::zero(g.clone());
        diff.sub(&mx, &b);
        assert!((diff.norm2() / b.norm2()).sqrt() < 1e-7, "{vl}");
    }
}

#[test]
fn gauge_covariance_composes_with_solving() {
    // Solving in a gauge-rotated frame gives the rotated solution.
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 203);
    let t = random_transform(g.clone(), 204);
    let b = FermionField::random(g.clone(), 205);

    let (x, _) = solve_wilson(&WilsonDirac::new(u.clone(), 0.3), &b, 1e-10, 3000);
    let (x_rot, _) = solve_wilson(
        &WilsonDirac::new(transform_links(&u, &t), 0.3),
        &transform_fermion(&b, &t),
        1e-10,
        3000,
    );
    let expected = transform_fermion(&x, &t);
    let diff = x_rot.max_abs_diff(&expected);
    assert!(diff < 1e-7, "covariance of the solve broken by {diff}");
}

#[test]
fn mixed_precision_agrees_with_pure_double_across_backends() {
    for backend in [SimdBackend::Fcmla, SimdBackend::RealArith] {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), 206), 0.3);
        let b = FermionField::random(g.clone(), 207);
        let (x_mixed, rep) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 1000);
        assert!(rep.converged, "{backend:?}: {rep:?}");
        let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
        let diff = x_mixed.max_abs_diff(&x_ref);
        assert!(diff < 1e-7, "{backend:?}: solutions differ by {diff}");
    }
}

#[test]
fn half_spinor_comms_compose_with_fp16_compression() {
    // The two comms compressions stack: spin projection (x2) and binary16
    // (x4); the result still matches the single-rank hopping term to f16
    // accuracy.
    use grid::Coor;
    let global: Coor = [4, 4, 4, 8];
    let vl = VectorLength::of(256);
    let gg = Grid::new(global, vl, SimdBackend::Fcmla);
    let u = random_gauge(gg.clone(), 208);
    let psi = FermionField::random(gg.clone(), 209);
    let want = WilsonDirac::new(u.clone(), 0.1).hopping(&psi);

    let locals = run_multinode(global, 2, vl, SimdBackend::Fcmla, |ctx| {
        let mut lu = GaugeField::zero(ctx.grid.clone());
        let mut lf = FermionField::zero(ctx.grid.clone());
        for lx in ctx.grid.coords() {
            let gx = ctx.to_global(&lx);
            for comp in 0..36 {
                lu.poke(&lx, comp, u.peek(&gx, comp));
            }
            for comp in 0..12 {
                lf.poke(&lx, comp, psi.peek(&gx, comp));
            }
        }
        let h = hopping_dist_half(ctx, &lu, &lf, Compression::F16);
        (ctx.offset, h, ctx.sent_bytes.get())
    });
    let mut worst: f64 = 0.0;
    let mut wire = 0;
    for (offset, local, sent) in &locals {
        wire += sent;
        for lx in local.grid().coords() {
            let gx: Coor = std::array::from_fn(|d| lx[d] + offset[d]);
            for comp in 0..12 {
                worst = worst.max((local.peek(&lx, comp) - want.peek(&gx, comp)).abs());
            }
        }
    }
    assert!(worst > 0.0 && worst < 0.05, "f16 halo error {worst}");
    // Wire volume: half-spinor f16 slices = 6 comps * 2 reals * 2 bytes per
    // site per exchanged slice; 8 slices exchanged per rank (2 per mu-leg
    // pair at mu=3 only -> 2 legs * 1 slice each per rank).
    assert!(wire > 0);
}

#[test]
fn observables_are_layout_invariant() {
    // Plaquette / Polyakov / Wilson loops must not depend on the vector
    // length (they are computed from the same physical configuration).
    let mut values = Vec::new();
    for vl in [VectorLength::of(128), VectorLength::of(1024)] {
        let g = Grid::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 210);
        values.push((
            average_plaquette(&u),
            average_polyakov_loop(&u),
            wilson_loop(&u, 0, 3, 2, 2),
        ));
    }
    assert!((values[0].0 - values[1].0).abs() < 1e-13);
    assert!((values[0].1 - values[1].1).abs() < 1e-13);
    assert!((values[0].2 - values[1].2).abs() < 1e-13);
}
