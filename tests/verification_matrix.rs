//! The Section V-D verification campaign as an integration test.
//!
//! The paper ran 40 representative Grid tests/benchmarks under ArmIE "for
//! different SVE vector lengths": "The majority of tests and benchmarks
//! complete with success. However, some tests fail due to incorrect results
//! for some choices of the SVE vector length and implementations of the
//! predication. We attribute the failing tests to minor issues of the ARM
//! SVE toolchain."
//!
//! Faithful toolchain → all 40 checks pass at all five vector lengths.
//! Injected tail-predication bug (the class of defect the paper hit) →
//! exactly the VLA-style checks fail, only at the faulted vector length,
//! while the fixed-size kernels (the style the Grid port adopts) survive.

use lqcd_sve::verification::{all_checks, run_matrix, CheckCfg};
use sve::{SveCtx, ToolchainFault, VectorLength};

use grid::SimdBackend;

#[test]
fn campaign_has_forty_checks() {
    assert_eq!(all_checks().len(), 40);
    // Names are unique.
    let mut names: Vec<_> = all_checks().iter().map(|c| c.name).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 40);
}

#[test]
fn faithful_toolchain_passes_everything_across_vector_lengths() {
    let vls = VectorLength::sweep();
    let matrix = run_matrix(&vls, SimdBackend::Fcmla, ToolchainFault::None);
    let failures: Vec<String> = matrix
        .names
        .iter()
        .zip(&matrix.results)
        .flat_map(|(name, row)| {
            row.iter().zip(&matrix.vls).filter_map(move |(res, vl)| {
                res.as_ref().err().map(|e| format!("{name} @ {vl}: {e}"))
            })
        })
        .collect();
    assert!(failures.is_empty(), "failures:\n{}", failures.join("\n"));
    assert_eq!(matrix.passed(), matrix.total());
    assert_eq!(matrix.total(), 40 * 5);
}

#[test]
fn faithful_toolchain_passes_for_every_backend_at_512() {
    // The paper's headline configuration (512-bit, AVX-512 equivalent),
    // checked with all three complex-arithmetic lowerings.
    for backend in SimdBackend::all() {
        let matrix = run_matrix(&[VectorLength::of(512)], backend, ToolchainFault::None);
        assert_eq!(matrix.passed(), matrix.total(), "{backend:?} has failures");
    }
}

#[test]
fn buggy_toolchain_fails_only_vla_checks_at_the_faulted_vl() {
    let bad_vl = VectorLength::of(512);
    let fault = ToolchainFault::TailPredicationBug(bad_vl);
    let vls = [VectorLength::of(256), bad_vl, VectorLength::of(1024)];
    let matrix = run_matrix(&vls, SimdBackend::Fcmla, fault);

    // The checks the paper's class of bug can reach: VLA loops with
    // partial tail predicates.
    let vla_checks = [
        "Test_simd_real_vla",
        "Test_simd_cplx_autovec",
        "Test_simd_cplx_fcmla_vla",
        "Test_predication_whilelt",
    ];

    let mut failed_at_bad_vl = Vec::new();
    for (i, name) in matrix.names.iter().enumerate() {
        for (j, vl) in matrix.vls.iter().enumerate() {
            let ok = matrix.results[i][j].is_ok();
            if *vl == bad_vl {
                if vla_checks.contains(name) {
                    assert!(!ok, "{name} should fail at the faulted VL");
                    failed_at_bad_vl.push(*name);
                } else {
                    assert!(
                        ok,
                        "{name} (fixed-size style) should survive the fault: {:?}",
                        matrix.results[i][j]
                    );
                }
            } else {
                assert!(ok, "{name} must pass at unaffected {vl}");
            }
        }
    }
    assert_eq!(failed_at_bad_vl.len(), vla_checks.len());

    // "The majority of tests and benchmarks complete with success."
    let frac = matrix.passed() as f64 / matrix.total() as f64;
    assert!(frac > 0.9, "pass fraction {frac}");
}

#[test]
fn fixed_size_style_is_immune_by_construction() {
    // Section V-A/V-B: the port binds kernels to the hardware vector length
    // and never runs partial vectors, so even a tail-predication miscompile
    // cannot corrupt Grid results — only ACLE VLA code is exposed.
    let bad_vl = VectorLength::of(1024);
    let cfg = CheckCfg {
        vl: bad_vl,
        backend: SimdBackend::Fcmla,
        fault: ToolchainFault::TailPredicationBug(bad_vl),
    };
    for check in all_checks() {
        if check.group != "sve" {
            assert!(
                (check.run)(&cfg).is_ok(),
                "{} should be immune to tail-predication faults",
                check.name
            );
        }
    }
}

#[test]
fn fault_context_construction_smoke() {
    let ctx = SveCtx::with_fault(
        VectorLength::of(256),
        ToolchainFault::TailPredicationBug(VectorLength::of(256)),
    );
    assert_eq!(
        ctx.fault(),
        ToolchainFault::TailPredicationBug(VectorLength::of(256))
    );
}
