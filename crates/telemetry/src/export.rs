//! Structured exporters: human-readable table, JSON lines, and Chrome
//! `trace_event` format.

use sve::{CostModel, Opcode};

use crate::json::Json;
use crate::region::Snapshot;
use crate::span::{trace_log, TraceEvent};

/// Render a snapshot as an aligned human-readable table, one row per region
/// path (indented by nesting depth), with derived metrics.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>8} {:>12} {:>12} {:>12} {:>9} {:>12} {:>8} {:>8}\n",
        "region", "count", "wall ms", "self ms", "insts", "fcmla", "flops", "AI", "%pred"
    ));
    let dashes = "-".repeat(132);
    out.push_str(&dashes);
    out.push('\n');
    for (path, stat) in &snap.regions {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), leaf);
        let ai = stat
            .arithmetic_intensity()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        let pct = stat
            .percent_of_predicted()
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<44} {:>8} {:>12.3} {:>12.3} {:>12} {:>9} {:>12} {:>8} {:>8}\n",
            label,
            stat.count,
            stat.wall_ns as f64 / 1e6,
            stat.self_ns() as f64 / 1e6,
            stat.total_insts(),
            stat.insts_for(Opcode::Fcmla),
            stat.flops,
            ai,
            pct,
        ));
    }
    out.push_str(&dashes);
    out.push('\n');
    out.push_str("cycle estimates (exclusive opcode mix):\n");
    for (path, stat) in &snap.regions {
        if stat.total_insts() == 0 {
            continue;
        }
        let cycles: Vec<String> = CostModel::all()
            .iter()
            .map(|&m| format!("{}={}", m.name(), stat.cycles(m)))
            .collect();
        out.push_str(&format!("  {:<42} {}\n", path, cycles.join("  ")));
    }
    out
}

/// Render a snapshot as JSON lines: one compact object per region, each
/// carrying the schema tag so a line is self-describing in isolation.
pub fn to_json_lines(snap: &Snapshot) -> String {
    let doc = snap.to_json();
    let regions = doc
        .get("regions")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .to_vec();
    let mut out = String::new();
    for region in regions {
        let mut members = vec![(
            "schema".to_string(),
            Json::Str(crate::region::SCHEMA.into()),
        )];
        if let Some(obj) = region.as_obj() {
            members.extend(obj.iter().cloned());
        }
        out.push_str(&Json::Obj(members).render());
        out.push('\n');
    }
    out
}

/// Render the retained span timeline in Chrome `trace_event` JSON (load via
/// `chrome://tracing` or Perfetto). Events are complete (`"ph":"X"`) with
/// microsecond timestamps relative to the first span of the process.
/// Metadata events (`"ph":"M"`) name the process and every thread that
/// closed a span, so Perfetto groups worker tracks by name instead of by
/// bare ordinal.
pub fn to_chrome_trace() -> String {
    let mut events: Vec<Json> = vec![Json::Obj(vec![
        ("name".into(), Json::Str("process_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(1.0)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str("lqcd-sve".into()))]),
        ),
    ])];
    for (tid, name) in crate::span::thread_name_map() {
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str("thread_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(tid as f64)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(name))]),
            ),
        ]));
    }
    let log = trace_log().lock().unwrap();
    events.extend(log.iter().map(
        |TraceEvent {
             path,
             start_us,
             dur_us,
             tid,
         }| {
            Json::Obj(vec![
                ("name".into(), Json::Str(path.clone())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Num(*start_us as f64)),
                ("dur".into(), Json::Num(*dur_us as f64)),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(*tid as f64)),
            ])
        },
    ));
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionStat;

    #[test]
    fn table_indents_children_and_shows_derived_columns() {
        let mut snap = Snapshot::default();
        let mut parent = RegionStat {
            count: 2,
            wall_ns: 2_000_000,
            child_ns: 500_000,
            flops: 2640,
            bytes_read: 2592,
            bytes_written: 384,
            predicted_insts: 14,
            ..RegionStat::default()
        };
        parent.insts[Opcode::Fcmla as usize] = 4;
        snap.regions.insert("solve".into(), parent);
        snap.regions
            .insert("solve/iter".into(), RegionStat::default());
        let table = render_table(&snap);
        assert!(table.contains("solve"));
        assert!(table.contains("  iter"), "child row not indented:\n{table}");
        assert!(table.contains("fcmla"));
        assert!(table.contains("cycle estimates"));
    }

    #[test]
    fn json_lines_are_individually_parseable() {
        let mut snap = Snapshot::default();
        snap.regions.insert("a".into(), RegionStat::default());
        snap.regions.insert("a/b".into(), RegionStat::default());
        let lines = to_json_lines(&snap);
        let parsed: Vec<Json> = lines
            .lines()
            .map(|l| Json::parse(l).expect("line must parse"))
            .collect();
        assert_eq!(parsed.len(), 2);
        for line in &parsed {
            assert_eq!(
                line.get("schema").and_then(Json::as_str),
                Some(crate::region::SCHEMA)
            );
            assert!(line.get("path").is_some());
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let doc = Json::parse(&to_chrome_trace()).unwrap();
        assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
    }
}
