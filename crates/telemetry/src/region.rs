//! Per-region accumulators, derived metrics, and the registry snapshot type.

use std::collections::BTreeMap;

use sve::{CostModel, Opcode};

use crate::json::{Json, JsonError};

/// Everything accumulated for one region path across all of its invocations.
///
/// Counter-style fields are raw sums; ratios (arithmetic intensity, cycle
/// estimates, percent-of-predicted) are derived on demand so a stat can keep
/// merging without re-normalisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionStat {
    /// Number of completed spans for this path.
    pub count: u64,
    /// Total inclusive wall time.
    pub wall_ns: u64,
    /// Wall time attributed to enclosed child spans (same thread).
    pub child_ns: u64,
    /// Exclusive per-opcode instruction deltas, indexed by `Opcode as usize`.
    /// Only populated for spans that observed an `SveCtx`.
    pub insts: [u64; Opcode::COUNT],
    /// Floating-point operations the instrumented code reported.
    pub flops: u64,
    /// Lattice sites processed.
    pub sites: u64,
    /// Bytes read from field storage.
    pub bytes_read: u64,
    /// Bytes written to field storage.
    pub bytes_written: u64,
    /// Bytes that crossed the (simulated) wire, after compression.
    pub wire_bytes: u64,
    /// Paper-predicted instruction count for the work done in this region,
    /// accumulated per invocation like the measured counters (so
    /// [`RegionStat::percent_of_predicted`] compares like with like).
    pub predicted_insts: u64,
}

impl Default for RegionStat {
    fn default() -> Self {
        RegionStat {
            count: 0,
            wall_ns: 0,
            child_ns: 0,
            insts: [0; Opcode::COUNT],
            flops: 0,
            sites: 0,
            bytes_read: 0,
            bytes_written: 0,
            wire_bytes: 0,
            predicted_insts: 0,
        }
    }
}

impl RegionStat {
    /// Wall time minus time attributed to children.
    pub fn self_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.child_ns)
    }

    /// Total exclusive instruction count across all opcodes.
    pub fn total_insts(&self) -> u64 {
        self.insts.iter().sum()
    }

    /// Exclusive count for one opcode.
    pub fn insts_for(&self, op: Opcode) -> u64 {
        self.insts[op as usize]
    }

    /// Estimated cycles under a cost model, from the exclusive opcode mix.
    pub fn cycles(&self, model: CostModel) -> u64 {
        Opcode::ALL
            .iter()
            .map(|&op| model.cost(op) * self.insts[op as usize])
            .sum()
    }

    /// Flops per byte moved through field storage, when both were recorded.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes == 0 || self.flops == 0 {
            None
        } else {
            Some(self.flops as f64 / bytes as f64)
        }
    }

    /// Measured instruction count as a percentage of the paper-predicted
    /// count, when a prediction was recorded.
    pub fn percent_of_predicted(&self) -> Option<f64> {
        if self.predicted_insts == 0 {
            None
        } else {
            Some(100.0 * self.total_insts() as f64 / self.predicted_insts as f64)
        }
    }

    /// Fold another stat for the same path into this one.
    pub fn merge(&mut self, other: &RegionStat) {
        self.count += other.count;
        self.wall_ns += other.wall_ns;
        self.child_ns += other.child_ns;
        for (acc, v) in self.insts.iter_mut().zip(other.insts.iter()) {
            *acc += v;
        }
        self.flops += other.flops;
        self.sites += other.sites;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.wire_bytes += other.wire_bytes;
        self.predicted_insts += other.predicted_insts;
    }
}

/// One completed span, returned by [`crate::SpanGuard::finish`]. Unlike the
/// global registry this is race-free per invocation: it describes exactly
/// the work that happened between enter and finish on this thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionSummary {
    /// Full `/`-joined region path.
    pub path: String,
    /// Inclusive wall time of the span.
    pub wall_ns: u64,
    /// Wall time spent in enclosed child spans.
    pub child_ns: u64,
    /// Total exclusive instruction delta (0 without an `SveCtx`).
    pub insts: u64,
    /// Exclusive FCMLA count — the paper's headline opcode.
    pub fcmla_insts: u64,
    /// Flops reported inside the span.
    pub flops: u64,
    /// Lattice sites reported inside the span.
    pub sites: u64,
    /// Field-storage bytes read inside the span.
    pub bytes_read: u64,
    /// Field-storage bytes written inside the span.
    pub bytes_written: u64,
    /// Post-compression wire bytes reported inside the span.
    pub wire_bytes: u64,
}

/// A point-in-time copy of the global registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Region stats keyed by full path, in path order.
    pub regions: BTreeMap<String, RegionStat>,
}

impl Snapshot {
    /// Stats for one path.
    pub fn region(&self, path: &str) -> Option<&RegionStat> {
        self.regions.get(path)
    }

    /// Direct children of `path` (one level deeper, `/`-separated).
    pub fn children(&self, path: &str) -> Vec<(&str, &RegionStat)> {
        let prefix = format!("{path}/");
        self.regions
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix) && !k[prefix.len()..].contains('/'))
            .map(|(k, v)| (k.as_str(), v))
            .collect()
    }

    /// Serialize to the `qcd-trace/v1` JSON schema.
    ///
    /// Layout:
    /// ```json
    /// {"schema":"qcd-trace/v1",
    ///  "regions":[{"path":"...","count":N,"wall_ns":N,"child_ns":N,
    ///              "self_ns":N,"flops":N,"sites":N,"bytes_read":N,
    ///              "bytes_written":N,"wire_bytes":N,"predicted_insts":N,
    ///              "total_insts":N,"insts":{"<mnemonic>":N,...}}]}
    /// ```
    /// `self_ns` and `total_insts` are derived fields included for consumers
    /// that do not want to recompute them; `from_json` checks they are
    /// consistent with the raw fields.
    pub fn to_json(&self) -> Json {
        let regions = self
            .regions
            .iter()
            .map(|(path, stat)| {
                let insts: Vec<(String, Json)> = Opcode::ALL
                    .iter()
                    .filter(|&&op| stat.insts[op as usize] != 0)
                    .map(|&op| {
                        (
                            op.mnemonic().to_string(),
                            Json::Num(stat.insts[op as usize] as f64),
                        )
                    })
                    .collect();
                Json::Obj(vec![
                    ("path".into(), Json::Str(path.clone())),
                    ("count".into(), Json::Num(stat.count as f64)),
                    ("wall_ns".into(), Json::Num(stat.wall_ns as f64)),
                    ("child_ns".into(), Json::Num(stat.child_ns as f64)),
                    ("self_ns".into(), Json::Num(stat.self_ns() as f64)),
                    ("flops".into(), Json::Num(stat.flops as f64)),
                    ("sites".into(), Json::Num(stat.sites as f64)),
                    ("bytes_read".into(), Json::Num(stat.bytes_read as f64)),
                    ("bytes_written".into(), Json::Num(stat.bytes_written as f64)),
                    ("wire_bytes".into(), Json::Num(stat.wire_bytes as f64)),
                    (
                        "predicted_insts".into(),
                        Json::Num(stat.predicted_insts as f64),
                    ),
                    ("total_insts".into(), Json::Num(stat.total_insts() as f64)),
                    ("insts".into(), Json::Obj(insts)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("regions".into(), Json::Arr(regions)),
        ])
    }

    /// Parse a `qcd-trace/v1` snapshot back, validating the schema tag,
    /// required fields, known opcode mnemonics, and the derived-field
    /// consistency (`self_ns`, `total_insts`).
    pub fn from_json(doc: &Json) -> Result<Snapshot, JsonError> {
        let bad = |msg: &str| JsonError {
            msg: msg.to_string(),
            at: 0,
        };
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(bad(&format!("unknown schema `{other}`"))),
            None => return Err(bad("missing `schema`")),
        }
        let regions = doc
            .get("regions")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `regions` array"))?;
        let mut out = BTreeMap::new();
        for region in regions {
            let path = region
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("region missing `path`"))?
                .to_string();
            let field = |name: &str| {
                region
                    .get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(&format!("region `{path}` missing counter `{name}`")))
            };
            let mut stat = RegionStat {
                count: field("count")?,
                wall_ns: field("wall_ns")?,
                child_ns: field("child_ns")?,
                flops: field("flops")?,
                sites: field("sites")?,
                bytes_read: field("bytes_read")?,
                bytes_written: field("bytes_written")?,
                wire_bytes: field("wire_bytes")?,
                predicted_insts: field("predicted_insts")?,
                ..RegionStat::default()
            };
            let insts = region
                .get("insts")
                .and_then(Json::as_obj)
                .ok_or_else(|| bad(&format!("region `{path}` missing `insts`")))?;
            for (mnemonic, n) in insts {
                let op = Opcode::ALL
                    .iter()
                    .copied()
                    .find(|op| op.mnemonic() == mnemonic)
                    .ok_or_else(|| bad(&format!("unknown opcode mnemonic `{mnemonic}`")))?;
                stat.insts[op as usize] = n
                    .as_u64()
                    .ok_or_else(|| bad(&format!("bad count for opcode `{mnemonic}`")))?;
            }
            if field("self_ns")? != stat.self_ns() {
                return Err(bad(&format!("region `{path}`: inconsistent self_ns")));
            }
            if field("total_insts")? != stat.total_insts() {
                return Err(bad(&format!("region `{path}`: inconsistent total_insts")));
            }
            if out.insert(path.clone(), stat).is_some() {
                return Err(bad(&format!("duplicate region path `{path}`")));
            }
        }
        Ok(Snapshot { regions: out })
    }
}

/// Schema tag emitted and required by [`Snapshot::to_json`] / `from_json`.
pub const SCHEMA: &str = "qcd-trace/v1";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        let mut a = RegionStat {
            count: 3,
            wall_ns: 1_000,
            child_ns: 400,
            flops: 1320,
            sites: 1,
            bytes_read: 1296,
            bytes_written: 192,
            wire_bytes: 96,
            predicted_insts: 7,
            ..RegionStat::default()
        };
        a.insts[Opcode::Fcmla as usize] = 2;
        a.insts[Opcode::Ld1 as usize] = 2;
        s.regions.insert("dirac.hop".into(), a);
        s.regions
            .insert("dirac.hop/proj".into(), RegionStat::default());
        s
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json().render();
        let back = Snapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_tampering() {
        let snap = sample();
        let good = snap.to_json().render();
        assert!(Snapshot::from_json(&Json::parse(&good).unwrap()).is_ok());
        for (needle, replacement) in [
            ("qcd-trace/v1", "qcd-trace/v0"),
            ("\"total_insts\":4", "\"total_insts\":5"),
            ("\"self_ns\":600", "\"self_ns\":601"),
            ("\"fcmla\"", "\"not-an-op\""),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "test needle `{needle}` not found");
            assert!(
                Snapshot::from_json(&Json::parse(&bad).unwrap()).is_err(),
                "tampered doc accepted: {needle} -> {replacement}"
            );
        }
    }

    #[test]
    fn derived_metrics() {
        let snap = sample();
        let stat = snap.region("dirac.hop").unwrap();
        assert_eq!(stat.self_ns(), 600);
        assert_eq!(stat.total_insts(), 4);
        let ai = stat.arithmetic_intensity().unwrap();
        assert!((ai - 1320.0 / 1488.0).abs() < 1e-12);
        let pct = stat.percent_of_predicted().unwrap();
        assert!((pct - 100.0 * 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(snap.children("dirac.hop").len(), 1);
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = RegionStat {
            count: 1,
            wall_ns: 10,
            predicted_insts: 7,
            ..RegionStat::default()
        };
        let b = RegionStat {
            count: 2,
            wall_ns: 5,
            flops: 100,
            predicted_insts: 14,
            ..RegionStat::default()
        };
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.wall_ns, 15);
        assert_eq!(a.flops, 100);
        assert_eq!(a.predicted_insts, 21);
    }
}
