//! A minimal self-contained JSON value with an emitter and a parser.
//!
//! The build container has no crates.io access, so the crate carries its own
//! JSON support instead of serde. Round-tripping through [`Json::parse`] is
//! what the CI schema check relies on: every profile the exporters emit must
//! parse back into the same structure.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; integers up to 2^53 round-trip
    /// exactly, which covers every counter this crate produces.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (no duplicate-key handling beyond
    /// last-wins on lookup).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object member by key (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member interpreted as a non-negative integer counter.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after document", pos));
        }
        Ok(value)
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null rather than emit an
        // unparseable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(msg: &str, at: usize) -> JsonError {
    JsonError {
        msg: msg.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected `,` or `]` in array", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(err("expected `,` or `}` in object", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad number", start))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("bad number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are guaranteed valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).unwrap();
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("qcd-trace/v1".into())),
            (
                "regions".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("path".into(), Json::Str("solver/cg \"quoted\"".into())),
                    ("wall_ns".into(), Json::Num(123456789.0)),
                    ("ai".into(), Json::Num(0.71875)),
                    ("converged".into(), Json::Bool(true)),
                    ("note".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(1320.0 * 4096.0).render(), "5406720");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\\n\\u0041\" : [ 1.5e2 , true , null ] } ").unwrap();
        let arr = v.get("a\nA").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(150.0));
        assert_eq!(arr[1], Json::Bool(true));
        assert_eq!(arr[2], Json::Null);
    }
}
