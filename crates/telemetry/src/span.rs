//! RAII region spans, thread-local frame stacks, and the global registry.
//!
//! Every thread keeps its own stack of open frames, so instrumented code in
//! rayon-style worker threads never contends on a lock while running. A
//! frame folds into the process-global registry exactly once, when its
//! [`SpanGuard`] drops (or [`SpanGuard::finish`] consumes it), which keeps
//! merged results deterministic regardless of thread scheduling.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use sve::{Opcode, SveCtx};

use crate::region::{RegionStat, RegionSummary, Snapshot};

/// A point-in-time copy of an `SveCtx`'s per-opcode counters, for manual
/// attribution with [`SpanGuard::add_counters_since`] when holding `&SveCtx`
/// across the instrumented call is impossible (e.g. the context lives inside
/// a machine passed by `&mut`).
#[derive(Clone, Copy, Debug)]
pub struct CounterSnapshot {
    vals: [u64; Opcode::COUNT],
}

/// Capture the current counter values of `ctx`.
pub fn snapshot_counters(ctx: &SveCtx) -> CounterSnapshot {
    CounterSnapshot {
        vals: Opcode::ALL.map(|op| ctx.counters().get(op)),
    }
}

impl CounterSnapshot {
    /// Per-opcode difference `now - self` (saturating).
    fn delta_to(&self, ctx: &SveCtx) -> [u64; Opcode::COUNT] {
        let mut out = [0u64; Opcode::COUNT];
        for op in Opcode::ALL {
            out[op as usize] = ctx
                .counters()
                .get(op)
                .saturating_sub(self.vals[op as usize]);
        }
        out
    }
}

/// One open region on a thread's stack.
struct Frame {
    path: String,
    start: Instant,
    /// Wall time of already-finished direct children.
    child_ns: u64,
    /// Inclusive instruction deltas of already-finished children (subtracted
    /// from this frame's own delta so registry counts are exclusive).
    child_insts: [u64; Opcode::COUNT],
    /// Instruction deltas attributed to this frame so far (manual adds).
    own_insts: [u64; Opcode::COUNT],
    flops: u64,
    sites: u64,
    bytes_read: u64,
    bytes_written: u64,
    wire_bytes: u64,
    predicted_insts: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn registry() -> &'static Mutex<BTreeMap<String, RegionStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, RegionStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A completed-span event for Chrome `trace_event` export.
pub(crate) struct TraceEvent {
    pub path: String,
    pub start_us: u64,
    pub dur_us: u64,
    pub tid: u64,
}

/// Trace-event log, bounded so long solver runs cannot grow without limit.
pub(crate) fn trace_log() -> &'static Mutex<Vec<TraceEvent>> {
    static LOG: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Hard cap on retained trace events; later events are dropped, not rotated,
/// so the retained prefix stays a faithful start-of-run timeline.
pub(crate) const TRACE_EVENT_CAP: usize = 100_000;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_names() -> &'static Mutex<BTreeMap<u64, String>> {
    static NAMES: OnceLock<Mutex<BTreeMap<u64, String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        // Registering the thread's name at ordinal assignment guarantees
        // every tid that ever appears in the trace log has a name.
        static ORDINAL: u64 = {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{n}"));
            thread_names().lock().unwrap().insert(n, name);
            n
        };
    }
    ORDINAL.with(|t| *t)
}

/// Names of every thread that has closed a span, keyed by the `tid` used in
/// the trace log. Unnamed threads get `thread-<ordinal>`. Survives
/// [`reset`] — ordinals are process-lifetime identities.
pub fn thread_name_map() -> BTreeMap<u64, String> {
    thread_names().lock().unwrap().clone()
}

/// A completed span as seen by the registered observer: the full region
/// path, its inclusive wall time, and the closing thread's trace ordinal.
#[derive(Clone, Debug)]
pub struct SpanClose {
    /// Full `/`-joined region path.
    pub path: String,
    /// Inclusive wall time of the span.
    pub wall_ns: u64,
    /// Trace-log thread ordinal (see [`thread_name_map`]).
    pub tid: u64,
}

/// Observer callback type: called after every span close, outside all
/// internal locks. The callback must not open spans.
pub type SpanObserver = Arc<dyn Fn(&SpanClose) + Send + Sync>;

static OBSERVER_ACTIVE: AtomicBool = AtomicBool::new(false);

fn observer_slot() -> &'static Mutex<Option<SpanObserver>> {
    static OBSERVER: OnceLock<Mutex<Option<SpanObserver>>> = OnceLock::new();
    OBSERVER.get_or_init(|| Mutex::new(None))
}

/// Install (or with `None`, remove) the global span observer. The fast path
/// of a span close checks one relaxed atomic, so an uninstalled observer
/// costs nothing measurable.
pub fn set_span_observer(observer: Option<SpanObserver>) {
    let mut slot = observer_slot().lock().unwrap();
    OBSERVER_ACTIVE.store(observer.is_some(), Ordering::Release);
    *slot = observer;
}

fn notify_observer(close: &SpanClose) {
    if !OBSERVER_ACTIVE.load(Ordering::Acquire) {
        return;
    }
    // Clone the Arc under the lock, call outside it, so a slow observer
    // never blocks installation/removal from other threads.
    let observer = observer_slot().lock().unwrap().clone();
    if let Some(observer) = observer {
        observer(close);
    }
}

/// An open profiling region. Created by [`crate::span!`] or
/// [`SpanGuard::enter`]; folds its measurements into the global registry when
/// dropped or [`finish`](SpanGuard::finish)ed.
#[must_use = "a span measures nothing unless it is held"]
pub struct SpanGuard<'a> {
    /// Index of this guard's frame in the thread-local stack; used to detect
    /// out-of-order drops (which would corrupt parent/child attribution).
    depth: usize,
    ctx: Option<&'a SveCtx>,
    baseline: Option<CounterSnapshot>,
    done: bool,
}

impl<'a> SpanGuard<'a> {
    /// Open a region named `name` nested under the innermost open region on
    /// this thread (if any). With `Some(ctx)`, the guard snapshots the
    /// context's instruction counters and attributes the delta to the region
    /// when it closes.
    pub fn enter(name: &str, ctx: Option<&'a SveCtx>) -> SpanGuard<'a> {
        let depth = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_string(),
            };
            stack.push(Frame {
                path,
                start: Instant::now(),
                child_ns: 0,
                child_insts: [0; Opcode::COUNT],
                own_insts: [0; Opcode::COUNT],
                flops: 0,
                sites: 0,
                bytes_read: 0,
                bytes_written: 0,
                wire_bytes: 0,
                predicted_insts: 0,
            });
            stack.len() - 1
        });
        // Touch the epoch so trace timestamps are monotone from first span.
        epoch();
        SpanGuard {
            depth,
            ctx,
            baseline: ctx.map(snapshot_counters),
            done: false,
        }
    }

    /// Attribute `now - base` of `ctx`'s counters to this span. For call
    /// sites that cannot keep `&SveCtx` borrowed across the measured call.
    pub fn add_counters_since(&mut self, ctx: &SveCtx, base: &CounterSnapshot) {
        let delta = base.delta_to(ctx);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = &mut stack[self.depth];
            for (acc, v) in frame.own_insts.iter_mut().zip(delta.iter()) {
                *acc += v;
            }
        });
    }

    /// Close the span and return a per-invocation summary (race-free: built
    /// from this frame alone, not the shared registry).
    pub fn finish(mut self) -> RegionSummary {
        self.complete()
    }

    fn complete(&mut self) -> RegionSummary {
        self.done = true;
        let ctx_delta = self
            .ctx
            .and_then(|ctx| self.baseline.as_ref().map(|base| base.delta_to(ctx)));
        let (summary, close) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            assert_eq!(
                stack.len(),
                self.depth + 1,
                "span closed out of order: `{}` is not the innermost open region",
                stack[self.depth].path
            );
            let frame = stack.pop().expect("span stack underflow");
            let wall_ns = frame.start.elapsed().as_nanos() as u64;

            // Inclusive delta for this frame: manual adds plus the ctx
            // baseline delta (which itself includes any child activity).
            let mut inclusive = frame.own_insts;
            if let Some(delta) = &ctx_delta {
                for (acc, v) in inclusive.iter_mut().zip(delta.iter()) {
                    *acc += v;
                }
            }
            // Exclusive = inclusive minus what finished children claimed.
            let mut exclusive = inclusive;
            for (acc, v) in exclusive.iter_mut().zip(frame.child_insts.iter()) {
                *acc = acc.saturating_sub(*v);
            }

            let summary = RegionSummary {
                path: frame.path.clone(),
                wall_ns,
                child_ns: frame.child_ns,
                insts: exclusive.iter().sum(),
                fcmla_insts: exclusive[Opcode::Fcmla as usize],
                flops: frame.flops,
                sites: frame.sites,
                bytes_read: frame.bytes_read,
                bytes_written: frame.bytes_written,
                wire_bytes: frame.wire_bytes,
            };

            // Propagate to the parent frame before taking the global lock.
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += wall_ns;
                for (acc, v) in parent.child_insts.iter_mut().zip(inclusive.iter()) {
                    *acc += v;
                }
            }

            let contribution = RegionStat {
                count: 1,
                wall_ns,
                child_ns: frame.child_ns,
                insts: exclusive,
                flops: frame.flops,
                sites: frame.sites,
                bytes_read: frame.bytes_read,
                bytes_written: frame.bytes_written,
                wire_bytes: frame.wire_bytes,
                predicted_insts: frame.predicted_insts,
            };
            registry()
                .lock()
                .unwrap()
                .entry(frame.path.clone())
                .or_default()
                .merge(&contribution);

            let start_us = frame.start.saturating_duration_since(epoch()).as_micros() as u64;
            let tid = thread_ordinal();
            {
                let mut log = trace_log().lock().unwrap();
                if log.len() < TRACE_EVENT_CAP {
                    log.push(TraceEvent {
                        path: frame.path.clone(),
                        start_us,
                        dur_us: wall_ns / 1_000,
                        tid,
                    });
                }
            }

            let close = SpanClose {
                path: frame.path,
                wall_ns,
                tid,
            };
            (summary, close)
        });
        // Outside the thread-local borrow and all internal locks.
        notify_observer(&close);
        summary
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.complete();
        }
    }
}

fn with_innermost(f: impl FnOnce(&mut Frame)) {
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            f(frame);
        }
    });
}

/// Credit `n` floating-point operations to the innermost open region on this
/// thread. No-op outside any span.
pub fn record_flops(n: u64) {
    with_innermost(|frame| frame.flops += n);
}

/// Credit `n` processed lattice sites to the innermost open region.
pub fn record_sites(n: u64) {
    with_innermost(|frame| frame.sites += n);
}

/// Credit field-storage traffic to the innermost open region.
pub fn record_bytes(read: u64, written: u64) {
    with_innermost(|frame| {
        frame.bytes_read += read;
        frame.bytes_written += written;
    });
}

/// Credit post-compression wire traffic to the innermost open region.
pub fn record_wire_bytes(n: u64) {
    with_innermost(|frame| frame.wire_bytes += n);
}

/// Credit `n` paper-predicted instructions to the innermost open region
/// (accumulates, like the measured counters).
pub fn record_predicted_insts(n: u64) {
    with_innermost(|frame| frame.predicted_insts += n);
}

/// Copy the global registry.
pub fn snapshot() -> Snapshot {
    Snapshot {
        regions: registry().lock().unwrap().clone(),
    }
}

/// Clear the global registry and the trace-event log. Open spans are
/// unaffected: they fold into the cleared registry when they close.
pub fn reset() {
    registry().lock().unwrap().clear();
    trace_log().lock().unwrap().clear();
}
