//! `qcd-trace`: hierarchical region profiling for the lattice QCD stack.
//!
//! The paper this repository reproduces (*SVE-Enabling Lattice QCD Codes*,
//! CLUSTER 2018) argues about kernels in three currencies at once: wall
//! time, per-opcode SVE instruction counts (its Tables/Listings IV-A..IV-D),
//! and derived roofline quantities (flops, bytes, arithmetic intensity).
//! This crate makes all three observable from one instrument:
//!
//! ```
//! use qcd_trace::span;
//! use sve::{SveCtx, VectorLength};
//!
//! qcd_trace::reset();
//! let ctx = SveCtx::new(VectorLength::new(512).unwrap());
//! {
//!     let _outer = span!("dirac.hop");
//!     let _inner = span!("dirac.hop.site", &ctx); // counts ctx instructions
//!     qcd_trace::record_flops(1320);
//!     qcd_trace::record_sites(1);
//! }
//! let snap = qcd_trace::snapshot();
//! assert_eq!(snap.region("dirac.hop/dirac.hop.site").unwrap().flops, 1320);
//! ```
//!
//! # Model
//!
//! - A [`span!`] opens a region on the current thread's frame stack; nesting
//!   is lexical per thread, and paths join with `/`.
//! - Passing an [`sve::SveCtx`] attributes the delta of its per-opcode
//!   [`sve::Counters`] to the region — *exclusively*: a child span
//!   with the same context claims its own delta and the parent reports the
//!   remainder.
//! - Free functions ([`record_flops`], [`record_sites`], [`record_bytes`],
//!   [`record_wire_bytes`], [`record_predicted_insts`]) credit quantities to
//!   the innermost open region.
//! - Closed spans merge into a process-global registry; [`snapshot`] copies
//!   it, [`reset`] clears it. [`SpanGuard::finish`] additionally returns a
//!   race-free per-invocation [`RegionSummary`] (used by solver reports).
//!
//! # Export
//!
//! [`render_table`] prints an aligned profile with derived metrics
//! (self time, arithmetic intensity, percent of the paper-predicted
//! instruction count, cycle estimates under every [`sve::CostModel`]).
//! [`to_json_lines`] emits one self-describing JSON object per region.
//! [`Snapshot::to_json`] / [`Snapshot::from_json`] round-trip the
//! `qcd-trace/v1` schema (documented on [`Snapshot::to_json`]) — CI validates
//! emitted profiles by parsing them back. [`to_chrome_trace`] dumps the span
//! timeline for `chrome://tracing` / Perfetto.

#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod region;
pub mod span;

pub use export::{render_table, to_chrome_trace, to_json_lines};
pub use json::{Json, JsonError};
pub use region::{RegionStat, RegionSummary, Snapshot, SCHEMA};
pub use span::{
    record_bytes, record_flops, record_predicted_insts, record_sites, record_wire_bytes, reset,
    set_span_observer, snapshot, snapshot_counters, thread_name_map, CounterSnapshot, SpanClose,
    SpanGuard, SpanObserver,
};

/// Open a profiling region for the enclosing scope.
///
/// `span!("name")` times the region; `span!("name", &ctx)` additionally
/// attributes the `SveCtx` instruction-counter delta to it. Bind the result
/// (`let _span = span!(...)`) — an unbound guard drops immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::core::option::Option::None)
    };
    ($name:expr, $ctx:expr) => {
        $crate::SpanGuard::enter($name, ::core::option::Option::Some($ctx))
    };
}
