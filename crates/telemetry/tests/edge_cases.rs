//! Edge cases of the `qcd-trace` registry and exporters: empty snapshots,
//! same-name nesting, snapshots taken while spans are still open, and the
//! Chrome-trace metadata contract.
//!
//! The registry is process-global, so every test takes [`registry_lock`]
//! before touching it.

use qcd_trace::{span, Json, Snapshot};

/// Serialise tests that reset or read the process-global registry.
fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn empty_snapshot_round_trips_through_json() {
    let empty = Snapshot::default();
    let doc = empty.to_json();
    let rendered = doc.render();
    let parsed = Json::parse(&rendered).expect("empty snapshot renders valid JSON");
    let back = Snapshot::from_json(&parsed).expect("empty snapshot parses back");
    assert!(back.regions.is_empty());
    // The line-oriented exporter agrees: zero regions, zero lines.
    assert_eq!(qcd_trace::to_json_lines(&empty), "");
}

#[test]
fn an_empty_registry_snapshot_is_empty() {
    let _guard = registry_lock();
    qcd_trace::reset();
    assert!(qcd_trace::snapshot().regions.is_empty());
}

#[test]
fn nested_same_name_regions_stay_distinct_paths() {
    let _guard = registry_lock();
    qcd_trace::reset();
    {
        let _outer = span!("same");
        {
            let _inner = span!("same");
        }
        {
            let _inner = span!("same");
        }
    }
    let snap = qcd_trace::snapshot();
    // Self-nesting must not fold the child into the parent: the paths are
    // `same` (count 1) and `same/same` (count 2, merged across both opens).
    let outer = snap.region("same").expect("outer region");
    let inner = snap.region("same/same").expect("inner region");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 2);
    assert!(snap.region("same/same/same").is_none());
    // Exclusive wall-time attribution survives the name collision.
    assert!(outer.child_ns <= outer.wall_ns);
    assert_eq!(outer.child_ns, inner.wall_ns);
    assert_eq!(snap.children("same"), vec![("same/same", inner)]);
}

#[test]
fn snapshot_taken_with_open_spans_omits_them_until_close() {
    let _guard = registry_lock();
    qcd_trace::reset();
    let open = span!("still_open");
    {
        let _done = span!("already_closed");
    }
    let mid = qcd_trace::snapshot();
    // Only the closed child is in the registry — and under its full path,
    // proving the open parent still shapes attribution.
    assert!(mid.region("still_open").is_none());
    assert!(mid.region("still_open/already_closed").is_some());
    drop(open);
    let after = qcd_trace::snapshot();
    let outer = after.region("still_open").expect("closed span registered");
    assert_eq!(outer.count, 1);
    // The mid-flight snapshot was a copy: closing the span later must not
    // have mutated it retroactively.
    assert!(mid.region("still_open").is_none());
}

#[test]
fn chrome_trace_names_the_process_and_every_span_thread() {
    let _guard = registry_lock();
    qcd_trace::reset();
    {
        let _a = span!("chrome_meta_main");
    }
    std::thread::Builder::new()
        .name("chrome-meta-worker".into())
        .spawn(|| {
            let _b = span!("chrome_meta_worker");
        })
        .unwrap()
        .join()
        .unwrap();
    let doc = Json::parse(&qcd_trace::to_chrome_trace()).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).map(str::to_string);
    // Exactly one process_name metadata record.
    let process_names: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .collect();
    assert_eq!(process_names.len(), 1);
    assert_eq!(ph(process_names[0]).as_deref(), Some("M"));
    // Every complete event's tid is covered by a thread_name record whose
    // args carry the registered thread name.
    let named_tids: Vec<f64> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| e.get("tid").and_then(Json::as_f64).expect("tid"))
        .collect();
    let x_events: Vec<&Json> = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("X"))
        .collect();
    assert!(!x_events.is_empty(), "expected complete events in the log");
    for e in &x_events {
        let tid = e.get("tid").and_then(Json::as_f64).expect("X event tid");
        assert!(
            named_tids.contains(&tid),
            "X event tid {tid} has no thread_name metadata"
        );
    }
    // The spawned worker's chosen name made it into the metadata.
    let names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .expect("thread_name args.name")
                .to_string()
        })
        .collect();
    assert!(
        names.iter().any(|n| n == "chrome-meta-worker"),
        "worker thread name missing from metadata: {names:?}"
    );
    // Round-trip: the rendered document re-parses identically.
    let rendered = doc.render();
    assert_eq!(Json::parse(&rendered).unwrap(), doc);
}
