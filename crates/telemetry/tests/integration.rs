//! End-to-end tests of the span machinery against a real `SveCtx`:
//! exclusive nested attribution, hand-counted ACLE kernel deltas,
//! thread-merge determinism under the rayon worker pool, and
//! snapshot/reset isolation.
//!
//! The registry is process-global, so every test takes [`registry_lock`]
//! before touching it.

use qcd_trace::span;
use sve::{Opcode, SveCtx, VectorLength};

/// Serialise tests that reset or read the process-global registry.
fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn ctx512() -> SveCtx {
    SveCtx::new(VectorLength::new(512).unwrap())
}

/// Run the paper's fixed-length FCMLA kernel once: exactly 7 instructions
/// (ptrue + 2 ld1d + dup + 2 fcmla + st1d) against one vector of data.
fn run_fixed_kernel(ctx: &SveCtx) {
    let lanes = ctx.vl().lanes64();
    let x: Vec<f64> = (0..lanes).map(|i| i as f64 * 0.5 - 1.0).collect();
    let y: Vec<f64> = (0..lanes).map(|i| 2.0 - i as f64 * 0.25).collect();
    let mut z = vec![0.0; lanes];
    sve::acle::mult_cplx_acle_fixed(ctx, &x, &y, &mut z);
}

#[test]
fn nested_spans_attribute_instructions_exclusively() {
    let _guard = registry_lock();
    qcd_trace::reset();
    let ctx = ctx512();
    {
        let _outer = span!("nest_outer", &ctx);
        run_fixed_kernel(&ctx); // 7 instructions before the child opens
        {
            let _inner = span!("nest_inner", &ctx);
            run_fixed_kernel(&ctx);
            run_fixed_kernel(&ctx); // child claims 14
        }
        run_fixed_kernel(&ctx); // 7 more after the child closes
    }
    let snap = qcd_trace::snapshot();
    let outer = snap.region("nest_outer").unwrap();
    let inner = snap.region("nest_outer/nest_inner").unwrap();
    // The child's 14 instructions appear once — in the child — and the
    // parent keeps only the instructions issued outside the child.
    assert_eq!(inner.total_insts(), 14);
    assert_eq!(inner.insts_for(Opcode::Fcmla), 4);
    assert_eq!(outer.total_insts(), 14);
    assert_eq!(outer.insts_for(Opcode::Fcmla), 4);
    // Wall-time attribution is consistent too.
    assert!(outer.child_ns <= outer.wall_ns);
    assert_eq!(outer.child_ns, inner.wall_ns);
}

#[test]
fn counter_delta_matches_hand_counted_acle_kernel() {
    let _guard = registry_lock();
    qcd_trace::reset();
    let ctx = ctx512();
    // Dirty the counters before the span: the span must report the delta,
    // not the absolute values.
    run_fixed_kernel(&ctx);
    let summary = {
        let span = span!("hand_count", &ctx);
        run_fixed_kernel(&ctx);
        span.finish()
    };
    let snap = qcd_trace::snapshot();
    let stat = snap.region("hand_count").unwrap();
    // Listing IV-D by hand: 1 ptrue + 2 ld1d + 1 dup + 2 fcmla + 1 st1d.
    for (op, n) in [
        (Opcode::Ptrue, 1),
        (Opcode::Ld1, 2),
        (Opcode::Dup, 1),
        (Opcode::Fcmla, 2),
        (Opcode::St1, 1),
    ] {
        assert_eq!(stat.insts_for(op), n, "opcode {}", op.mnemonic());
    }
    assert_eq!(stat.total_insts(), 7);
    // The per-invocation summary agrees with the registry.
    assert_eq!(summary.insts, 7);
    assert_eq!(summary.fcmla_insts, 2);
}

#[test]
fn thread_merge_is_deterministic_under_rayon() {
    use rayon::prelude::*;
    let _guard = registry_lock();

    let run_once = || {
        qcd_trace::reset();
        let mut data = vec![0u64; 96];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            // Each worker thread opens its own root-level span; per-chunk
            // contributions merge into one region when the spans close.
            let ctx = ctx512();
            let _span = span!("rayon_chunk", &ctx);
            run_fixed_kernel(&ctx);
            qcd_trace::record_flops(10 + i as u64);
            for v in chunk.iter_mut() {
                *v = i as u64;
            }
        });
        qcd_trace::snapshot()
    };

    let a = run_once();
    let b = run_once();
    for snap in [&a, &b] {
        let stat = snap.region("rayon_chunk").unwrap();
        assert_eq!(stat.count, 12, "one span per chunk");
        assert_eq!(stat.total_insts(), 12 * 7);
        assert_eq!(stat.insts_for(Opcode::Fcmla), 12 * 2);
        assert_eq!(stat.flops, (0..12).map(|i| 10 + i).sum::<u64>());
    }
    // Everything except wall time is schedule-independent; two runs agree
    // exactly.
    let (sa, sb) = (
        a.region("rayon_chunk").unwrap(),
        b.region("rayon_chunk").unwrap(),
    );
    assert_eq!(sa.insts, sb.insts);
    assert_eq!(
        (sa.count, sa.flops, sa.sites),
        (sb.count, sb.flops, sb.sites)
    );
}

#[test]
fn snapshot_and_reset_isolate_runs() {
    let _guard = registry_lock();
    qcd_trace::reset();
    {
        let _a = span!("iso_a");
        qcd_trace::record_sites(3);
    }
    let first = qcd_trace::snapshot();
    assert_eq!(first.region("iso_a").unwrap().sites, 3);

    qcd_trace::reset();
    assert!(qcd_trace::snapshot().regions.is_empty());
    // The earlier snapshot is a copy, untouched by the reset.
    assert_eq!(first.region("iso_a").unwrap().sites, 3);

    {
        let _b = span!("iso_b");
    }
    let second = qcd_trace::snapshot();
    assert!(second.region("iso_a").is_none());
    assert_eq!(second.region("iso_b").unwrap().count, 1);

    // Repeating a region after reset starts its accumulation from zero.
    {
        let _a = span!("iso_a");
        qcd_trace::record_sites(1);
    }
    assert_eq!(qcd_trace::snapshot().region("iso_a").unwrap().sites, 1);
}
