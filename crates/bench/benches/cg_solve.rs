//! Criterion benches of the solvers — "a significant fraction of
//! time-to-solution of LQCD applications" (paper, Section II-A) — and the
//! BLAS-1 field primitives they are built from.

use bench::wilson_setup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid::prelude::*;

fn bench_solvers(c: &mut Criterion) {
    let dims = [4, 4, 4, 4];
    let mut group = c.benchmark_group("solvers_4x4x4x4");
    group.sample_size(10);
    {
        let vl = VectorLength::of(512);
        let (op, b_field) = wilson_setup(dims, vl, SimdBackend::Fcmla);
        group.bench_with_input(BenchmarkId::new("cg_normal_eqs", vl), &vl, |bch, _| {
            bch.iter(|| cg(&op, &b_field, 1e-6, 500))
        });
        group.bench_with_input(BenchmarkId::new("bicgstab", vl), &vl, |bch, _| {
            bch.iter(|| bicgstab(&op, &b_field, 1e-6, 500))
        });
        group.bench_with_input(BenchmarkId::new("even_odd_schur", vl), &vl, |bch, _| {
            bch.iter(|| solve_eo(&op, &b_field, 1e-6, 500))
        });
        group.bench_with_input(BenchmarkId::new("mixed_precision", vl), &vl, |bch, _| {
            bch.iter(|| mixed_precision_solve(&op, &b_field, 1e-6, 1e-4, 10, 500))
        });
    }
    group.finish();
}

fn bench_field_primitives(c: &mut Criterion) {
    let g = Grid::new([4, 4, 4, 8], VectorLength::of(512), SimdBackend::Fcmla);
    let x = FermionField::random(g.clone(), 1);
    let y = FermionField::random(g.clone(), 2);
    let mut z = FermionField::zero(g.clone());
    let mut group = c.benchmark_group("field_blas1_vl512");
    group.bench_function("axpy", |b| b.iter(|| z.axpy(0.5, &x, &y)));
    group.bench_function("inner_product", |b| b.iter(|| x.inner(&y)));
    group.bench_function("norm2", |b| b.iter(|| x.norm2()));
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_field_primitives);
criterion_main!(benches);
