//! Criterion benches of the Section V-C functor layer: `MultComplex` (and
//! friends) per SIMD word, for each complex-arithmetic backend and vector
//! length — the Section V-E ablation as a wall-clock series.

use bench::{bench_vls, interleaved};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grid::simd::functors::{Conj, MultComplex, TimesI, UnaryWordFunctor, WordFunctor};
use grid::simd::{SimdBackend, SimdEngine};
use std::sync::Arc;
use sve::SveCtx;

fn bench_mult_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("mult_complex_word");
    for vl in bench_vls() {
        for backend in SimdBackend::all() {
            let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), backend);
            let x = interleaved(vl.lanes64(), 0.2);
            let y = interleaved(vl.lanes64(), 0.8);
            let mut out = vec![0.0; vl.lanes64()];
            group.throughput(Throughput::Elements((vl.lanes64() / 2) as u64));
            group.bench_with_input(BenchmarkId::new(backend.name(), vl), &vl, |b, _| {
                b.iter(|| MultComplex.apply(&eng, &x, &y, &mut out))
            });
        }
    }
    group.finish();
}

fn bench_unary_functors(c: &mut Criterion) {
    let vl = sve::VectorLength::of(512);
    let mut group = c.benchmark_group("unary_functors_vl512");
    for backend in SimdBackend::all() {
        let eng = SimdEngine::new(Arc::new(SveCtx::new(vl)), backend);
        let x = interleaved(vl.lanes64(), 0.4);
        let mut out = vec![0.0; vl.lanes64()];
        group.bench_function(format!("times_i/{}", backend.name()), |b| {
            b.iter(|| TimesI.apply(&eng, &x, &mut out))
        });
        group.bench_function(format!("conj/{}", backend.name()), |b| {
            b.iter(|| Conj.apply(&eng, &x, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mult_complex, bench_unary_functors);
criterion_main!(benches);
