//! Criterion benches of the Wilson hopping term — the paper's key
//! computational pattern — across backends and vector lengths, plus the
//! γ5 and gauge-multiply building blocks.

use bench::{bench_vls, wilson_setup, BENCH_LATTICE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grid::dirac::{gamma5, hopping_via_cshift};
use grid::prelude::*;

fn bench_hopping(c: &mut Criterion) {
    let sites: usize = BENCH_LATTICE.iter().product();
    let mut group = c.benchmark_group("wilson_hopping");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sites as u64));
    for vl in bench_vls() {
        for backend in SimdBackend::all() {
            let (op, b_field) = wilson_setup(BENCH_LATTICE, vl, backend);
            group.bench_with_input(BenchmarkId::new(backend.name(), vl), &vl, |bch, _| {
                bch.iter(|| op.hopping(&b_field))
            });
        }
    }
    group.finish();
}

fn bench_formulations(c: &mut Criterion) {
    // Fused stencil kernel vs whole-field cshift composition: the fusion
    // ablation (Grid fuses; naive implementations don't).
    let vl = VectorLength::of(512);
    let g = Grid::new(BENCH_LATTICE, vl, SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 1001);
    let psi = FermionField::random(g.clone(), 1002);
    let op = WilsonDirac::new(u.clone(), 0.25);
    let mut group = c.benchmark_group("hopping_formulations_vl512");
    group.sample_size(10);
    group.bench_function("fused_stencil", |b| b.iter(|| op.hopping(&psi)));
    group.bench_function("cshift_composition", |b| {
        b.iter(|| hopping_via_cshift(&u, &psi))
    });
    group.finish();
}

fn bench_building_blocks(c: &mut Criterion) {
    let vl = VectorLength::of(512);
    let (op, psi) = wilson_setup(BENCH_LATTICE, vl, SimdBackend::Fcmla);
    let mut group = c.benchmark_group("operator_blocks_vl512");
    group.sample_size(10);
    group.bench_function("full_wilson_m", |b| b.iter(|| op.apply(&psi)));
    group.bench_function("mdag_m", |b| b.iter(|| op.mdag_m(&psi)));
    group.bench_function("gamma5", |b| b.iter(|| gamma5(&psi)));
    group.finish();
}

criterion_group!(
    benches,
    bench_hopping,
    bench_formulations,
    bench_building_blocks
);
criterion_main!(benches);
