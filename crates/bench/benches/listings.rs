//! Criterion benches of the paper's four Section IV listings under the
//! emulator, across vector lengths. Wall time here measures the functional
//! simulation, so absolute numbers are not silicon performance — the
//! meaningful series (matching the paper's argument) is the *relative* cost
//! per listing and its scaling with vector length, which tracks the dynamic
//! instruction count.

use armie::listings;
use bench::{bench_vls, interleaved};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sve::SveCtx;

fn bench_listings(c: &mut Criterion) {
    let n = 64; // complex elements
    let x = interleaved(2 * n, 0.0);
    let y = interleaved(2 * n, 1.0);

    let mut group = c.benchmark_group("listings");
    group.throughput(Throughput::Elements(n as u64));
    for vl in bench_vls() {
        group.bench_with_input(BenchmarkId::new("IV-A_real_vla", vl), &vl, |b, &vl| {
            b.iter(|| listings::run_mult_real(SveCtx::new(vl), &x, &y))
        });
        group.bench_with_input(BenchmarkId::new("IV-B_cplx_autovec", vl), &vl, |b, &vl| {
            b.iter(|| listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y))
        });
        group.bench_with_input(
            BenchmarkId::new("IV-C_cplx_fcmla_vla", vl),
            &vl,
            |b, &vl| b.iter(|| listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y)),
        );
        group.bench_with_input(
            BenchmarkId::new("IV-D_cplx_fcmla_fixed", vl),
            &vl,
            |b, &vl| {
                let lanes = vl.lanes64();
                b.iter(|| {
                    listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x[..lanes], &y[..lanes])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_listings);
criterion_main!(benches);
