//! Criterion benches of the data-movement layer: `cshift` (the lane-permute
//! machinery of the virtual-node layout) and the halo-exchange codec with
//! and without binary16 compression (paper, Section V-B).

use bench::BENCH_LATTICE;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid::comms::{Compression, HaloMsg};
use grid::prelude::*;

fn bench_cshift(c: &mut Criterion) {
    let mut group = c.benchmark_group("cshift");
    group.sample_size(10);
    for vl in [
        VectorLength::of(128),
        VectorLength::of(512),
        VectorLength::of(2048),
    ] {
        let g = Grid::new(BENCH_LATTICE, vl, SimdBackend::Fcmla);
        let f = FermionField::random(g.clone(), 7);
        // mu = 0 rarely permutes; mu = 3 is the most-split dimension.
        group.bench_with_input(BenchmarkId::new("mu0", vl), &vl, |b, _| {
            b.iter(|| cshift(&f, 0, 1))
        });
        group.bench_with_input(BenchmarkId::new("mu3", vl), &vl, |b, _| {
            b.iter(|| cshift(&f, 3, 1))
        });
    }
    group.finish();
}

fn bench_halo_codec(c: &mut Criterion) {
    // One time-slice of a fermion field on a 16^3 boundary.
    let data: Vec<f64> = (0..16 * 16 * 16 * 24)
        .map(|i| (i as f64 * 0.173).sin())
        .collect();
    let mut group = c.benchmark_group("halo_codec");
    group.bench_function("encode_f64", |b| {
        b.iter(|| HaloMsg::encode(&data, Compression::None))
    });
    group.bench_function("encode_f16", |b| {
        b.iter(|| HaloMsg::encode(&data, Compression::F16))
    });
    let f16 = HaloMsg::encode(&data, Compression::F16);
    group.bench_function("decode_f16", |b| b.iter(|| f16.decode()));
    group.finish();
}

fn bench_multinode_hopping(c: &mut Criterion) {
    let global = [4, 4, 4, 8];
    let vl = VectorLength::of(256);
    let mut group = c.benchmark_group("multinode_hopping_2ranks");
    group.sample_size(10);
    for compression in [Compression::None, Compression::F16] {
        group.bench_function(format!("{compression:?}"), |b| {
            b.iter(|| {
                run_multinode(global, 2, vl, SimdBackend::Fcmla, |ctx| {
                    let u = random_gauge(ctx.grid.clone(), 41);
                    let f = FermionField::random(ctx.grid.clone(), 42);
                    hopping_dist(ctx, &u, &f, compression).norm2()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cshift,
    bench_halo_codec,
    bench_multinode_hopping
);
criterion_main!(benches);
