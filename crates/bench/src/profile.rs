//! Registry-backed profiles behind the `wilson_report` and
//! `table_inst_counts` binaries.
//!
//! Both binaries drive the instrumented library under [`qcd_trace`] spans,
//! snapshot the global registry, print the rendered profile, and can export
//! the snapshot with `--json <path>`. The JSON document is the
//! self-describing `qcd-trace/v1` schema documented on
//! [`qcd_trace::Snapshot::to_json`]; [`write_validated_json`] refuses to
//! write a document that does not parse back into an identical snapshot.

use armie::listings;
use grid::prelude::*;
use grid::Coor;
use sve::SveCtx;

use crate::interleaved;

/// Paper listing IV-D as an intrinsics kernel, minus the final `ret` the
/// emulator executes: ptrue + 2x ld1d + dup + 2x fcmla + st1d.
pub const FIXED_KERNEL_PREDICTED_INSTS: u64 = 7;

/// FCMLA instructions per vector in listings IV-C/IV-D: one rotation-90 and
/// one rotation-0 per complex multiply.
pub const FCMLA_PER_VECTOR: u64 = 2;

/// Complex elements the VLA kernels process per profile invocation.
pub const MULT_CPLX_ELEMS: usize = 240;

/// Registry path of the ACLE fixed-length FCMLA complex multiply (the
/// intrinsics form of paper listing IV-D).
pub const MULT_CPLX_FIXED_REGION: &str = "mult_cplx/acle_fixed";

/// Registry path of the ACLE VLA FCMLA complex multiply (listing IV-C).
pub const MULT_CPLX_VLA_REGION: &str = "mult_cplx/acle_vla";

/// Predicted dynamic instruction count of the ACLE VLA kernel (listing
/// IV-C) for `n` complex elements: a `dup` prologue plus, per iteration,
/// scalar bookkeeping + whilelt + 2x ld1d + 2x fcmla + st1d + cntd.
pub fn vla_kernel_predicted_insts(vl: VectorLength, n: usize) -> u64 {
    let iters = (2 * n).div_ceil(vl.lanes64()) as u64;
    1 + 8 * iters
}

/// Registry path of one vector-length x backend combination in the Wilson
/// sweep.
pub fn wilson_region(vl: VectorLength, backend: SimdBackend) -> String {
    format!("wilson/{}@{}b", backend.name(), vl.bits())
}

/// Registry path of the hopping-term span the instrumented Dirac operator
/// opens inside one sweep combination.
pub fn wilson_hop_region(vl: VectorLength, backend: SimdBackend) -> String {
    format!("{}/dirac.hop", wilson_region(vl, backend))
}

/// Registry path of the emulated listing IV-D run inside the `mult_cplx`
/// profile (the emulator names its own span after the program).
pub fn armie_fixed_region() -> String {
    format!(
        "mult_cplx/armie.{}",
        listings::mult_cplx_fcmla_fixed_program().name
    )
}

/// Run the Wilson hopping term at every vector length and backend under
/// profiling spans, plus the FCMLA complex-multiply kernels of paper
/// Sections IV-C/IV-D, and return the registry snapshot.
///
/// Region layout: `wilson/<backend>@<bits>b/dirac.hop` for the sweep, and
/// `mult_cplx/{acle_fixed,acle_vla,armie.<listing IV-D>}` for the kernels.
pub fn build_wilson_profile(dims: Coor) -> qcd_trace::Snapshot {
    qcd_trace::reset();
    {
        let _sweep = qcd_trace::span!("wilson");
        for vl in VectorLength::sweep() {
            for backend in SimdBackend::all() {
                let g = Grid::new(dims, vl, backend);
                let d = WilsonDirac::new(random_gauge(g.clone(), 77), 0.2);
                let psi = FermionField::random(g.clone(), 78);
                let name = format!("{}@{}b", backend.name(), vl.bits());
                let _combo = qcd_trace::SpanGuard::enter(&name, None);
                let _ = d.hopping(&psi);
            }
        }
    }
    profile_mult_cplx();
    qcd_trace::snapshot()
}

/// Profile the FCMLA complex-multiply kernels across the vector-length
/// sweep, recording the paper-predicted instruction counts so
/// `percent_of_predicted` validates the listings (100% = the measured
/// opcode stream matches the paper's).
pub fn profile_mult_cplx() {
    let n = MULT_CPLX_ELEMS;
    let xs = interleaved(2 * n, 0.0);
    let ys = interleaved(2 * n, 1.0);
    let _root = qcd_trace::span!("mult_cplx");
    for vl in VectorLength::sweep() {
        let lanes = vl.lanes64();
        let ctx = SveCtx::new(vl);
        {
            // One vector of interleaved complex data: lanes/2 complex
            // multiplies at 6 flops each; two operand vectors in, one out.
            let mut z = vec![0.0; lanes];
            let _s = qcd_trace::span!("acle_fixed", &ctx);
            qcd_trace::record_predicted_insts(FIXED_KERNEL_PREDICTED_INSTS);
            qcd_trace::record_flops(6 * (lanes as u64 / 2));
            qcd_trace::record_bytes(16 * lanes as u64, 8 * lanes as u64);
            sve::acle::mult_cplx_acle_fixed(&ctx, &xs[..lanes], &ys[..lanes], &mut z);
        }
        {
            let mut z = vec![0.0; 2 * n];
            let _s = qcd_trace::span!("acle_vla", &ctx);
            qcd_trace::record_predicted_insts(vla_kernel_predicted_insts(vl, n));
            qcd_trace::record_flops(6 * n as u64);
            qcd_trace::record_bytes(2 * 16 * n as u64, 16 * n as u64);
            sve::acle::mult_cplx_acle_vla(&ctx, n, &xs, &ys, &mut z);
        }
        // The same IV-D kernel as an emulated binary; the emulator opens
        // its own `armie.<name>` span, which nests under `mult_cplx` here.
        let _ = listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &xs[..lanes], &ys[..lanes]);
    }
}

/// Registry path of one listing run in the Section IV profile.
pub fn listing_region(vl: VectorLength, program_name: &str) -> String {
    format!("listings/{}b/armie.{}", vl.bits(), program_name)
}

/// Run the four Section IV listings at every vector length under profiling
/// spans. Returns the per-run results (for the per-listing table) and the
/// registry snapshot (for export).
#[allow(clippy::type_complexity)]
pub fn build_listings_profile(
    n: usize,
) -> (
    Vec<(VectorLength, Vec<(&'static str, listings::ListingRun)>)>,
    qcd_trace::Snapshot,
) {
    qcd_trace::reset();
    let x = interleaved(2 * n, 0.0);
    let y = interleaved(2 * n, 1.0);
    let mut all = Vec::new();
    {
        let _root = qcd_trace::span!("listings");
        for vl in VectorLength::sweep() {
            let lanes = vl.lanes64();
            let _per_vl = qcd_trace::SpanGuard::enter(&format!("{}b", vl.bits()), None);
            let runs = vec![
                (
                    "IV-A real VLA",
                    listings::run_mult_real(SveCtx::new(vl), &x, &y),
                ),
                (
                    "IV-B cplx autovec",
                    listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y),
                ),
                (
                    "IV-C cplx FCMLA VLA",
                    listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y),
                ),
                (
                    "IV-D cplx FCMLA fixed",
                    listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x[..lanes], &y[..lanes]),
                ),
            ];
            all.push((vl, runs));
        }
    }
    (all, qcd_trace::snapshot())
}

/// Parse `--json <path>` out of a raw argument list. Returns
/// `Ok(Some(path))` when present, `Ok(None)` when absent, and an error for
/// a dangling `--json` or an unrecognised argument.
pub fn parse_json_arg(args: &[String]) -> Result<Option<String>, String> {
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => return Err("--json requires a path argument".into()),
            },
            other => {
                return Err(format!(
                    "unrecognised argument `{other}` (expected --json <path>)"
                ))
            }
        }
    }
    Ok(out)
}

/// Parsed command line of `wilson_report`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReportArgs {
    /// `--json <path>`: export the profile snapshot.
    pub json: Option<String>,
    /// `--checkpoint <path>`: run the interrupted checkpointed solve demo,
    /// leaving a mid-solve snapshot at the path.
    pub checkpoint: Option<String>,
    /// `--resume <path>`: restore a snapshot and finish the solve,
    /// verifying bit-equivalence against the uninterrupted run.
    pub resume: Option<String>,
    /// `--ckpt-every <n>`: checkpoint interval in CG iterations.
    pub every: usize,
    /// `--bench <path>`: run the fused-vs-baseline solver benchmark and
    /// write the `qcd-bench-solver/v1` document to the path.
    pub bench: Option<String>,
    /// `--bench-l <n>`: benchmark lattice extent (an `n⁴` lattice).
    pub bench_l: usize,
    /// `--bench-iters <n>`: timed CG iterations per benchmark leg.
    pub bench_iters: usize,
    /// `--rhs <n>`: benchmark the multi-RHS operator at this batch size
    /// (plus the N=1 baseline) instead of the default N ∈ {1,4,8,16}
    /// sweep.
    pub rhs: Option<usize>,
    /// `--deflate`: with `--bench`, additionally run the low-mode
    /// deflation comparison on a thermalized configuration and export the
    /// gated `deflation` section.
    pub deflate: bool,
    /// `--precision`: with `--bench`, additionally run the f16-inner vs
    /// f32-inner mixed-precision ladder comparison on a thermalized
    /// configuration and export the gated `precision` section.
    pub precision: bool,
    /// `--hmc <path>`: run the HMC ensemble-generation benchmark, enforce
    /// the equilibrium physics gates, and write the `qcd-bench-hmc/v1`
    /// document to the path.
    pub hmc: Option<String>,
    /// `--hmc-l <n>`: HMC lattice extent (an `n⁴` lattice).
    pub hmc_l: usize,
    /// `--hmc-traj <n>`: measured HMC trajectories.
    pub hmc_traj: usize,
    /// `--hmc-therm <n>`: thermalization trajectories discarded first.
    pub hmc_therm: usize,
    /// `--metrics <path>`: dump the `qcd-metrics/v1` JSONL document —
    /// every registered metric, the flight-recorder ring, and (for `--hmc`)
    /// the per-trajectory sampler series — after the run.
    pub metrics: Option<String>,
    /// `--bench-comms <path>`: run the multi-rank strong-scaling sweep,
    /// enforce the wire-byte model and overlap-efficiency gates, and write
    /// the `qcd-bench-comms/v1` document to the path.
    pub bench_comms: Option<String>,
    /// `--comms-rhs <n>`: right-hand sides in the distributed block solve.
    pub comms_rhs: usize,
    /// `--comms-iters <n>`: fixed CG iterations per RHS in the sweep.
    pub comms_iters: usize,
}

/// Parse the `wilson_report` command line: `[--json <path>]
/// [--checkpoint <path>] [--resume <path>] [--ckpt-every <n>]
/// [--bench <path>] [--bench-l <n>] [--bench-iters <n>] [--rhs <n>]
/// [--deflate] [--precision] [--hmc <path>] [--hmc-l <n>]
/// [--hmc-traj <n>] [--hmc-therm <n>] [--bench-comms <path>]
/// [--comms-rhs <n>] [--comms-iters <n>] [--metrics <path>]`.
pub fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut out = ReportArgs {
        every: 5,
        bench_l: 8,
        bench_iters: 10,
        hmc_l: 8,
        hmc_traj: 20,
        hmc_therm: 10,
        comms_rhs: 8,
        comms_iters: 6,
        ..ReportArgs::default()
    };
    fn path_value(it: &mut std::slice::Iter<'_, String>, arg: &str) -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{arg} requires a path argument"))
    }
    fn count_value(it: &mut std::slice::Iter<'_, String>, arg: &str) -> Result<usize, String> {
        let n: usize = it
            .next()
            .ok_or_else(|| format!("{arg} requires a count"))?
            .parse()
            .map_err(|e| format!("{arg}: {e}"))?;
        if n == 0 {
            return Err(format!("{arg} must be positive"));
        }
        Ok(n)
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => out.json = Some(path_value(&mut it, arg)?),
            "--checkpoint" => out.checkpoint = Some(path_value(&mut it, arg)?),
            "--resume" => out.resume = Some(path_value(&mut it, arg)?),
            "--bench" => out.bench = Some(path_value(&mut it, arg)?),
            "--hmc" => out.hmc = Some(path_value(&mut it, arg)?),
            "--bench-comms" => out.bench_comms = Some(path_value(&mut it, arg)?),
            "--metrics" => out.metrics = Some(path_value(&mut it, arg)?),
            "--ckpt-every" => out.every = count_value(&mut it, arg)?,
            "--bench-l" => out.bench_l = count_value(&mut it, arg)?,
            "--bench-iters" => out.bench_iters = count_value(&mut it, arg)?,
            "--rhs" => out.rhs = Some(count_value(&mut it, arg)?),
            "--deflate" => out.deflate = true,
            "--precision" => out.precision = true,
            "--hmc-l" => out.hmc_l = count_value(&mut it, arg)?,
            "--hmc-traj" => out.hmc_traj = count_value(&mut it, arg)?,
            "--hmc-therm" => out.hmc_therm = count_value(&mut it, arg)?,
            "--comms-rhs" => out.comms_rhs = count_value(&mut it, arg)?,
            "--comms-iters" => out.comms_iters = count_value(&mut it, arg)?,
            other => {
                return Err(format!(
                    "unrecognised argument `{other}` (expected --json/--checkpoint/--resume/--bench/--hmc/--bench-comms/--metrics <path>, --ckpt-every/--bench-l/--bench-iters/--rhs/--hmc-l/--hmc-traj/--hmc-therm/--comms-rhs/--comms-iters <n>, --deflate, --precision)"
                ))
            }
        }
    }
    Ok(out)
}

/// Lattice, operator and right-hand side of the checkpoint/resume demo —
/// fixed seeds, so the interrupted and resumed runs are comparable across
/// separate process invocations.
fn checkpoint_demo_problem() -> (WilsonDirac<f64>, FermionField) {
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 77);
    let b = FermionField::random(g.clone(), 78);
    (WilsonDirac::new(u, 0.2), b)
}

/// Iteration budget at which the "interrupted" solve is killed.
pub const CHECKPOINT_DEMO_KILL_AT: usize = 12;
/// Relative tolerance of the demo solve.
pub const CHECKPOINT_DEMO_TOL: f64 = 1e-10;
/// Full iteration budget of the resumed solve.
pub const CHECKPOINT_DEMO_MAX_ITER: usize = 500;

/// Run a checkpointed CG solve on the demo problem and kill it after
/// [`CHECKPOINT_DEMO_KILL_AT`] iterations, leaving the latest snapshot at
/// `path`. Returns `(iterations run, snapshots written, bytes on disk)`.
pub fn write_interrupted_checkpoint(
    path: &str,
    every: usize,
) -> Result<(usize, usize, u64), String> {
    let (op, b) = checkpoint_demo_problem();
    let (_, report, snapshots) = qcd_io::cg_checkpointed(
        |v| op.mdag_m(v),
        &b,
        CHECKPOINT_DEMO_TOL,
        CHECKPOINT_DEMO_KILL_AT,
        every,
        std::path::Path::new(path),
    )
    .map_err(|e| format!("checkpoint demo: {e}"))?;
    if snapshots == 0 {
        return Err(format!(
            "interval {every} wrote no snapshot within {CHECKPOINT_DEMO_KILL_AT} iterations"
        ));
    }
    let bytes = std::fs::metadata(path)
        .map_err(|e| format!("stat {path}: {e}"))?
        .len();
    Ok((report.iterations, snapshots, bytes))
}

/// Resume the demo solve from the snapshot at `path`, run it to
/// convergence, and verify the result is bit-identical to the
/// uninterrupted solve. Returns `(resumed-from iteration, final report)`.
pub fn resume_from_checkpoint(path: &str) -> Result<(usize, SolveReport), String> {
    let (op, b) = checkpoint_demo_problem();
    let apply = |v: &FermionField| op.mdag_m(v);
    let state = qcd_io::load_cg(std::path::Path::new(path), b.grid())
        .map_err(|e| format!("load {path}: {e}"))?;
    let resumed_from = state.iterations;
    let (x, report, _) = qcd_io::checkpoint::cg_checkpointed_from(
        apply,
        &b,
        state,
        CHECKPOINT_DEMO_TOL,
        CHECKPOINT_DEMO_MAX_ITER,
        CHECKPOINT_DEMO_MAX_ITER,
        std::path::Path::new(path),
    )
    .map_err(|e| format!("resume: {e}"))?;

    // Bit-equivalence against the uninterrupted in-process reference.
    let (x_ref, ref_report) = cg_op(apply, &b, CHECKPOINT_DEMO_TOL, CHECKPOINT_DEMO_MAX_ITER);
    if report.residual.to_bits() != ref_report.residual.to_bits()
        || x.max_abs_diff(&x_ref) != 0.0
        || report.iterations != ref_report.iterations
    {
        return Err(format!(
            "resumed solve diverged from the uninterrupted run: {} iters / residual {} vs {} iters / residual {}",
            report.iterations, report.residual, ref_report.iterations, ref_report.residual
        ));
    }
    Ok((resumed_from, report))
}

/// Render `snap` as a `qcd-trace/v1` document, validate it by parsing it
/// back into an identical snapshot, then write it to `path`. An invalid
/// document is an error, not an artifact.
pub fn write_validated_json(snap: &qcd_trace::Snapshot, path: &str) -> Result<(), String> {
    let doc = snap.to_json().render();
    let parsed = qcd_trace::Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    let back = qcd_trace::Snapshot::from_json(&parsed)
        .map_err(|e| format!("emitted JSON fails schema validation: {}", e.msg))?;
    if &back != snap {
        return Err("JSON round-trip did not reproduce the snapshot".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sve::Opcode;

    use crate::registry_lock;

    #[test]
    fn fcmla_regions_match_paper_listings() {
        // ISSUE acceptance: the FCMLA-backend complex-multiply regions must
        // reproduce the instruction counts of paper listings IV-C/IV-D.
        let _guard = registry_lock();
        qcd_trace::reset();
        profile_mult_cplx();
        let snap = qcd_trace::snapshot();

        // Listing IV-D (intrinsics): exactly 7 instructions per invocation
        // — ptrue + 2 ld1d + dup + 2 fcmla + st1d — at every vector length.
        let fixed = snap.region(MULT_CPLX_FIXED_REGION).unwrap();
        assert_eq!(fixed.count, 5, "one invocation per swept vector length");
        assert_eq!(
            fixed.total_insts(),
            fixed.count * FIXED_KERNEL_PREDICTED_INSTS
        );
        assert_eq!(
            fixed.insts_for(Opcode::Fcmla),
            fixed.count * FCMLA_PER_VECTOR
        );
        assert_eq!(fixed.percent_of_predicted(), Some(100.0));

        // Listing IV-C (VLA loop): dup prologue + 7 instructions per
        // iteration, iterations = ceil(2n / lanes) per vector length.
        let vla = snap.region(MULT_CPLX_VLA_REGION).unwrap();
        assert_eq!(vla.percent_of_predicted(), Some(100.0));
        let expected: u64 = VectorLength::sweep()
            .iter()
            .map(|&vl| vla_kernel_predicted_insts(vl, MULT_CPLX_ELEMS))
            .sum();
        assert_eq!(vla.total_insts(), expected);

        // Listing IV-D under the emulator: the same seven instructions plus
        // the `ret` the machine executes, and the same opcode mix.
        let armie = snap.region(&armie_fixed_region()).unwrap();
        assert_eq!(armie.count, 5);
        assert_eq!(
            armie.insts_for(Opcode::Fcmla),
            armie.count * FCMLA_PER_VECTOR
        );
        for (op, per_run) in [
            (Opcode::Ptrue, 1),
            (Opcode::Ld1, 2),
            (Opcode::Dup, 1),
            (Opcode::St1, 1),
        ] {
            assert_eq!(
                armie.insts_for(op),
                armie.count * per_run,
                "listing IV-D opcode mix: {}",
                op.mnemonic()
            );
        }
    }

    #[test]
    fn wilson_profile_nests_and_nested_times_fit_parents() {
        let _guard = registry_lock();
        let snap = build_wilson_profile([4, 4, 4, 4]);

        // Every sweep combination produced an instrumented hopping region
        // with sites/flops accounting attached.
        let sites = 4u64 * 4 * 4 * 4;
        for vl in VectorLength::sweep() {
            for backend in SimdBackend::all() {
                let hop = snap.region(&wilson_hop_region(vl, backend)).unwrap();
                assert_eq!(hop.count, 1);
                assert_eq!(hop.sites, sites);
                assert_eq!(hop.flops, sites * 1320);
                assert!(hop.total_insts() > 0, "{vl} {} counted", backend.name());
            }
        }

        // ISSUE acceptance: nested region times sum to <= the parent time,
        // for every parent in the snapshot.
        for (path, stat) in &snap.regions {
            let child_sum: u64 = snap.children(path).iter().map(|(_, c)| c.wall_ns).sum();
            assert!(
                child_sum <= stat.wall_ns,
                "children of `{path}` ({child_sum} ns) exceed parent ({} ns)",
                stat.wall_ns
            );
            assert!(
                stat.child_ns <= stat.wall_ns,
                "`{path}` self time underflow"
            );
        }

        // The sweep exports cleanly through the schema round-trip.
        let doc = snap.to_json().render();
        let back = qcd_trace::Snapshot::from_json(&qcd_trace::Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn listings_profile_matches_run_reports() {
        let _guard = registry_lock();
        let (all, snap) = build_listings_profile(24);
        // Region totals equal the per-run counter totals the old table used.
        for (vl, runs) in &all {
            for (label, run) in runs {
                let program_name = match *label {
                    "IV-A real VLA" => listings::mult_real_program().name,
                    "IV-B cplx autovec" => listings::mult_cplx_autovec_program().name,
                    "IV-C cplx FCMLA VLA" => listings::mult_cplx_fcmla_vla_program().name,
                    _ => listings::mult_cplx_fcmla_fixed_program().name,
                };
                let stat = snap.region(&listing_region(*vl, &program_name)).unwrap();
                assert_eq!(stat.total_insts(), run.machine.ctx.counters().total());
            }
        }
    }

    #[test]
    fn json_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_json_arg(&args(&[])).unwrap(), None);
        assert_eq!(
            parse_json_arg(&args(&["--json", "out.json"])).unwrap(),
            Some("out.json".into())
        );
        assert!(parse_json_arg(&args(&["--json"])).is_err());
        assert!(parse_json_arg(&args(&["--frobnicate"])).is_err());
    }
}
