//! The ensemble-generation benchmark behind `wilson_report --hmc`.
//!
//! Runs a short pure-gauge HMC chain (cold start → thermalization →
//! measurement window), checks the two equilibrium identities any correct
//! implementation must satisfy — Metropolis acceptance well above half and
//! Creutz's `⟨exp(-ΔH)⟩ = 1` within statistics — and exports the result as
//! a `qcd-bench-hmc/v1` JSON document, validated by a parse-back schema
//! check before anything touches disk. The force throughput number comes
//! from the `hmc.force` trace spans the kernels emit, so the GFLOP/s is
//! measured over the force's own wall time, not the whole trajectory.

use grid::prelude::*;
use grid::Coor;
use qcd_hmc::{HmcParams, IntegratorKind, MarkovChain, FORCE_FLOPS_PER_SITE};
use qcd_trace::Json;
use std::time::Instant;

/// Schema identifier of the exported benchmark document.
pub const HMC_BENCH_SCHEMA: &str = "qcd-bench-hmc/v1";

/// Configuration of one HMC benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcBenchConfig {
    /// Lattice extent (an `l⁴` lattice).
    pub l: usize,
    /// Wilson gauge coupling.
    pub beta: f64,
    /// Trajectories discarded as thermalization.
    pub therm: usize,
    /// Measured trajectories.
    pub traj: usize,
    /// Molecular-dynamics steps per trajectory.
    pub n_steps: usize,
    /// Molecular-dynamics step size.
    pub step_size: f64,
    /// Chain seed.
    pub seed: u64,
}

impl Default for HmcBenchConfig {
    fn default() -> Self {
        HmcBenchConfig {
            l: 8,
            beta: 5.7,
            therm: 10,
            traj: 20,
            n_steps: 10,
            step_size: 0.1,
            seed: 7,
        }
    }
}

/// Results of one HMC benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct HmcBench {
    /// Lattice extents.
    pub dims: Coor,
    /// SVE vector length in bits.
    pub vl_bits: u64,
    /// Complex-arithmetic backend name.
    pub backend: String,
    /// Worker threads the parallel kernels used.
    pub threads: usize,
    /// The configuration that produced this run.
    pub config: HmcBenchConfig,
    /// Wall time of the measurement window.
    pub wall_ns: u64,
    /// Measured trajectories retired per second.
    pub trajectories_per_sec: f64,
    /// Gauge-force throughput over the force spans' own wall time.
    pub force_gflops: f64,
    /// Metropolis acceptance over the measurement window.
    pub acceptance: f64,
    /// `⟨exp(-ΔH)⟩` over the measurement window (1 in equilibrium).
    pub mean_exp_dh: f64,
    /// Standard error of `⟨exp(-ΔH)⟩`.
    pub stderr_exp_dh: f64,
    /// Mean plaquette over the measurement window.
    pub avg_plaquette: f64,
}

/// Run the benchmark chain at 512-bit SVE with the FCMLA backend.
///
/// Resets the global `qcd-trace` registry (the force GFLOP/s comes out of
/// the `hmc.force` spans), so don't interleave with another profile build.
pub fn run_hmc_bench(cfg: HmcBenchConfig) -> Result<HmcBench, String> {
    run_hmc_bench_sampled(cfg, None)
}

/// [`run_hmc_bench`] with an optional [`qcd_metrics::Sampler`] ticked once
/// per measured trajectory, building the metrics time series behind
/// `wilson_report --hmc --metrics`.
pub fn run_hmc_bench_sampled(
    cfg: HmcBenchConfig,
    sampler: Option<&mut qcd_metrics::Sampler>,
) -> Result<HmcBench, String> {
    if cfg.traj == 0 || cfg.n_steps == 0 {
        return Err("--hmc-traj and MD steps must be positive".into());
    }
    if !(cfg.beta.is_finite() && cfg.beta > 0.0 && cfg.step_size > 0.0) {
        return Err(format!(
            "unphysical HMC parameters beta={} eps={}",
            cfg.beta, cfg.step_size
        ));
    }
    let dims: Coor = [cfg.l; 4];
    let vl = VectorLength::of(512);
    let backend = SimdBackend::Fcmla;
    let g = Grid::new(dims, vl, backend);
    let mut chain = MarkovChain::cold_start(
        g,
        HmcParams {
            beta: cfg.beta,
            n_steps: cfg.n_steps,
            step_size: cfg.step_size,
            integrator: IntegratorKind::Omelyan,
        },
        cfg.seed,
    );
    // Thermalization accepts unconditionally — from the cold start the
    // relaxation phase has systematically positive ΔH, and a Metropolis
    // gate would pin the chain at U = 1 forever. The measurement window
    // below is a proper detailed-balance chain.
    chain.thermalize(cfg.therm);

    qcd_trace::reset();
    let t0 = Instant::now();
    let reports = match sampler {
        Some(sampler) => (0..cfg.traj)
            .map(|_| {
                let r = chain.step();
                sampler.tick();
                r
            })
            .collect(),
        None => chain.run(cfg.traj),
    };
    let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let snap = qcd_trace::snapshot();

    // Sum every hmc.force region in the snapshot (they nest under the
    // integrate span, so match by suffix).
    let (force_flops, force_ns) = snap
        .regions
        .iter()
        .filter(|(path, _)| path.ends_with("hmc.force"))
        .fold((0u64, 0u64), |(f, t), (_, stat)| {
            (f + stat.flops, t + stat.wall_ns)
        });
    if force_flops == 0 || force_ns == 0 {
        return Err("no hmc.force spans recorded — trace registry clobbered mid-run".into());
    }
    let expected_flops = (cfg.traj * 3 * cfg.n_steps) as u64
        * dims.iter().product::<usize>() as u64
        * FORCE_FLOPS_PER_SITE;
    if force_flops != expected_flops {
        return Err(format!(
            "force flop accounting drifted: spans say {force_flops}, expected {expected_flops}"
        ));
    }

    let n = reports.len() as f64;
    let exp_dh: Vec<f64> = reports.iter().map(|r| (-r.dh).exp()).collect();
    let mean_exp_dh = exp_dh.iter().sum::<f64>() / n;
    let var = exp_dh
        .iter()
        .map(|e| (e - mean_exp_dh).powi(2))
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    let accepted = reports.iter().filter(|r| r.accepted).count() as f64;

    Ok(HmcBench {
        dims,
        vl_bits: vl.bits() as u64,
        backend: backend.name().to_string(),
        threads: rayon::current_num_threads(),
        config: cfg,
        wall_ns,
        trajectories_per_sec: n / (wall_ns as f64 / 1e9),
        force_gflops: force_flops as f64 / (force_ns as f64 / 1e9) / 1e9,
        acceptance: accepted / n,
        mean_exp_dh,
        stderr_exp_dh: (var / n).sqrt(),
        avg_plaquette: reports.iter().map(|r| r.plaquette).sum::<f64>() / n,
    })
}

/// The physics gate the CI `hmc-smoke` job enforces: acceptance above one
/// half, and Creutz's `⟨exp(-ΔH)⟩ = 1` within 3σ (with a small σ floor so
/// a freakishly quiet chain cannot fail on roundoff).
pub fn check_hmc_physics(b: &HmcBench) -> Result<(), String> {
    if b.acceptance <= 0.5 {
        return Err(format!(
            "Metropolis acceptance {} is not above 0.5 — step size too coarse or force wrong",
            b.acceptance
        ));
    }
    let sigma = b.stderr_exp_dh.max(1e-3);
    let pull = (b.mean_exp_dh - 1.0).abs() / sigma;
    if pull > 3.0 {
        return Err(format!(
            "⟨exp(-ΔH)⟩ = {} ± {} is {pull:.1}σ from 1 — detailed balance violated",
            b.mean_exp_dh, b.stderr_exp_dh
        ));
    }
    if !(0.0..1.0).contains(&b.avg_plaquette) {
        return Err(format!("plaquette {} outside (0, 1)", b.avg_plaquette));
    }
    Ok(())
}

/// Render a benchmark as a `qcd-bench-hmc/v1` document.
pub fn hmc_bench_to_json(b: &HmcBench) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(HMC_BENCH_SCHEMA.into())),
        (
            "lattice".into(),
            Json::Arr(b.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("vl_bits".into(), Json::Num(b.vl_bits as f64)),
        ("backend".into(), Json::Str(b.backend.clone())),
        ("threads".into(), Json::Num(b.threads as f64)),
        ("beta".into(), Json::Num(b.config.beta)),
        ("therm".into(), Json::Num(b.config.therm as f64)),
        ("trajectories".into(), Json::Num(b.config.traj as f64)),
        ("n_steps".into(), Json::Num(b.config.n_steps as f64)),
        ("step_size".into(), Json::Num(b.config.step_size)),
        ("seed".into(), Json::Num(b.config.seed as f64)),
        ("wall_ns".into(), Json::Num(b.wall_ns as f64)),
        (
            "trajectories_per_sec".into(),
            Json::Num(b.trajectories_per_sec),
        ),
        ("force_gflops".into(), Json::Num(b.force_gflops)),
        ("acceptance".into(), Json::Num(b.acceptance)),
        ("mean_exp_dh".into(), Json::Num(b.mean_exp_dh)),
        ("stderr_exp_dh".into(), Json::Num(b.stderr_exp_dh)),
        ("avg_plaquette".into(), Json::Num(b.avg_plaquette)),
    ])
}

/// Validate a parsed document against the `qcd-bench-hmc/v1` schema — the
/// check the CI `hmc-smoke` job runs on the uploaded artifact.
pub fn validate_hmc_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(HMC_BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{HMC_BENCH_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`lattice` must be four positive extents".into());
    }
    for field in ["vl_bits", "threads", "trajectories", "n_steps"] {
        if doc.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
            return Err(format!("`{field}` missing or not a positive integer"));
        }
    }
    if doc.get("therm").and_then(Json::as_u64).is_none() {
        return Err("`therm` missing or not an integer".into());
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing string `backend`".into());
    }
    for field in [
        "beta",
        "step_size",
        "wall_ns",
        "trajectories_per_sec",
        "force_gflops",
        "mean_exp_dh",
    ] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("`{field}` must be positive, got {v}"));
        }
    }
    if doc.get("seed").and_then(Json::as_f64).is_none() {
        return Err("`seed` missing".into());
    }
    if !doc
        .get("stderr_exp_dh")
        .and_then(Json::as_f64)
        .is_some_and(|v| v >= 0.0 && v.is_finite())
    {
        return Err("`stderr_exp_dh` missing or negative".into());
    }
    if !doc
        .get("acceptance")
        .and_then(Json::as_f64)
        .is_some_and(|v| (0.0..=1.0).contains(&v))
    {
        return Err("`acceptance` missing or outside [0, 1]".into());
    }
    if !doc
        .get("avg_plaquette")
        .and_then(Json::as_f64)
        .is_some_and(|v| (0.0..1.0).contains(&v))
    {
        return Err("`avg_plaquette` missing or outside (0, 1)".into());
    }
    Ok(())
}

/// Render, validate by parse-back, and write `BENCH_hmc.json`. An invalid
/// document is an error, not an artifact.
pub fn write_validated_hmc_bench_json(b: &HmcBench, path: &str) -> Result<(), String> {
    let json = hmc_bench_to_json(b);
    let doc = json.render();
    let parsed = Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    validate_hmc_bench_json(&parsed)?;
    if parsed != json {
        return Err("JSON round-trip did not reproduce the benchmark document".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HmcBenchConfig {
        HmcBenchConfig {
            l: 4,
            beta: 5.6,
            therm: 1,
            traj: 3,
            n_steps: 2,
            step_size: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn bench_runs_and_exports_a_valid_document() {
        let _guard = crate::registry_lock();
        let bench = run_hmc_bench(tiny()).unwrap();
        assert_eq!(bench.config.traj, 3);
        assert!(bench.trajectories_per_sec > 0.0);
        assert!(bench.force_gflops > 0.0);
        assert!((0.0..=1.0).contains(&bench.acceptance));
        let doc = hmc_bench_to_json(&bench);
        validate_hmc_bench_json(&doc).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        validate_hmc_bench_json(&parsed).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn physics_gate_rejects_sick_chains() {
        let _guard = crate::registry_lock();
        let mut bench = run_hmc_bench(tiny()).unwrap();
        bench.acceptance = 0.3;
        assert!(check_hmc_physics(&bench)
            .unwrap_err()
            .contains("acceptance"));
        bench.acceptance = 0.9;
        bench.mean_exp_dh = 5.0;
        bench.stderr_exp_dh = 0.01;
        assert!(check_hmc_physics(&bench).unwrap_err().contains("exp(-ΔH)"));
    }

    #[test]
    fn schema_validation_rejects_malformed_documents() {
        let bad = Json::parse(r#"{"schema":"qcd-bench-hmc/v2"}"#).unwrap();
        assert!(validate_hmc_bench_json(&bad)
            .unwrap_err()
            .contains("schema"));
        let _guard = crate::registry_lock();
        let bench = run_hmc_bench(tiny()).unwrap();
        let Json::Obj(mut members) = hmc_bench_to_json(&bench) else {
            panic!("bench document must be an object");
        };
        members.retain(|(k, _)| k != "force_gflops");
        assert!(validate_hmc_bench_json(&Json::Obj(members))
            .unwrap_err()
            .contains("force_gflops"));
    }

    #[test]
    fn degenerate_configs_are_refused() {
        assert!(run_hmc_bench(HmcBenchConfig { traj: 0, ..tiny() }).is_err());
        assert!(run_hmc_bench(HmcBenchConfig {
            step_size: 0.0,
            ..tiny()
        })
        .is_err());
    }
}
