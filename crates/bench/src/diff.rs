//! The bench-regression gate: compare two benchmark documents
//! (`qcd-bench-solver/v1`, `qcd-bench-hmc/v1`, `qcd-bench-farm/v1`, or
//! `qcd-bench-comms/v1`) metric by metric.
//!
//! Metrics split into two classes with different consequences:
//!
//! * **Model-derived** metrics are pure functions of the configuration —
//!   sweeps per iteration, arithmetic intensities, the two-row AI gain, the
//!   memory-bound speedup model, and the HMC physics observables (which are
//!   deterministic given the seeded chain). Any drift beyond floating-point
//!   noise ([`HARD_RTOL`]) means the *code model* changed, not the machine,
//!   so it is a hard failure.
//! * **Wall-clock** metrics (wall time, throughput, GFLOP/s, the metrics
//!   overhead ratio) vary with the host; drift beyond [`WALL_RTOL`] is
//!   reported as a warning but never fails the gate.
//!
//! Configuration keys (lattice, vector length, backend, iteration counts,
//! HMC parameters) must match exactly — comparing runs of different shapes
//! is a hard failure, not a warning.

use crate::comms_bench::COMMS_BENCH_SCHEMA;
use crate::hmc_bench::HMC_BENCH_SCHEMA;
use crate::solver_bench::SOLVER_BENCH_SCHEMA;
use qcd_farm::bench::FARM_BENCH_SCHEMA;
use qcd_trace::Json;

/// Relative tolerance for model-derived metrics: floating-point noise only.
pub const HARD_RTOL: f64 = 1e-9;

/// Relative tolerance for wall-clock metrics before a warning is emitted.
pub const WALL_RTOL: f64 = 0.25;

/// Outcome of a document comparison: hard failures (exit 1) and host-noise
/// warnings (reported, exit 0).
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Model-derived drift and configuration mismatches.
    pub failures: Vec<String>,
    /// Wall-clock drift beyond [`WALL_RTOL`].
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// True when no hard failure was recorded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Symmetric relative difference, zero-safe: `|b-a| / max(|a|,|b|)`.
fn rel_delta(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (b - a).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Fetch a numeric field through a dotted path like `fused.wall_ns`.
fn num(doc: &Json, path: &str) -> Result<f64, String> {
    let mut cur = doc;
    for key in path.split('.') {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("missing field `{path}`"))?;
    }
    cur.as_f64()
        .ok_or_else(|| format!("field `{path}` is not a number"))
}

struct Diff<'a> {
    baseline: &'a Json,
    current: &'a Json,
    report: DiffReport,
}

impl<'a> Diff<'a> {
    fn new(baseline: &'a Json, current: &'a Json) -> Self {
        Diff {
            baseline,
            current,
            report: DiffReport::default(),
        }
    }

    /// Configuration key: any mismatch is a hard failure.
    fn config(&mut self, path: &str) {
        let (b, c) = (self.baseline.get(path), self.current.get(path));
        match (b, c) {
            (Some(b), Some(c)) if b == c => {}
            (Some(b), Some(c)) => self.report.failures.push(format!(
                "config `{path}` differs: baseline {} vs current {}",
                b.render(),
                c.render()
            )),
            _ => self
                .report
                .failures
                .push(format!("config `{path}` missing from one document")),
        }
    }

    /// Model-derived metric: drift beyond [`HARD_RTOL`] is a hard failure.
    fn hard(&mut self, path: &str) {
        self.metric(path, HARD_RTOL, true);
    }

    /// Wall-clock metric: drift beyond [`WALL_RTOL`] is a warning.
    fn wall(&mut self, path: &str) {
        self.metric(path, WALL_RTOL, false);
    }

    fn metric(&mut self, path: &str, rtol: f64, hard: bool) {
        let (b, c) = match (num(self.baseline, path), num(self.current, path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                self.report.failures.push(e);
                return;
            }
        };
        let delta = rel_delta(b, c);
        if delta <= rtol {
            return;
        }
        let msg = format!(
            "`{path}`: baseline {b:.6e} vs current {c:.6e} (rel delta {delta:.3e} > {rtol:.0e})"
        );
        if hard {
            self.report.failures.push(msg);
        } else {
            self.report.warnings.push(msg);
        }
    }
}

fn diff_solver(baseline: &Json, current: &Json) -> DiffReport {
    let mut d = Diff::new(baseline, current);
    for key in ["lattice", "vl_bits", "backend", "threads", "iterations"] {
        d.config(key);
    }
    for leg in ["baseline", "fused"] {
        d.hard(&format!("{leg}.sweeps_per_iter"));
        for m in ["wall_ns", "sites_per_sec", "gflops"] {
            d.wall(&format!("{leg}.{m}"));
        }
    }
    d.wall("speedup");
    d.wall("metrics_overhead");
    let report = diff_solver_block(baseline, current, d.report);
    let report = diff_solver_deflation(baseline, current, report);
    diff_solver_precision(baseline, current, report)
}

/// Compare the optional `deflation` sections. Iteration counts,
/// eigenvalues, and the thermalized plaquette are pure functions of the
/// seeded recipe, so any drift is a hard failure; wall clocks and the
/// amortization crossover vary with the host and only warn. A section
/// present in only one document is a warning (one run used `--deflate`,
/// the other did not), not a regression.
fn diff_solver_deflation(baseline: &Json, current: &Json, mut report: DiffReport) -> DiffReport {
    let (b, c) = (baseline.get("deflation"), current.get("deflation"));
    let (b, c) = match (b, c) {
        (None, None) => return report,
        (Some(b), Some(c)) => (b, c),
        _ => {
            report
                .warnings
                .push("`deflation` section present in only one document".into());
            return report;
        }
    };
    let mut d = Diff::new(b, c);
    for key in [
        "lattice",
        "beta",
        "therm",
        "chain_seed",
        "mass",
        "nev",
        "basis",
        "eig_tol",
        "eig_seed",
        "nrhs",
        "rhs_seed",
        "tol",
        "cell",
    ] {
        d.config(key);
    }
    for m in [
        "plaquette",
        "eig_restarts",
        "eig_mvps",
        "lambda_min",
        "lambda_max",
        "undeflated_iters",
        "deflated_iters",
        "undeflated_rhs0_iters",
        "coarse_rhs0_iters",
        "iter_gain",
    ] {
        d.hard(m);
    }
    for m in [
        "eig_wall_ns",
        "undeflated_wall_ns",
        "deflated_wall_ns",
        "wall_gain",
        "crossover_rhs",
    ] {
        d.wall(m);
    }
    let tag = |msgs: Vec<String>| -> Vec<String> {
        msgs.into_iter().map(|m| format!("deflation {m}")).collect()
    };
    report.failures.extend(tag(d.report.failures));
    report.warnings.extend(tag(d.report.warnings));
    report
}

/// Compare the optional `precision` sections. Iteration counts, residuals
/// (canonical reductions), the thermalized plaquette, and the trace-span
/// byte model are pure functions of the seeded recipe, so any drift is a
/// hard failure; wall clocks vary with the host and only warn. A section
/// present in only one document is a warning (one run used `--precision`,
/// the other did not), not a regression.
fn diff_solver_precision(baseline: &Json, current: &Json, mut report: DiffReport) -> DiffReport {
    let (b, c) = (baseline.get("precision"), current.get("precision"));
    let (b, c) = match (b, c) {
        (None, None) => return report,
        (Some(b), Some(c)) => (b, c),
        _ => {
            report
                .warnings
                .push("`precision` section present in only one document".into());
            return report;
        }
    };
    let mut d = Diff::new(b, c);
    for key in [
        "lattice",
        "beta",
        "therm",
        "chain_seed",
        "mass",
        "rhs_seed",
        "tol",
    ] {
        d.config(key);
    }
    d.hard("plaquette");
    d.hard("byte_ratio");
    for leg in ["f32_inner", "f16_inner"] {
        for m in [
            "outer_rounds",
            "f16_iters",
            "f32_iters",
            "reliable_updates",
            "tier_fallbacks",
            "inner_iters",
            "residual",
            "inner_bytes",
            "bytes_per_iter",
        ] {
            d.hard(&format!("{leg}.{m}"));
        }
        d.wall(&format!("{leg}.wall_ns"));
    }
    let tag = |msgs: Vec<String>| -> Vec<String> {
        msgs.into_iter().map(|m| format!("precision {m}")).collect()
    };
    report.failures.extend(tag(d.report.failures));
    report.warnings.extend(tag(d.report.warnings));
    report
}

/// Compare the multi-RHS legs row by row, matching on `nrhs`.
fn diff_solver_block(baseline: &Json, current: &Json, mut report: DiffReport) -> DiffReport {
    let (Some(b_rows), Some(c_rows)) = (
        baseline.get("block").and_then(Json::as_arr),
        current.get("block").and_then(Json::as_arr),
    ) else {
        report.failures.push("missing array `block`".into());
        return report;
    };
    let nrhs = |row: &Json| row.get("nrhs").and_then(Json::as_u64);
    let b_ns: Vec<_> = b_rows.iter().filter_map(nrhs).collect();
    let c_ns: Vec<_> = c_rows.iter().filter_map(nrhs).collect();
    if b_ns != c_ns {
        report.failures.push(format!(
            "`block` RHS counts differ: baseline {b_ns:?} vs current {c_ns:?}"
        ));
        return report;
    }
    for (b_row, c_row) in b_rows.iter().zip(c_rows) {
        let mut d = Diff::new(b_row, c_row);
        let n = nrhs(b_row).unwrap_or(0);
        for m in ["ai", "ai_two_row", "ai_gain", "mem_bound_speedup"] {
            d.hard(m);
        }
        for m in ["wall_ns", "sites_per_sec", "gflops", "speedup"] {
            d.wall(m);
        }
        let tag = |msgs: Vec<String>| -> Vec<String> {
            msgs.into_iter()
                .map(|m| format!("block N={n} {m}"))
                .collect()
        };
        report.failures.extend(tag(d.report.failures));
        report.warnings.extend(tag(d.report.warnings));
    }
    report
}

/// Compare the comms scaling legs row by row, matching on `ranks`. Wire
/// bytes and the interior/boundary split are pure functions of the
/// topology and the pinned wire model, so their drift is a hard failure;
/// wall clock, wait/flight times and the overlap ratio vary with the
/// host and only warn.
fn diff_comms(baseline: &Json, current: &Json) -> DiffReport {
    let mut d = Diff::new(baseline, current);
    for key in [
        "lattice",
        "vl_bits",
        "backend",
        "threads",
        "nrhs",
        "iterations",
    ] {
        d.config(key);
    }
    let mut report = d.report;
    let (Some(b_rows), Some(c_rows)) = (
        baseline.get("legs").and_then(Json::as_arr),
        current.get("legs").and_then(Json::as_arr),
    ) else {
        report.failures.push("missing array `legs`".into());
        return report;
    };
    let ranks = |row: &Json| row.get("ranks").and_then(Json::as_u64);
    let b_rs: Vec<_> = b_rows.iter().filter_map(ranks).collect();
    let c_rs: Vec<_> = c_rows.iter().filter_map(ranks).collect();
    if b_rs != c_rs {
        report.failures.push(format!(
            "`legs` rank counts differ: baseline {b_rs:?} vs current {c_rs:?}"
        ));
        return report;
    }
    for (b_row, c_row) in b_rows.iter().zip(c_rows) {
        let mut d = Diff::new(b_row, c_row);
        let r = ranks(b_row).unwrap_or(0);
        d.config("rank_grid");
        for m in [
            "wire_bytes_measured",
            "wire_bytes_modeled",
            "interior_osites",
            "boundary_osites",
        ] {
            d.hard(m);
        }
        for m in [
            "wall_ns",
            "sites_per_sec",
            "wait_ns",
            "flight_ns",
            "overlap_eff",
        ] {
            d.wall(m);
        }
        let tag = |msgs: Vec<String>| -> Vec<String> {
            msgs.into_iter()
                .map(|m| format!("legs R={r} {m}"))
                .collect()
        };
        report.failures.extend(tag(d.report.failures));
        report.warnings.extend(tag(d.report.warnings));
    }
    report
}

fn diff_hmc(baseline: &Json, current: &Json) -> DiffReport {
    let mut d = Diff::new(baseline, current);
    for key in [
        "lattice",
        "vl_bits",
        "backend",
        "threads",
        "beta",
        "therm",
        "trajectories",
        "n_steps",
        "step_size",
        "seed",
    ] {
        d.config(key);
    }
    // The chain is a pure function of (config, seed): the Metropolis
    // decisions and plaquette history must reproduce bit-for-bit.
    for m in [
        "acceptance",
        "avg_plaquette",
        "mean_exp_dh",
        "stderr_exp_dh",
    ] {
        d.hard(m);
    }
    for m in ["wall_ns", "trajectories_per_sec", "force_gflops"] {
        d.wall(m);
    }
    d.report
}

/// Compare the farm document's leg arrays row by row, matching `coalesce`
/// on `nrhs` and `workers` on `workers`.
fn diff_farm(baseline: &Json, current: &Json) -> DiffReport {
    let mut d = Diff::new(baseline, current);
    for key in ["lattice", "vl_bits", "backend", "probe_iters", "requests"] {
        d.config(key);
    }
    // The coalescing gain is byte-traffic accounting of a fixed-iteration
    // dispatch — a pure function of the code, so drift is a hard failure.
    d.hard("coalesce_gain");
    d.hard("mean_planned_fill");
    let mut report = d.report;
    let rows = |doc: &Json, arr: &str, key: &str| -> Vec<u64> {
        doc.get(arr)
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| r.get(key).and_then(Json::as_u64))
                    .collect()
            })
            .unwrap_or_default()
    };
    for (arr, key, hard, wall) in [
        (
            "coalesce",
            "nrhs",
            &["bytes_per_rhs", "model_speedup"][..],
            &["wall_ns", "rhs_per_sec"][..],
        ),
        (
            "workers",
            "workers",
            &[][..],
            &["wall_ns", "units_per_sec"][..],
        ),
    ] {
        let (b_keys, c_keys) = (rows(baseline, arr, key), rows(current, arr, key));
        if b_keys != c_keys {
            report.failures.push(format!(
                "`{arr}` rows differ: baseline {b_keys:?} vs current {c_keys:?}"
            ));
            continue;
        }
        let (b_rows, c_rows) = (
            baseline.get(arr).and_then(Json::as_arr).unwrap_or(&[]),
            current.get(arr).and_then(Json::as_arr).unwrap_or(&[]),
        );
        for ((b_row, c_row), id) in b_rows.iter().zip(c_rows).zip(&b_keys) {
            let mut d = Diff::new(b_row, c_row);
            for m in hard {
                d.hard(m);
            }
            for m in wall {
                d.wall(m);
            }
            let tag = |msgs: Vec<String>| -> Vec<String> {
                msgs.into_iter()
                    .map(|m| format!("{arr} {key}={id} {m}"))
                    .collect()
            };
            report.failures.extend(tag(d.report.failures));
            report.warnings.extend(tag(d.report.warnings));
        }
    }
    report
}

/// Compare two parsed benchmark documents. The schema is detected from the
/// baseline and must match the current document; unknown schemas are a
/// usage error (`Err`), not a regression.
pub fn diff_docs(baseline: &Json, current: &Json) -> Result<DiffReport, String> {
    let schema = baseline
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline document has no `schema` field")?;
    let cur_schema = current
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("current document has no `schema` field")?;
    if schema != cur_schema {
        return Err(format!(
            "schema mismatch: baseline `{schema}` vs current `{cur_schema}`"
        ));
    }
    match schema {
        SOLVER_BENCH_SCHEMA => Ok(diff_solver(baseline, current)),
        HMC_BENCH_SCHEMA => Ok(diff_hmc(baseline, current)),
        FARM_BENCH_SCHEMA => Ok(diff_farm(baseline, current)),
        COMMS_BENCH_SCHEMA => Ok(diff_comms(baseline, current)),
        other => Err(format!("unsupported benchmark schema `{other}`")),
    }
}

/// Read, parse, and compare two benchmark files.
pub fn diff_files(baseline_path: &str, current_path: &str) -> Result<DiffReport, String> {
    let read = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: bad JSON: {} at byte {}", e.msg, e.at))
    };
    diff_docs(&read(baseline_path)?, &read(current_path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver_doc() -> String {
        r#"{
          "schema": "qcd-bench-solver/v1",
          "lattice": [8, 8, 8, 8],
          "vl_bits": 512,
          "backend": "fcmla",
          "threads": 4,
          "iterations": 10,
          "baseline": {"wall_ns": 5.0e8, "sites_per_sec": 81920.0,
                       "gflops": 0.5, "sweeps_per_iter": 3.0},
          "fused": {"wall_ns": 4.0e8, "sites_per_sec": 102400.0,
                    "gflops": 0.625, "sweeps_per_iter": 2.0},
          "speedup": 1.25,
          "block": [
            {"nrhs": 1, "wall_ns": 4.0e8, "sites_per_sec": 102400.0,
             "gflops": 0.625, "ai": 0.691, "ai_two_row": 0.875,
             "speedup": 1.0, "ai_gain": 1.266, "mem_bound_speedup": 1.266},
            {"nrhs": 8, "wall_ns": 3.0e9, "sites_per_sec": 109227.0,
             "gflops": 0.667, "ai": 1.234, "ai_two_row": 1.876,
             "speedup": 1.07, "ai_gain": 1.52, "mem_bound_speedup": 2.715}
          ],
          "metrics_overhead": 1.004
        }"#
        .into()
    }

    fn deflated_solver_doc() -> String {
        let section = r#",
          "deflation": {
            "lattice": [4, 4, 4, 4], "beta": 5.6, "therm": 12,
            "chain_seed": 5, "mass": -0.2, "nev": 8, "basis": 24,
            "eig_tol": 1e-8, "eig_seed": 99, "nrhs": 16, "rhs_seed": 401,
            "tol": 1e-8, "cell": [2, 2, 2, 2], "plaquette": 0.557,
            "eig_restarts": 25, "eig_mvps": 480, "eig_wall_ns": 9.0e9,
            "lambda_min": 0.26, "lambda_max": 1.9,
            "undeflated_iters": 1890, "undeflated_wall_ns": 3.1e10,
            "deflated_iters": 1460, "deflated_wall_ns": 2.4e10,
            "undeflated_rhs0_iters": 118, "coarse_rhs0_iters": 111,
            "iter_gain": 1.29, "wall_gain": 1.29, "crossover_rhs": 21.0
          }
        }"#;
        let doc = solver_doc();
        let trimmed = doc.trim_end().trim_end_matches('}').trim_end();
        format!("{trimmed}{section}")
    }

    fn precision_solver_doc() -> String {
        let section = r#",
          "precision": {
            "lattice": [4, 4, 4, 4], "beta": 5.6, "therm": 12,
            "chain_seed": 5, "mass": -0.2, "rhs_seed": 501, "tol": 1e-10,
            "plaquette": 0.557,
            "f32_inner": {"outer_rounds": 3, "f16_iters": 0, "f32_iters": 320,
                          "reliable_updates": 0, "tier_fallbacks": 0,
                          "inner_iters": 320, "residual": 4.1e-11,
                          "wall_ns": 2.1e9, "inner_bytes": 5.2e8,
                          "bytes_per_iter": 1625000.0},
            "f16_inner": {"outer_rounds": 4, "f16_iters": 360, "f32_iters": 40,
                          "reliable_updates": 12, "tier_fallbacks": 0,
                          "inner_iters": 400, "residual": 6.3e-11,
                          "wall_ns": 2.4e9, "inner_bytes": 3.4e8,
                          "bytes_per_iter": 850000.0},
            "byte_ratio": 0.523
          }
        }"#;
        let doc = solver_doc();
        let trimmed = doc.trim_end().trim_end_matches('}').trim_end();
        format!("{trimmed}{section}")
    }

    fn hmc_doc() -> String {
        r#"{
          "schema": "qcd-bench-hmc/v1",
          "lattice": [8, 8, 8, 8],
          "vl_bits": 512,
          "backend": "fcmla",
          "threads": 4,
          "beta": 5.6,
          "therm": 10,
          "trajectories": 20,
          "n_steps": 12,
          "step_size": 0.0833,
          "seed": 77,
          "wall_ns": 9.0e9,
          "trajectories_per_sec": 2.22,
          "force_gflops": 1.8,
          "acceptance": 0.85,
          "mean_exp_dh": 1.002,
          "stderr_exp_dh": 0.011,
          "avg_plaquette": 0.574312
        }"#
        .into()
    }

    fn farm_doc() -> String {
        r#"{
          "schema": "qcd-bench-farm/v1",
          "lattice": [4, 4, 4, 4],
          "vl_bits": 256,
          "backend": "sve-fcmla",
          "probe_iters": 4,
          "requests": 16,
          "coalesce": [
            {"nrhs": 1, "bytes_per_rhs": 9.0e6, "wall_ns": 2.0e8,
             "rhs_per_sec": 80.0, "model_speedup": 1.0},
            {"nrhs": 16, "bytes_per_rhs": 6.0e6, "wall_ns": 1.4e8,
             "rhs_per_sec": 114.0, "model_speedup": 1.5}
          ],
          "coalesce_gain": 1.5,
          "mean_planned_fill": 16.0,
          "workers": [
            {"workers": 1, "wall_ns": 4.0e9, "units": 7, "units_per_sec": 1.75},
            {"workers": 2, "wall_ns": 2.4e9, "units": 7, "units_per_sec": 2.9}
          ]
        }"#
        .into()
    }

    fn comms_doc() -> String {
        r#"{
          "schema": "qcd-bench-comms/v1",
          "lattice": [4, 4, 8, 16],
          "vl_bits": 256,
          "backend": "fcmla",
          "threads": 4,
          "nrhs": 8,
          "iterations": 6,
          "legs": [
            {"ranks": 1, "rank_grid": [1, 1, 1, 1], "wall_ns": 2.0e9,
             "sites_per_sec": 49152.0, "wire_bytes_measured": 0,
             "wire_bytes_modeled": 0, "wait_ns": 0, "flight_ns": 0,
             "overlap_eff": 1.0, "interior_osites": 768, "boundary_osites": 256},
            {"ranks": 2, "rank_grid": [1, 1, 1, 2], "wall_ns": 1.2e9,
             "sites_per_sec": 81920.0, "wire_bytes_measured": 2260992,
             "wire_bytes_modeled": 2260992, "wait_ns": 31000, "flight_ns": 11200000,
             "overlap_eff": 0.997, "interior_osites": 256, "boundary_osites": 256}
          ]
        }"#
        .into()
    }

    fn parse(doc: &str) -> Json {
        Json::parse(doc).expect("fixture parses")
    }

    #[test]
    fn self_compare_is_clean_for_all_schemas() {
        for doc in [solver_doc(), hmc_doc(), farm_doc(), comms_doc()] {
            let j = parse(&doc);
            let report = diff_docs(&j, &j).expect("same schema");
            assert!(report.passed(), "failures: {:?}", report.failures);
            assert!(
                report.warnings.is_empty(),
                "warnings: {:?}",
                report.warnings
            );
        }
    }

    #[test]
    fn model_metric_drift_is_a_hard_failure() {
        let base = parse(&solver_doc());
        let cur = parse(&solver_doc().replace("\"ai_gain\": 1.52", "\"ai_gain\": 1.61"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("ai_gain")),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn wall_clock_drift_is_warn_only() {
        let base = parse(&solver_doc());
        // Double every fused wall-clock figure: far past WALL_RTOL, but the
        // gate must still pass.
        let cur = parse(
            &solver_doc()
                .replace("\"wall_ns\": 4.0e8", "\"wall_ns\": 8.0e8")
                .replace("\"sites_per_sec\": 102400.0", "\"sites_per_sec\": 51200.0"),
        );
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn wall_clock_drift_within_tolerance_is_silent() {
        let base = parse(&solver_doc());
        let cur = parse(&solver_doc().replace("\"wall_ns\": 5.0e8", "\"wall_ns\": 5.5e8"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.passed());
        assert!(
            report.warnings.is_empty(),
            "warnings: {:?}",
            report.warnings
        );
    }

    #[test]
    fn config_mismatch_is_a_hard_failure() {
        let base = parse(&solver_doc());
        let cur = parse(&solver_doc().replace("\"vl_bits\": 512", "\"vl_bits\": 256"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("vl_bits")));
    }

    #[test]
    fn block_rhs_set_mismatch_is_a_hard_failure() {
        let base = parse(&solver_doc());
        let cur = parse(&solver_doc().replace("\"nrhs\": 8", "\"nrhs\": 16"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("RHS counts differ")));
    }

    #[test]
    fn deflation_iteration_drift_is_a_hard_failure() {
        let base = parse(&deflated_solver_doc());
        let report = diff_docs(&base, &base).unwrap();
        assert!(report.passed() && report.warnings.is_empty());
        let cur = parse(
            &deflated_solver_doc().replace("\"deflated_iters\": 1460", "\"deflated_iters\": 1461"),
        );
        let report = diff_docs(&base, &cur).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("deflation") && f.contains("deflated_iters")),
            "failures: {:?}",
            report.failures
        );
        let cur =
            parse(&deflated_solver_doc().replace("\"lambda_min\": 0.26", "\"lambda_min\": 0.27"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("lambda_min")));
        // A different recipe is a config mismatch, not a metric drift.
        let cur = parse(&deflated_solver_doc().replace("\"nev\": 8", "\"nev\": 12"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("nev")));
    }

    #[test]
    fn deflation_wall_drift_warns_and_asymmetry_warns() {
        let base = parse(&deflated_solver_doc());
        let cur = parse(&deflated_solver_doc().replace(
            "\"deflated_wall_ns\": 2.4e10",
            "\"deflated_wall_ns\": 4.8e10",
        ));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("deflation") && w.contains("deflated_wall_ns")));
        // One run with --deflate, one without: a warning, never a failure.
        let bare = parse(&solver_doc());
        let report = diff_docs(&base, &bare).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("only one document")));
        let report = diff_docs(&bare, &base).unwrap();
        assert!(report.passed());
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn precision_model_drift_is_a_hard_failure() {
        let base = parse(&precision_solver_doc());
        let report = diff_docs(&base, &base).unwrap();
        assert!(report.passed() && report.warnings.is_empty());
        let cur =
            parse(&precision_solver_doc().replace("\"f16_iters\": 360", "\"f16_iters\": 361"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("precision") && f.contains("f16_inner.f16_iters")),
            "failures: {:?}",
            report.failures
        );
        let cur =
            parse(&precision_solver_doc().replace("\"byte_ratio\": 0.523", "\"byte_ratio\": 0.61"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("byte_ratio")));
        // A different recipe is a config mismatch, not a metric drift.
        let cur = parse(&precision_solver_doc().replace("\"tol\": 1e-10", "\"tol\": 1e-8"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("tol")));
    }

    #[test]
    fn precision_wall_drift_warns_and_asymmetry_warns() {
        let base = parse(&precision_solver_doc());
        let cur =
            parse(&precision_solver_doc().replace("\"wall_ns\": 2.4e9", "\"wall_ns\": 4.8e9"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("precision") && w.contains("f16_inner.wall_ns")));
        // One run with --precision, one without: a warning, never a failure.
        let bare = parse(&solver_doc());
        let report = diff_docs(&base, &bare).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("`precision` section present in only one document")));
        let report = diff_docs(&bare, &base).unwrap();
        assert!(report.passed());
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn hmc_physics_drift_is_a_hard_failure() {
        let base = parse(&hmc_doc());
        let cur = parse(&hmc_doc().replace("\"acceptance\": 0.85", "\"acceptance\": 0.84"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("acceptance")));
    }

    #[test]
    fn farm_coalescing_drift_is_a_hard_failure() {
        let base = parse(&farm_doc());
        let cur = parse(&farm_doc().replace("\"coalesce_gain\": 1.5", "\"coalesce_gain\": 1.2"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("coalesce_gain")));
        let per_leg = parse(&farm_doc().replace(
            "\"nrhs\": 16, \"bytes_per_rhs\": 6.0e6",
            "\"nrhs\": 16, \"bytes_per_rhs\": 7.5e6",
        ));
        let report = diff_docs(&base, &per_leg).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("coalesce nrhs=16") && f.contains("bytes_per_rhs")));
    }

    #[test]
    fn farm_wall_drift_is_warn_only_and_row_sets_must_match() {
        let base = parse(&farm_doc());
        let slow = parse(&farm_doc().replace("\"wall_ns\": 4.0e9", "\"wall_ns\": 9.0e9"));
        let report = diff_docs(&base, &slow).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(!report.warnings.is_empty());
        let reshaped = parse(&farm_doc().replace("\"workers\": 2,", "\"workers\": 4,"));
        let report = diff_docs(&base, &reshaped).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("rows differ")));
    }

    #[test]
    fn comms_wire_byte_drift_is_a_hard_failure() {
        let base = parse(&comms_doc());
        let cur = parse(&comms_doc().replace(
            "\"wire_bytes_modeled\": 2260992",
            "\"wire_bytes_modeled\": 2261000",
        ));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("legs R=2") && f.contains("wire_bytes_modeled")));
        let cur = parse(&comms_doc().replace(
            "\"boundary_osites\": 256}\n          ]",
            "\"boundary_osites\": 512}\n          ]",
        ));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("boundary_osites")));
    }

    #[test]
    fn comms_wait_and_overlap_drift_warn_only() {
        let base = parse(&comms_doc());
        let cur = parse(
            &comms_doc()
                .replace("\"wait_ns\": 31000", "\"wait_ns\": 4600000")
                .replace("\"overlap_eff\": 0.997", "\"overlap_eff\": 0.59"),
        );
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(
            report.warnings.iter().any(|w| w.contains("wait_ns"))
                && report.warnings.iter().any(|w| w.contains("overlap_eff")),
            "warnings: {:?}",
            report.warnings
        );
    }

    #[test]
    fn comms_rank_set_mismatch_is_a_hard_failure() {
        let base = parse(&comms_doc());
        let cur = parse(&comms_doc().replace("\"ranks\": 2", "\"ranks\": 4"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("rank counts differ")));
        let regrid = parse(&comms_doc().replace("[1, 1, 1, 2]", "[1, 1, 2, 1]"));
        let report = diff_docs(&base, &regrid).unwrap();
        assert!(report.failures.iter().any(|f| f.contains("rank_grid")));
    }

    #[test]
    fn schema_mismatch_is_a_usage_error() {
        let err = diff_docs(&parse(&solver_doc()), &parse(&hmc_doc())).unwrap_err();
        assert!(err.contains("schema mismatch"));
    }

    #[test]
    fn missing_metric_is_a_hard_failure() {
        let base = parse(&solver_doc());
        let cur = parse(&solver_doc().replace("\"metrics_overhead\": 1.004", "\"x\": 1.0"));
        let report = diff_docs(&base, &cur).unwrap();
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("metrics_overhead")));
    }
}
