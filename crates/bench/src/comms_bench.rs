//! The multi-rank scaling benchmark behind `wilson_report --bench-comms`.
//!
//! One strong-scaling sweep: the same global lattice solved by an N-RHS
//! distributed block CG at every requested rank count (1-D time-direction
//! decomposition), over a modeled interconnect. Each leg reports
//!
//! * throughput (RHS-site iterations retired per second vs rank count),
//! * **measured vs modeled wire bytes** — the bytes every rank actually
//!   put on the wire against the pinned face model
//!   (`DistWilson::modeled_wire_bytes`: 192 B fermion face bytes and 96 B
//!   two-row ghost-link bytes per site); any mismatch aborts the run,
//! * **overlap efficiency** — the fraction of modeled comms flight time
//!   hidden behind the interior sweep,
//!   `(flight − wait) / flight`, where `wait` is the time ranks sat
//!   blocked on halo arrival and `flight` is what the comms would cost
//!   with zero overlap.
//!
//! The residual histories of every leg are asserted bit-identical across
//! rank counts (the canonical-reduction guarantee), so the sweep measures
//! communication cost, never a different computation. The result is
//! exported as a validated `qcd-bench-comms/v1` document — the artifact
//! the CI comms-smoke job gates with `bench_diff`.
//!
//! The modeled fabric deliberately carries a high per-message latency
//! ([`COMMS_NET_LATENCY_NS`]): flight times far above scheduler jitter
//! make the overlap-efficiency measurement reproducible on noisy CI
//! hosts, while staying far below the interior-sweep compute time so a
//! correctly overlapped dslash can still hide them.

use grid::prelude::*;
use grid::Coor;
use qcd_trace::Json;
use std::time::Instant;

/// Schema identifier of the exported benchmark document.
pub const COMMS_BENCH_SCHEMA: &str = "qcd-bench-comms/v1";

/// Default global lattice of the scaling sweep. Chosen so the rank-local
/// lattice keeps an interior overlap window (split-direction outer extent
/// ≥ 3) at every default rank count.
pub const COMMS_BENCH_LATTICE: Coor = [4, 4, 8, 16];

/// Default rank counts of the strong-scaling sweep.
pub const COMMS_RANK_COUNTS: [usize; 3] = [1, 2, 4];

/// Per-message latency of the modeled fabric (see module docs).
pub const COMMS_NET_LATENCY_NS: u64 = 50_000;

/// Per-link bandwidth of the modeled fabric (≈100 Gb/s class).
pub const COMMS_NET_GBYTES_PER_S: f64 = 12.5;

/// Gate on the overlapped dslash: at least this fraction of the modeled
/// comms flight time must be hidden behind interior compute on every
/// multi-rank leg.
pub const OVERLAP_EFF_TARGET: f64 = 0.5;

/// One rank count of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommsLeg {
    /// Ranks in this leg.
    pub ranks: usize,
    /// How the ranks tile the four dimensions.
    pub rank_grid: Coor,
    /// Wall time of the slowest rank's solve loop.
    pub wall_ns: u64,
    /// RHS-site iterations retired per second (global volume × nrhs ×
    /// iterations / wall) — the strong-scaling figure of merit.
    pub sites_per_sec: f64,
    /// Face bytes all ranks actually put on the wire (ghost exchange +
    /// every halo sweep).
    pub wire_bytes_measured: u64,
    /// The same quantity from the pinned wire model
    /// (`DistWilson::modeled_wire_bytes`, summed over ranks). Equal to
    /// `wire_bytes_measured` by construction — the run aborts otherwise.
    pub wire_bytes_modeled: u64,
    /// Nanoseconds ranks sat blocked on halo arrival (summed).
    pub wait_ns: u64,
    /// Modeled flight nanoseconds of every received face (summed) — the
    /// comms cost a non-overlapping implementation would expose.
    pub flight_ns: u64,
    /// `(flight − wait) / flight`, clamped to [0, 1]; 1.0 when the leg
    /// has no comms (R = 1).
    pub overlap_eff: f64,
    /// Rank-local outer sites whose sweep needs no halo data.
    pub interior_osites: u64,
    /// Rank-local outer sites completed in the boundary pass.
    pub boundary_osites: u64,
}

/// A complete strong-scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CommsBench {
    /// Global lattice extents.
    pub dims: Coor,
    /// SVE vector length in bits.
    pub vl_bits: u64,
    /// Complex-arithmetic backend name.
    pub backend: String,
    /// Worker threads the parallel field kernels used.
    pub threads: usize,
    /// Right-hand sides in the block solve.
    pub nrhs: usize,
    /// CG iterations each RHS ran (fixed, far from convergence).
    pub iterations: usize,
    /// One row per rank count.
    pub legs: Vec<CommsLeg>,
}

/// Run the strong-scaling sweep: an `nrhs`-RHS distributed block CG for
/// exactly `iters` iterations per RHS at every rank count, on a two-row
/// f64 wire over the modeled fabric. The wire stays lossless because the
/// sweep's anchor property is that residual histories are bit-identical
/// across rank counts — an f16 wire rounds halo spinors and would
/// legitimately perturb the iterates (its byte accounting is pinned by
/// the wire-model property tests instead). Measured wire bytes must
/// equal the model; both checks are errors, not warnings.
pub fn run_comms_bench(
    global: Coor,
    rank_counts: &[usize],
    nrhs: usize,
    iters: usize,
) -> Result<CommsBench, String> {
    if iters == 0 {
        return Err("--comms-iters must be positive".into());
    }
    if nrhs == 0 {
        return Err("--comms-rhs must be positive".into());
    }
    if rank_counts.is_empty() {
        return Err("at least one rank count is required".into());
    }
    let vl = VectorLength::of(256);
    let backend = SimdBackend::Fcmla;
    let net = NetworkModel::custom(COMMS_NET_LATENCY_NS, COMMS_NET_GBYTES_PER_S);
    let volume: usize = global.iter().product();

    let mut legs = Vec::with_capacity(rank_counts.len());
    let mut ref_histories: Option<Vec<Vec<u64>>> = None;
    for &r in rank_counts {
        if !global[3].is_multiple_of(r) || global[3] / r < 2 {
            return Err(format!(
                "rank count {r} does not tile the time extent {}",
                global[3]
            ));
        }
        let topo = RankTopology::one_dim(r);
        let per_rank = run_multinode_topo(global, topo, vl, backend, net, |ctx| {
            let g = Grid::new(global, vl, backend);
            let u = restrict_field(ctx, &random_gauge(g.clone(), 1001));
            let fields: Vec<FermionField> = (0..nrhs)
                .map(|j| restrict_field(ctx, &FermionField::random(g.clone(), 1002 + j as u64)))
                .collect();
            let block = FermionBlock::from_fields(&fields);
            let dw = DistWilson::new(ctx, u, 0.25, GaugeWire::TwoRow, Compression::None);
            let t0 = Instant::now();
            let (_, reports) = dist_block_cg(&dw, &block, 1e-30, iters);
            let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
            let (interior, boundary) = dw.interior_boundary_sites();
            let histories: Vec<Vec<u64>> = reports
                .iter()
                .map(|rep| rep.history.iter().map(|h| h.to_bits()).collect())
                .collect();
            (
                wall_ns,
                ctx.sent_bytes.get() as u64,
                dw.modeled_wire_bytes() as u64,
                ctx.wait_ns(),
                ctx.flight_ns(),
                (interior as u64, boundary as u64),
                histories,
            )
        });

        let wall_ns = per_rank.iter().map(|l| l.0).max().unwrap_or(1);
        let measured: u64 = per_rank.iter().map(|l| l.1).sum();
        let modeled: u64 = per_rank.iter().map(|l| l.2).sum();
        if measured != modeled {
            return Err(format!(
                "R={r}: measured wire bytes {measured} diverge from the pinned model {modeled}"
            ));
        }
        let wait_ns: u64 = per_rank.iter().map(|l| l.3).sum();
        let flight_ns: u64 = per_rank.iter().map(|l| l.4).sum();
        let (interior_osites, boundary_osites) = per_rank[0].5;
        for (rank, l) in per_rank.iter().enumerate() {
            if l.6.iter().any(|h| h.len() != iters + 1) {
                return Err(format!(
                    "R={r} rank {rank}: solve ended early (the fixed-iteration sweep must not \
                     converge)"
                ));
            }
            match &ref_histories {
                None => ref_histories = Some(l.6.clone()),
                Some(reference) => {
                    if &l.6 != reference {
                        return Err(format!(
                            "R={r} rank {rank}: residual history diverges from the R={} leg — \
                             the distributed solve is not rank-count invariant",
                            rank_counts[0]
                        ));
                    }
                }
            }
        }
        let overlap_eff = if flight_ns == 0 {
            1.0
        } else {
            (flight_ns.saturating_sub(wait_ns) as f64 / flight_ns as f64).clamp(0.0, 1.0)
        };
        legs.push(CommsLeg {
            ranks: r,
            rank_grid: topo.rank_grid(),
            wall_ns,
            sites_per_sec: (volume * nrhs * iters) as f64 / (wall_ns as f64 / 1e9),
            wire_bytes_measured: measured,
            wire_bytes_modeled: modeled,
            wait_ns,
            flight_ns,
            overlap_eff,
            interior_osites,
            boundary_osites,
        });
    }
    Ok(CommsBench {
        dims: global,
        vl_bits: VectorLength::of(256).bits() as u64,
        backend: backend.name().to_string(),
        threads: rayon::current_num_threads(),
        nrhs,
        iterations: iters,
        legs,
    })
}

/// The CI gate on comms/compute overlap: every multi-rank leg must hide
/// at least [`OVERLAP_EFF_TARGET`] of its modeled flight time behind the
/// interior sweep.
pub fn check_overlap_efficiency(b: &CommsBench) -> Result<(), String> {
    for leg in &b.legs {
        if leg.ranks > 1 && leg.overlap_eff < OVERLAP_EFF_TARGET {
            return Err(format!(
                "R={}: overlap efficiency {:.3} below the {OVERLAP_EFF_TARGET} target \
                 (wait {} ns of {} ns flight was exposed)",
                leg.ranks, leg.overlap_eff, leg.wait_ns, leg.flight_ns
            ));
        }
    }
    Ok(())
}

fn leg_json(leg: &CommsLeg) -> Json {
    Json::Obj(vec![
        ("ranks".into(), Json::Num(leg.ranks as f64)),
        (
            "rank_grid".into(),
            Json::Arr(leg.rank_grid.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("sites_per_sec".into(), Json::Num(leg.sites_per_sec)),
        (
            "wire_bytes_measured".into(),
            Json::Num(leg.wire_bytes_measured as f64),
        ),
        (
            "wire_bytes_modeled".into(),
            Json::Num(leg.wire_bytes_modeled as f64),
        ),
        ("wait_ns".into(), Json::Num(leg.wait_ns as f64)),
        ("flight_ns".into(), Json::Num(leg.flight_ns as f64)),
        ("overlap_eff".into(), Json::Num(leg.overlap_eff)),
        (
            "interior_osites".into(),
            Json::Num(leg.interior_osites as f64),
        ),
        (
            "boundary_osites".into(),
            Json::Num(leg.boundary_osites as f64),
        ),
    ])
}

/// Render a sweep as a `qcd-bench-comms/v1` document.
pub fn bench_to_json(b: &CommsBench) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(COMMS_BENCH_SCHEMA.into())),
        (
            "lattice".into(),
            Json::Arr(b.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("vl_bits".into(), Json::Num(b.vl_bits as f64)),
        ("backend".into(), Json::Str(b.backend.clone())),
        ("threads".into(), Json::Num(b.threads as f64)),
        ("nrhs".into(), Json::Num(b.nrhs as f64)),
        ("iterations".into(), Json::Num(b.iterations as f64)),
        (
            "legs".into(),
            Json::Arr(b.legs.iter().map(leg_json).collect()),
        ),
    ])
}

/// Validate a parsed document against the `qcd-bench-comms/v1` schema —
/// the check the CI comms-smoke job runs on the uploaded artifact.
pub fn validate_comms_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(COMMS_BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{COMMS_BENCH_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`lattice` must be four positive extents".into());
    }
    for field in ["vl_bits", "threads", "nrhs", "iterations"] {
        if doc.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
            return Err(format!("`{field}` missing or not a positive integer"));
        }
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing string `backend`".into());
    }
    let legs = doc
        .get("legs")
        .and_then(Json::as_arr)
        .ok_or("missing array `legs`")?;
    if legs.is_empty() {
        return Err("`legs` must hold at least one rank count".into());
    }
    for (i, leg) in legs.iter().enumerate() {
        let ranks = leg
            .get("ranks")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`legs[{i}].ranks` missing or not an integer"))?;
        if ranks == 0 {
            return Err(format!("`legs[{i}].ranks` must be positive"));
        }
        let rg = leg
            .get("rank_grid")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array `legs[{i}].rank_grid`"))?;
        if rg.len() != 4 || rg.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
            return Err(format!(
                "`legs[{i}].rank_grid` must be four positive counts"
            ));
        }
        for field in ["wall_ns", "sites_per_sec"] {
            let v = leg
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`legs[{i}].{field}` missing or not a number"))?;
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("`legs[{i}].{field}` must be positive, got {v}"));
            }
        }
        // Wire bytes, wait and flight are legitimately zero on the R=1 leg.
        for field in [
            "wire_bytes_measured",
            "wire_bytes_modeled",
            "wait_ns",
            "flight_ns",
            "interior_osites",
            "boundary_osites",
        ] {
            if leg
                .get(field)
                .and_then(Json::as_f64)
                .is_none_or(|v| v < 0.0)
            {
                return Err(format!("`legs[{i}].{field}` missing or negative"));
            }
        }
        let (m, w) = (
            num_field(leg, "wire_bytes_measured")?,
            num_field(leg, "wire_bytes_modeled")?,
        );
        if m != w {
            return Err(format!(
                "`legs[{i}]`: measured wire bytes {m} != modeled {w} — the pinned model broke"
            ));
        }
        let eff = leg
            .get("overlap_eff")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`legs[{i}].overlap_eff` missing or not a number"))?;
        if !(0.0..=1.0).contains(&eff) {
            return Err(format!(
                "`legs[{i}].overlap_eff` must lie in [0, 1], got {eff}"
            ));
        }
    }
    Ok(())
}

fn num_field(leg: &Json, field: &str) -> Result<f64, String> {
    leg.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("`{field}` missing or not a number"))
}

/// Render, validate by parse-back, and write `BENCH_comms.json`. An
/// invalid document is an error, not an artifact.
pub fn write_validated_comms_bench_json(b: &CommsBench, path: &str) -> Result<(), String> {
    let json = bench_to_json(b);
    let doc = json.render();
    let parsed = Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    validate_comms_bench_json(&parsed)?;
    if parsed != json {
        return Err("JSON round-trip did not reproduce the benchmark document".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comms_bench_runs_and_exports_a_valid_document() {
        // Small sweep: enough to exercise the R=1 and multi-rank paths.
        let bench = run_comms_bench([4, 4, 4, 8], &[1, 2], 2, 2).unwrap();
        assert_eq!(bench.legs.len(), 2);
        assert_eq!(bench.legs[0].ranks, 1);
        assert_eq!(bench.legs[0].wire_bytes_measured, 0);
        assert_eq!(bench.legs[0].overlap_eff, 1.0);
        let two = &bench.legs[1];
        assert_eq!(two.ranks, 2);
        assert!(two.wire_bytes_measured > 0);
        assert_eq!(two.wire_bytes_measured, two.wire_bytes_modeled);
        assert!(two.flight_ns > 0);
        let doc = bench_to_json(&bench);
        validate_comms_bench_json(&doc).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        validate_comms_bench_json(&parsed).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn overlap_gate_flags_an_exposed_wait() {
        let mut bench = run_comms_bench([4, 4, 4, 8], &[2], 1, 1).unwrap();
        bench.legs[0].overlap_eff = OVERLAP_EFF_TARGET - 0.1;
        assert!(check_overlap_efficiency(&bench)
            .unwrap_err()
            .contains("overlap efficiency"));
        bench.legs[0].overlap_eff = 1.0;
        check_overlap_efficiency(&bench).unwrap();
        // The R=1 leg is never gated — it has no comms to hide.
        bench.legs[0].ranks = 1;
        bench.legs[0].overlap_eff = 0.0;
        check_overlap_efficiency(&bench).unwrap();
    }

    #[test]
    fn broken_wire_model_is_rejected_by_validation() {
        let bench = run_comms_bench([4, 4, 4, 8], &[2], 1, 1).unwrap();
        let doc = bench_to_json(&bench).render();
        let measured = bench.legs[0].wire_bytes_measured;
        let forged = doc.replace(
            &format!("\"wire_bytes_measured\":{measured}"),
            &format!("\"wire_bytes_measured\":{}", measured + 8),
        );
        assert_ne!(forged, doc, "forgery must hit the rendered document");
        let parsed = Json::parse(&forged).unwrap();
        assert!(validate_comms_bench_json(&parsed)
            .unwrap_err()
            .contains("pinned model"));
    }

    #[test]
    fn degenerate_configurations_are_refused() {
        assert!(run_comms_bench([4, 4, 4, 8], &[1], 1, 0).is_err());
        assert!(run_comms_bench([4, 4, 4, 8], &[1], 0, 1).is_err());
        assert!(run_comms_bench([4, 4, 4, 8], &[], 1, 1).is_err());
        assert!(run_comms_bench([4, 4, 4, 8], &[3], 1, 1).is_err());
        assert!(run_comms_bench([4, 4, 4, 8], &[8], 1, 1).is_err());
    }
}
