//! The precision benchmark behind `wilson_report --bench --precision`: the
//! `precision` section of the `qcd-bench-solver/v1` document.
//!
//! The headline claim of the binary16 compute tier is not that f16
//! arithmetic is accurate — it is not — but that the three-level
//! reliable-update ladder ([`ladder_solve`]) reaches **full f64 accuracy**
//! while moving roughly **half the bytes per inner iteration**, because the
//! bulk of the Krylov work runs on 16-bit operands (the trace-span byte
//! accounting scales with `size_of::<E>()`, the regime a bandwidth-bound
//! machine lives in). This benchmark measures exactly that comparison on a
//! thermalized configuration — the same β = 5.6 recipe as the deflation
//! section, where the operator has a genuine low-mode tail and the solve
//! is the one campaigns actually run:
//!
//! - **f32-inner** — [`LadderConfig::f32_only`]: the two-level baseline,
//!   identical outer/middle structure with the binary16 tier disabled.
//! - **f16-inner** — [`LadderConfig::new`]: binary16 inner cycles with
//!   reliable updates and health-driven fallback.
//!
//! Both legs run under a uniquely named probe span; the bytes credited to
//! the `solver.tier.f16` / `solver.tier.f32` subtrees divided by the inner
//! iteration count give **inner-sweep bytes per iteration** per leg. The
//! CI gate ([`check_precision`]) requires both legs to converge at the f64
//! tolerance AND the f16 ladder's bytes/iteration to come in at no more
//! than [`PRECISION_BYTE_RATIO_LIMIT`] of the f32 baseline's — if the f16
//! tier silently stopped carrying the work (e.g. a fallback on every
//! cycle), the ratio climbs toward 1 and the gate fails.
//!
//! Iteration counts, residuals (canonical reductions), the thermalized
//! plaquette, and the byte model are pure functions of the seeded recipe,
//! so they hard-fail the `bench_diff` gate on any drift; wall clocks only
//! warn.

use grid::prelude::*;
use grid::Coor;
use qcd_hmc::{average_plaquette_fast, HmcParams, IntegratorKind, MarkovChain};
use qcd_trace::Json;
use std::time::Instant;

/// Everything that pins the precision benchmark problem. Exported into the
/// document's `precision` section as config keys: `bench_diff` refuses to
/// compare runs of different shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionConfig {
    /// Lattice extents.
    pub dims: Coor,
    /// Gauge coupling of the thermalization chain.
    pub beta: f64,
    /// Thermalization trajectories from the cold start.
    pub therm: usize,
    /// RNG seed of the HMC chain.
    pub chain_seed: u64,
    /// Bare Wilson mass of the solved operator.
    pub mass: f64,
    /// Seed of the random right-hand side.
    pub rhs_seed: u64,
    /// Target relative residual of both ladder legs — the f64 tolerance
    /// the f16-inner leg must reach for the gate to pass.
    pub tol: f64,
}

impl Default for PrecisionConfig {
    /// The CI recipe: the deflation section's thermalized 4⁴ configuration
    /// (β = 5.6, 12 trajectories, bare mass −0.2) solved to 1e-10 — deep
    /// in f64 territory, seven orders below what binary16 can represent.
    fn default() -> Self {
        PrecisionConfig {
            dims: [4, 4, 4, 4],
            beta: 5.6,
            therm: 12,
            chain_seed: 5,
            mass: -0.2,
            rhs_seed: 501,
            tol: 1e-10,
        }
    }
}

/// Integrator of the thermalization chain (fixed: part of the recipe).
const THERM_STEPS: usize = 8;
/// MD step size of the thermalization chain.
const THERM_STEP_SIZE: f64 = 0.0625;

/// Ceiling on [`PrecisionBench::byte_ratio`]: the f16-inner ladder must
/// move at most this fraction of the f32-inner baseline's bytes per inner
/// iteration. A pure f16 sweep moves 0.5×; the reliable updates and any
/// f32 cleanup rounds eat into the margin, and a ladder whose binary16
/// tier stopped carrying the work drifts toward 1× and fails.
pub const PRECISION_BYTE_RATIO_LIMIT: f64 = 0.6;

/// One measured ladder leg of the precision comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderLeg {
    /// Outer (f64) defect-correction rounds.
    pub outer_rounds: u64,
    /// Binary16 inner-CG iterations (zero on the f32-only leg).
    pub f16_iters: u64,
    /// f32 CG iterations (middle rounds and fallback work).
    pub f32_iters: u64,
    /// Reliable updates: f32 residual recomputations closing f16 cycles.
    pub reliable_updates: u64,
    /// Health-driven tier demotions (f16 → f32).
    pub tier_fallbacks: u64,
    /// Total inner iterations (`f16_iters + f32_iters`) — the denominator
    /// of the bytes-per-iteration model.
    pub inner_iters: u64,
    /// Final true relative residual in f64 (canonical: bit-identical
    /// across vector lengths and thread counts).
    pub residual: f64,
    /// Whether the leg reached the configured tolerance.
    pub converged: bool,
    /// Wall time of the solve.
    pub wall_ns: u64,
    /// Bytes the `solver.tier.*` span subtrees credited to the registry.
    pub inner_bytes: u64,
    /// `inner_bytes / inner_iters`.
    pub bytes_per_iter: f64,
}

/// Measured precision benchmark: the `precision` section of the
/// `qcd-bench-solver/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionBench {
    /// The problem recipe.
    pub config: PrecisionConfig,
    /// Average plaquette of the thermalized configuration — the
    /// fingerprint that the chain reproduced bit-for-bit.
    pub plaquette: f64,
    /// The two-level f32-inner baseline leg.
    pub f32_inner: LadderLeg,
    /// The three-level f16-inner ladder leg.
    pub f16_inner: LadderLeg,
    /// `f16_inner.bytes_per_iter / f32_inner.bytes_per_iter` — the
    /// headline: inner-sweep bytes moved per iteration, f16 over f32.
    pub byte_ratio: f64,
}

/// Run one ladder leg under a uniquely named probe span and derive its
/// inner-sweep byte model from the `solver.tier.*` subtree telemetry. The
/// registry lock keeps a concurrent `qcd_trace::reset` from wiping the
/// subtree before it is read back.
fn run_ladder_leg(
    op: &WilsonDirac<f64>,
    b: &FermionField,
    cfg: &LadderConfig,
    label: &str,
) -> Result<LadderLeg, String> {
    static SPAN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let probe = format!(
        "bench.precision.{}",
        SPAN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let guard = crate::registry_lock();
    let span = qcd_trace::SpanGuard::enter(&probe, None);
    let t0 = Instant::now();
    let (_, rep) = ladder_solve(op, b, cfg);
    let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let _ = span.finish();
    let prefix = format!("{probe}/");
    let inner_bytes = qcd_trace::snapshot()
        .regions
        .iter()
        .filter(|(path, _)| {
            path.starts_with(&prefix)
                && (path.contains("solver.tier.f16") || path.contains("solver.tier.f32"))
        })
        .fold(0u64, |acc, (_, stat)| {
            acc + stat.bytes_read + stat.bytes_written
        });
    drop(guard);

    if !rep.converged {
        return Err(format!(
            "{label} ladder did not converge: residual {:.3e} after {} outer rounds",
            rep.residual, rep.outer_iterations
        ));
    }
    let inner_iters = (rep.f16_iterations + rep.f32_iterations) as u64;
    if inner_iters == 0 || inner_bytes == 0 {
        return Err(format!(
            "{label} probe recorded no inner-tier work ({inner_iters} iterations, \
             {inner_bytes} bytes)"
        ));
    }
    Ok(LadderLeg {
        outer_rounds: rep.outer_iterations as u64,
        f16_iters: rep.f16_iterations as u64,
        f32_iters: rep.f32_iterations as u64,
        reliable_updates: rep.reliable_updates as u64,
        tier_fallbacks: rep.tier_fallbacks as u64,
        inner_iters,
        residual: rep.residual,
        converged: rep.converged,
        wall_ns,
        inner_bytes,
        bytes_per_iter: inner_bytes as f64 / inner_iters as f64,
    })
}

/// Thermalize, run both ladder legs on the same right-hand side, and
/// return the measured section. Errors (a leg not converging, telemetry
/// missing) abort the benchmark — a half-measured comparison is not an
/// artifact.
pub fn run_precision_bench(cfg: &PrecisionConfig) -> Result<PrecisionBench, String> {
    if cfg.tol.is_nan() || cfg.tol <= 0.0 {
        return Err("--precision needs tol > 0".into());
    }
    let g = Grid::new(cfg.dims, VectorLength::of(512), SimdBackend::Fcmla);
    let hp = HmcParams {
        beta: cfg.beta,
        n_steps: THERM_STEPS,
        step_size: THERM_STEP_SIZE,
        integrator: IntegratorKind::Omelyan,
    };
    let mut chain = MarkovChain::cold_start(g.clone(), hp, cfg.chain_seed);
    chain.thermalize(cfg.therm);
    let plaquette = average_plaquette_fast(chain.links());
    let op = WilsonDirac::new(chain.links().clone(), cfg.mass);
    drop(chain);
    let b = FermionField::random(g.clone(), cfg.rhs_seed);

    let f32_inner = run_ladder_leg(&op, &b, &LadderConfig::f32_only(cfg.tol), "f32-inner")?;
    let f16_inner = run_ladder_leg(&op, &b, &LadderConfig::new(cfg.tol), "f16-inner")?;

    Ok(PrecisionBench {
        config: cfg.clone(),
        plaquette,
        byte_ratio: f16_inner.bytes_per_iter / f32_inner.bytes_per_iter,
        f32_inner,
        f16_inner,
    })
}

/// The CI gate: both ladders must reach the f64 tolerance, the binary16
/// tier must actually have carried iterations, and the f16-inner leg must
/// move at most [`PRECISION_BYTE_RATIO_LIMIT`] of the f32-inner leg's
/// bytes per inner iteration.
pub fn check_precision(p: &PrecisionBench) -> Result<(), String> {
    if !p.f32_inner.converged {
        return Err(format!(
            "f32-inner ladder did not converge: residual {:.3e}",
            p.f32_inner.residual
        ));
    }
    if !p.f16_inner.converged {
        return Err(format!(
            "f16-inner ladder did not converge: residual {:.3e}",
            p.f16_inner.residual
        ));
    }
    if p.f16_inner.f16_iters == 0 {
        return Err("f16-inner ladder ran no binary16 iterations".into());
    }
    if p.byte_ratio > PRECISION_BYTE_RATIO_LIMIT {
        return Err(format!(
            "f16 inner-sweep byte model regressed: {:.3}x f32-inner bytes/iteration \
             exceeds the {PRECISION_BYTE_RATIO_LIMIT}x limit",
            p.byte_ratio
        ));
    }
    Ok(())
}

fn ladder_leg_json(leg: &LadderLeg) -> Json {
    Json::Obj(vec![
        ("outer_rounds".into(), Json::Num(leg.outer_rounds as f64)),
        ("f16_iters".into(), Json::Num(leg.f16_iters as f64)),
        ("f32_iters".into(), Json::Num(leg.f32_iters as f64)),
        (
            "reliable_updates".into(),
            Json::Num(leg.reliable_updates as f64),
        ),
        (
            "tier_fallbacks".into(),
            Json::Num(leg.tier_fallbacks as f64),
        ),
        ("inner_iters".into(), Json::Num(leg.inner_iters as f64)),
        ("residual".into(), Json::Num(leg.residual)),
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("inner_bytes".into(), Json::Num(leg.inner_bytes as f64)),
        ("bytes_per_iter".into(), Json::Num(leg.bytes_per_iter)),
    ])
}

/// Render the `precision` section.
pub fn precision_to_json(p: &PrecisionBench) -> Json {
    let c = &p.config;
    Json::Obj(vec![
        (
            "lattice".into(),
            Json::Arr(c.dims.iter().map(|&v| Json::Num(v as f64)).collect()),
        ),
        ("beta".into(), Json::Num(c.beta)),
        ("therm".into(), Json::Num(c.therm as f64)),
        ("chain_seed".into(), Json::Num(c.chain_seed as f64)),
        ("mass".into(), Json::Num(c.mass)),
        ("rhs_seed".into(), Json::Num(c.rhs_seed as f64)),
        ("tol".into(), Json::Num(c.tol)),
        ("plaquette".into(), Json::Num(p.plaquette)),
        ("f32_inner".into(), ladder_leg_json(&p.f32_inner)),
        ("f16_inner".into(), ladder_leg_json(&p.f16_inner)),
        ("byte_ratio".into(), Json::Num(p.byte_ratio)),
    ])
}

fn check_precision_leg(doc: &Json, key: &str) -> Result<(), String> {
    let leg = doc
        .get(key)
        .ok_or_else(|| format!("missing object `precision.{key}`"))?;
    for field in [
        "outer_rounds",
        "inner_iters",
        "residual",
        "wall_ns",
        "inner_bytes",
        "bytes_per_iter",
    ] {
        let v = leg
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`precision.{key}.{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!(
                "`precision.{key}.{field}` must be positive, got {v}"
            ));
        }
    }
    // Tier-specific iteration counts may legitimately be zero (no f16
    // iterations on the f32-only leg; no f32 cleanup when the binary16
    // tier finishes every round), as may the fallback/update counters.
    for field in [
        "f16_iters",
        "f32_iters",
        "reliable_updates",
        "tier_fallbacks",
    ] {
        let v = leg
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`precision.{key}.{field}` missing or not a number"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "`precision.{key}.{field}` must be non-negative, got {v}"
            ));
        }
    }
    Ok(())
}

/// Validate a parsed `precision` section (called from the solver-bench
/// schema check when the section is present).
pub fn validate_precision_json(doc: &Json) -> Result<(), String> {
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `precision.lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`precision.lattice` must be four positive extents".into());
    }
    for field in ["beta", "therm", "tol", "plaquette", "byte_ratio"] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`precision.{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("`precision.{field}` must be positive, got {v}"));
        }
    }
    // The mass is negative by design; seeds may be anything.
    for field in ["mass", "chain_seed", "rhs_seed"] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`precision.{field}` missing or not a number"))?;
        if !v.is_finite() {
            return Err(format!("`precision.{field}` must be finite, got {v}"));
        }
    }
    check_precision_leg(doc, "f32_inner")?;
    check_precision_leg(doc, "f16_inner")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunken recipe for test wall-clock: the [4,4,2,2] thermalized
    /// fixture of the deflation suite at the campaign tolerance.
    fn small_cfg() -> PrecisionConfig {
        PrecisionConfig {
            dims: [4, 4, 2, 2],
            therm: 10,
            tol: 1e-8,
            ..PrecisionConfig::default()
        }
    }

    #[test]
    fn precision_bench_measures_and_exports_a_valid_section() {
        let p = run_precision_bench(&small_cfg()).unwrap();
        assert!(p.plaquette > 0.0 && p.plaquette < 1.0);
        // Both legs reach the f64 tolerance...
        assert!(p.f32_inner.converged && p.f32_inner.residual <= p.config.tol);
        assert!(p.f16_inner.converged && p.f16_inner.residual <= p.config.tol);
        // ...and the f16 leg actually ran its binary16 tier.
        assert!(p.f16_inner.f16_iters > 0, "f16 tier never ran");
        assert_eq!(p.f32_inner.f16_iters, 0, "f32-only leg ran f16 work");
        assert!(p.f16_inner.reliable_updates > 0, "no reliable updates");
        // The byte model: 16-bit inner sweeps move roughly half the bytes
        // of 32-bit ones, so even with reliable-update overhead the ratio
        // must clear the CI gate.
        assert!(
            p.byte_ratio <= PRECISION_BYTE_RATIO_LIMIT,
            "byte ratio {} above the {PRECISION_BYTE_RATIO_LIMIT} gate",
            p.byte_ratio
        );
        check_precision(&p).unwrap();
        let json = precision_to_json(&p);
        validate_precision_json(&json).unwrap();
        let parsed = Json::parse(&json.render()).unwrap();
        validate_precision_json(&parsed).unwrap();
        assert_eq!(parsed, json);
    }

    #[test]
    fn gate_rejects_forged_regressions() {
        let p = run_precision_bench(&small_cfg()).unwrap();
        check_precision(&p).unwrap();
        let mut forged = p.clone();
        forged.f16_inner.converged = false;
        forged.f16_inner.residual = 1e-3;
        assert!(check_precision(&forged)
            .unwrap_err()
            .contains("did not converge"));
        let mut forged = p.clone();
        forged.f16_inner.f16_iters = 0;
        assert!(check_precision(&forged)
            .unwrap_err()
            .contains("no binary16"));
        let mut forged = p.clone();
        forged.byte_ratio = 0.8;
        assert!(check_precision(&forged).unwrap_err().contains("byte model"));
        let mut forged = p;
        forged.f32_inner.converged = false;
        assert!(check_precision(&forged).unwrap_err().contains("f32-inner"));
    }

    #[test]
    fn degenerate_recipes_and_malformed_sections_are_refused() {
        let mut cfg = small_cfg();
        cfg.tol = 0.0;
        assert!(run_precision_bench(&cfg).is_err());

        let p = run_precision_bench(&small_cfg()).unwrap();
        let Json::Obj(members) = precision_to_json(&p) else {
            panic!("section must be an object");
        };
        let mut missing = members.clone();
        missing.retain(|(k, _)| k != "f16_inner");
        assert!(validate_precision_json(&Json::Obj(missing))
            .unwrap_err()
            .contains("f16_inner"));
        let mut zeroed = members;
        for (k, v) in zeroed.iter_mut() {
            if k == "byte_ratio" {
                *v = Json::Num(0.0);
            }
        }
        assert!(validate_precision_json(&Json::Obj(zeroed))
            .unwrap_err()
            .contains("byte_ratio"));
    }
}
