//! Regenerates **Fig. 1** of the paper — "Decomposing a sub-lattice over
//! multiple virtual nodes" — as an ASCII rendering of a 2-D slice, plus a
//! check of the property the figure illustrates: nearest-neighbour sites
//! are assigned to *different vectors* (same lane), so the hopping term
//! needs lane permutations only at virtual-node boundaries.

use grid::prelude::*;
use grid::stencil::{dir_index, Stencil};

fn main() {
    let vl = VectorLength::of(512); // 4 complex lanes = 4 virtual nodes
    let g = Grid::<f64>::new([8, 8, 4, 4], vl, SimdBackend::Fcmla);
    println!("FIG. 1 — SUB-LATTICE DECOMPOSED OVER VIRTUAL NODES\n");
    println!(
        "lattice {:?}, SIMD complex lanes {}, virtual-node grid {:?}, \
         per-node sub-lattice {:?}\n",
        g.fdims(),
        g.lanes_c(),
        g.simd_layout(),
        g.rdims()
    );

    // Render the (x, y) plane at z = t = 0: each site shows the SIMD lane
    // (= virtual node) that holds it.
    println!("lane (virtual node) per site in the x-y plane (z = t = 0):\n");
    for y in (0..g.fdims()[1]).rev() {
        let mut line = String::new();
        for x in 0..g.fdims()[0] {
            let (_, lane) = g.coor_to_osite_lane(&[x, y, 0, 0]);
            line.push_str(&format!("{lane:^3}"));
            if (x + 1) % g.rdims()[0] == 0 && x + 1 != g.fdims()[0] {
                line.push('|');
            }
        }
        println!("  {line}");
        if y % g.rdims()[1] == 0 && y != 0 {
            let width = 3 * g.fdims()[0] + g.simd_layout()[0] - 1;
            println!("  {}", "-".repeat(width));
        }
    }

    // The figure's point, verified.
    let stencil = Stencil::new(g.clone());
    let mut interior = 0usize;
    let mut boundary = 0usize;
    for o in 0..g.osites() {
        for dir in 0..8 {
            if stencil.leg(dir, o).perm.is_some() {
                boundary += 1;
            } else {
                interior += 1;
            }
        }
    }
    println!(
        "\nstencil legs: {interior} stay within lanes, {boundary} cross a \
         virtual-node boundary (lane permutation)"
    );
    let frac = boundary as f64 / (interior + boundary) as f64;
    println!(
        "permutation fraction {:.1}% — data for neighbouring sites lives in \
         different vectors, as the virtual-node layout promises",
        frac * 100.0
    );

    // And directions that are not split need no permutation at all.
    for mu in 0..4 {
        let any = (0..g.osites()).any(|o| stencil.leg(dir_index(mu, true), o).perm.is_some());
        println!(
            "  direction {mu}: simd_layout {} -> {}",
            g.simd_layout()[mu],
            if any {
                "permutes at block boundary"
            } else {
                "never permutes"
            }
        );
    }
}
