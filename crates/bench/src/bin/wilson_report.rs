//! The headline-claim report: "the SVE ISA allows for an efficient
//! implementation of key computational patterns used in LQCD applications"
//! (paper, contribution 3).
//!
//! For the Wilson hopping term — the key computational pattern — this
//! prints, per vector length and backend: dynamic instructions per site,
//! useful FLOPs per instruction (vector-ISA efficiency), and the scaling of
//! instruction count with vector width.

use bench::BENCH_LATTICE;
use grid::prelude::*;
use sve::{OpClass, Opcode};

/// Useful floating-point operations per lattice site for one Dh
/// application: 8 legs x (spin project 2x3 cadds + SU(3) halfspinor
/// multiply 2x(9 cmul + 6 cadd) + reconstruct 2x3 cadds) with 6 flops per
/// complex multiply-add and 2 per complex add. The standard Wilson dslash
/// count is 1320 flops/site.
const FLOPS_PER_SITE: f64 = 1320.0;

fn main() {
    println!(
        "WILSON HOPPING TERM — INSTRUCTION EFFICIENCY ACROSS VECTOR LENGTHS\n\
         lattice {:?}, {} sites\n",
        BENCH_LATTICE,
        BENCH_LATTICE.iter().product::<usize>()
    );
    println!(
        "{:<10} {:<11} {:>11} {:>12} {:>10} {:>12}",
        "VL", "backend", "insts/site", "flops/inst", "fcmla/site", "perm/site"
    );
    let mut base: Option<f64> = None;
    for vl in VectorLength::sweep() {
        for backend in SimdBackend::all() {
            let g = Grid::new(BENCH_LATTICE, vl, backend);
            let d = WilsonDirac::new(random_gauge(g.clone(), 77), 0.2);
            let psi = FermionField::random(g.clone(), 78);
            g.engine().ctx().counters().reset();
            let _ = d.hopping(&psi);
            let c = g.engine().ctx().counters();
            let sites = g.volume() as f64;
            let per_site = c.total() as f64 / sites;
            let flops_per_inst = FLOPS_PER_SITE / per_site;
            println!(
                "{:<10} {:<11} {:>11.1} {:>12.2} {:>10.1} {:>12.2}",
                format!("{vl}"),
                backend.name(),
                per_site,
                flops_per_inst,
                c.get(Opcode::Fcmla) as f64 / sites,
                c.total_class(OpClass::Permute) as f64 / sites,
            );
            if backend == SimdBackend::Fcmla && vl == VectorLength::of(128) {
                base = Some(per_site);
            }
        }
        println!();
    }

    if let Some(b128) = base {
        println!("instruction-count scaling of the FCMLA backend vs VL128:");
        for vl in VectorLength::sweep() {
            let g = Grid::new(BENCH_LATTICE, vl, SimdBackend::Fcmla);
            let d = WilsonDirac::new(random_gauge(g.clone(), 77), 0.2);
            let psi = FermionField::random(g.clone(), 78);
            g.engine().ctx().counters().reset();
            let _ = d.hopping(&psi);
            let per_site = g.engine().ctx().counters().total() as f64 / g.volume() as f64;
            println!(
                "  {:<10} {:>8.1} insts/site   speedup x{:.2} (ideal x{:.0})",
                format!("{vl}"),
                per_site,
                b128 / per_site,
                vl.bits() as f64 / 128.0
            );
        }
        println!(
            "\n(Scaling falls slightly short of ideal at the widest vectors:\n\
             more virtual nodes mean more stencil legs crossing block\n\
             boundaries, i.e. more lane permutations — the cost the\n\
             virtual-node layout keeps sub-linear.)"
        );
    }
}
