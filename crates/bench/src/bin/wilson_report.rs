//! The headline-claim report: "the SVE ISA allows for an efficient
//! implementation of key computational patterns used in LQCD applications"
//! (paper, contribution 3).
//!
//! Built on the `qcd-trace` region registry: one profiled sweep of the
//! Wilson hopping term over every vector length and backend, plus the
//! FCMLA complex-multiply kernels of Sections IV-C/IV-D with their
//! paper-predicted instruction counts. Prints per-region efficiency
//! numbers, the VL-scaling of the FCMLA backend, and the full region
//! profile.
//!
//! Usage: `wilson_report [--json <path>] [--checkpoint <path>]
//! [--resume <path>] [--ckpt-every <n>] [--bench <path>] [--bench-l <n>]
//! [--bench-iters <n>] [--rhs <n>] [--deflate] [--precision]
//! [--bench-comms <path>] [--comms-rhs <n>] [--comms-iters <n>]
//! [--metrics <path>]`.
//!
//! With `--json`, additionally writes the registry snapshot as a
//! `qcd-trace/v1` document (schema documented on
//! `qcd_trace::Snapshot::to_json`), validated by a parse-back round-trip
//! before anything touches disk.
//!
//! With `--checkpoint`, runs a CG solve on a fixed demo problem, kills it
//! after a few iterations, and leaves the latest `qcd-io` snapshot at the
//! path. A later invocation with `--resume` restores that snapshot,
//! finishes the solve, and verifies the result is bit-identical to an
//! uninterrupted run — the kill-and-resume smoke test CI executes.
//!
//! With `--bench`, times the unfused allocating CG against the fused
//! workspace CG on an `l⁴` demo problem (bit-identical iterates asserted)
//! and writes the validated `qcd-bench-solver/v1` document — the artifact
//! the CI bench-smoke job uploads. The document also carries the batched
//! multi-RHS `M†M` legs (default N ∈ {1,4,8,16}; `--rhs <n>` benchmarks
//! `{1, n}` instead), and the run fails if batching eight right-hand
//! sides is slower than one at a time. Adding `--deflate` thermalizes a
//! short HMC chain, builds a thick-restart Lanczos subspace on `M†M`, and
//! runs the deflated-vs-undeflated N=16 block comparison plus the
//! coarse-grid two-level leg; the run fails unless the deflated batch
//! beats the undeflated one in total iterations AND wall time, and the
//! gated `deflation` section is exported in the document. Adding
//! `--precision` runs the f16-inner vs f32-inner mixed-precision ladder
//! comparison on the same thermalized recipe; the run fails unless both
//! ladders reach the f64 tolerance and the f16-inner leg moves at most
//! 0.6x the f32-inner leg's trace-span bytes per inner iteration, and the
//! gated `precision` section is exported in the document.
//!
//! With `--bench-comms`, runs the multi-rank strong-scaling sweep: the
//! same global problem solved by a distributed block CG at R ∈ {1,2,4}
//! (time-direction decomposition) over a modeled interconnect, reporting
//! sites/s vs R, measured-vs-modeled wire bytes, and the comms/compute
//! overlap efficiency. Residual histories must be bit-identical across
//! rank counts and every multi-rank leg must hide at least half its
//! modeled flight time; the validated `qcd-bench-comms/v1` document is
//! the artifact the CI comms-smoke job gates.
//!
//! With `--hmc`, generates a short pure-gauge ensemble (cold start,
//! `--hmc-therm` thermalization trajectories, `--hmc-traj` measured ones on
//! an `--hmc-l`⁴ lattice), enforces the equilibrium gates — Metropolis
//! acceptance above 0.5 and `⟨exp(-ΔH)⟩ = 1` within 3σ — and writes the
//! validated `qcd-bench-hmc/v1` document the CI hmc-smoke job uploads.
//!
//! With `--metrics <path>`, additionally dumps the observability state —
//! every registered counter/gauge/histogram, the flight-recorder ring, and
//! (for `--hmc`) the per-trajectory sampler time series — as a validated
//! `qcd-metrics/v1` JSONL document.

use bench::comms_bench;
use bench::deflate_bench;
use bench::hmc_bench;
use bench::precision_bench;
use bench::profile;
use bench::solver_bench;
use bench::BENCH_LATTICE;
use grid::prelude::*;
use sve::{OpClass, Opcode};

/// Render, validate, and write the `qcd-metrics/v1` JSONL dump, with the
/// sampler's time-series lines appended when a sampler ran.
fn write_metrics_dump(path: &str, sampler: Option<&qcd_metrics::Sampler>) {
    let mut doc = qcd_metrics::dump_all_jsonl();
    if let Some(s) = sampler {
        doc.push_str(&s.to_jsonl());
    }
    if let Err(e) = qcd_metrics::validate_jsonl(&doc) {
        eprintln!("wilson_report: metrics dump failed validation: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("wilson_report: write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote validated {schema} metrics dump to {path}",
        schema = qcd_metrics::SCHEMA
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_args = match profile::parse_report_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("wilson_report: {e}");
            std::process::exit(2);
        }
    };
    let json_path = report_args.json.clone();
    // Every span close from here on feeds the flight recorder and the
    // `span.<leaf>` histograms.
    qcd_metrics::install_span_observer();

    // A benchmark run is standalone: time the two solver legs, write the
    // validated document, skip the instruction-efficiency sweep.
    if let Some(path) = &report_args.bench {
        let rhs_counts: Vec<usize> = match report_args.rhs {
            Some(n) => vec![1, n],
            None => solver_bench::BLOCK_RHS_COUNTS.to_vec(),
        };
        let mut bench = match solver_bench::run_solver_bench_with_rhs(
            report_args.bench_l,
            report_args.bench_iters,
            &rhs_counts,
        ) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        };
        if report_args.deflate {
            let cfg = deflate_bench::DeflationConfig::default();
            match deflate_bench::run_deflation_bench(&cfg) {
                Ok(d) => bench.deflation = Some(d),
                Err(e) => {
                    eprintln!("wilson_report: deflation benchmark: {e}");
                    std::process::exit(1);
                }
            }
        }
        if report_args.precision {
            let cfg = precision_bench::PrecisionConfig::default();
            match precision_bench::run_precision_bench(&cfg) {
                Ok(p) => bench.precision = Some(p),
                Err(e) => {
                    eprintln!("wilson_report: precision benchmark: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "SOLVER BENCHMARK — fused workspace CG vs unfused allocating CG\n\
             lattice {:?}, VL{} {}, {} thread(s), {} iterations/leg\n",
            bench.dims, bench.vl_bits, bench.backend, bench.threads, bench.iterations
        );
        println!(
            "{:<10} {:>14} {:>14} {:>10} {:>12}",
            "leg", "wall ms", "sites/s", "GFLOP/s", "sweeps/iter"
        );
        for (name, leg) in [("baseline", &bench.baseline), ("fused", &bench.fused)] {
            println!(
                "{:<10} {:>14.2} {:>14.0} {:>10.3} {:>12.1}",
                name,
                leg.wall_ns as f64 / 1e6,
                leg.sites_per_sec,
                leg.gflops,
                leg.sweeps_per_iter
            );
        }
        println!(
            "\nspeedup: x{:.2} (fused / baseline, sites/s)",
            bench.speedup
        );
        println!(
            "\nBATCHED M†M — one link load per site amortised over N right-hand sides\n\
             {:<6} {:>14} {:>16} {:>10} {:>8} {:>9} {:>9} {:>9} {:>12}",
            "N",
            "wall ms",
            "RHS-sites/s",
            "GFLOP/s",
            "AI",
            "AI 2row",
            "speedup",
            "AI gain",
            "mem-bound x"
        );
        for leg in &bench.block {
            println!(
                "{:<6} {:>14.2} {:>16.0} {:>10.3} {:>8.3} {:>9.3} {:>9.2} {:>9.2} {:>12.3}",
                leg.nrhs,
                leg.wall_ns as f64 / 1e6,
                leg.sites_per_sec,
                leg.gflops,
                leg.ai,
                leg.ai_two_row,
                leg.speedup,
                leg.ai_gain,
                leg.mem_bound_speedup
            );
        }
        println!(
            "(mem-bound x: trace-span bytes per RHS-site, N=1 full links over\n\
             batch-N two-row links — the throughput factor in the\n\
             bandwidth-bound regime the paper targets; wall clock here is\n\
             compute-bound on the scalar SVE functional model.)"
        );
        if let Err(e) = solver_bench::check_block_throughput(&bench) {
            eprintln!("wilson_report: {e}");
            std::process::exit(1);
        }
        println!(
            "metrics overhead: x{:.4} (flight recorder on / off, N=8 block solve; \
             gate x{:.2})",
            bench.metrics_overhead,
            solver_bench::METRICS_OVERHEAD_LIMIT
        );
        if let Err(e) = solver_bench::check_metrics_overhead(&bench) {
            eprintln!("wilson_report: {e}");
            std::process::exit(1);
        }
        if let Some(d) = &bench.deflation {
            let c = &d.config;
            println!(
                "\nLOW-MODE DEFLATION — thermalized configuration, N={} RHS at tol {:.0e}\n\
                 lattice {:?}, β={} × {} trajectories (plaquette {:.6}), mass {}\n\
                 subspace: {} pairs, basis {}, {} restarts / {} M†M products, \
                 λ ∈ [{:.4}, {:.4}], built in {:.2} s\n",
                c.nrhs,
                c.tol,
                c.dims,
                c.beta,
                c.therm,
                d.plaquette,
                c.mass,
                c.nev,
                c.m,
                d.eig_restarts,
                d.eig_mvps,
                d.lambda_min,
                d.lambda_max,
                d.eig_wall_ns as f64 / 1e9,
            );
            println!("{:<12} {:>12} {:>14}", "leg", "total iters", "wall ms");
            for (name, iters, wall) in [
                ("undeflated", d.undeflated_iters, d.undeflated_wall_ns),
                ("deflated", d.deflated_iters, d.deflated_wall_ns),
            ] {
                println!("{:<12} {:>12} {:>14.2}", name, iters, wall as f64 / 1e6);
            }
            println!(
                "\niteration gain x{:.2}, wall gain x{:.2}; subspace setup amortized \
                 after {:.0} RHS\ncoarse-grid PCG on RHS 0: {} iterations vs {} plain CG",
                d.iter_gain,
                d.wall_gain,
                d.crossover_rhs.ceil(),
                d.coarse_rhs0_iters,
                d.undeflated_rhs0_iters,
            );
            if let Err(e) = deflate_bench::check_deflation_gain(d) {
                eprintln!("wilson_report: deflation gate failed: {e}");
                std::process::exit(1);
            }
            println!(
                "deflation gate passed: deflated batch beats undeflated in total \
                 iterations and wall time"
            );
        }
        if let Some(p) = &bench.precision {
            let c = &p.config;
            println!(
                "\nMIXED-PRECISION LADDER — f16-inner vs f32-inner, reliable updates\n\
                 lattice {:?}, β={} × {} trajectories (plaquette {:.6}), mass {}, tol {:.0e}\n",
                c.dims, c.beta, c.therm, p.plaquette, c.mass, c.tol,
            );
            println!(
                "{:<10} {:>6} {:>9} {:>9} {:>8} {:>9} {:>12} {:>12} {:>11}",
                "leg",
                "outer",
                "f16 iter",
                "f32 iter",
                "rel.upd",
                "fallback",
                "residual",
                "wall ms",
                "bytes/iter"
            );
            for (name, leg) in [("f32-inner", &p.f32_inner), ("f16-inner", &p.f16_inner)] {
                println!(
                    "{:<10} {:>6} {:>9} {:>9} {:>8} {:>9} {:>12.3e} {:>12.2} {:>11.0}",
                    name,
                    leg.outer_rounds,
                    leg.f16_iters,
                    leg.f32_iters,
                    leg.reliable_updates,
                    leg.tier_fallbacks,
                    leg.residual,
                    leg.wall_ns as f64 / 1e6,
                    leg.bytes_per_iter,
                );
            }
            println!(
                "\ninner-sweep byte ratio: x{:.3} (f16-inner / f32-inner, trace-span \
                 bytes per inner iteration; gate x{})",
                p.byte_ratio,
                precision_bench::PRECISION_BYTE_RATIO_LIMIT
            );
            if let Err(e) = precision_bench::check_precision(p) {
                eprintln!("wilson_report: precision gate failed: {e}");
                std::process::exit(1);
            }
            println!(
                "precision gate passed: both ladders reach the f64 tolerance and the \
                 f16-inner leg moves <= 0.6x the bytes per inner iteration"
            );
        }
        match solver_bench::write_validated_bench_json(&bench, path) {
            Ok(()) => println!(
                "wrote validated {schema} document to {path}",
                schema = solver_bench::SOLVER_BENCH_SCHEMA
            ),
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        }
        if let Some(mpath) = &report_args.metrics {
            write_metrics_dump(mpath, None);
        }
        return;
    }

    // A comms scaling run is standalone: sweep the rank counts, enforce
    // the wire-byte and overlap gates, write the validated document.
    if let Some(path) = &report_args.bench_comms {
        let bench = match comms_bench::run_comms_bench(
            comms_bench::COMMS_BENCH_LATTICE,
            &comms_bench::COMMS_RANK_COUNTS,
            report_args.comms_rhs,
            report_args.comms_iters,
        ) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "MULTI-RANK STRONG SCALING — distributed block CG with comms/compute overlap\n\
             global lattice {:?}, VL{} {}, {} thread(s), N={} RHS, {} iterations/RHS\n\
             fabric: {} ns/message latency, {} GB/s per link; lossless two-row wire\n",
            bench.dims,
            bench.vl_bits,
            bench.backend,
            bench.threads,
            bench.nrhs,
            bench.iterations,
            comms_bench::COMMS_NET_LATENCY_NS,
            comms_bench::COMMS_NET_GBYTES_PER_S,
        );
        println!(
            "{:<4} {:<12} {:>10} {:>14} {:>12} {:>12} {:>10} {:>10} {:>9}",
            "R",
            "rank grid",
            "wall ms",
            "RHS-sites/s",
            "wire B meas",
            "wire B model",
            "wait µs",
            "flight µs",
            "overlap"
        );
        for leg in &bench.legs {
            println!(
                "{:<4} {:<12} {:>10.2} {:>14.0} {:>12} {:>12} {:>10.1} {:>10.1} {:>9.3}",
                leg.ranks,
                format!("{:?}", leg.rank_grid),
                leg.wall_ns as f64 / 1e6,
                leg.sites_per_sec,
                leg.wire_bytes_measured,
                leg.wire_bytes_modeled,
                leg.wait_ns as f64 / 1e3,
                leg.flight_ns as f64 / 1e3,
                leg.overlap_eff,
            );
        }
        println!(
            "\n(residual histories bit-identical across rank counts; measured wire\n\
             bytes equal the pinned two-row face model on every leg.)"
        );
        if let Err(e) = comms_bench::check_overlap_efficiency(&bench) {
            eprintln!("wilson_report: {e}");
            std::process::exit(1);
        }
        println!(
            "overlap gate passed: every multi-rank leg hides >= {:.0}% of its modeled\n\
             comms flight time behind the interior sweep",
            comms_bench::OVERLAP_EFF_TARGET * 100.0
        );
        match comms_bench::write_validated_comms_bench_json(&bench, path) {
            Ok(()) => println!(
                "wrote validated {schema} document to {path}",
                schema = comms_bench::COMMS_BENCH_SCHEMA
            ),
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        }
        if let Some(mpath) = &report_args.metrics {
            write_metrics_dump(mpath, None);
        }
        return;
    }

    // An HMC run is standalone: generate the ensemble, enforce the
    // physics gates, write the validated document.
    if let Some(path) = &report_args.hmc {
        let cfg = hmc_bench::HmcBenchConfig {
            l: report_args.hmc_l,
            traj: report_args.hmc_traj,
            therm: report_args.hmc_therm,
            ..hmc_bench::HmcBenchConfig::default()
        };
        // With --metrics, sample the registry once per measured trajectory
        // so the dump carries the plaquette / ΔH time series.
        let mut sampler = report_args
            .metrics
            .as_ref()
            .map(|_| qcd_metrics::Sampler::new(1));
        let bench = match hmc_bench::run_hmc_bench_sampled(cfg, sampler.as_mut()) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "HMC ENSEMBLE GENERATION — pure-gauge Wilson action, Omelyan integrator\n\
             lattice {:?}, VL{} {}, {} thread(s), β={}, {} MD steps × ε={}\n\
             {} thermalization + {} measured trajectories\n",
            bench.dims,
            bench.vl_bits,
            bench.backend,
            bench.threads,
            bench.config.beta,
            bench.config.n_steps,
            bench.config.step_size,
            bench.config.therm,
            bench.config.traj,
        );
        println!(
            "trajectories/s: {:.3}\nforce GFLOP/s:  {:.3}\nacceptance:     {:.3}\n\
             <exp(-dH)>:     {:.4} ± {:.4}\navg plaquette:  {:.6}",
            bench.trajectories_per_sec,
            bench.force_gflops,
            bench.acceptance,
            bench.mean_exp_dh,
            bench.stderr_exp_dh,
            bench.avg_plaquette,
        );
        if let Err(e) = hmc_bench::check_hmc_physics(&bench) {
            eprintln!("wilson_report: physics gate failed: {e}");
            std::process::exit(1);
        }
        println!("physics gates passed: acceptance > 0.5, <exp(-dH)> = 1 within 3 sigma");
        match hmc_bench::write_validated_hmc_bench_json(&bench, path) {
            Ok(()) => println!(
                "wrote validated {schema} document to {path}",
                schema = hmc_bench::HMC_BENCH_SCHEMA
            ),
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        }
        if let Some(mpath) = &report_args.metrics {
            write_metrics_dump(mpath, sampler.as_ref());
        }
        return;
    }

    // Checkpoint/restart runs are standalone: do the solve work, skip the
    // instruction-efficiency sweep.
    if report_args.checkpoint.is_some() || report_args.resume.is_some() {
        if let Some(path) = &report_args.checkpoint {
            match profile::write_interrupted_checkpoint(path, report_args.every) {
                Ok((iters, snapshots, bytes)) => println!(
                    "checkpoint: killed CG after {iters} iterations; {snapshots} snapshot(s) \
                     written, latest at {path} ({bytes} bytes)"
                ),
                Err(e) => {
                    eprintln!("wilson_report: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &report_args.resume {
            match profile::resume_from_checkpoint(path) {
                Ok((from, report)) => println!(
                    "resume: restored iteration {from} from {path}; converged after \
                     {} total iterations, residual {:.3e} — bit-identical to the \
                     uninterrupted solve",
                    report.iterations, report.residual
                ),
                Err(e) => {
                    eprintln!("wilson_report: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(mpath) = &report_args.metrics {
            write_metrics_dump(mpath, None);
        }
        return;
    }

    let snap = profile::build_wilson_profile(BENCH_LATTICE);

    println!(
        "WILSON HOPPING TERM — INSTRUCTION EFFICIENCY ACROSS VECTOR LENGTHS\n\
         lattice {:?}, {} sites\n",
        BENCH_LATTICE,
        BENCH_LATTICE.iter().product::<usize>()
    );
    println!(
        "{:<10} {:<11} {:>11} {:>12} {:>10} {:>12} {:>10}",
        "VL", "backend", "insts/site", "flops/inst", "fcmla/site", "perm/site", "AI f/B"
    );
    let mut base: Option<f64> = None;
    for vl in VectorLength::sweep() {
        for backend in SimdBackend::all() {
            let hop = snap
                .region(&profile::wilson_hop_region(vl, backend))
                .expect("profiled hopping region");
            let sites = hop.sites as f64;
            let per_site = hop.total_insts() as f64 / sites;
            let perm: u64 = Opcode::ALL
                .iter()
                .filter(|op| op.class() == OpClass::Permute)
                .map(|&op| hop.insts_for(op))
                .sum();
            println!(
                "{:<10} {:<11} {:>11.1} {:>12.2} {:>10.1} {:>12.2} {:>10.2}",
                format!("{vl}"),
                backend.name(),
                per_site,
                hop.flops as f64 / hop.total_insts() as f64,
                hop.insts_for(Opcode::Fcmla) as f64 / sites,
                perm as f64 / sites,
                hop.arithmetic_intensity().unwrap_or(0.0),
            );
            if backend == SimdBackend::Fcmla && vl == VectorLength::of(128) {
                base = Some(per_site);
            }
        }
        println!();
    }

    if let Some(b128) = base {
        println!("instruction-count scaling of the FCMLA backend vs VL128:");
        for vl in VectorLength::sweep() {
            let hop = snap
                .region(&profile::wilson_hop_region(vl, SimdBackend::Fcmla))
                .expect("profiled hopping region");
            let per_site = hop.total_insts() as f64 / hop.sites as f64;
            println!(
                "  {:<10} {:>8.1} insts/site   speedup x{:.2} (ideal x{:.0})",
                format!("{vl}"),
                per_site,
                b128 / per_site,
                vl.bits() as f64 / 128.0
            );
        }
        println!(
            "\n(Scaling falls slightly short of ideal at the widest vectors:\n\
             more virtual nodes mean more stencil legs crossing block\n\
             boundaries, i.e. more lane permutations — the cost the\n\
             virtual-node layout keeps sub-linear.)"
        );
    }

    println!("\nFCMLA COMPLEX MULTIPLY — MEASURED VS PAPER LISTINGS IV-C/IV-D\n");
    println!(
        "{:<46} {:>6} {:>8} {:>7} {:>8}",
        "region", "runs", "insts", "fcmla", "% pred"
    );
    for path in [
        profile::MULT_CPLX_FIXED_REGION.to_string(),
        profile::MULT_CPLX_VLA_REGION.to_string(),
        profile::armie_fixed_region(),
    ] {
        let stat = snap.region(&path).expect("profiled mult_cplx region");
        println!(
            "{:<46} {:>6} {:>8} {:>7} {:>8}",
            path,
            stat.count,
            stat.total_insts(),
            stat.insts_for(Opcode::Fcmla),
            stat.percent_of_predicted()
                .map(|p| format!("{p:.0}%"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    println!("\nFULL REGION PROFILE\n");
    println!("{}", qcd_trace::render_table(&snap));

    if let Some(path) = json_path {
        match profile::write_validated_json(&snap, &path) {
            Ok(()) => println!("wrote validated qcd-trace/v1 profile to {path}"),
            Err(e) => {
                eprintln!("wilson_report: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(mpath) = &report_args.metrics {
        write_metrics_dump(mpath, None);
    }
}
