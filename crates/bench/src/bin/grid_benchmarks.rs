//! Grid-style ready-made benchmarks (the "benchmarks" half of the paper's
//! Section V-D "tests and benchmarks"): `Benchmark_memory` (streaming
//! axpy), `Benchmark_su3` (SU(3) matrix x vector throughput) and
//! `Benchmark_wilson` (the Dirac kernel), reported in simulated-traffic and
//! simulated-FLOP terms per vector instruction.

use bench::BENCH_LATTICE;
use grid::prelude::*;
use grid::tensor::su3::{mat_vec, random_su3};
use grid::CVec;
use std::sync::Arc;

fn main() {
    let vl = VectorLength::of(512);
    println!("GRID-STYLE BENCHMARKS (VL {vl}, FCMLA backend)\n");

    // ---- Benchmark_memory: streaming axpy over a fermion field ----------
    {
        let g = Grid::new(BENCH_LATTICE, vl, SimdBackend::Fcmla);
        let x = FermionField::random(g.clone(), 1);
        let y = FermionField::random(g.clone(), 2);
        let mut z = FermionField::zero(g.clone());
        g.engine().ctx().counters().reset();
        z.axpy(0.5, &x, &y);
        let c = g.engine().ctx().counters();
        let bytes = 3 * x.data().len() * 8; // 2 reads + 1 write
        println!("Benchmark_memory (axpy, {} sites):", g.volume());
        println!("  vector instructions : {}", c.total());
        println!(
            "  simulated traffic   : {} KiB ({:.1} bytes/instruction)",
            bytes / 1024,
            bytes as f64 / c.total() as f64
        );
    }

    // ---- Benchmark_su3: register-resident matrix-vector ----------------
    {
        let eng = SimdEngine::<f64>::new(Arc::new(SveCtx::new(vl)), SimdBackend::Fcmla);
        let m = random_su3(7, 1);
        let uw: [[CVec; 3]; 3] =
            std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|_| m[r][c])));
        let vw: [CVec; 3] =
            std::array::from_fn(|c| eng.from_fn(|l| Complex::new(l as f64, c as f64 - 1.0)));
        let reps = 1000;
        eng.ctx().counters().reset();
        let mut acc = vw;
        for _ in 0..reps {
            acc = mat_vec(&eng, &uw, &acc);
        }
        let c = eng.ctx().counters();
        // 3x3 complex mat-vec = 9 cmul + 6 cadd = 66 flops per complex lane.
        let flops = 66 * eng.lanes_c() * reps;
        println!(
            "\nBenchmark_su3 ({} reps, {} complex lanes):",
            reps,
            eng.lanes_c()
        );
        println!("  vector instructions : {}", c.total());
        println!(
            "  simulated flops     : {} ({:.1} flops/instruction)",
            flops,
            flops as f64 / c.total() as f64
        );
    }

    // ---- Benchmark_wilson: the Dirac kernel -----------------------------
    {
        println!("\nBenchmark_wilson (hopping term, {:?}):", BENCH_LATTICE);
        println!(
            "{:<10} {:>12} {:>14} {:>16}",
            "VL", "insts/site", "flops/inst", "cycles/site*"
        );
        for vl in VectorLength::sweep() {
            let g = Grid::new(BENCH_LATTICE, vl, SimdBackend::Fcmla);
            let d = WilsonDirac::new(random_gauge(g.clone(), 3), 0.2);
            let psi = FermionField::random(g.clone(), 4);
            g.engine().ctx().counters().reset();
            let _ = d.hopping(&psi);
            let per_site = g.engine().ctx().counters().total() as f64 / g.volume() as f64;
            let cycles = g.engine().ctx().cycles(CostModel::FcmlaFast) as f64 / g.volume() as f64;
            println!(
                "{:<10} {:>12.1} {:>14.2} {:>16.1}",
                format!("{vl}"),
                per_site,
                1320.0 / per_site,
                cycles
            );
        }
        println!("  (*fcmla-fast profile; 1320 flops/site is the standard Wilson count)");
    }

    // ---- Benchmark_dwf: the domain-wall operator -------------------------
    {
        use grid::prelude::*;
        let vl = VectorLength::of(512);
        let ls = 8;
        let g = Grid::new([4, 4, 4, 4], vl, SimdBackend::Fcmla);
        let op = DomainWall::new(random_gauge(g.clone(), 5), ls, 1.8, 0.04);
        let psi = Fermion5::random(g.clone(), ls, 6);
        g.engine().ctx().counters().reset();
        let _ = op.apply(&psi);
        let c = g.engine().ctx().counters().total();
        println!("\nBenchmark_dwf (Ls = {ls}, {} 4-D sites):", g.volume());
        println!("  vector instructions : {c}");
        println!(
            "  insts per 5-D site  : {:.1} (Wilson kernel + chiral projections)",
            c as f64 / (ls * g.volume()) as f64
        );
    }
}
