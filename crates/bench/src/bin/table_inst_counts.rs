//! The implicit table of the paper's Section IV: per-iteration and
//! per-element instruction costs of the four listings, across vector
//! lengths — what the listing walk-throughs argue in prose, in numbers.

use armie::listings;
use bench::interleaved;
use sve::{OpClass, SveCtx, VectorLength};

fn main() {
    let n = 240; // complex elements
    let x = interleaved(2 * n, 0.0);
    let y = interleaved(2 * n, 1.0);

    println!("SECTION IV — DYNAMIC INSTRUCTION ANALYSIS ({n} complex elements)\n");
    println!(
        "{:<10} {:<28} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "VL", "listing", "steps", "per cplx", "arith", "complex", "mem"
    );
    for vl in VectorLength::sweep() {
        let lanes = vl.lanes64();
        let runs: Vec<(&str, listings::ListingRun)> = vec![
            (
                "IV-A real VLA",
                listings::run_mult_real(SveCtx::new(vl), &x, &y),
            ),
            (
                "IV-B cplx autovec",
                listings::run_mult_cplx_autovec(SveCtx::new(vl), &x, &y),
            ),
            (
                "IV-C cplx FCMLA VLA",
                listings::run_mult_cplx_fcmla_vla(SveCtx::new(vl), &x, &y),
            ),
            (
                "IV-D cplx FCMLA fixed",
                listings::run_mult_cplx_fcmla_fixed(SveCtx::new(vl), &x[..lanes], &y[..lanes]),
            ),
        ];
        for (name, run) in &runs {
            let c = run.machine.ctx.counters();
            // IV-A processes 2n reals; the complex listings n complex; IV-D
            // one vector = lanes/2 complex.
            let elems = match *name {
                "IV-A real VLA" => 2 * n,
                "IV-D cplx FCMLA fixed" => lanes / 2,
                _ => n,
            };
            let mem = c.total_class(OpClass::Load)
                + c.total_class(OpClass::Store)
                + c.total_class(OpClass::LoadStruct)
                + c.total_class(OpClass::StoreStruct);
            println!(
                "{:<10} {:<28} {:>8} {:>10.2} {:>8} {:>8} {:>8}",
                format!("{vl}"),
                name,
                run.report.steps,
                run.report.steps as f64 / elems as f64,
                c.total_class(OpClass::FpArith),
                c.total_class(OpClass::FpComplex),
                mem,
            );
        }
        println!();
    }
    println!(
        "Shapes to check against the paper:\n\
         - dynamic instructions fall ~1/VL (the wide-vector promise);\n\
         - IV-C uses fcmla only (2 per vector), IV-B real arithmetic only\n\
           (4 + 2 movprfx per vector) plus structure loads/stores;\n\
         - IV-D is loop-free: 8 instructions regardless of VL."
    );
}
