//! The implicit table of the paper's Section IV: per-iteration and
//! per-element instruction costs of the four listings, across vector
//! lengths — what the listing walk-throughs argue in prose, in numbers.
//!
//! Built on the `qcd-trace` region registry: every emulated listing run is
//! a `listings/<bits>b/armie.<name>` region, so the table, the wall-time
//! profile, and the JSON export all come from one measurement.
//!
//! Usage: `table_inst_counts [--json <path>]` — with `--json`, writes the
//! registry snapshot as a `qcd-trace/v1` document (schema documented on
//! `qcd_trace::Snapshot::to_json`), validated by a parse-back round-trip.

use bench::profile;
use sve::OpClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match profile::parse_json_arg(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("table_inst_counts: {e}");
            std::process::exit(2);
        }
    };

    let n = profile::MULT_CPLX_ELEMS; // complex elements
    let (all, snap) = profile::build_listings_profile(n);

    println!("SECTION IV — DYNAMIC INSTRUCTION ANALYSIS ({n} complex elements)\n");
    println!(
        "{:<10} {:<28} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "VL", "listing", "steps", "per cplx", "arith", "complex", "mem"
    );
    for (vl, runs) in &all {
        let lanes = vl.lanes64();
        for (name, run) in runs {
            let c = run.machine.ctx.counters();
            // IV-A processes 2n reals; the complex listings n complex; IV-D
            // one vector = lanes/2 complex.
            let elems = match *name {
                "IV-A real VLA" => 2 * n,
                "IV-D cplx FCMLA fixed" => lanes / 2,
                _ => n,
            };
            let mem = c.total_class(OpClass::Load)
                + c.total_class(OpClass::Store)
                + c.total_class(OpClass::LoadStruct)
                + c.total_class(OpClass::StoreStruct);
            println!(
                "{:<10} {:<28} {:>8} {:>10.2} {:>8} {:>8} {:>8}",
                format!("{vl}"),
                name,
                run.report.steps,
                run.report.steps as f64 / elems as f64,
                c.total_class(OpClass::FpArith),
                c.total_class(OpClass::FpComplex),
                mem,
            );
        }
        println!();
    }
    println!(
        "Shapes to check against the paper:\n\
         - dynamic instructions fall ~1/VL (the wide-vector promise);\n\
         - IV-C uses fcmla only (2 per vector), IV-B real arithmetic only\n\
           (4 + 2 movprfx per vector) plus structure loads/stores;\n\
         - IV-D is loop-free: 8 instructions regardless of VL."
    );

    println!("\nFULL REGION PROFILE\n");
    println!("{}", qcd_trace::render_table(&snap));

    if let Some(path) = json_path {
        match profile::write_validated_json(&snap, &path) {
            Ok(()) => println!("wrote validated qcd-trace/v1 profile to {path}"),
            Err(e) => {
                eprintln!("table_inst_counts: {e}");
                std::process::exit(1);
            }
        }
    }
}
