//! The **Section V-E ablation**: FCMLA versus the "alternative
//! implementation of complex arithmetics based on instructions for real
//! arithmetics", across kernels, vector lengths and silicon cost profiles.
//!
//! The paper's claim is qualitative ("at the cost of higher instruction
//! count and cutting down on the effectiveness of SVE vector register
//! usage", with the caveat that "it is not guaranteed that the FCMLA
//! instruction outperforms alternative implementations"). This table makes
//! both halves quantitative.

use bench::interleaved;
use grid::prelude::*;
use grid::simd::functors::{MultComplex, WordFunctor};
use grid::tensor::su3::{mat_vec, random_su3};
use std::sync::Arc;

fn main() {
    println!("SECTION V-E — FCMLA vs REAL-ARITHMETIC COMPLEX KERNELS\n");

    // ---- kernel 1: MultComplex word (the Section V-C listing) ----------
    println!("instructions per MultComplex word (load + compute + store):\n");
    println!(
        "{:<10} {:>11} {:>11} {:>11}",
        "VL", "sve-fcmla", "sve-real", "generic"
    );
    for vl in VectorLength::sweep() {
        let mut counts = Vec::new();
        for backend in SimdBackend::all() {
            let eng = SimdEngine::<f64>::new(Arc::new(SveCtx::new(vl)), backend);
            let x = interleaved(vl.lanes64(), 0.1);
            let y = interleaved(vl.lanes64(), 0.7);
            let mut out = vec![0.0; vl.lanes64()];
            eng.ctx().counters().reset();
            MultComplex.apply(&eng, &x, &y, &mut out);
            counts.push(eng.ctx().counters().total());
        }
        println!(
            "{:<10} {:>11} {:>11} {:>11}",
            format!("{vl}"),
            counts[0],
            counts[1],
            counts[2]
        );
    }

    // ---- kernel 2: SU(3) matrix x color vector --------------------------
    println!("\ninstructions per SU(3) matrix-vector product (register resident):\n");
    println!(
        "{:<10} {:>11} {:>11} {:>11}",
        "VL", "sve-fcmla", "sve-real", "generic"
    );
    let vl = VectorLength::of(512);
    let mut su3_counts = Vec::new();
    for backend in SimdBackend::all() {
        let eng = SimdEngine::<f64>::new(Arc::new(SveCtx::new(vl)), backend);
        let m = random_su3(5, 1);
        let uw: [[grid::CVec; 3]; 3] =
            std::array::from_fn(|r| std::array::from_fn(|c| eng.from_fn(|_| m[r][c])));
        let vw: [grid::CVec; 3] =
            std::array::from_fn(|c| eng.from_fn(|l| Complex::new(l as f64, c as f64)));
        eng.ctx().counters().reset();
        let _ = mat_vec(&eng, &uw, &vw);
        su3_counts.push(eng.ctx().counters().total());
    }
    println!(
        "{:<10} {:>11} {:>11} {:>11}",
        format!("{vl}"),
        su3_counts[0],
        su3_counts[1],
        su3_counts[2]
    );

    // ---- kernel 3: the full Wilson hopping term -------------------------
    println!("\ninstructions per lattice site, one Dh application (4^4 lattice):\n");
    println!(
        "{:<10} {:>11} {:>11} {:>11}",
        "VL", "sve-fcmla", "sve-real", "generic"
    );
    for vl in [
        VectorLength::of(128),
        VectorLength::of(512),
        VectorLength::of(2048),
    ] {
        let mut per_site = Vec::new();
        for backend in SimdBackend::all() {
            let g = Grid::new([4, 4, 4, 4], vl, backend);
            let d = WilsonDirac::new(random_gauge(g.clone(), 31), 0.1);
            let psi = FermionField::random(g.clone(), 32);
            g.engine().ctx().counters().reset();
            let _ = d.hopping(&psi);
            per_site.push(g.engine().ctx().counters().total() as f64 / g.volume() as f64);
        }
        println!(
            "{:<10} {:>11.1} {:>11.1} {:>11.1}",
            format!("{vl}"),
            per_site[0],
            per_site[1],
            per_site[2]
        );
    }

    // ---- the caveat: silicon cost profiles decide ----------------------
    println!("\ncycle estimate per Dh application under silicon profiles (VL512):\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "profile", "sve-fcmla", "sve-real", "generic"
    );
    let mut cycles = vec![Vec::new(); 3];
    for (bi, backend) in SimdBackend::all().into_iter().enumerate() {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), backend);
        let d = WilsonDirac::new(random_gauge(g.clone(), 31), 0.1);
        let psi = FermionField::random(g.clone(), 32);
        g.engine().ctx().counters().reset();
        let _ = d.hopping(&psi);
        for model in CostModel::all() {
            cycles[bi].push(g.engine().ctx().cycles(model));
        }
    }
    for (mi, model) in CostModel::all().into_iter().enumerate() {
        println!(
            "{:<12} {:>12} {:>12} {:>12}",
            model.name(),
            cycles[0][mi],
            cycles[1][mi],
            cycles[2][mi]
        );
    }
    println!(
        "\nReading: FCMLA needs the fewest instructions everywhere (the V-E\n\
         trade-off), but under the fcmla-slow profile the real-arithmetic\n\
         kernels overtake it — exactly the paper's reason for keeping both."
    );
}
