//! Regenerates the **Section V-D verification campaign**: the 40
//! representative checks across vector lengths, first under a faithful
//! toolchain, then under an injected tail-predication miscompile — printing
//! the pass/fail matrix the paper describes in prose ("the majority of
//! tests and benchmarks complete with success; however, some tests fail
//! ... for some choices of the SVE vector length and implementations of
//! the predication").

use grid::SimdBackend;
use lqcd_sve::verification::run_matrix;
use sve::{ToolchainFault, VectorLength};

fn print_matrix(title: &str, fault: ToolchainFault) {
    let vls = VectorLength::sweep();
    let matrix = run_matrix(&vls, SimdBackend::Fcmla, fault);
    println!("== {title} ==\n");
    print!("{:<30} {:<8}", "check", "group");
    for vl in &matrix.vls {
        print!(" {:>7}", format!("{}", vl.bits()));
    }
    println!();
    println!("{}", "-".repeat(30 + 9 + 8 * matrix.vls.len()));
    let mut last_group = "";
    for (i, name) in matrix.names.iter().enumerate() {
        if matrix.groups[i] != last_group {
            last_group = matrix.groups[i];
        }
        print!("{:<30} {:<8}", name, matrix.groups[i]);
        for cell in &matrix.results[i] {
            print!(" {:>7}", if cell.is_ok() { "ok" } else { "FAIL" });
        }
        println!();
    }
    println!(
        "\n{} / {} cells pass ({:.1}%)\n",
        matrix.passed(),
        matrix.total(),
        100.0 * matrix.passed() as f64 / matrix.total() as f64
    );
}

fn main() {
    println!("SECTION V-D — VERIFICATION OF THE SVE-ENABLED PORT\n");
    print_matrix("faithful toolchain (all should pass)", ToolchainFault::None);
    print_matrix(
        "toolchain with a tail-predication miscompile at VL512 \
         (the paper's class of failure)",
        ToolchainFault::TailPredicationBug(VectorLength::of(512)),
    );
    println!(
        "Reading: only the VLA-style checks (partial predicates) fail, and\n\
         only at the faulted vector length. The fixed-size style the port\n\
         adopts (Section V-A/B) is immune by construction."
    );
}
