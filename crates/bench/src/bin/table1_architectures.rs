//! Regenerates **Table I** of the paper — "Architectures supported by Grid"
//! — extended with the SVE rows this reproduction implements (the paper's
//! 128/256/512 plus the future-work 1024/2048).

use grid::simd::{architecture_table, supported_vector_lengths};

fn main() {
    println!("TABLE I — ARCHITECTURES SUPPORTED BY GRID\n");
    println!("{:<48} Vector length", "SIMD family");
    println!("{}", "-".repeat(76));
    for row in architecture_table() {
        let bits = if row.vector_bits.is_empty() {
            "architecture independent, user-defined array size".to_string()
        } else {
            row.vector_bits
                .iter()
                .map(|b| format!("{b} bit"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{:<48} {}", row.family, bits);
    }
    println!(
        "\nSVE vector lengths enabled in this reproduction: {}",
        supported_vector_lengths()
            .iter()
            .map(|vl| format!("{}", vl.bits()))
            .collect::<Vec<_>>()
            .join("/")
    );
}
