//! Solver ablation: the design choices DESIGN.md calls out, measured.
//!
//! * plain CG on `M†M` (baseline),
//! * BiCGStab on `M`,
//! * even-odd (Schur) preconditioned CG,
//! * mixed-precision defect correction (f32 inner, f64 outer) — the payoff
//!   of SVE's precision-conversion support (paper, Sections II-C/III-A).
//!
//! Reported per solver: iterations, true residual, vector instructions, and
//! cycle estimates under the silicon profiles.

use grid::prelude::*;

fn main() {
    let dims = [4, 4, 4, 8];
    let vl = VectorLength::of(512);
    println!("SOLVER ABLATION — Wilson operator on {dims:?}, VL {vl}, FCMLA backend\n");
    println!(
        "{:<26} {:>7} {:>11} {:>13} {:>13}",
        "solver", "iters", "residual", "insts (f64)", "insts (f32)"
    );

    let tol = 1e-9;

    // Baseline CG.
    {
        let g = Grid::new(dims, vl, SimdBackend::Fcmla);
        let op = WilsonDirac::new(random_gauge(g.clone(), 11), 0.3);
        let b = FermionField::random(g.clone(), 12);
        g.engine().ctx().counters().reset();
        let (_, r) = solve_wilson(&op, &b, tol, 4000);
        println!(
            "{:<26} {:>7} {:>11.2e} {:>12.1}M {:>13}",
            "CG on M†M",
            r.iterations,
            r.residual,
            g.engine().ctx().counters().total() as f64 / 1e6,
            "-"
        );
    }

    // BiCGStab.
    {
        let g = Grid::new(dims, vl, SimdBackend::Fcmla);
        let op = WilsonDirac::new(random_gauge(g.clone(), 11), 0.3);
        let b = FermionField::random(g.clone(), 12);
        g.engine().ctx().counters().reset();
        let (_, r) = bicgstab(&op, &b, tol, 4000);
        println!(
            "{:<26} {:>7} {:>11.2e} {:>12.1}M {:>13}",
            "BiCGStab on M",
            r.iterations,
            r.residual,
            g.engine().ctx().counters().total() as f64 / 1e6,
            "-"
        );
    }

    // Even-odd preconditioned.
    {
        let g = Grid::new(dims, vl, SimdBackend::Fcmla);
        let op = WilsonDirac::new(random_gauge(g.clone(), 11), 0.3);
        let b = FermionField::random(g.clone(), 12);
        g.engine().ctx().counters().reset();
        let (_, r) = solve_eo(&op, &b, tol, 4000);
        println!(
            "{:<26} {:>7} {:>11.2e} {:>12.1}M {:>13}",
            "even-odd (Schur) CG",
            r.iterations,
            r.residual,
            g.engine().ctx().counters().total() as f64 / 1e6,
            "-"
        );
    }

    // Mixed precision.
    {
        let g = Grid::new(dims, vl, SimdBackend::Fcmla);
        let op = WilsonDirac::new(random_gauge(g.clone(), 11), 0.3);
        let b = FermionField::random(g.clone(), 12);
        g.engine().ctx().counters().reset();
        let (_, r) = mixed_precision_solve(&op, &b, tol, 1e-4, 30, 1000);
        println!(
            "{:<26} {:>5}+{:<3} {:>9.2e} {:>12.1}M {:>12.1}M",
            "mixed f32/f64 defect-corr",
            r.outer_iterations,
            r.inner_iterations,
            r.residual,
            r.f64_instructions as f64 / 1e6,
            r.f32_instructions as f64 / 1e6,
        );
    }

    println!(
        "\nReading: even-odd cuts iterations; mixed precision moves the bulk\n\
         of instructions to f32 vectors, which carry twice the complex lanes\n\
         per register — on real silicon that is ~2x arithmetic throughput,\n\
         exactly why Grid fields are templated over precision and why the\n\
         port cares about vectorized precision conversion."
    );

    // Fusion ablation: the stencil-fused kernel vs the cshift composition.
    println!("\nFUSION ABLATION — one Dh application, instructions:\n");
    let g = Grid::new(dims, vl, SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 21);
    let psi = FermionField::random(g.clone(), 22);
    let op = WilsonDirac::new(u.clone(), 0.3);
    g.engine().ctx().counters().reset();
    let _ = op.hopping(&psi);
    let fused = g.engine().ctx().counters().total();
    g.engine().ctx().counters().reset();
    let _ = grid::dirac::hopping_via_cshift(&u, &psi);
    let composed = g.engine().ctx().counters().total();
    println!("  fused stencil kernel : {fused}");
    println!("  cshift composition   : {composed}");
    println!(
        "  fusion saves {:.0}% of vector instructions (whole-field\n\
         temporaries cost loads/stores the fused kernel never issues).",
        100.0 * (1.0 - fused as f64 / composed as f64)
    );
}
