//! The CI bench-regression gate CLI.
//!
//! Usage: `bench_diff <baseline.json> <current.json>`.
//!
//! Both files must carry the same benchmark schema (`qcd-bench-solver/v1`
//! or `qcd-bench-hmc/v1`, auto-detected). Model-derived metrics — sweep
//! counts, arithmetic intensities, the memory-bound speedup model, the
//! seeded HMC physics observables — are compared at floating-point
//! tolerance and any drift fails the gate. Wall-clock metrics are compared
//! at a loose host-noise tolerance and only warn.
//!
//! Exit codes: `0` no regression (warnings allowed), `1` regression or
//! configuration mismatch, `2` usage / unreadable / mismatched-schema
//! input.

use bench::diff;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, current] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        std::process::exit(2);
    };
    let report = match diff::diff_files(baseline, current) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };
    for w in &report.warnings {
        println!("warning (wall-clock, not gated): {w}");
    }
    for f in &report.failures {
        println!("REGRESSION: {f}");
    }
    if report.passed() {
        println!(
            "bench_diff: OK — {baseline} vs {current}: no model-derived drift \
             ({} wall-clock warning(s))",
            report.warnings.len()
        );
    } else {
        eprintln!(
            "bench_diff: FAILED — {} regression(s) against {baseline}",
            report.failures.len()
        );
        std::process::exit(1);
    }
}
