//! Shared helpers for the benchmark harness and table generators.
//!
//! [`profile`] builds the registry-backed (`qcd-trace`) profiles behind the
//! `wilson_report` and `table_inst_counts` binaries, including their
//! `--json` export in the `qcd-trace/v1` schema.

pub mod comms_bench;
pub mod deflate_bench;
pub mod diff;
pub mod hmc_bench;
pub mod precision_bench;
pub mod profile;
pub mod solver_bench;

use grid::prelude::*;
use grid::Coor;

/// The `qcd-trace` registry is process-global; anything that calls
/// `qcd_trace::reset()` (profile builds, the HMC benchmark) serialises on
/// this lock so concurrent resets cannot shear each other's snapshots.
pub fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic interleaved complex test data.
pub fn interleaved(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.377 + phase).sin() * 2.0 - 0.25)
        .collect()
}

/// The vector lengths every sweep uses: the paper's three plus the
/// future-work widths.
pub fn sweep_vls() -> [VectorLength; 5] {
    VectorLength::sweep()
}

/// A compact sweep for wall-clock benchmarks.
pub fn bench_vls() -> [VectorLength; 3] {
    [
        VectorLength::of(128),
        VectorLength::of(512),
        VectorLength::of(2048),
    ]
}

/// Standard benchmark lattice (paper-scale lattices don't fit a functional
/// simulator; shape-preserving 4^3 x 8).
pub const BENCH_LATTICE: Coor = [4, 4, 4, 8];

/// Build a Wilson operator + source on a random gauge background.
pub fn wilson_setup(
    dims: Coor,
    vl: VectorLength,
    backend: SimdBackend,
) -> (WilsonDirac, FermionField) {
    let g = Grid::new(dims, vl, backend);
    let u = random_gauge(g.clone(), 1001);
    let b = FermionField::random(g.clone(), 1002);
    (WilsonDirac::new(u, 0.25), b)
}

/// Render a markdown-ish table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_consistent() {
        assert_eq!(interleaved(8, 0.0).len(), 8);
        assert_eq!(sweep_vls().len(), 5);
        let (op, b) = wilson_setup([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        assert!(b.norm2() > 0.0);
        assert!(op.mass > 0.0);
    }
}
