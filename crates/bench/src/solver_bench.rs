//! The before/after solver benchmark behind `wilson_report --bench`.
//!
//! Two Conjugate Gradient legs run the *same math* on the same problem for
//! a fixed iteration count:
//!
//! - **baseline** — the unfused formulation this codebase used before the
//!   allocation-free hot path: `M ψ` as a hopping sweep followed by a
//!   separate `(m+4)ψ − ½(·)` linear-combination sweep (fresh fields each
//!   application), the curvature dot as its own pass, and a per-iteration
//!   telemetry span.
//! - **fused** — the workspace path: dslash with the mass axpy fused into
//!   the store loop, the curvature dot fused into the second hopping sweep
//!   ([`WilsonDirac::mdag_m_into_dot`]), preallocated
//!   [`SolverWorkspace`] storage, and zero steady-state allocations.
//!
//! Both legs retire bit-identical iterates (asserted), so the throughput
//! ratio isolates the memory-traffic and allocation savings. The result is
//! exported as a `qcd-bench-solver/v1` JSON document, validated by a
//! parse-back schema check before anything touches disk — the artifact the
//! CI bench-smoke job uploads.

use grid::dirac::{
    FUSED_DOT_FLOPS_PER_SITE, FUSED_MASS_AXPY_FLOPS_PER_SITE, HOPPING_FLOPS_PER_SITE,
};
use grid::prelude::*;
use grid::Coor;
use qcd_trace::Json;
use std::time::Instant;

/// Schema identifier of the exported benchmark document.
pub const SOLVER_BENCH_SCHEMA: &str = "qcd-bench-solver/v1";

/// Useful floating-point work per lattice site per CG iteration, identical
/// for both legs (they compute the same recurrence):
/// two fused operator applications (hopping + mass axpy), the curvature
/// dot, the fused `x += αp / r −= αAp / |r|²` sweep (3 × 48 flops), and
/// the `p = r + βp` update (48 flops).
pub const CG_FLOPS_PER_SITE_PER_ITER: u64 = 2
    * (HOPPING_FLOPS_PER_SITE + FUSED_MASS_AXPY_FLOPS_PER_SITE)
    + FUSED_DOT_FLOPS_PER_SITE
    + 3 * 48
    + 48;

/// Full-field memory sweeps per CG iteration *beyond* the two dslash
/// stencil passes, baseline leg: one `scale_axpy` pass after each hopping
/// sweep, the standalone curvature inner product, the fused x/r update,
/// and the search-direction update. (Fresh-field zero-fills and
/// allocations come on top and are part of what the wall clock measures.)
pub const BASELINE_SWEEPS_PER_ITER: f64 = 5.0;

/// Fused leg: the mass axpy and curvature dot ride the dslash store loops,
/// leaving only the fused x/r update and the search-direction update.
pub const FUSED_SWEEPS_PER_ITER: f64 = 2.0;

/// Throughput of one benchmark leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegResult {
    /// Wall time of the iteration loop.
    pub wall_ns: u64,
    /// Lattice sites retired per second (volume × iterations / wall).
    pub sites_per_sec: f64,
    /// Useful GFLOP/s ([`CG_FLOPS_PER_SITE_PER_ITER`] per site-iteration).
    pub gflops: f64,
    /// Full-field sweeps per iteration beyond the dslash.
    pub sweeps_per_iter: f64,
}

/// A complete before/after solver benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverBench {
    /// Lattice extents.
    pub dims: Coor,
    /// SVE vector length in bits.
    pub vl_bits: u64,
    /// Complex-arithmetic backend name.
    pub backend: String,
    /// Worker threads the parallel field kernels used.
    pub threads: usize,
    /// CG iterations each leg ran.
    pub iterations: usize,
    /// The unfused allocating leg.
    pub baseline: LegResult,
    /// The fused workspace leg.
    pub fused: LegResult,
    /// `fused.sites_per_sec / baseline.sites_per_sec`.
    pub speedup: f64,
}

fn leg_result(dims: Coor, iters: usize, wall_ns: u64, sweeps: f64) -> LegResult {
    let sites = dims.iter().product::<usize>() as f64;
    let secs = wall_ns as f64 / 1e9;
    let site_iters = sites * iters as f64;
    LegResult {
        wall_ns,
        sites_per_sec: site_iters / secs,
        gflops: site_iters * CG_FLOPS_PER_SITE_PER_ITER as f64 / secs / 1e9,
        sweeps_per_iter: sweeps,
    }
}

/// Run both legs for exactly `iters` iterations on an `l⁴` lattice at
/// 512-bit SVE with the FCMLA backend, assert their iterates agree bit for
/// bit, and return the throughput comparison.
pub fn run_solver_bench(l: usize, iters: usize) -> Result<SolverBench, String> {
    if iters == 0 {
        return Err("--bench-iters must be positive".into());
    }
    let dims: Coor = [l, l, l, l];
    let vl = VectorLength::of(512);
    let backend = SimdBackend::Fcmla;
    let g = Grid::new(dims, vl, backend);
    let u = random_gauge(g.clone(), 91);
    let op = WilsonDirac::new(u, 0.2);
    let b = FermionField::random(g.clone(), 92);
    let a = 0.2 + 4.0;

    // Baseline: hopping sweep + separate mass linear combination, fresh
    // fields per application, standalone curvature dot inside `step`.
    let unfused_apply = |p: &FermionField| {
        let h = op.hopping(p);
        let mut mp = FermionField::zero(g.clone());
        mp.scale_axpy_from(-0.5, &h, a, p);
        let hd = op.hopping_dag(&mp);
        let mut out = FermionField::zero(g.clone());
        out.scale_axpy_from(-0.5, &hd, a, &mp);
        out
    };
    let mut base_state = CgState::new(&b);
    base_state.step(unfused_apply); // warm-up outside the timed loop
    let mut base_state = CgState::new(&b);
    let t0 = Instant::now();
    for _ in 0..iters {
        base_state.step(unfused_apply);
    }
    let base_wall = t0.elapsed().as_nanos() as u64;

    // Fused: preallocated workspace, fused dslash+mass+dot sweeps.
    let mut ws = SolverWorkspace::new(g.clone());
    let mut fused_apply = |p: &FermionField, ws: &mut SolverWorkspace| {
        let SolverWorkspace { tmp, ap, .. } = ws;
        op.mdag_m_into_dot(p, tmp, ap)
    };
    let mut fused_state = CgState::new(&b);
    fused_state.history.reserve(iters + 1);
    fused_state.step_ws(&mut ws, &mut fused_apply); // warm-up
    let mut fused_state = CgState::new(&b);
    fused_state.history.reserve(iters + 1);
    let t0 = Instant::now();
    for _ in 0..iters {
        fused_state.step_ws(&mut ws, &mut fused_apply);
    }
    let fused_wall = t0.elapsed().as_nanos() as u64;

    // The legs must have walked the same trajectory — the benchmark is
    // meaningless if fusion changed the math.
    if base_state.r2.to_bits() != fused_state.r2.to_bits()
        || base_state.x.max_abs_diff(&fused_state.x) != 0.0
    {
        return Err("benchmark legs diverged: fused iterates are not bit-identical".into());
    }

    let baseline = leg_result(dims, iters, base_wall.max(1), BASELINE_SWEEPS_PER_ITER);
    let fused = leg_result(dims, iters, fused_wall.max(1), FUSED_SWEEPS_PER_ITER);
    Ok(SolverBench {
        dims,
        vl_bits: vl.bits() as u64,
        backend: backend.name().to_string(),
        threads: rayon::current_num_threads(),
        iterations: iters,
        speedup: fused.sites_per_sec / baseline.sites_per_sec,
        baseline,
        fused,
    })
}

fn leg_json(leg: &LegResult) -> Json {
    Json::Obj(vec![
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("sites_per_sec".into(), Json::Num(leg.sites_per_sec)),
        ("gflops".into(), Json::Num(leg.gflops)),
        ("sweeps_per_iter".into(), Json::Num(leg.sweeps_per_iter)),
    ])
}

/// Render a benchmark as a `qcd-bench-solver/v1` document.
pub fn bench_to_json(b: &SolverBench) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SOLVER_BENCH_SCHEMA.into())),
        (
            "lattice".into(),
            Json::Arr(b.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("vl_bits".into(), Json::Num(b.vl_bits as f64)),
        ("backend".into(), Json::Str(b.backend.clone())),
        ("threads".into(), Json::Num(b.threads as f64)),
        ("iterations".into(), Json::Num(b.iterations as f64)),
        ("baseline".into(), leg_json(&b.baseline)),
        ("fused".into(), leg_json(&b.fused)),
        ("speedup".into(), Json::Num(b.speedup)),
    ])
}

fn check_leg(doc: &Json, key: &str) -> Result<(), String> {
    let leg = doc
        .get(key)
        .ok_or_else(|| format!("missing object `{key}`"))?;
    for field in ["wall_ns", "sites_per_sec", "gflops", "sweeps_per_iter"] {
        let v = leg
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{key}.{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("`{key}.{field}` must be positive, got {v}"));
        }
    }
    Ok(())
}

/// Validate a parsed document against the `qcd-bench-solver/v1` schema —
/// the check the CI bench-smoke job runs on the uploaded artifact.
pub fn validate_solver_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SOLVER_BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{SOLVER_BENCH_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`lattice` must be four positive extents".into());
    }
    for field in ["vl_bits", "threads", "iterations"] {
        if doc.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
            return Err(format!("`{field}` missing or not a positive integer"));
        }
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing string `backend`".into());
    }
    check_leg(doc, "baseline")?;
    check_leg(doc, "fused")?;
    if !doc
        .get("speedup")
        .and_then(Json::as_f64)
        .is_some_and(|v| v > 0.0)
    {
        return Err("`speedup` missing or not positive".into());
    }
    Ok(())
}

/// Render, validate by parse-back, and write `BENCH_solver.json`. An
/// invalid document is an error, not an artifact.
pub fn write_validated_bench_json(b: &SolverBench, path: &str) -> Result<(), String> {
    let json = bench_to_json(b);
    let doc = json.render();
    let parsed = Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    validate_solver_bench_json(&parsed)?;
    if parsed != json {
        return Err("JSON round-trip did not reproduce the benchmark document".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_exports_a_valid_document() {
        let bench = run_solver_bench(4, 3).unwrap();
        assert_eq!(bench.iterations, 3);
        assert!(bench.baseline.sites_per_sec > 0.0);
        assert!(bench.fused.sites_per_sec > 0.0);
        assert!(bench.speedup > 0.0);
        let doc = bench_to_json(&bench);
        validate_solver_bench_json(&doc).unwrap();
        // Rendered → parsed survives the schema check too (what CI does).
        let parsed = Json::parse(&doc.render()).unwrap();
        validate_solver_bench_json(&parsed).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn schema_validation_rejects_malformed_documents() {
        let bad = Json::parse(r#"{"schema":"qcd-bench-solver/v2"}"#).unwrap();
        assert!(validate_solver_bench_json(&bad)
            .unwrap_err()
            .contains("schema"));
        let bench = run_solver_bench(4, 1).unwrap();
        let Json::Obj(mut members) = bench_to_json(&bench) else {
            panic!("bench document must be an object");
        };
        members.retain(|(k, _)| k != "fused");
        assert!(validate_solver_bench_json(&Json::Obj(members))
            .unwrap_err()
            .contains("fused"));
        let zero_lat = Json::parse(
            r#"{"schema":"qcd-bench-solver/v1","lattice":[4,4,4,0],"vl_bits":512,
                "threads":1,"iterations":1,"backend":"fcmla"}"#,
        )
        .unwrap();
        assert!(validate_solver_bench_json(&zero_lat)
            .unwrap_err()
            .contains("lattice"));
    }

    #[test]
    fn zero_iterations_is_refused() {
        assert!(run_solver_bench(4, 0).is_err());
    }
}
