//! The before/after solver benchmark behind `wilson_report --bench`.
//!
//! Two Conjugate Gradient legs run the *same math* on the same problem for
//! a fixed iteration count:
//!
//! - **baseline** — the unfused formulation this codebase used before the
//!   allocation-free hot path: `M ψ` as a hopping sweep followed by a
//!   separate `(m+4)ψ − ½(·)` linear-combination sweep (fresh fields each
//!   application), the curvature dot as its own pass, and a per-iteration
//!   telemetry span.
//! - **fused** — the workspace path: dslash with the mass axpy fused into
//!   the store loop, the curvature dot fused into the second hopping sweep
//!   ([`WilsonDirac::mdag_m_into_dot`]), preallocated
//!   [`SolverWorkspace`] storage, and zero steady-state allocations.
//!
//! Both legs retire bit-identical iterates (asserted), so the throughput
//! ratio isolates the memory-traffic and allocation savings. The result is
//! exported as a `qcd-bench-solver/v1` JSON document, validated by a
//! parse-back schema check before anything touches disk — the artifact the
//! CI bench-smoke job uploads.

use grid::dirac::{
    FUSED_DOT_FLOPS_PER_SITE, FUSED_MASS_AXPY_FLOPS_PER_SITE, HOPPING_FLOPS_PER_SITE,
};
use grid::prelude::*;
use grid::Coor;
use qcd_trace::Json;
use std::sync::Arc;
use std::time::Instant;

/// Schema identifier of the exported benchmark document.
pub const SOLVER_BENCH_SCHEMA: &str = "qcd-bench-solver/v1";

/// Default batch sizes of the multi-RHS legs.
pub const BLOCK_RHS_COUNTS: [usize; 4] = [1, 4, 8, 16];

/// Useful floating-point work per lattice site per CG iteration, identical
/// for both legs (they compute the same recurrence):
/// two fused operator applications (hopping + mass axpy), the curvature
/// dot, the fused `x += αp / r −= αAp / |r|²` sweep (3 × 48 flops), and
/// the `p = r + βp` update (48 flops).
pub const CG_FLOPS_PER_SITE_PER_ITER: u64 = 2
    * (HOPPING_FLOPS_PER_SITE + FUSED_MASS_AXPY_FLOPS_PER_SITE)
    + FUSED_DOT_FLOPS_PER_SITE
    + 3 * 48
    + 48;

/// Full-field memory sweeps per CG iteration *beyond* the two dslash
/// stencil passes, baseline leg: one `scale_axpy` pass after each hopping
/// sweep, the standalone curvature inner product, the fused x/r update,
/// and the search-direction update. (Fresh-field zero-fills and
/// allocations come on top and are part of what the wall clock measures.)
pub const BASELINE_SWEEPS_PER_ITER: f64 = 5.0;

/// Fused leg: the mass axpy and curvature dot ride the dslash store loops,
/// leaving only the fused x/r update and the search-direction update.
pub const FUSED_SWEEPS_PER_ITER: f64 = 2.0;

/// Throughput of one benchmark leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegResult {
    /// Wall time of the iteration loop.
    pub wall_ns: u64,
    /// Lattice sites retired per second (volume × iterations / wall).
    pub sites_per_sec: f64,
    /// Useful GFLOP/s ([`CG_FLOPS_PER_SITE_PER_ITER`] per site-iteration).
    pub gflops: f64,
    /// Full-field sweeps per iteration beyond the dslash.
    pub sweeps_per_iter: f64,
}

/// Throughput of one multi-RHS operator leg: `iters` applications of the
/// fused `M†M` + curvature-dot kernel to a batch of `nrhs` spinors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockLeg {
    /// Right-hand sides in the batch.
    pub nrhs: usize,
    /// Wall time of the application loop.
    pub wall_ns: u64,
    /// RHS-site applications retired per second (volume × nrhs ×
    /// iterations / wall) — the figure the batched layout is meant to
    /// raise by amortising link loads.
    pub sites_per_sec: f64,
    /// Useful GFLOP/s (model flops from the telemetry of one
    /// application, scaled by the loop count).
    pub gflops: f64,
    /// Measured arithmetic intensity (telemetry flops / telemetry bytes)
    /// of one batched application. Links are loaded once per site
    /// regardless of `nrhs`, so this grows with the batch.
    pub ai: f64,
    /// Arithmetic intensity of the same batched application through the
    /// two-row operator mode (12 link scalars on the bus instead of 18,
    /// third row rebuilt in registers).
    pub ai_two_row: f64,
    /// `sites_per_sec / (N=1 leg's sites_per_sec)`.
    pub speedup: f64,
    /// `ai / (N=1 leg's ai)` — the AI gain of batching alone.
    pub ai_gain: f64,
    /// Projected throughput gain in the memory-bandwidth-bound regime the
    /// paper targets, with both levers engaged: bytes per RHS-site of the
    /// N=1 full-link leg over bytes per RHS-site of this leg under
    /// two-row links (all from trace-span byte accounting — on
    /// bandwidth-bound hardware, sites/s scales as the inverse of bytes
    /// moved per site).
    pub mem_bound_speedup: f64,
}

/// A complete before/after solver benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverBench {
    /// Lattice extents.
    pub dims: Coor,
    /// SVE vector length in bits.
    pub vl_bits: u64,
    /// Complex-arithmetic backend name.
    pub backend: String,
    /// Worker threads the parallel field kernels used.
    pub threads: usize,
    /// CG iterations each leg ran.
    pub iterations: usize,
    /// The unfused allocating leg.
    pub baseline: LegResult,
    /// The fused workspace leg.
    pub fused: LegResult,
    /// `fused.sites_per_sec / baseline.sites_per_sec`.
    pub speedup: f64,
    /// Multi-RHS operator legs, one per batch size (N=1 first).
    pub block: Vec<BlockLeg>,
    /// Wall-time ratio of an N=8 block solve with the metrics layer
    /// (flight recorder + span observer) enabled over disabled — the
    /// observability tax, gated at [`METRICS_OVERHEAD_LIMIT`] by the CI
    /// bench-smoke job.
    pub metrics_overhead: f64,
    /// The low-mode deflation comparison on a thermalized configuration
    /// (`--deflate`): present when the deflation legs ran, gated by
    /// [`crate::deflate_bench::check_deflation_gain`] in CI.
    pub deflation: Option<crate::deflate_bench::DeflationBench>,
    /// The f16-inner vs f32-inner mixed-precision ladder comparison on a
    /// thermalized configuration (`--precision`): present when the
    /// precision legs ran, gated by
    /// [`crate::precision_bench::check_precision`] in CI.
    pub precision: Option<crate::precision_bench::PrecisionBench>,
}

/// Ceiling on [`SolverBench::metrics_overhead`]: the metrics layer may
/// cost at most 2% of N=8 block-solve wall time.
pub const METRICS_OVERHEAD_LIMIT: f64 = 1.02;

/// Measure the observability tax: time an N=8 block solve with the flight
/// recorder and span observer enabled, then disabled, taking the min over
/// `reps` runs of each. The solver's health monitors run in both legs (they
/// are part of the solve); what toggles is event recording and the span
/// histogram feed. The prior enabled/disabled state is restored.
pub fn metrics_overhead_probe(g: &Arc<Grid>, op: &WilsonDirac, iters: usize, reps: usize) -> f64 {
    let fields: Vec<FermionField> = (0..8)
        .map(|j| FermionField::random(g.clone(), 292 + j as u64))
        .collect();
    let block = FermionBlock::from_fields(&fields);
    let was_enabled = qcd_metrics::flight_enabled();
    qcd_metrics::install_span_observer();
    let _ = block_cg(op, &block, 1e-8, iters); // warm-up
    let time_leg = |enabled: bool| -> u64 {
        qcd_metrics::set_flight_enabled(enabled);
        (0..reps.max(1))
            .map(|_| {
                let t0 = Instant::now();
                let _ = block_cg(op, &block, 1e-8, iters);
                t0.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap()
            .max(1)
    };
    let off = time_leg(false);
    let on = time_leg(true);
    qcd_metrics::set_flight_enabled(was_enabled);
    on as f64 / off as f64
}

/// The CI gate on the observability tax.
pub fn check_metrics_overhead(b: &SolverBench) -> Result<(), String> {
    if b.metrics_overhead > METRICS_OVERHEAD_LIMIT {
        return Err(format!(
            "metrics overhead {:.4}x exceeds the {METRICS_OVERHEAD_LIMIT}x limit",
            b.metrics_overhead
        ));
    }
    Ok(())
}

fn leg_result(dims: Coor, iters: usize, wall_ns: u64, sweeps: f64) -> LegResult {
    let sites = dims.iter().product::<usize>() as f64;
    let secs = wall_ns as f64 / 1e9;
    let site_iters = sites * iters as f64;
    LegResult {
        wall_ns,
        sites_per_sec: site_iters / secs,
        gflops: site_iters * CG_FLOPS_PER_SITE_PER_ITER as f64 / secs / 1e9,
        sweeps_per_iter: sweeps,
    }
}

/// One traced application of the batched kernel: the flops and bytes its
/// `dirac.block` spans credited to the registry, plus the per-RHS
/// curvature dots. The spans land under a uniquely named parent so the
/// subtree sum is race-free against concurrent telemetry; the registry
/// lock keeps a concurrent `qcd_trace::reset` (the profile/HMC paths)
/// from wiping the subtree before it is read back.
fn probe_block(
    op: &WilsonDirac,
    block: &FermionBlock,
    tmp: &mut FermionBlock,
    out: &mut FermionBlock,
) -> Result<(u64, u64, Vec<f64>), String> {
    static SPAN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let probe = format!(
        "bench.block.{}",
        SPAN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let guard = crate::registry_lock();
    let span = qcd_trace::SpanGuard::enter(&probe, None);
    let dots = op.mdag_m_block_into_dot(block, tmp, out);
    let _ = span.finish();
    let prefix = format!("{probe}/");
    let (flops, traffic) = qcd_trace::snapshot()
        .regions
        .iter()
        .filter(|(path, _)| path.starts_with(&prefix))
        .fold((0u64, 0u64), |(f, t), (_, stat)| {
            (f + stat.flops, t + stat.bytes_read + stat.bytes_written)
        });
    drop(guard);
    if flops == 0 || traffic == 0 {
        return Err(format!(
            "block probe recorded no telemetry for N={}",
            block.nrhs()
        ));
    }
    Ok((flops, traffic, dots))
}

/// Time the batched `M†M` legs: `iters` applications of
/// [`WilsonDirac::mdag_m_block_into_dot`] per batch size. The `N = 1` leg
/// is asserted bit-identical to the single-RHS fused kernel — batching
/// must change the memory traffic, never the math. Each leg is also
/// probed through `op_two_row` (same links, two-row compressed loads) to
/// derive the combined batching + compression bandwidth model.
fn run_block_legs(
    g: &Arc<Grid>,
    op: &WilsonDirac,
    op_two_row: &WilsonDirac,
    iters: usize,
    rhs_counts: &[usize],
) -> Result<Vec<BlockLeg>, String> {
    // Always measure N = 1: it anchors `speedup` and `ai_gain`.
    let mut counts: Vec<usize> = rhs_counts.to_vec();
    counts.push(1);
    counts.sort_unstable();
    counts.dedup();
    let max_n = *counts.last().expect("at least one batch size");
    let fields: Vec<FermionField> = (0..max_n)
        .map(|j| FermionField::random(g.clone(), 92 + j as u64))
        .collect();
    let volume = g.fdims().iter().product::<usize>() as f64;

    let mut legs = Vec::with_capacity(counts.len());
    let mut full_bytes = Vec::with_capacity(counts.len());
    let mut two_row_bytes = Vec::with_capacity(counts.len());
    for &n in &counts {
        let block = FermionBlock::from_fields(&fields[..n]);
        let mut tmp = FermionBlock::zero(g.clone(), n);
        let mut out = FermionBlock::zero(g.clone(), n);
        let _ = op.mdag_m_block_into_dot(&block, &mut tmp, &mut out); // warm-up

        // Measured arithmetic intensity of one batched application.
        let (flops, traffic, dots) = probe_block(op, &block, &mut tmp, &mut out)?;
        let ai = flops as f64 / traffic as f64;

        if n == 1 {
            // The batched kernel with one RHS must retire the exact bits
            // of the single-RHS fused path.
            let mut stmp = FermionField::zero(g.clone());
            let mut sout = FermionField::zero(g.clone());
            let sdot = op.mdag_m_into_dot(&fields[0], &mut stmp, &mut sout);
            if dots[0].to_bits() != sdot.to_bits() || out.rhs_field(0).max_abs_diff(&sout) != 0.0 {
                return Err(
                    "block leg diverged: N=1 batch is not bit-identical to single RHS".into(),
                );
            }
        }

        // Same batch through two-row compressed links: same flops, 12
        // link scalars on the bus per leg instead of 18.
        let (tr_flops, tr_traffic, _) = probe_block(op_two_row, &block, &mut tmp, &mut out)?;
        let ai_two_row = tr_flops as f64 / tr_traffic as f64;
        full_bytes.push(traffic);
        two_row_bytes.push(tr_traffic);

        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = op.mdag_m_block_into_dot(&block, &mut tmp, &mut out);
        }
        let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
        let secs = wall_ns as f64 / 1e9;
        legs.push(BlockLeg {
            nrhs: n,
            wall_ns,
            sites_per_sec: volume * n as f64 * iters as f64 / secs,
            gflops: flops as f64 * iters as f64 / secs / 1e9,
            ai,
            ai_two_row,
            speedup: 1.0, // filled in once the N=1 leg is known
            ai_gain: 1.0,
            mem_bound_speedup: 1.0,
        });
    }
    let base = legs[0];
    // `counts` starts at 1, so the base leg's traffic IS bytes per RHS.
    let base_bytes_per_rhs = full_bytes[0] as f64;
    for (leg, &tr) in legs.iter_mut().zip(&two_row_bytes) {
        leg.speedup = leg.sites_per_sec / base.sites_per_sec;
        leg.ai_gain = leg.ai / base.ai;
        leg.mem_bound_speedup = base_bytes_per_rhs / (tr as f64 / leg.nrhs as f64);
    }
    Ok(legs)
}

/// Target factor for the batched memory-bound model: with eight
/// right-hand sides amortising each two-row link load, the trace-span
/// byte accounting must show at least 1.5× the single-RHS full-link
/// throughput in the bandwidth-bound regime.
pub const BLOCK_MEM_BOUND_TARGET: f64 = 1.5;

/// The CI gate on the exported block legs: batching eight right-hand
/// sides must retire at least as many RHS-sites per second as running
/// them one at a time, and the derived memory-bound model (batching +
/// two-row links, from trace-span byte accounting) must reach
/// [`BLOCK_MEM_BOUND_TARGET`] over the N=1 full-link leg.
pub fn check_block_throughput(b: &SolverBench) -> Result<(), String> {
    let leg = |n: usize| b.block.iter().find(|l| l.nrhs == n);
    match (leg(1), leg(8)) {
        (Some(one), Some(eight)) => {
            if eight.sites_per_sec < one.sites_per_sec {
                return Err(format!(
                    "block throughput regressed: N=8 {:.0} sites/s < N=1 {:.0} sites/s",
                    eight.sites_per_sec, one.sites_per_sec
                ));
            }
            if eight.mem_bound_speedup < BLOCK_MEM_BOUND_TARGET {
                return Err(format!(
                    "block memory-bound model regressed: N=8 two-row {:.3}× < {}× target",
                    eight.mem_bound_speedup, BLOCK_MEM_BOUND_TARGET
                ));
            }
            Ok(())
        }
        // A custom --rhs sweep without both anchors: nothing to gate.
        _ => Ok(()),
    }
}

/// [`run_solver_bench`] with a caller-chosen set of multi-RHS batch sizes
/// (`--rhs`). N = 1 is always included as the batching baseline.
pub fn run_solver_bench_with_rhs(
    l: usize,
    iters: usize,
    rhs_counts: &[usize],
) -> Result<SolverBench, String> {
    if iters == 0 {
        return Err("--bench-iters must be positive".into());
    }
    if rhs_counts.contains(&0) {
        return Err("--rhs must be positive".into());
    }
    let dims: Coor = [l, l, l, l];
    let vl = VectorLength::of(512);
    let backend = SimdBackend::Fcmla;
    let g = Grid::new(dims, vl, backend);
    let u = random_gauge(g.clone(), 91);
    let op_two_row = WilsonDirac::new_two_row(u.clone(), 0.2);
    let op = WilsonDirac::new(u, 0.2);
    let b = FermionField::random(g.clone(), 92);
    let a = 0.2 + 4.0;

    // Baseline: hopping sweep + separate mass linear combination, fresh
    // fields per application, standalone curvature dot inside `step`.
    let unfused_apply = |p: &FermionField| {
        let h = op.hopping(p);
        let mut mp = FermionField::zero(g.clone());
        mp.scale_axpy_from(-0.5, &h, a, p);
        let hd = op.hopping_dag(&mp);
        let mut out = FermionField::zero(g.clone());
        out.scale_axpy_from(-0.5, &hd, a, &mp);
        out
    };
    let mut base_state = CgState::new(&b);
    base_state.step(unfused_apply); // warm-up outside the timed loop
    let mut base_state = CgState::new(&b);
    let t0 = Instant::now();
    for _ in 0..iters {
        base_state.step(unfused_apply);
    }
    let base_wall = t0.elapsed().as_nanos() as u64;

    // Fused: preallocated workspace, fused dslash+mass+dot sweeps.
    let mut ws = SolverWorkspace::new(g.clone());
    let mut fused_apply = |p: &FermionField, ws: &mut SolverWorkspace| {
        let SolverWorkspace { tmp, ap, .. } = ws;
        op.mdag_m_into_dot(p, tmp, ap)
    };
    let mut fused_state = CgState::new(&b);
    fused_state.history.reserve(iters + 1);
    fused_state.step_ws(&mut ws, &mut fused_apply); // warm-up
    let mut fused_state = CgState::new(&b);
    fused_state.history.reserve(iters + 1);
    let t0 = Instant::now();
    for _ in 0..iters {
        fused_state.step_ws(&mut ws, &mut fused_apply);
    }
    let fused_wall = t0.elapsed().as_nanos() as u64;

    // The legs must have walked the same trajectory — the benchmark is
    // meaningless if fusion changed the math.
    if base_state.r2.to_bits() != fused_state.r2.to_bits()
        || base_state.x.max_abs_diff(&fused_state.x) != 0.0
    {
        return Err("benchmark legs diverged: fused iterates are not bit-identical".into());
    }

    let baseline = leg_result(dims, iters, base_wall.max(1), BASELINE_SWEEPS_PER_ITER);
    let fused = leg_result(dims, iters, fused_wall.max(1), FUSED_SWEEPS_PER_ITER);
    let block = run_block_legs(&g, &op, &op_two_row, iters, rhs_counts)?;
    let metrics_overhead = metrics_overhead_probe(&g, &op, iters, 3);
    Ok(SolverBench {
        dims,
        vl_bits: vl.bits() as u64,
        backend: backend.name().to_string(),
        threads: rayon::current_num_threads(),
        iterations: iters,
        speedup: fused.sites_per_sec / baseline.sites_per_sec,
        baseline,
        fused,
        block,
        metrics_overhead,
        deflation: None,
        precision: None,
    })
}

/// Run both single-RHS legs plus the default multi-RHS sweep
/// ([`BLOCK_RHS_COUNTS`]) for exactly `iters` iterations on an `l⁴`
/// lattice at 512-bit SVE with the FCMLA backend, assert the legs agree
/// bit for bit, and return the throughput comparison.
pub fn run_solver_bench(l: usize, iters: usize) -> Result<SolverBench, String> {
    run_solver_bench_with_rhs(l, iters, &BLOCK_RHS_COUNTS)
}

fn leg_json(leg: &LegResult) -> Json {
    Json::Obj(vec![
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("sites_per_sec".into(), Json::Num(leg.sites_per_sec)),
        ("gflops".into(), Json::Num(leg.gflops)),
        ("sweeps_per_iter".into(), Json::Num(leg.sweeps_per_iter)),
    ])
}

fn block_leg_json(leg: &BlockLeg) -> Json {
    Json::Obj(vec![
        ("nrhs".into(), Json::Num(leg.nrhs as f64)),
        ("wall_ns".into(), Json::Num(leg.wall_ns as f64)),
        ("sites_per_sec".into(), Json::Num(leg.sites_per_sec)),
        ("gflops".into(), Json::Num(leg.gflops)),
        ("ai".into(), Json::Num(leg.ai)),
        ("ai_two_row".into(), Json::Num(leg.ai_two_row)),
        ("speedup".into(), Json::Num(leg.speedup)),
        ("ai_gain".into(), Json::Num(leg.ai_gain)),
        ("mem_bound_speedup".into(), Json::Num(leg.mem_bound_speedup)),
    ])
}

/// Render a benchmark as a `qcd-bench-solver/v1` document.
pub fn bench_to_json(b: &SolverBench) -> Json {
    let mut members = vec![
        ("schema".into(), Json::Str(SOLVER_BENCH_SCHEMA.into())),
        (
            "lattice".into(),
            Json::Arr(b.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("vl_bits".into(), Json::Num(b.vl_bits as f64)),
        ("backend".into(), Json::Str(b.backend.clone())),
        ("threads".into(), Json::Num(b.threads as f64)),
        ("iterations".into(), Json::Num(b.iterations as f64)),
        ("baseline".into(), leg_json(&b.baseline)),
        ("fused".into(), leg_json(&b.fused)),
        ("speedup".into(), Json::Num(b.speedup)),
        (
            "block".into(),
            Json::Arr(b.block.iter().map(block_leg_json).collect()),
        ),
        ("metrics_overhead".into(), Json::Num(b.metrics_overhead)),
    ];
    if let Some(d) = &b.deflation {
        members.push((
            "deflation".into(),
            crate::deflate_bench::deflation_to_json(d),
        ));
    }
    if let Some(p) = &b.precision {
        members.push((
            "precision".into(),
            crate::precision_bench::precision_to_json(p),
        ));
    }
    Json::Obj(members)
}

fn check_leg(doc: &Json, key: &str) -> Result<(), String> {
    let leg = doc
        .get(key)
        .ok_or_else(|| format!("missing object `{key}`"))?;
    for field in ["wall_ns", "sites_per_sec", "gflops", "sweeps_per_iter"] {
        let v = leg
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{key}.{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("`{key}.{field}` must be positive, got {v}"));
        }
    }
    Ok(())
}

/// Validate a parsed document against the `qcd-bench-solver/v1` schema —
/// the check the CI bench-smoke job runs on the uploaded artifact.
pub fn validate_solver_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SOLVER_BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("schema `{other}` != `{SOLVER_BENCH_SCHEMA}`")),
        None => return Err("missing `schema`".into()),
    }
    let lat = doc
        .get("lattice")
        .and_then(Json::as_arr)
        .ok_or("missing array `lattice`")?;
    if lat.len() != 4 || lat.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
        return Err("`lattice` must be four positive extents".into());
    }
    for field in ["vl_bits", "threads", "iterations"] {
        if doc.get(field).and_then(Json::as_u64).is_none_or(|v| v == 0) {
            return Err(format!("`{field}` missing or not a positive integer"));
        }
    }
    if doc.get("backend").and_then(Json::as_str).is_none() {
        return Err("missing string `backend`".into());
    }
    check_leg(doc, "baseline")?;
    check_leg(doc, "fused")?;
    if !doc
        .get("speedup")
        .and_then(Json::as_f64)
        .is_some_and(|v| v > 0.0)
    {
        return Err("`speedup` missing or not positive".into());
    }
    let block = doc
        .get("block")
        .and_then(Json::as_arr)
        .ok_or("missing array `block`")?;
    if block.is_empty() {
        return Err("`block` must hold at least the N=1 leg".into());
    }
    for (i, row) in block.iter().enumerate() {
        if row
            .get("nrhs")
            .and_then(Json::as_u64)
            .is_none_or(|v| v == 0)
        {
            return Err(format!("`block[{i}].nrhs` missing or not positive"));
        }
        for field in [
            "wall_ns",
            "sites_per_sec",
            "gflops",
            "ai",
            "ai_two_row",
            "speedup",
            "ai_gain",
            "mem_bound_speedup",
        ] {
            let v = row
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`block[{i}].{field}` missing or not a number"))?;
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("`block[{i}].{field}` must be positive, got {v}"));
            }
        }
    }
    if !doc
        .get("metrics_overhead")
        .and_then(Json::as_f64)
        .is_some_and(|v| v > 0.0 && v.is_finite())
    {
        return Err("`metrics_overhead` missing or not positive".into());
    }
    // The deflation and precision sections are optional (--deflate,
    // --precision); when present each must be a complete, well-formed
    // comparison.
    if let Some(d) = doc.get("deflation") {
        crate::deflate_bench::validate_deflation_json(d)?;
    }
    if let Some(p) = doc.get("precision") {
        crate::precision_bench::validate_precision_json(p)?;
    }
    Ok(())
}

/// Render, validate by parse-back, and write `BENCH_solver.json`. An
/// invalid document is an error, not an artifact.
pub fn write_validated_bench_json(b: &SolverBench, path: &str) -> Result<(), String> {
    let json = bench_to_json(b);
    let doc = json.render();
    let parsed = Json::parse(&doc)
        .map_err(|e| format!("emitted JSON does not parse: {} at byte {}", e.msg, e.at))?;
    validate_solver_bench_json(&parsed)?;
    if parsed != json {
        return Err("JSON round-trip did not reproduce the benchmark document".into());
    }
    std::fs::write(path, doc).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_exports_a_valid_document() {
        let bench = run_solver_bench_with_rhs(4, 3, &[1, 2]).unwrap();
        assert_eq!(bench.iterations, 3);
        assert!(bench.baseline.sites_per_sec > 0.0);
        assert!(bench.fused.sites_per_sec > 0.0);
        assert!(bench.speedup > 0.0);
        assert_eq!(bench.block.len(), 2);
        assert_eq!(bench.block[0].nrhs, 1);
        assert_eq!(bench.block[0].speedup, 1.0);
        assert_eq!(bench.block[0].ai_gain, 1.0);
        // Link loads amortise over the batch, so the telemetry-measured
        // arithmetic intensity must strictly grow with N.
        assert!(
            bench.block[1].ai > bench.block[0].ai,
            "AI must grow with the batch: {} vs {}",
            bench.block[1].ai,
            bench.block[0].ai
        );
        for leg in &bench.block {
            // Two-row loads shrink the byte denominator at equal flops.
            assert!(
                leg.ai_two_row > leg.ai,
                "two-row AI must beat full links at N={}: {} vs {}",
                leg.nrhs,
                leg.ai_two_row,
                leg.ai
            );
            assert!(leg.mem_bound_speedup > 1.0);
        }
        let doc = bench_to_json(&bench);
        validate_solver_bench_json(&doc).unwrap();
        // Rendered → parsed survives the schema check too (what CI does).
        let parsed = Json::parse(&doc.render()).unwrap();
        validate_solver_bench_json(&parsed).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn block_gate_flags_a_throughput_regression() {
        let mut bench = run_solver_bench_with_rhs(4, 1, &[1, 8]).unwrap();
        check_block_throughput(&bench).unwrap();
        // Eight RHS amortising two-row link loads must clear the 1.5×
        // bandwidth-model target over the N=1 full-link leg.
        let eight = bench.block.iter().find(|l| l.nrhs == 8).unwrap();
        assert!(
            eight.mem_bound_speedup >= BLOCK_MEM_BOUND_TARGET,
            "memory-bound model below target: {}",
            eight.mem_bound_speedup
        );
        // Forge regressions: the gate must reject both.
        let forged = bench.clone();
        let one = bench.block[0].sites_per_sec;
        bench.block.last_mut().unwrap().sites_per_sec = one / 2.0;
        assert!(check_block_throughput(&bench)
            .unwrap_err()
            .contains("regressed"));
        let mut bench = forged;
        bench.block.last_mut().unwrap().mem_bound_speedup = 1.2;
        assert!(check_block_throughput(&bench)
            .unwrap_err()
            .contains("memory-bound"));
        // A sweep without both anchors has nothing to gate.
        bench.block.retain(|l| l.nrhs != 8);
        check_block_throughput(&bench).unwrap();
    }

    #[test]
    fn zero_rhs_is_refused() {
        assert!(run_solver_bench_with_rhs(4, 1, &[0]).is_err());
    }

    #[test]
    fn metrics_overhead_is_measured_and_gated() {
        let mut bench = run_solver_bench_with_rhs(4, 2, &[1]).unwrap();
        assert!(
            bench.metrics_overhead > 0.0 && bench.metrics_overhead.is_finite(),
            "probe must produce a positive ratio, got {}",
            bench.metrics_overhead
        );
        // A forged over-budget ratio must be rejected, a healthy one pass.
        bench.metrics_overhead = METRICS_OVERHEAD_LIMIT + 0.03;
        assert!(check_metrics_overhead(&bench)
            .unwrap_err()
            .contains("overhead"));
        bench.metrics_overhead = 1.001;
        check_metrics_overhead(&bench).unwrap();
    }

    #[test]
    fn schema_validation_rejects_malformed_documents() {
        let bad = Json::parse(r#"{"schema":"qcd-bench-solver/v2"}"#).unwrap();
        assert!(validate_solver_bench_json(&bad)
            .unwrap_err()
            .contains("schema"));
        let bench = run_solver_bench(4, 1).unwrap();
        let Json::Obj(mut members) = bench_to_json(&bench) else {
            panic!("bench document must be an object");
        };
        members.retain(|(k, _)| k != "fused");
        assert!(validate_solver_bench_json(&Json::Obj(members))
            .unwrap_err()
            .contains("fused"));
        let Json::Obj(mut members) = bench_to_json(&bench) else {
            panic!("bench document must be an object");
        };
        members.retain(|(k, _)| k != "block");
        assert!(validate_solver_bench_json(&Json::Obj(members))
            .unwrap_err()
            .contains("block"));
        let zero_lat = Json::parse(
            r#"{"schema":"qcd-bench-solver/v1","lattice":[4,4,4,0],"vl_bits":512,
                "threads":1,"iterations":1,"backend":"fcmla"}"#,
        )
        .unwrap();
        assert!(validate_solver_bench_json(&zero_lat)
            .unwrap_err()
            .contains("lattice"));
    }

    #[test]
    fn zero_iterations_is_refused() {
        assert!(run_solver_bench(4, 0).is_err());
    }
}
