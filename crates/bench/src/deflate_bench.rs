//! The deflation benchmark behind `wilson_report --bench --deflate`: the
//! `deflation` section of the `qcd-bench-solver/v1` document.
//!
//! Deflation only pays on a configuration that *has* low modes. A random
//! gauge background is maximally disordered — its additive mass
//! renormalization pushes `λ_min(M†M)` to O(1) even near zero bare mass,
//! so there is nothing to deflate and the comparison would be vacuous.
//! This benchmark therefore thermalizes a short quenched HMC chain first
//! (the ISSUE's "thermalized, not free-field" requirement): at β = 5.6 the
//! link disorder relaxes enough that `M†M` at a slightly negative bare
//! mass develops a genuine low-mode tail, and the measured comparison is
//! the one campaigns actually run.
//!
//! Three legs on the same thermalized operator:
//!
//! - **undeflated** — plain [`block_cg`] over the N-RHS batch.
//! - **deflated** — [`defl_block_cg`] from the Galerkin guess of a
//!   thick-restart Lanczos subspace built once on `M†M`.
//! - **coarse** — [`coarse_pcg`] on RHS 0: the two-level preconditioner
//!   assembled from the same subspace's cell-blocked near-null vectors.
//!
//! Every iteration count, eigenvalue, and the thermalized plaquette is a
//! pure function of the seeded configuration (canonical reductions make
//! them VL- and thread-invariant), so they hard-fail the `bench_diff`
//! gate on any drift; wall clocks and the setup-amortization crossover
//! vary with the host and only warn. The CI gate
//! ([`check_deflation_gain`]) requires the deflated batch to beat the
//! undeflated one in **total iterations and wall time**, and the coarse
//! leg to beat plain CG in iterations.

use grid::prelude::*;
use grid::Coor;
use qcd_deflate::{coarse_pcg, defl_block_cg, lanczos, CoarseSpace, LanczosParams};
use qcd_hmc::{average_plaquette_fast, HmcParams, IntegratorKind, MarkovChain};
use qcd_trace::Json;
use std::time::Instant;

/// Everything that pins the deflation benchmark problem. Exported into
/// the document's `deflation` section as config keys: `bench_diff` refuses
/// to compare runs of different shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct DeflationConfig {
    /// Lattice extents.
    pub dims: Coor,
    /// Gauge coupling of the thermalization chain.
    pub beta: f64,
    /// Thermalization trajectories from the cold start.
    pub therm: usize,
    /// RNG seed of the HMC chain.
    pub chain_seed: u64,
    /// Bare Wilson mass of the solved operator (negative: toward the
    /// critical mass, where the low-mode tail lives).
    pub mass: f64,
    /// Eigenpairs the Lanczos subspace holds.
    pub nev: usize,
    /// Thick-restart basis size.
    pub m: usize,
    /// Eigenpair residual tolerance `‖M†M v − θv‖ ≤ eig_tol`.
    pub eig_tol: f64,
    /// Restart budget of the eigensolver.
    pub max_restarts: usize,
    /// Seed of the Lanczos starting vector.
    pub eig_seed: u64,
    /// Right-hand sides in the batch.
    pub nrhs: usize,
    /// Seed base of the random right-hand sides (`rhs_seed + j`).
    pub rhs_seed: u64,
    /// Relative solve tolerance of all three legs.
    pub tol: f64,
    /// Iteration budget per RHS.
    pub max_iter: usize,
    /// Blocking cell of the coarse space.
    pub cell: Coor,
}

impl Default for DeflationConfig {
    /// The CI recipe: a 4⁴ lattice thermalized for 12 trajectories at
    /// β = 5.6 develops a clear low-mode tail at bare mass −0.2
    /// (`λ_min ≈ 0.26` vs ≈ 3 on the random start), where an 8-pair
    /// subspace cuts plain CG by roughly a quarter.
    fn default() -> Self {
        DeflationConfig {
            dims: [4, 4, 4, 4],
            beta: 5.6,
            therm: 12,
            chain_seed: 5,
            mass: -0.2,
            nev: 8,
            m: 24,
            eig_tol: 1e-8,
            max_restarts: 80,
            eig_seed: 99,
            nrhs: 16,
            rhs_seed: 401,
            tol: 1e-8,
            max_iter: 2000,
            cell: [2, 2, 2, 2],
        }
    }
}

/// Integrator of the thermalization chain (fixed: part of the recipe).
const THERM_STEPS: usize = 8;
/// MD step size of the thermalization chain.
const THERM_STEP_SIZE: f64 = 0.0625;

/// Measured deflation benchmark: the `deflation` section of the
/// `qcd-bench-solver/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct DeflationBench {
    /// The problem recipe.
    pub config: DeflationConfig,
    /// Average plaquette of the thermalized configuration — the
    /// fingerprint that the chain reproduced bit-for-bit.
    pub plaquette: f64,
    /// Restart cycles the eigensolver consumed.
    pub eig_restarts: u64,
    /// `M†M` applications the eigensolver performed.
    pub eig_mvps: u64,
    /// Wall time of the subspace build (the setup the batch amortizes).
    pub eig_wall_ns: u64,
    /// Smallest converged Ritz value.
    pub lambda_min: f64,
    /// Largest converged Ritz value.
    pub lambda_max: f64,
    /// Total CG iterations of the undeflated batch (sum over RHS).
    pub undeflated_iters: u64,
    /// Wall time of the undeflated batch solve.
    pub undeflated_wall_ns: u64,
    /// Total CG iterations of the deflated batch (sum over RHS).
    pub deflated_iters: u64,
    /// Wall time of the deflated batch solve.
    pub deflated_wall_ns: u64,
    /// Undeflated iterations of RHS 0 alone (the coarse leg's baseline).
    pub undeflated_rhs0_iters: u64,
    /// Iterations of the coarse-grid-preconditioned CG on RHS 0.
    pub coarse_rhs0_iters: u64,
    /// `undeflated_iters / deflated_iters`.
    pub iter_gain: f64,
    /// `undeflated_wall_ns / deflated_wall_ns`.
    pub wall_gain: f64,
    /// Right-hand sides after which the eigensolver setup is amortized:
    /// `eig_wall / (per-RHS wall saved)`. Zero when the deflated batch
    /// saved no wall time (the gate then fails anyway).
    pub crossover_rhs: f64,
}

/// Thermalize, build the subspace, run all three legs, and return the
/// measured section. Errors (eigensolver or any solve not converging,
/// an unusable recipe) abort the benchmark — a half-measured comparison
/// is not an artifact.
pub fn run_deflation_bench(cfg: &DeflationConfig) -> Result<DeflationBench, String> {
    if cfg.nrhs == 0 || cfg.nev == 0 {
        return Err("--deflate needs nev > 0 and nrhs > 0".into());
    }
    let g = Grid::new(cfg.dims, VectorLength::of(512), SimdBackend::Fcmla);
    let hp = HmcParams {
        beta: cfg.beta,
        n_steps: THERM_STEPS,
        step_size: THERM_STEP_SIZE,
        integrator: IntegratorKind::Omelyan,
    };
    let mut chain = MarkovChain::cold_start(g.clone(), hp, cfg.chain_seed);
    chain.thermalize(cfg.therm);
    let plaquette = average_plaquette_fast(chain.links());
    let op = WilsonDirac::new(chain.links().clone(), cfg.mass);
    drop(chain);

    let params = LanczosParams {
        nev: cfg.nev,
        m: cfg.m,
        tol: cfg.eig_tol,
        max_restarts: cfg.max_restarts,
    };
    let t0 = Instant::now();
    let (sub, eig) = lanczos(&op, &params, cfg.eig_seed);
    let eig_wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    if !eig.converged {
        return Err(format!(
            "eigensolver did not converge within {} restarts (nev {}, m {})",
            cfg.max_restarts, cfg.nev, cfg.m
        ));
    }

    let fields: Vec<FermionField> = (0..cfg.nrhs)
        .map(|j| FermionField::random(g.clone(), cfg.rhs_seed + j as u64))
        .collect();
    let block = FermionBlock::from_fields(&fields);

    let t0 = Instant::now();
    let (_, plain) = block_cg(&op, &block, cfg.tol, cfg.max_iter);
    let undeflated_wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    if plain.converged.iter().any(|&c| !c) {
        return Err("undeflated block solve did not converge".into());
    }
    let undeflated_iters: u64 = plain.per_rhs_iterations.iter().map(|&i| i as u64).sum();

    let t0 = Instant::now();
    let (_, defl) = defl_block_cg(&op, &sub, &block, cfg.tol, cfg.max_iter);
    let deflated_wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    if defl.converged.iter().any(|&c| !c) {
        return Err("deflated block solve did not converge".into());
    }
    let deflated_iters: u64 = defl.per_rhs_iterations.iter().map(|&i| i as u64).sum();

    let cs = CoarseSpace::build(&op, &sub.vectors, cfg.cell);
    let (_, coarse) = coarse_pcg(&op, &cs, &fields[0], cfg.tol, cfg.max_iter);
    if !coarse.converged {
        return Err("coarse-preconditioned solve did not converge".into());
    }

    let saved_per_rhs = (undeflated_wall_ns as f64 - deflated_wall_ns as f64) / cfg.nrhs as f64;
    Ok(DeflationBench {
        config: cfg.clone(),
        plaquette,
        eig_restarts: eig.restarts as u64,
        eig_mvps: eig.mvps as u64,
        eig_wall_ns,
        lambda_min: sub.values[0],
        lambda_max: sub.values[sub.nev() - 1],
        undeflated_iters,
        undeflated_wall_ns,
        deflated_iters,
        deflated_wall_ns,
        undeflated_rhs0_iters: plain.per_rhs_iterations[0] as u64,
        coarse_rhs0_iters: coarse.iterations as u64,
        iter_gain: undeflated_iters as f64 / deflated_iters as f64,
        wall_gain: undeflated_wall_ns as f64 / deflated_wall_ns as f64,
        crossover_rhs: if saved_per_rhs > 0.0 {
            eig_wall_ns as f64 / saved_per_rhs
        } else {
            0.0
        },
    })
}

/// The CI gate: on the thermalized configuration the deflated N-RHS batch
/// must beat the undeflated one in total iterations **and** wall time, and
/// the coarse-grid two-level preconditioner must beat plain CG on RHS 0 in
/// iterations (its per-iteration cost differs, so wall is not gated).
pub fn check_deflation_gain(d: &DeflationBench) -> Result<(), String> {
    if d.deflated_iters >= d.undeflated_iters {
        return Err(format!(
            "deflation gained nothing: {} deflated iterations vs {} undeflated",
            d.deflated_iters, d.undeflated_iters
        ));
    }
    if d.deflated_wall_ns >= d.undeflated_wall_ns {
        return Err(format!(
            "deflated batch was not faster: {} ns vs {} ns undeflated",
            d.deflated_wall_ns, d.undeflated_wall_ns
        ));
    }
    if d.coarse_rhs0_iters >= d.undeflated_rhs0_iters {
        return Err(format!(
            "coarse preconditioner gained nothing: {} iterations vs {} plain CG",
            d.coarse_rhs0_iters, d.undeflated_rhs0_iters
        ));
    }
    Ok(())
}

/// Render the `deflation` section.
pub fn deflation_to_json(d: &DeflationBench) -> Json {
    let c = &d.config;
    Json::Obj(vec![
        (
            "lattice".into(),
            Json::Arr(c.dims.iter().map(|&v| Json::Num(v as f64)).collect()),
        ),
        ("beta".into(), Json::Num(c.beta)),
        ("therm".into(), Json::Num(c.therm as f64)),
        ("chain_seed".into(), Json::Num(c.chain_seed as f64)),
        ("mass".into(), Json::Num(c.mass)),
        ("nev".into(), Json::Num(c.nev as f64)),
        ("basis".into(), Json::Num(c.m as f64)),
        ("eig_tol".into(), Json::Num(c.eig_tol)),
        ("eig_seed".into(), Json::Num(c.eig_seed as f64)),
        ("nrhs".into(), Json::Num(c.nrhs as f64)),
        ("rhs_seed".into(), Json::Num(c.rhs_seed as f64)),
        ("tol".into(), Json::Num(c.tol)),
        (
            "cell".into(),
            Json::Arr(c.cell.iter().map(|&v| Json::Num(v as f64)).collect()),
        ),
        ("plaquette".into(), Json::Num(d.plaquette)),
        ("eig_restarts".into(), Json::Num(d.eig_restarts as f64)),
        ("eig_mvps".into(), Json::Num(d.eig_mvps as f64)),
        ("eig_wall_ns".into(), Json::Num(d.eig_wall_ns as f64)),
        ("lambda_min".into(), Json::Num(d.lambda_min)),
        ("lambda_max".into(), Json::Num(d.lambda_max)),
        (
            "undeflated_iters".into(),
            Json::Num(d.undeflated_iters as f64),
        ),
        (
            "undeflated_wall_ns".into(),
            Json::Num(d.undeflated_wall_ns as f64),
        ),
        ("deflated_iters".into(), Json::Num(d.deflated_iters as f64)),
        (
            "deflated_wall_ns".into(),
            Json::Num(d.deflated_wall_ns as f64),
        ),
        (
            "undeflated_rhs0_iters".into(),
            Json::Num(d.undeflated_rhs0_iters as f64),
        ),
        (
            "coarse_rhs0_iters".into(),
            Json::Num(d.coarse_rhs0_iters as f64),
        ),
        ("iter_gain".into(), Json::Num(d.iter_gain)),
        ("wall_gain".into(), Json::Num(d.wall_gain)),
        ("crossover_rhs".into(), Json::Num(d.crossover_rhs)),
    ])
}

/// Validate a parsed `deflation` section (called from the solver-bench
/// schema check when the section is present).
pub fn validate_deflation_json(doc: &Json) -> Result<(), String> {
    for arr in ["lattice", "cell"] {
        let a = doc
            .get(arr)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array `deflation.{arr}`"))?;
        if a.len() != 4 || a.iter().any(|d| d.as_u64().is_none_or(|v| v == 0)) {
            return Err(format!("`deflation.{arr}` must be four positive extents"));
        }
    }
    for field in [
        "beta",
        "therm",
        "nev",
        "basis",
        "eig_tol",
        "nrhs",
        "tol",
        "plaquette",
        "eig_mvps",
        "eig_wall_ns",
        "lambda_min",
        "lambda_max",
        "undeflated_iters",
        "undeflated_wall_ns",
        "deflated_iters",
        "deflated_wall_ns",
        "undeflated_rhs0_iters",
        "coarse_rhs0_iters",
        "iter_gain",
        "wall_gain",
    ] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`deflation.{field}` missing or not a number"))?;
        if v <= 0.0 || !v.is_finite() {
            return Err(format!("`deflation.{field}` must be positive, got {v}"));
        }
    }
    // The mass is negative by design, restarts may be zero, and the
    // crossover is zero when deflation saved no wall time.
    for field in [
        "mass",
        "chain_seed",
        "eig_seed",
        "rhs_seed",
        "eig_restarts",
        "crossover_rhs",
    ] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`deflation.{field}` missing or not a number"))?;
        if !v.is_finite() {
            return Err(format!("`deflation.{field}` must be finite, got {v}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunken recipe for test wall-clock: the [4,4,2,2] thermalized
    /// fixture of the eigenpair property suite, four pairs at 1e-6.
    fn small_cfg() -> DeflationConfig {
        DeflationConfig {
            dims: [4, 4, 2, 2],
            therm: 10,
            nev: 4,
            m: 24,
            eig_tol: 1e-6,
            max_restarts: 40,
            nrhs: 2,
            tol: 1e-6,
            ..DeflationConfig::default()
        }
    }

    #[test]
    fn deflation_bench_measures_and_exports_a_valid_section() {
        let d = run_deflation_bench(&small_cfg()).unwrap();
        assert!(d.plaquette > 0.0 && d.plaquette < 1.0);
        assert!(d.lambda_min > 0.0 && d.lambda_min <= d.lambda_max);
        assert!(d.undeflated_iters > 0 && d.deflated_iters > 0);
        // Even the small thermalized fixture has modes worth deflating.
        assert!(
            d.deflated_iters < d.undeflated_iters,
            "no iteration gain: {} vs {}",
            d.deflated_iters,
            d.undeflated_iters
        );
        assert!(d.iter_gain > 1.0);
        let json = deflation_to_json(&d);
        validate_deflation_json(&json).unwrap();
        let parsed = Json::parse(&json.render()).unwrap();
        validate_deflation_json(&parsed).unwrap();
        assert_eq!(parsed, json);
    }

    #[test]
    fn gate_rejects_forged_regressions() {
        let d = run_deflation_bench(&small_cfg()).unwrap();
        // Wall gates compare two measured runs; forge them deterministic.
        let mut healthy = d.clone();
        healthy.undeflated_wall_ns = 2 * healthy.deflated_wall_ns;
        check_deflation_gain(&healthy).unwrap();
        let mut forged = healthy.clone();
        forged.deflated_iters = forged.undeflated_iters;
        assert!(check_deflation_gain(&forged)
            .unwrap_err()
            .contains("gained nothing"));
        let mut forged = healthy.clone();
        forged.deflated_wall_ns = forged.undeflated_wall_ns + 1;
        assert!(check_deflation_gain(&forged)
            .unwrap_err()
            .contains("not faster"));
        let mut forged = healthy;
        forged.coarse_rhs0_iters = forged.undeflated_rhs0_iters;
        assert!(check_deflation_gain(&forged)
            .unwrap_err()
            .contains("coarse"));
    }

    #[test]
    fn degenerate_recipes_are_refused() {
        let mut cfg = small_cfg();
        cfg.nrhs = 0;
        assert!(run_deflation_bench(&cfg).is_err());
        let mut cfg = small_cfg();
        cfg.nev = 0;
        assert!(run_deflation_bench(&cfg).is_err());
        // A basis too small to converge is an error, not a silent artifact.
        let mut cfg = small_cfg();
        cfg.m = 6;
        cfg.max_restarts = 2;
        assert!(run_deflation_bench(&cfg)
            .unwrap_err()
            .contains("did not converge"));
    }

    #[test]
    fn malformed_sections_fail_validation() {
        let d = run_deflation_bench(&small_cfg()).unwrap();
        let Json::Obj(members) = deflation_to_json(&d) else {
            panic!("section must be an object");
        };
        let mut missing = members.clone();
        missing.retain(|(k, _)| k != "deflated_iters");
        assert!(validate_deflation_json(&Json::Obj(missing))
            .unwrap_err()
            .contains("deflated_iters"));
        let mut zeroed = members;
        for (k, v) in zeroed.iter_mut() {
            if k == "lambda_min" {
                *v = Json::Num(0.0);
            }
        }
        assert!(validate_deflation_json(&Json::Obj(zeroed))
            .unwrap_err()
            .contains("lambda_min"));
    }
}
