//! Functional model of the ARM Scalable Vector Extension (SVE).
//!
//! This crate is the hardware substrate for the reproduction of
//! *"SVE-enabling Lattice QCD Codes"* (Meyer et al., IEEE CLUSTER 2018).
//! The paper ported the Grid lattice-QCD framework to SVE before any SVE
//! silicon existed, verifying functionally under ARM's instruction emulator
//! (ArmIE). This crate plays the role of that missing hardware/emulator
//! stack in Rust, where SVE intrinsics are nightly-only and scalable vectors
//! are not expressible:
//!
//! * [`VectorLength`] — the vector-length-agnostic register size
//!   (128..2048 bits in multiples of 128, Section III-B of the paper);
//! * [`VReg`] / [`PReg`] — untyped vector registers and per-byte predicate
//!   registers, exactly as architected;
//! * [`intrinsics`] — an ACLE-style API (the paper's reference \[6\]): predicated
//!   loads/stores, structure loads, real and complex arithmetic (`FCMLA`,
//!   `FCADD`, Section III-D), permutes, reductions, precision conversion and
//!   predicate construction;
//! * [`SveCtx`] — the "silicon": fixes the vector length, tallies every
//!   executed operation per [`Opcode`], prices tallies under pluggable
//!   [`CostModel`]s, and can inject the toolchain faults that made some of
//!   the paper's verification runs fail (Section V-D);
//! * [`F16`] — software binary16 for the comms-compression data path
//!   (Section V-B).
//!
//! # Example: the paper's two-FCMLA complex multiply (Section IV-D)
//!
//! ```
//! use sve::{SveCtx, VectorLength, VReg};
//! use sve::intrinsics::*;
//!
//! let ctx = SveCtx::new(VectorLength::of(512));
//! let pg = svptrue::<f64>(&ctx);
//! // Interleaved (re, im) data, one full vector: 4 complex doubles.
//! let x: Vec<f64> = vec![1.0, 2.0, -0.5, 3.0, 0.0, 1.0, 2.5, -1.5];
//! let y: Vec<f64> = vec![3.0, -1.0, 2.0, 2.0, -1.0, 0.5, 0.0, -2.0];
//! let sx = svld1(&ctx, &pg, &x);
//! let sy = svld1(&ctx, &pg, &y);
//! let zero = svdup::<f64>(&ctx, 0.0);
//! let t = svcmla::<f64>(&ctx, &pg, &zero, &sx, &sy, Rot::R90);
//! let sz = svcmla::<f64>(&ctx, &pg, &t, &sx, &sy, Rot::R0);
//! let mut z = vec![0.0; 8];
//! svst1(&ctx, &pg, &mut z, &sz);
//! assert_eq!(z[0], 1.0 * 3.0 - 2.0 * (-1.0)); // re(x0 * y0)
//! assert_eq!(z[1], 1.0 * (-1.0) + 2.0 * 3.0); // im(x0 * y0)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count;
mod ctx;
mod elem;
mod f16;
mod pred;
mod vl;
mod vreg;

pub mod acle;
pub mod intrinsics;

pub use count::{CostModel, Counters, OpClass, Opcode};
pub use ctx::{SveCtx, ToolchainFault};
pub use elem::{SveElem, SveFloat};
pub use f16::F16;
pub use intrinsics::Rot;
pub use pred::{PReg, PredFlags};
pub use vl::{VectorLength, VL_MAX_BITS, VL_MAX_BYTES, VL_MIN_BITS, VL_STEP_BITS};
pub use vreg::VReg;
