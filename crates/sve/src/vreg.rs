//! The vector register file model.
//!
//! A `z` register is an untyped container of `VL` bits; instructions impose
//! the element view. [`VReg`] therefore stores raw bytes sized for the
//! architectural maximum (2048 bits) — a context's [`VectorLength`]
//! determines how many of them an operation touches.

use crate::elem::SveElem;
use crate::vl::{VectorLength, VL_MAX_BYTES};

/// One SVE vector register (`z0`..`z31`): 2048 bits of untyped storage,
/// interpreted per-instruction through [`SveElem`] lane views.
#[derive(Clone, Copy)]
pub struct VReg {
    bytes: [u8; VL_MAX_BYTES],
}

impl Default for VReg {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl VReg {
    /// An all-zero register (`mov z0.d, #0` writes this).
    pub const fn zeroed() -> Self {
        VReg {
            bytes: [0; VL_MAX_BYTES],
        }
    }

    /// Read lane `i` under the element view `E`.
    #[inline]
    pub fn lane<E: SveElem>(&self, i: usize) -> E {
        let off = i * E::BYTES;
        E::read_le(&self.bytes[off..off + E::BYTES])
    }

    /// Write lane `i` under the element view `E`.
    #[inline]
    pub fn set_lane<E: SveElem>(&mut self, i: usize, v: E) {
        let off = i * E::BYTES;
        v.write_le(&mut self.bytes[off..off + E::BYTES]);
    }

    /// Raw little-endian bytes of the register.
    pub fn bytes(&self) -> &[u8; VL_MAX_BYTES] {
        &self.bytes
    }

    /// Mutable raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; VL_MAX_BYTES] {
        &mut self.bytes
    }

    /// Build a register by evaluating `f` on every lane index active for
    /// vector length `vl` (inactive upper storage stays zero).
    pub fn from_fn<E: SveElem>(vl: VectorLength, mut f: impl FnMut(usize) -> E) -> Self {
        let mut r = VReg::zeroed();
        for i in 0..vl.lanes_of(E::BYTES) {
            r.set_lane(i, f(i));
        }
        r
    }

    /// Collect the lanes active for `vl` into a `Vec` (test/debug helper).
    pub fn to_vec<E: SveElem>(&self, vl: VectorLength) -> Vec<E> {
        (0..vl.lanes_of(E::BYTES))
            .map(|i| self.lane::<E>(i))
            .collect()
    }

    /// True if the registers agree on all lanes active for `vl` under view
    /// `E` (upper storage is ignored, as hardware would).
    pub fn lanes_eq<E: SveElem>(&self, other: &VReg, vl: VectorLength) -> bool {
        (0..vl.lanes_of(E::BYTES)).all(|i| self.lane::<E>(i) == other.lane::<E>(i))
    }
}

impl std::fmt::Debug for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print as 64-bit lanes of the architectural maximum; contexts know
        // their own VL.
        write!(f, "VReg[")?;
        for i in 0..4 {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:#018x}", self.lane::<u64>(i))?;
        }
        write!(f, ", ...]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::F16;

    #[test]
    fn zeroed_is_all_zero_under_every_view() {
        let r = VReg::zeroed();
        for i in 0..32 {
            assert_eq!(r.lane::<f64>(i), 0.0);
        }
        for i in 0..64 {
            assert_eq!(r.lane::<f32>(i), 0.0);
            assert_eq!(r.lane::<i32>(i), 0);
        }
        for i in 0..128 {
            assert_eq!(r.lane::<F16>(i).to_bits(), 0);
        }
    }

    #[test]
    fn lane_views_alias_the_same_bytes() {
        let mut r = VReg::zeroed();
        r.set_lane::<u64>(0, 0x3ff0_0000_0000_0000); // bits of 1.0f64
        assert_eq!(r.lane::<f64>(0), 1.0);
        r.set_lane::<f32>(2, 2.0);
        assert_eq!(r.lane::<u64>(1) & 0xffff_ffff, 2.0f32.to_bits() as u64);
    }

    #[test]
    fn from_fn_respects_vector_length() {
        let vl = VectorLength::of(256); // 4 x f64
        let r = VReg::from_fn::<f64>(vl, |i| i as f64);
        assert_eq!(r.to_vec::<f64>(vl), vec![0.0, 1.0, 2.0, 3.0]);
        // Storage beyond VL stays zero.
        assert_eq!(r.lane::<f64>(4), 0.0);
        assert_eq!(r.lane::<f64>(31), 0.0);
    }

    #[test]
    fn lanes_eq_ignores_inactive_storage() {
        let vl = VectorLength::of(128);
        let mut a = VReg::from_fn::<f64>(vl, |i| i as f64 + 1.0);
        let b = a;
        a.set_lane::<f64>(5, 99.0); // beyond VL128's 2 lanes
        assert!(a.lanes_eq::<f64>(&b, vl));
        assert!(!a.lanes_eq::<f64>(&b, VectorLength::of(512)));
    }
}
