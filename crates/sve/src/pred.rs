//! Predicate register model.
//!
//! SVE predication (paper, Section III-B) is what makes the VLA loop of
//! listing IV-A work without tail code: `whilelo` builds a mask covering the
//! remaining elements, predicated loads/stores touch only active lanes, and
//! `brkns` + `b.mi` decide whether another iteration is needed.
//!
//! Architecturally a predicate register holds one bit per *byte* of the
//! vector register; an element of size 2^n bytes is active iff the first of
//! its 2^n predicate bits is set. This model keeps that byte granularity so
//! that `.b`/`.h`/`.s`/`.d` views stay consistent, exactly as in hardware.

use crate::elem::SveElem;
use crate::vl::{VectorLength, VL_MAX_BYTES};

/// One SVE predicate register (`p0`..`p15`): 256 bits, one per byte of the
/// maximum-width vector register.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct PReg {
    // 256 bits as 4 x u64, bit b of word w governs byte lane w*64 + b.
    words: [u64; 4],
}

/// The NZCV condition flags predicate-generating instructions set
/// (`whilelo`, `brkns`, `ptest`). The paper's loops branch on `b.mi`
/// (N set) and `b.lo` (C clear).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredFlags {
    /// N — the *first* active element of the result is true.
    pub n: bool,
    /// Z — no active element of the result is true.
    pub z: bool,
    /// C — the *last* active element of the result is **not** true.
    pub c: bool,
    /// V — always false for predicate ops.
    pub v: bool,
}

impl PReg {
    /// All-false predicate.
    pub const fn none() -> Self {
        PReg { words: [0; 4] }
    }

    /// `ptrue` for element size `E` under vector length `vl`: the first
    /// predicate bit of every element inside the vector is set.
    pub fn ptrue<E: SveElem>(vl: VectorLength) -> Self {
        let mut p = PReg::none();
        for e in 0..vl.lanes_of(E::BYTES) {
            p.set_byte_bit(e * E::BYTES, true);
        }
        p
    }

    /// `whilelt`/`whilelo` for element size `E`: element `e` is active iff
    /// `base + e < bound`. This is the loop-control predicate of listings
    /// IV-A/B/C.
    pub fn whilelt<E: SveElem>(vl: VectorLength, base: u64, bound: u64) -> Self {
        let mut p = PReg::none();
        for e in 0..vl.lanes_of(E::BYTES) {
            if base.saturating_add(e as u64) < bound {
                p.set_byte_bit(e * E::BYTES, true);
            }
        }
        p
    }

    /// Raw access: is the predicate bit for byte lane `byte` set?
    #[inline]
    pub fn byte_bit(&self, byte: usize) -> bool {
        debug_assert!(byte < VL_MAX_BYTES);
        (self.words[byte / 64] >> (byte % 64)) & 1 != 0
    }

    /// Raw access: set/clear the predicate bit for byte lane `byte`.
    #[inline]
    pub fn set_byte_bit(&mut self, byte: usize, v: bool) {
        debug_assert!(byte < VL_MAX_BYTES);
        let w = byte / 64;
        let b = byte % 64;
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Is element lane `e` (under view `E`) active? Hardware semantics: the
    /// lowest predicate bit of the element decides.
    #[inline]
    pub fn elem_active<E: SveElem>(&self, e: usize) -> bool {
        self.byte_bit(e * E::BYTES)
    }

    /// Mark element lane `e` active/inactive under view `E`.
    pub fn set_elem_active<E: SveElem>(&mut self, e: usize, v: bool) {
        self.set_byte_bit(e * E::BYTES, v);
    }

    /// Number of active elements for view `E` within `vl` (`cntp`).
    pub fn active_count<E: SveElem>(&self, vl: VectorLength) -> usize {
        (0..vl.lanes_of(E::BYTES))
            .filter(|&e| self.elem_active::<E>(e))
            .count()
    }

    /// True if no element is active within `vl` under view `E`.
    pub fn is_empty<E: SveElem>(&self, vl: VectorLength) -> bool {
        self.active_count::<E>(vl) == 0
    }

    /// True if every element within `vl` under view `E` is active.
    pub fn is_full<E: SveElem>(&self, vl: VectorLength) -> bool {
        self.active_count::<E>(vl) == vl.lanes_of(E::BYTES)
    }

    /// Bitwise AND of predicates (`and p0.b, ...`).
    pub fn and(&self, other: &PReg) -> PReg {
        let mut out = PReg::none();
        for w in 0..4 {
            out.words[w] = self.words[w] & other.words[w];
        }
        out
    }

    /// Bitwise OR of predicates.
    pub fn or(&self, other: &PReg) -> PReg {
        let mut out = PReg::none();
        for w in 0..4 {
            out.words[w] = self.words[w] | other.words[w];
        }
        out
    }

    /// `not` under a governing predicate: active bits of `g` are inverted,
    /// others cleared.
    pub fn not_z(&self, g: &PReg) -> PReg {
        let mut out = PReg::none();
        for w in 0..4 {
            out.words[w] = !self.words[w] & g.words[w];
        }
        out
    }

    /// Compute the NZCV flags for this predicate as a result, governed by
    /// `g` under view `E` — the flag-setting rule of `whilelo`/`brkns`.
    pub fn flags<E: SveElem>(&self, g: &PReg, vl: VectorLength) -> PredFlags {
        let lanes = vl.lanes_of(E::BYTES);
        let mut first = None;
        let mut last = None;
        let mut any = false;
        for e in 0..lanes {
            if !g.elem_active::<E>(e) {
                continue;
            }
            let v = self.elem_active::<E>(e);
            if first.is_none() {
                first = Some(v);
            }
            last = Some(v);
            any |= v;
        }
        PredFlags {
            n: first.unwrap_or(false),
            z: !any,
            c: !last.unwrap_or(false),
            v: false,
        }
    }

    /// `brkn` — propagate break to next partition. If the *last* active
    /// element of `pn` (under governing `g`, byte view) is true, the result
    /// is `pm`; otherwise all-false. This is the instruction gluing
    /// consecutive `whilelo` predicates in listing IV-A (line 11).
    pub fn brkn(g: &PReg, pn: &PReg, pm: &PReg, vl: VectorLength) -> PReg {
        let mut last = false;
        for byte in 0..vl.bytes() {
            if g.byte_bit(byte) {
                last = pn.byte_bit(byte);
            }
        }
        if last {
            *pm
        } else {
            PReg::none()
        }
    }

    /// Index of the first active element under view `E`, if any.
    pub fn first_active<E: SveElem>(&self, vl: VectorLength) -> Option<usize> {
        (0..vl.lanes_of(E::BYTES)).find(|&e| self.elem_active::<E>(e))
    }
}

impl std::fmt::Debug for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PReg[")?;
        for byte in 0..32 {
            write!(f, "{}", if self.byte_bit(byte) { '1' } else { '0' })?;
        }
        write!(f, "...]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::F16;

    const VL256: VectorLength = VectorLength::of(256);
    const VL512: VectorLength = VectorLength::of(512);

    #[test]
    fn ptrue_activates_every_element() {
        let p = PReg::ptrue::<f64>(VL512);
        assert!(p.is_full::<f64>(VL512));
        assert_eq!(p.active_count::<f64>(VL512), 8);
        // Only the first byte of each 8-byte element carries the bit.
        assert!(p.byte_bit(0));
        assert!(!p.byte_bit(1));
        assert!(p.byte_bit(8));
    }

    #[test]
    fn ptrue_is_consistent_across_views() {
        // A d-element ptrue activates every 8th byte; viewed as .s elements
        // only even ones are active — hardware behaviour.
        let p = PReg::ptrue::<f64>(VL256);
        assert!(p.elem_active::<f32>(0));
        assert!(!p.elem_active::<f32>(1));
        assert!(p.elem_active::<f32>(2));
    }

    #[test]
    fn whilelt_full_and_partial() {
        // VL256 has 4 d-lanes. 0..10 -> full; 8..10 -> 2 active.
        let full = PReg::whilelt::<f64>(VL256, 0, 10);
        assert!(full.is_full::<f64>(VL256));
        let tail = PReg::whilelt::<f64>(VL256, 8, 10);
        assert_eq!(tail.active_count::<f64>(VL256), 2);
        assert!(tail.elem_active::<f64>(0));
        assert!(tail.elem_active::<f64>(1));
        assert!(!tail.elem_active::<f64>(2));
        let empty = PReg::whilelt::<f64>(VL256, 10, 10);
        assert!(empty.is_empty::<f64>(VL256));
    }

    #[test]
    fn whilelt_flags_drive_the_vla_loop() {
        // b.mi continues while the first element of the fresh predicate is
        // active (N flag).
        let g = PReg::ptrue::<f64>(VL256);
        let more = PReg::whilelt::<f64>(VL256, 4, 10);
        assert!(more.flags::<f64>(&g, VL256).n);
        let done = PReg::whilelt::<f64>(VL256, 12, 10);
        assert!(!done.flags::<f64>(&g, VL256).n);
        assert!(done.flags::<f64>(&g, VL256).z);
    }

    #[test]
    fn flags_c_reports_last_inactive() {
        let g = PReg::ptrue::<f64>(VL256);
        let partial = PReg::whilelt::<f64>(VL256, 0, 2); // 2 of 4 active
        let fl = partial.flags::<f64>(&g, VL256);
        assert!(fl.n);
        assert!(!fl.z);
        assert!(fl.c); // last element inactive
        let full = PReg::whilelt::<f64>(VL256, 0, 8);
        assert!(!full.flags::<f64>(&g, VL256).c);
    }

    #[test]
    fn brkn_keeps_or_kills_next_predicate() {
        let g = PReg::ptrue::<f64>(VL256);
        let full = PReg::whilelt::<f64>(VL256, 0, 8); // last lane active
        let next = PReg::whilelt::<f64>(VL256, 4, 8);
        assert_eq!(PReg::brkn(&g, &full, &next, VL256), next);
        let partial = PReg::whilelt::<f64>(VL256, 0, 2); // last lane inactive
        assert_eq!(PReg::brkn(&g, &partial, &next, VL256), PReg::none());
    }

    #[test]
    fn logical_ops() {
        let a = PReg::whilelt::<f64>(VL512, 0, 6);
        let b = PReg::whilelt::<f64>(VL512, 0, 3);
        assert_eq!(a.and(&b).active_count::<f64>(VL512), 3);
        assert_eq!(a.or(&b).active_count::<f64>(VL512), 6);
        let g = PReg::ptrue::<f64>(VL512);
        assert_eq!(b.not_z(&g).active_count::<f64>(VL512), 5);
    }

    #[test]
    fn first_active_under_various_views() {
        let mut p = PReg::none();
        p.set_elem_active::<F16>(5, true);
        assert_eq!(p.first_active::<F16>(VL512), Some(5));
        assert_eq!(p.first_active::<f64>(VL512), None); // byte 10 is not 8-aligned
    }

    #[test]
    fn elem_views_share_byte_bits() {
        let mut p = PReg::none();
        p.set_elem_active::<f64>(1, true); // byte 8
        assert!(p.elem_active::<f32>(2)); // byte 8 viewed as .s lane 2
        assert!(p.elem_active::<F16>(4)); // byte 8 viewed as .h lane 4
    }
}
