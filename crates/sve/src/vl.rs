//! SVE vector-length configuration.
//!
//! SVE does not fix the vector-register size; it constrains it to a multiple
//! of 128 bits between 128 and 2048 bits (paper, Section III-B). The silicon
//! provider picks the value. In this model the "silicon" is a [`VectorLength`]
//! chosen at context-construction time, and every intrinsic adapts to it —
//! exactly the role the `-vl` command-line switch plays for ArmIE.

/// Maximum architectural vector length in bits.
pub const VL_MAX_BITS: usize = 2048;
/// Minimum architectural vector length in bits.
pub const VL_MIN_BITS: usize = 128;
/// Vector-length granule in bits.
pub const VL_STEP_BITS: usize = 128;
/// Maximum vector length in bytes (= 256); sizes the backing store of a
/// vector register and the per-byte predicate bits.
pub const VL_MAX_BYTES: usize = VL_MAX_BITS / 8;

/// An SVE vector length, validated to be a multiple of 128 bits in
/// `128..=2048`.
///
/// ```
/// use sve::VectorLength;
/// let vl = VectorLength::new(512).unwrap();
/// assert_eq!(vl.bytes(), 64);
/// assert_eq!(vl.lanes64(), 8);   // svcntd()
/// assert_eq!(vl.lanes32(), 16);  // svcntw()
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VectorLength {
    bits: u16,
}

impl VectorLength {
    /// Create a vector length from a bit count. Returns `None` unless the
    /// count is a multiple of 128 in `128..=2048`.
    pub const fn new(bits: usize) -> Option<Self> {
        if bits >= VL_MIN_BITS && bits <= VL_MAX_BITS && bits.is_multiple_of(VL_STEP_BITS) {
            Some(Self { bits: bits as u16 })
        } else {
            None
        }
    }

    /// Create a vector length, panicking on invalid sizes. Convenience for
    /// literals in tests and benches.
    pub const fn of(bits: usize) -> Self {
        match Self::new(bits) {
            Some(vl) => vl,
            None => panic!("SVE vector length must be a multiple of 128 in 128..=2048"),
        }
    }

    /// Vector length in bits.
    pub const fn bits(self) -> usize {
        self.bits as usize
    }

    /// Vector length in bytes (the value of the paper's
    /// `SVE_VECTOR_LENGTH` compile-time constant).
    pub const fn bytes(self) -> usize {
        self.bits as usize / 8
    }

    /// Number of 64-bit lanes (`svcntd`).
    pub const fn lanes64(self) -> usize {
        self.bytes() / 8
    }

    /// Number of 32-bit lanes (`svcntw`).
    pub const fn lanes32(self) -> usize {
        self.bytes() / 4
    }

    /// Number of 16-bit lanes (`svcnth`).
    pub const fn lanes16(self) -> usize {
        self.bytes() / 2
    }

    /// Number of 8-bit lanes (`svcntb`).
    pub const fn lanes8(self) -> usize {
        self.bytes()
    }

    /// Number of lanes for an element size in bytes.
    pub const fn lanes_of(self, elem_bytes: usize) -> usize {
        self.bytes() / elem_bytes
    }

    /// Number of complex lanes for a scalar element size in bytes
    /// (a complex number occupies two adjacent lanes: even = real,
    /// odd = imaginary, the layout FCMLA expects).
    pub const fn complex_lanes_of(self, elem_bytes: usize) -> usize {
        self.lanes_of(elem_bytes) / 2
    }

    /// All architecturally valid vector lengths, smallest first.
    pub fn all() -> impl Iterator<Item = VectorLength> {
        (1..=(VL_MAX_BITS / VL_STEP_BITS)).map(|k| VectorLength {
            bits: (k * VL_STEP_BITS) as u16,
        })
    }

    /// The vector lengths the paper enables in Grid (Section V-B):
    /// 128, 256 and 512 bits.
    pub fn grid_supported() -> [VectorLength; 3] {
        [Self::of(128), Self::of(256), Self::of(512)]
    }

    /// The vector lengths swept in this reproduction: the paper's three plus
    /// the "future work" widths 1024 and 2048 (Section V-B notes wider
    /// vectors are possible with additional specialization — implemented
    /// here).
    pub fn sweep() -> [VectorLength; 5] {
        [
            Self::of(128),
            Self::of(256),
            Self::of(512),
            Self::of(1024),
            Self::of(2048),
        ]
    }
}

impl std::fmt::Debug for VectorLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VL{}", self.bits)
    }
}

impl std::fmt::Display for VectorLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} bit", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lengths() {
        for bits in [128, 256, 384, 512, 1024, 2048] {
            assert!(VectorLength::new(bits).is_some(), "{bits} should be valid");
        }
    }

    #[test]
    fn invalid_lengths() {
        for bits in [0, 64, 100, 129, 192 + 1, 2048 + 128, 4096] {
            assert!(
                VectorLength::new(bits).is_none(),
                "{bits} should be invalid"
            );
        }
    }

    #[test]
    fn lane_counts() {
        let vl = VectorLength::of(512);
        assert_eq!(vl.lanes64(), 8);
        assert_eq!(vl.lanes32(), 16);
        assert_eq!(vl.lanes16(), 32);
        assert_eq!(vl.lanes8(), 64);
        assert_eq!(vl.complex_lanes_of(8), 4);
        assert_eq!(vl.complex_lanes_of(4), 8);
    }

    #[test]
    fn all_enumerates_sixteen() {
        let all: Vec<_> = VectorLength::all().collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], VectorLength::of(128));
        assert_eq!(all[15], VectorLength::of(2048));
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_covers_paper_and_future_work() {
        let sweep = VectorLength::sweep();
        let grid = VectorLength::grid_supported();
        for vl in grid {
            assert!(sweep.contains(&vl));
        }
        assert!(sweep.contains(&VectorLength::of(2048)));
    }
}
