//! The execution context: vector length + instruction accounting + optional
//! toolchain-fault injection.
//!
//! An [`SveCtx`] plays the role ArmIE played for the paper's authors: it
//! fixes the vector length for a run, observes every executed operation, and
//! can be asked — like ArmIE with a different `-vl` — to re-run the same code
//! under a different hardware width.

use crate::count::{CostModel, Counters, Opcode};
use crate::pred::PReg;
use crate::vl::VectorLength;

/// Simulated toolchain defects, for reproducing the paper's Section V-D
/// observation that "some tests fail due to incorrect results for some
/// choices of the SVE vector length and implementations of the predication
/// ... minor issues of the ARM SVE toolchain, which is still under
/// development".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ToolchainFault {
    /// Faithful execution.
    #[default]
    None,
    /// `whilelt` drops the last active element of *partial* predicates at
    /// the given vector length — a tail-predication miscompile. Kernels that
    /// only ever use full vectors (the paper's fixed-size style, listing
    /// IV-D) are immune; VLA loops over non-multiple sizes corrupt their
    /// final iteration.
    TailPredicationBug(VectorLength),
}

/// Execution context for the SVE functional model.
///
/// Cheap to construct; intended to be created once per simulated "machine"
/// and shared (`&SveCtx` / `Arc<SveCtx>`) across threads. Counting uses
/// relaxed atomics and can be disabled.
pub struct SveCtx {
    vl: VectorLength,
    counters: Counters,
    fault: ToolchainFault,
}

impl SveCtx {
    /// A faithful context at vector length `vl`.
    pub fn new(vl: VectorLength) -> Self {
        SveCtx {
            vl,
            counters: Counters::new(),
            fault: ToolchainFault::None,
        }
    }

    /// A context with an injected toolchain fault.
    pub fn with_fault(vl: VectorLength, fault: ToolchainFault) -> Self {
        SveCtx {
            vl,
            counters: Counters::new(),
            fault,
        }
    }

    /// The vector length this "silicon" implements.
    #[inline]
    pub fn vl(&self) -> VectorLength {
        self.vl
    }

    /// Instruction tallies recorded so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Cycle estimate of everything recorded so far under `model`.
    pub fn cycles(&self, model: CostModel) -> u64 {
        model.cycles(&self.counters)
    }

    /// Record one execution of `op`. Called by every intrinsic.
    #[inline]
    pub fn exec(&self, op: Opcode) {
        self.counters.bump(op);
    }

    /// Record `n` executions of `op`.
    #[inline]
    pub fn exec_n(&self, op: Opcode, n: u64) {
        self.counters.bump_n(op, n);
    }

    /// The active fault model.
    pub fn fault(&self) -> ToolchainFault {
        self.fault
    }

    /// Apply the fault model to a freshly generated `whilelt` predicate.
    /// Used by [`crate::intrinsics::svwhilelt`].
    pub(crate) fn distort_whilelt<E: crate::elem::SveElem>(&self, p: PReg) -> PReg {
        match self.fault {
            ToolchainFault::None => p,
            ToolchainFault::TailPredicationBug(at_vl) => {
                if self.vl != at_vl || p.is_full::<E>(self.vl) || p.is_empty::<E>(self.vl) {
                    return p;
                }
                // Drop the last active element of a partial predicate.
                let mut out = p;
                let last = (0..self.vl.lanes_of(E::BYTES))
                    .rev()
                    .find(|&e| p.elem_active::<E>(e));
                if let Some(e) = last {
                    out.set_elem_active::<E>(e, false);
                }
                out
            }
        }
    }
}

impl std::fmt::Debug for SveCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SveCtx")
            .field("vl", &self.vl)
            .field("fault", &self.fault)
            .field("executed", &self.counters.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_and_reports() {
        let ctx = SveCtx::new(VectorLength::of(512));
        ctx.exec(Opcode::Fcmla);
        ctx.exec_n(Opcode::Ld1, 2);
        assert_eq!(ctx.counters().total(), 3);
        assert_eq!(ctx.cycles(CostModel::Uniform), 3);
        assert_eq!(ctx.cycles(CostModel::FcmlaSlow), 6);
    }

    #[test]
    fn fault_only_hits_partial_predicates_at_its_vl() {
        let vl = VectorLength::of(256);
        let ctx = SveCtx::with_fault(vl, ToolchainFault::TailPredicationBug(vl));
        let full = PReg::whilelt::<f64>(vl, 0, 100);
        assert_eq!(ctx.distort_whilelt::<f64>(full), full);
        let partial = PReg::whilelt::<f64>(vl, 0, 3); // 3 of 4 lanes
        let distorted = ctx.distort_whilelt::<f64>(partial);
        assert_eq!(distorted.active_count::<f64>(vl), 2);
        // A context at a different VL is unaffected.
        let other = SveCtx::with_fault(
            VectorLength::of(512),
            ToolchainFault::TailPredicationBug(vl),
        );
        let p512 = PReg::whilelt::<f64>(VectorLength::of(512), 0, 3);
        assert_eq!(other.distort_whilelt::<f64>(p512), p512);
    }
}
