//! Software IEEE 754 binary16 ("half precision").
//!
//! SVE supports vectorized 16-bit floating point (paper, Section III-A).
//! Grid does not compute in fp16; it uses the format only to compress data
//! exchanged over the communications network (Section V-B). This module
//! provides a storage type plus round-to-nearest-even conversions, enough
//! for the precision-conversion intrinsics and the comms-compression path.

/// IEEE 754 binary16 value, stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Largest finite half-precision value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon of binary16, 2^-10.
    pub const EPSILON: f64 = 9.765625e-4;

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Convert from `f32` with round-to-nearest-even, the rounding mode SVE
    /// `fcvt` uses by default.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = bits & 0x007f_ffff;

        if exp == 0xff {
            // Infinity or NaN. Preserve a quiet-NaN payload bit.
            let m = if mant == 0 {
                0
            } else {
                0x0200 | ((mant >> 13) as u16 & 0x03ff) | 1
            };
            return F16(sign | 0x7c00 | m);
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows to infinity.
            return F16(sign | 0x7c00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round-to-nearest-even on
            // the 13 discarded bits.
            let mant16 = (mant >> 13) as u16;
            let rest = mant & 0x1fff;
            let half = 0x1000;
            let mut out = ((unbiased + 15) as u16) << 10 | mant16;
            if rest > half || (rest == half && (mant16 & 1) == 1) {
                out += 1; // may carry into exponent: correct (rounds up to inf)
            }
            return F16(sign | out);
        }
        if unbiased >= -25 {
            // Subnormal result: shift the implicit leading 1 into the
            // mantissa. -25 is included because inputs above 2^-25 round up
            // to the smallest subnormal 2^-24 (the tie at exactly 2^-25
            // goes to even, i.e. zero), which the rounding below produces.
            let full = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let mant16 = (full >> shift) as u16;
            let rest = full & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut out = mant16;
            if rest > half || (rest == half && (mant16 & 1) == 1) {
                out += 1;
            }
            return F16(sign | out);
        }
        // Underflows to signed zero.
        F16(sign)
    }

    /// Convert to `f32` (exact: every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1f) as u32;
        let mant = (self.0 & 0x03ff) as u32;

        let bits = if exp == 0x1f {
            // Inf / NaN
            sign | 0x7f80_0000 | (mant << 13)
        } else if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize.
                let lead = mant.leading_zeros() - 22; // zeros within the 10-bit field
                let exp32 = 127 - 15 - lead;
                let mant32 = (mant << (lead + 1)) & 0x03ff;
                sign | (exp32 << 23) | (mant32 << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Convert from `f64` (via `f32`; double rounding is harmless here
    /// because f32 keeps 13 more mantissa bits than f16 — this matches the
    /// two-step `fcvt` sequence the hardware would execute).
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Convert to `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for any NaN payload.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }

    /// True for positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// True when the sign bit is set (including -0.0 and NaNs).
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let x = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(x).to_f32(), x);
        }
    }

    #[test]
    fn subnormals() {
        let tiny = (2.0f32).powi(-24); // smallest positive subnormal
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), tiny);
        let below = (2.0f32).powi(-26);
        assert_eq!(F16::from_f32(below).to_bits(), 0x0000);
        // The half-subnormal boundary: exactly 2^-25 ties to even (zero),
        // anything above it rounds up to the smallest subnormal.
        let half_tiny = (2.0f32).powi(-25);
        assert_eq!(F16::from_f32(half_tiny).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(half_tiny * 1.0001).to_bits(), 0x0001);
        assert_eq!(F16::from_f32(-half_tiny * 1.5).to_bits(), 0x8001);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).is_sign_negative());
        assert_eq!(F16::from_f32(65504.0).0, F16::MAX.0);
        // 65520 rounds up to infinity under round-to-nearest-even.
        assert!(F16::from_f32(65520.0).is_infinite());
        // 65519 rounds down to MAX.
        assert_eq!(F16::from_f32(65519.0).0, F16::MAX.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_bits(0x7e00).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties to
        // even should pick 1.0 (mantissa even).
        let halfway = 1.0f32 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between nextafter(1) and the one after;
        // ties to even picks the latter (even mantissa).
        let halfway_up = 1.0f32 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_f32(), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn relative_error_bound_in_normal_range() {
        // |x - f16(x)|/|x| <= 2^-11 for normal-range values: the bound that
        // justifies fp16 comms compression.
        let mut x = 6.1e-5f32;
        while x < 6.0e4 {
            let h = F16::from_f32(x).to_f32();
            let rel = ((x - h) / x).abs();
            assert!(rel <= 4.9e-4, "x={x} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn f64_path_matches_f32_path() {
        for &x in &[0.0, 1.0, -1.5, 2.71875, 1e-6, 6e4, -6e4] {
            assert_eq!(F16::from_f64(x).0, F16::from_f32(x as f32).0);
        }
    }

    #[test]
    fn all_bit_patterns_round_trip_through_f32() {
        // Every finite f16 must survive f16 -> f32 -> f16 unchanged.
        for bits in 0u16..=0xffff {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(F16::from_f32(h.to_f32()).0, bits, "bits {bits:#06x}");
            }
        }
    }
}
