//! Element types a vector register can be viewed as.
//!
//! SVE registers are untyped bit containers; each instruction imposes an
//! element interpretation (`.b`, `.h`, `.s`, `.d` in the assembly of the
//! paper's listings). [`SveElem`] is that interpretation: a fixed-width
//! scalar that can be read from / written to a lane of the byte-backed
//! register file. [`SveFloat`] adds the arithmetic the floating-point
//! instructions need.

use crate::f16::F16;

/// A scalar type that can occupy vector-register lanes.
pub trait SveElem: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Lane width in bytes (1, 2, 4 or 8).
    const BYTES: usize;
    /// Assembly suffix for this element size (`b`, `h`, `s`, `d`), as used
    /// in the paper's listings (`z0.d`, `p1.b`, ...).
    const SUFFIX: char;

    /// The additive identity; also what predicated-zeroing loads place in
    /// inactive lanes (`p1/z` in listing IV-A).
    fn zero() -> Self;

    /// Serialize into `dst` (little endian, `dst.len() == Self::BYTES`).
    fn write_le(self, dst: &mut [u8]);

    /// Deserialize from `src` (little endian, `src.len() == Self::BYTES`).
    fn read_le(src: &[u8]) -> Self;
}

/// Floating-point element: the operations behind `fmul`, `fmla`, `fcmla`
/// and friends. All arithmetic is performed in the element's own precision.
/// For [`F16`] this means round-tripping through `f32` per operation — not
/// an approximation: f32's 24-bit significand satisfies 24 ≥ 2·11 + 2, so
/// the intermediate rounding is innocuous and every op is the *correctly
/// rounded* binary16 result, matching a hardware half-precision unit bit
/// for bit (the property-test suite pins this). The solver's f16 compute
/// tier depends on it.
pub trait SveFloat: SveElem {
    /// The multiplicative identity.
    fn one() -> Self;
    /// Lane addition.
    fn add(self, rhs: Self) -> Self;
    /// Lane subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Lane multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Lane negation.
    fn neg(self) -> Self;
    /// Fused multiply-add `self * rhs + acc` (single rounding for f32/f64).
    fn mul_add(self, rhs: Self, acc: Self) -> Self;
    /// Lane absolute value.
    fn abs(self) -> Self;
    /// Lane maximum.
    fn max(self, rhs: Self) -> Self;
    /// Lane minimum.
    fn min(self, rhs: Self) -> Self;
    /// Lane square root.
    fn sqrt(self) -> Self;
    /// Convert from `f64` (rounding to this precision).
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64` exactly.
    fn to_f64(self) -> f64;
}

impl SveElem for f64 {
    const BYTES: usize = 8;
    const SUFFIX: char = 'd';

    fn zero() -> Self {
        0.0
    }

    fn write_le(self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.to_le_bytes());
    }

    fn read_le(src: &[u8]) -> Self {
        f64::from_le_bytes(src.try_into().expect("8-byte lane"))
    }
}

impl SveFloat for f64 {
    fn one() -> Self {
        1.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    fn neg(self) -> Self {
        -self
    }
    fn mul_add(self, rhs: Self, acc: Self) -> Self {
        f64::mul_add(self, rhs, acc)
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn max(self, rhs: Self) -> Self {
        f64::max(self, rhs)
    }
    fn min(self, rhs: Self) -> Self {
        f64::min(self, rhs)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl SveElem for f32 {
    const BYTES: usize = 4;
    const SUFFIX: char = 's';

    fn zero() -> Self {
        0.0
    }

    fn write_le(self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.to_le_bytes());
    }

    fn read_le(src: &[u8]) -> Self {
        f32::from_le_bytes(src.try_into().expect("4-byte lane"))
    }
}

impl SveFloat for f32 {
    fn one() -> Self {
        1.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    fn neg(self) -> Self {
        -self
    }
    fn mul_add(self, rhs: Self, acc: Self) -> Self {
        f32::mul_add(self, rhs, acc)
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn max(self, rhs: Self) -> Self {
        f32::max(self, rhs)
    }
    fn min(self, rhs: Self) -> Self {
        f32::min(self, rhs)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl SveElem for F16 {
    const BYTES: usize = 2;
    const SUFFIX: char = 'h';

    fn zero() -> Self {
        F16::ZERO
    }

    fn write_le(self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.0.to_le_bytes());
    }

    fn read_le(src: &[u8]) -> Self {
        F16(u16::from_le_bytes(src.try_into().expect("2-byte lane")))
    }
}

impl SveFloat for F16 {
    fn one() -> Self {
        F16::from_f32(1.0)
    }
    fn add(self, rhs: Self) -> Self {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
    fn sub(self, rhs: Self) -> Self {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
    fn mul(self, rhs: Self) -> Self {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
    fn neg(self) -> Self {
        F16(self.0 ^ 0x8000)
    }
    fn mul_add(self, rhs: Self, acc: Self) -> Self {
        // f32 holds the exact product of two f16s, so a single rounding at
        // the end matches a fused half-precision unit.
        F16::from_f32(self.to_f32() * rhs.to_f32() + acc.to_f32())
    }
    fn abs(self) -> Self {
        F16(self.0 & 0x7fff)
    }
    fn max(self, rhs: Self) -> Self {
        F16::from_f32(self.to_f32().max(rhs.to_f32()))
    }
    fn min(self, rhs: Self) -> Self {
        F16::from_f32(self.to_f32().min(rhs.to_f32()))
    }
    fn sqrt(self) -> Self {
        F16::from_f32(self.to_f32().sqrt())
    }
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    fn to_f64(self) -> f64 {
        self.to_f64()
    }
}

impl SveElem for i32 {
    const BYTES: usize = 4;
    const SUFFIX: char = 's';

    fn zero() -> Self {
        0
    }

    fn write_le(self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.to_le_bytes());
    }

    fn read_le(src: &[u8]) -> Self {
        i32::from_le_bytes(src.try_into().expect("4-byte lane"))
    }
}

impl SveElem for u64 {
    const BYTES: usize = 8;
    const SUFFIX: char = 'd';

    fn zero() -> Self {
        0
    }

    fn write_le(self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.to_le_bytes());
    }

    fn read_le(src: &[u8]) -> Self {
        u64::from_le_bytes(src.try_into().expect("8-byte lane"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<E: SveElem>(v: E) {
        let mut buf = vec![0u8; E::BYTES];
        v.write_le(&mut buf);
        assert_eq!(E::read_le(&buf), v);
    }

    #[test]
    fn lane_serialization_round_trips() {
        round_trip(3.5f64);
        round_trip(-0.25f32);
        round_trip(F16::from_f32(1.5));
        round_trip(-7i32);
        round_trip(0xdead_beef_u64);
    }

    #[test]
    fn suffixes_match_element_sizes() {
        assert_eq!(<f64 as SveElem>::SUFFIX, 'd');
        assert_eq!(<f32 as SveElem>::SUFFIX, 's');
        assert_eq!(<F16 as SveElem>::SUFFIX, 'h');
        assert_eq!(<f64 as SveElem>::BYTES, 8);
        assert_eq!(<F16 as SveElem>::BYTES, 2);
    }

    #[test]
    fn f16_neg_and_abs_are_sign_ops() {
        let x = F16::from_f32(2.5);
        assert_eq!(SveFloat::neg(x).to_f32(), -2.5);
        assert_eq!(SveFloat::abs(SveFloat::neg(x)).to_f32(), 2.5);
    }

    #[test]
    fn fused_mul_add_is_single_rounding_f64() {
        // x*x with x = 1 + 2^-52 has a 2^-104 tail that only survives a
        // fused multiply-add: x*x - (1 + 2^-51) == 2^-104 exactly.
        let x = 1.0 + f64::EPSILON;
        let c = -(1.0 + 2.0 * f64::EPSILON);
        let fused = SveFloat::mul_add(x, x, c);
        assert_eq!(fused, f64::EPSILON * f64::EPSILON);
        assert_eq!(x * x + c, 0.0, "non-fused path loses the tail");
    }
}
