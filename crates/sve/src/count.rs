//! Instruction accounting and silicon cost profiles.
//!
//! The paper could not measure performance ("lack of processor architectures
//! supporting SVE", Section VII) and argues instead from instruction
//! sequences, noting that "the performance signatures of the instructions
//! might differ across different SVE platforms" and that "it is not
//! guaranteed that the FCMLA instruction outperforms alternative
//! implementations" (Section V-E). This module makes those arguments
//! quantitative: every intrinsic executed under an [`crate::SveCtx`] is
//! tallied per [`Opcode`], and pluggable [`CostModel`]s convert tallies into
//! cycle estimates for hypothetical silicon.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! opcodes {
    ($($name:ident => $mnemonic:literal, $class:ident;)*) => {
        /// The SVE (and supporting scalar) operations the model accounts for.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(usize)]
        pub enum Opcode {
            $(#[doc = $mnemonic] $name,)*
        }

        impl Opcode {
            /// Total number of distinct opcodes.
            pub const COUNT: usize = opcodes!(@count $($name)*);

            /// All opcodes, in declaration order.
            pub const ALL: [Opcode; Self::COUNT] = [$(Opcode::$name,)*];

            /// Assembly mnemonic as it appears in the paper's listings.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$name => $mnemonic,)*
                }
            }

            /// Broad functional class, used by cost models and reports.
            pub fn class(self) -> OpClass {
                match self {
                    $(Opcode::$name => OpClass::$class,)*
                }
            }
        }
    };
    (@count) => { 0 };
    (@count $head:ident $($tail:ident)*) => { 1 + opcodes!(@count $($tail)*) };
}

/// Functional classes of operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Contiguous predicated loads (`ld1d` ...).
    Load,
    /// Structure loads (`ld2d`, `ld3d`, `ld4d`): de-interleave on the way in.
    LoadStruct,
    /// Gather loads (`ld1d` with vector index).
    Gather,
    /// Contiguous predicated stores.
    Store,
    /// Structure stores (`st2d` ...): re-interleave on the way out.
    StoreStruct,
    /// Real floating-point arithmetic (`fmul`, `fadd`, `fmla`, ...).
    FpArith,
    /// Complex floating-point arithmetic (`fcmla`, `fcadd`).
    FpComplex,
    /// Precision conversion (`fcvt`).
    FpConvert,
    /// Horizontal reductions (`faddv`, `fmaxv`).
    Reduce,
    /// Permutes and selects (`ext`, `rev`, `zip`, `uzp`, `trn`, `tbl`, `sel`, `dup`).
    Permute,
    /// Predicate manipulation (`ptrue`, `whilelo`, `brkns`, `cntp`).
    Predicate,
    /// Register moves and prefixes (`mov`, `movprfx`, `dup` immediate).
    Move,
    /// Scalar bookkeeping (`incd`, `add`, `lsl`, `cmp`, branches).
    Scalar,
}

opcodes! {
    // Loads / stores
    Ld1 => "ld1", Load;
    Ld1Gather => "ld1 (gather)", Gather;
    Ld2 => "ld2", LoadStruct;
    Ld3 => "ld3", LoadStruct;
    Ld4 => "ld4", LoadStruct;
    St1 => "st1", Store;
    St1Scatter => "st1 (scatter)", Store;
    St2 => "st2", StoreStruct;
    St3 => "st3", StoreStruct;
    St4 => "st4", StoreStruct;
    Prf => "prf", Load;
    // Real arithmetic
    Fadd => "fadd", FpArith;
    Fsub => "fsub", FpArith;
    Fmul => "fmul", FpArith;
    Fneg => "fneg", FpArith;
    Fabs => "fabs", FpArith;
    Fsqrt => "fsqrt", FpArith;
    Fmla => "fmla", FpArith;
    Fmls => "fmls", FpArith;
    Fnmls => "fnmls", FpArith;
    Fmax => "fmax", FpArith;
    Fmin => "fmin", FpArith;
    Fscale => "fscale", FpArith;
    // Integer arithmetic (index math inside kernels)
    Add => "add", FpArith;
    Sub => "sub", FpArith;
    Mul => "mul", FpArith;
    // Complex arithmetic
    Fcmla => "fcmla", FpComplex;
    Fcadd => "fcadd", FpComplex;
    // Conversion
    Fcvt => "fcvt", FpConvert;
    // Reductions
    Faddv => "faddv", Reduce;
    Fmaxv => "fmaxv", Reduce;
    // Permutes
    Dup => "dup", Move;
    DupLane => "dup (lane)", Permute;
    Ext => "ext", Permute;
    Rev => "rev", Permute;
    Zip1 => "zip1", Permute;
    Zip2 => "zip2", Permute;
    Uzp1 => "uzp1", Permute;
    Uzp2 => "uzp2", Permute;
    Trn1 => "trn1", Permute;
    Trn2 => "trn2", Permute;
    Tbl => "tbl", Permute;
    Sel => "sel", Permute;
    Splice => "splice", Permute;
    // Predicates
    Ptrue => "ptrue", Predicate;
    Whilelo => "whilelo", Predicate;
    Brkns => "brkns", Predicate;
    Cntp => "cntp", Predicate;
    PredLogic => "and/orr (pred)", Predicate;
    // Moves
    MovZ => "mov (z)", Move;
    MovP => "mov (p)", Move;
    Movprfx => "movprfx", Move;
    // Scalar bookkeeping
    Cnt => "cntb/h/w/d", Scalar;
    Incd => "incb/h/w/d", Scalar;
    ScalarAlu => "scalar alu", Scalar;
    Branch => "b.cond", Scalar;
}

/// Per-opcode execution tally. Thread-safe: kernels may run under Rayon.
pub struct Counters {
    counts: [AtomicU64; Opcode::COUNT],
    enabled: std::sync::atomic::AtomicBool,
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

impl Counters {
    /// Fresh zeroed counters with counting enabled.
    pub fn new() -> Self {
        Counters {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            enabled: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Record one execution of `op`.
    #[inline]
    pub fn bump(&self, op: Opcode) {
        if self.enabled.load(Ordering::Relaxed) {
            self.counts[op as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record `n` executions of `op`.
    #[inline]
    pub fn bump_n(&self, op: Opcode, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.counts[op as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Enable or disable counting (e.g. around warm-up phases).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Executions recorded for `op`.
    pub fn get(&self, op: Opcode) -> u64 {
        self.counts[op as usize].load(Ordering::Relaxed)
    }

    /// Total executions across all opcodes.
    pub fn total(&self) -> u64 {
        Opcode::ALL.iter().map(|&op| self.get(op)).sum()
    }

    /// Total executions within one functional class.
    pub fn total_class(&self, class: OpClass) -> u64 {
        Opcode::ALL
            .iter()
            .filter(|op| op.class() == class)
            .map(|&op| self.get(op))
            .sum()
    }

    /// Reset all tallies to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot as (opcode, count) pairs with nonzero counts, sorted
    /// descending by count.
    pub fn snapshot(&self) -> Vec<(Opcode, u64)> {
        let mut v: Vec<_> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.get(op)))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(
                self.snapshot()
                    .into_iter()
                    .map(|(op, n)| (op.mnemonic(), n)),
            )
            .finish()
    }
}

/// A hypothetical silicon implementation: reciprocal-throughput cost (in
/// cycles) per opcode. "The silicon provider ... defines the performance
/// characteristics of the hardware" (paper, Section III-B) — these profiles
/// are the knob that sentence describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// Every instruction costs one cycle: pure instruction count, the
    /// metric the paper's Section IV comparisons use implicitly.
    Uniform,
    /// FCMLA at full rate (one per cycle), like a machine whose FP pipes
    /// implement complex arithmetic natively (A64FX-class).
    FcmlaFast,
    /// FCMLA microcoded at 4 cycles: the Section V-E scenario where "it is
    /// not guaranteed that the FCMLA instruction outperforms alternative
    /// implementations".
    FcmlaSlow,
}

impl CostModel {
    /// Reciprocal throughput, in cycles, of one execution of `op`.
    pub fn cost(self, op: Opcode) -> u64 {
        match self {
            CostModel::Uniform => 1,
            CostModel::FcmlaFast => match op.class() {
                OpClass::LoadStruct | OpClass::StoreStruct => 3,
                OpClass::Gather => 4,
                OpClass::Reduce => 4,
                OpClass::FpComplex => 1,
                _ => 1,
            },
            CostModel::FcmlaSlow => match op.class() {
                OpClass::LoadStruct | OpClass::StoreStruct => 3,
                OpClass::Gather => 4,
                OpClass::Reduce => 4,
                OpClass::FpComplex => 4,
                _ => 1,
            },
        }
    }

    /// Cycle estimate for a counter snapshot under this model.
    pub fn cycles(self, counters: &Counters) -> u64 {
        Opcode::ALL
            .iter()
            .map(|&op| counters.get(op) * self.cost(op))
            .sum()
    }

    /// All profiles, for sweeps.
    pub fn all() -> [CostModel; 3] {
        [
            CostModel::Uniform,
            CostModel::FcmlaFast,
            CostModel::FcmlaSlow,
        ]
    }

    /// Short profile name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CostModel::Uniform => "uniform",
            CostModel::FcmlaFast => "fcmla-fast",
            CostModel::FcmlaSlow => "fcmla-slow",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_total() {
        let c = Counters::new();
        c.bump(Opcode::Fcmla);
        c.bump(Opcode::Fcmla);
        c.bump(Opcode::Ld1);
        assert_eq!(c.get(Opcode::Fcmla), 2);
        assert_eq!(c.get(Opcode::Ld1), 1);
        assert_eq!(c.get(Opcode::St1), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn class_totals() {
        let c = Counters::new();
        c.bump_n(Opcode::Fmul, 4);
        c.bump_n(Opcode::Fmla, 2);
        c.bump(Opcode::Fcmla);
        assert_eq!(c.total_class(OpClass::FpArith), 6);
        assert_eq!(c.total_class(OpClass::FpComplex), 1);
    }

    #[test]
    fn disabled_counters_do_not_record() {
        let c = Counters::new();
        c.set_enabled(false);
        c.bump(Opcode::Fmul);
        assert_eq!(c.total(), 0);
        c.set_enabled(true);
        c.bump(Opcode::Fmul);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn reset_clears() {
        let c = Counters::new();
        c.bump_n(Opcode::St2, 7);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn snapshot_sorted_desc() {
        let c = Counters::new();
        c.bump_n(Opcode::Ld1, 5);
        c.bump_n(Opcode::Fcmla, 9);
        c.bump_n(Opcode::St1, 1);
        let snap = c.snapshot();
        assert_eq!(snap[0], (Opcode::Fcmla, 9));
        assert_eq!(snap[2], (Opcode::St1, 1));
    }

    #[test]
    fn cost_models_diverge_only_where_documented() {
        // fcmla: 1 cycle fast, 4 slow; fmul identical everywhere.
        assert_eq!(CostModel::FcmlaFast.cost(Opcode::Fcmla), 1);
        assert_eq!(CostModel::FcmlaSlow.cost(Opcode::Fcmla), 4);
        for m in CostModel::all() {
            assert_eq!(m.cost(Opcode::Fmul), 1);
        }
    }

    #[test]
    fn cycles_weighted_sum() {
        let c = Counters::new();
        c.bump_n(Opcode::Fcmla, 10);
        c.bump_n(Opcode::Fmul, 10);
        assert_eq!(CostModel::Uniform.cycles(&c), 20);
        assert_eq!(CostModel::FcmlaSlow.cycles(&c), 50);
    }

    #[test]
    fn every_opcode_has_mnemonic_and_class() {
        for op in Opcode::ALL {
            assert!(!op.mnemonic().is_empty());
            let _ = op.class();
        }
        const _: () = assert!(Opcode::COUNT > 40);
    }
}
