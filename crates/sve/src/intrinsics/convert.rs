//! Floating-point precision conversion.
//!
//! "Conversion of floating-point precision" is one of the machine-specific
//! operations Grid implements per architecture (paper Section II-C), and
//! vectorized 16-bit conversions are how Grid compresses data "upon data
//! exchange over the communications network" (Section V-B).
//!
//! The ARM `fcvt` instruction converts in place within element containers:
//! narrowing `.d -> .s` leaves each `f32` in the low half of its 64-bit
//! container. Packing a full vector therefore pairs `fcvt` with `uzp1`
//! (narrow) or `zip1/zip2` with `fcvt` (widen); the `pack`/`unpack` helpers
//! below execute — and account — exactly those sequences.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::f16::F16;
use crate::intrinsics::{svuzp1, svzip1, svzip2};
use crate::pred::PReg;
use crate::vreg::VReg;

/// `svcvt_f32_f64` — narrow each active 64-bit element's `f64` to an `f32`
/// stored in the low 32 bits of the same container (high half zeroed).
pub fn svcvt_f32_f64(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fcvt);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes64() {
        if pg.elem_active::<f64>(e) {
            out.set_lane::<f32>(2 * e, a.lane::<f64>(e) as f32);
        }
    }
    out
}

/// `svcvt_f64_f32` — widen the `f32` in the low half of each active 64-bit
/// container to an `f64`.
pub fn svcvt_f64_f32(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fcvt);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes64() {
        if pg.elem_active::<f64>(e) {
            out.set_lane::<f64>(e, a.lane::<f32>(2 * e) as f64);
        }
    }
    out
}

/// `svcvt_f16_f32` — narrow each active 32-bit element's `f32` to binary16
/// in the low 16 bits of the container.
pub fn svcvt_f16_f32(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fcvt);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes32() {
        if pg.elem_active::<f32>(e) {
            out.set_lane::<F16>(2 * e, F16::from_f32(a.lane::<f32>(e)));
        }
    }
    out
}

/// `svcvt_f32_f16` — widen binary16 in the low half of each active 32-bit
/// container to `f32`.
pub fn svcvt_f32_f16(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fcvt);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes32() {
        if pg.elem_active::<f32>(e) {
            out.set_lane::<f32>(e, a.lane::<F16>(2 * e).to_f32());
        }
    }
    out
}

/// Narrow two double-precision vectors into one single-precision vector
/// (`fcvt` x2 + `uzp1`): lanes of `a` land in the low half, `b` in the high
/// half — Grid's precision-change pattern.
pub fn cvt_pack_f64_to_f32(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    let la = svcvt_f32_f64(ctx, pg, a);
    let lb = svcvt_f32_f64(ctx, pg, b);
    svuzp1::<f32>(ctx, &la, &lb)
}

/// Widen one single-precision vector into two double-precision vectors
/// (`zip1`/`zip2` + `fcvt` x2) — inverse of [`cvt_pack_f64_to_f32`].
pub fn cvt_unpack_f32_to_f64(ctx: &SveCtx, pg: &PReg, a: &VReg) -> (VReg, VReg) {
    let lo = svzip1::<f32>(ctx, a, a);
    let hi = svzip2::<f32>(ctx, a, a);
    // After zip with itself, each 64-bit container's low half holds the f32.
    (svcvt_f64_f32(ctx, pg, &lo), svcvt_f64_f32(ctx, pg, &hi))
}

/// Narrow two single-precision vectors into one half-precision vector —
/// the comms-compression kernel (Section V-B).
pub fn cvt_pack_f32_to_f16(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    let la = svcvt_f16_f32(ctx, pg, a);
    let lb = svcvt_f16_f32(ctx, pg, b);
    svuzp1::<F16>(ctx, &la, &lb)
}

/// Widen one half-precision vector into two single-precision vectors —
/// comms decompression.
pub fn cvt_unpack_f16_to_f32(ctx: &SveCtx, pg: &PReg, a: &VReg) -> (VReg, VReg) {
    let lo = svzip1::<F16>(ctx, a, a);
    let hi = svzip2::<F16>(ctx, a, a);
    (svcvt_f32_f16(ctx, pg, &lo), svcvt_f32_f16(ctx, pg, &hi))
}

/// Convenience: the scalar conversion chain f64 → f16 → f64 used by the
/// comms codec tests to bound compression error.
pub fn f64_through_f16(x: f64) -> f64 {
    F16::from_f64(x).to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::SveFloat as _;
    use crate::intrinsics::svptrue;
    use crate::vl::VectorLength;

    #[test]
    fn narrow_widen_f64_f32_in_container() {
        let ctx = SveCtx::new(VectorLength::of(256)); // 4 d-lanes
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::from_fn::<f64>(ctx.vl(), |i| 1.5 * (i as f64 + 1.0));
        let narrow = svcvt_f32_f64(&ctx, &pg, &a);
        assert_eq!(narrow.lane::<f32>(0), 1.5);
        assert_eq!(narrow.lane::<f32>(1), 0.0); // high half of container zero
        assert_eq!(narrow.lane::<f32>(2), 3.0);
        let wide = svcvt_f64_f32(&ctx, &pg, &narrow);
        assert!(wide.lanes_eq::<f64>(&a, ctx.vl()));
    }

    #[test]
    fn pack_unpack_f64_f32_round_trips() {
        let ctx = SveCtx::new(VectorLength::of(512)); // 8 d-lanes
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::from_fn::<f64>(ctx.vl(), |i| i as f64 + 0.25);
        let b = VReg::from_fn::<f64>(ctx.vl(), |i| -(i as f64) - 0.5);
        let packed = cvt_pack_f64_to_f32(&ctx, &pg, &a, &b);
        // Low half = a, high half = b, as f32 lanes.
        assert_eq!(packed.lane::<f32>(0), 0.25);
        assert_eq!(packed.lane::<f32>(7), 7.25);
        assert_eq!(packed.lane::<f32>(8), -0.5);
        let (ra, rb) = cvt_unpack_f32_to_f64(&ctx, &pg, &packed);
        assert!(ra.lanes_eq::<f64>(&a, ctx.vl()));
        assert!(rb.lanes_eq::<f64>(&b, ctx.vl()));
    }

    #[test]
    fn pack_unpack_f32_f16_round_trips_representable_values() {
        let ctx = SveCtx::new(VectorLength::of(256)); // 8 s-lanes
        let pg = svptrue::<f32>(&ctx);
        // Halves of small integers are exact in f16.
        let a = VReg::from_fn::<f32>(ctx.vl(), |i| i as f32 * 0.5);
        let b = VReg::from_fn::<f32>(ctx.vl(), |i| 10.0 - i as f32);
        let packed = cvt_pack_f32_to_f16(&ctx, &pg, &a, &b);
        let (ra, rb) = cvt_unpack_f16_to_f32(&ctx, &pg, &packed);
        assert!(ra.lanes_eq::<f32>(&a, ctx.vl()));
        assert!(rb.lanes_eq::<f32>(&b, ctx.vl()));
    }

    #[test]
    fn f16_compression_error_is_bounded() {
        let mut worst: f64 = 0.0;
        let mut x = 1.0e-3;
        while x < 1.0e3 {
            let rel = ((x - f64_through_f16(x)) / x).abs();
            worst = worst.max(rel);
            x *= 1.173;
        }
        assert!(worst <= F16::EPSILON, "worst rel err {worst}");
    }

    #[test]
    fn conversion_counts_fcvt_and_permutes() {
        let ctx = SveCtx::new(VectorLength::of(256));
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::zeroed();
        let _ = cvt_pack_f64_to_f32(&ctx, &pg, &a, &a);
        assert_eq!(ctx.counters().get(Opcode::Fcvt), 2);
        assert_eq!(ctx.counters().get(Opcode::Uzp1), 1);
    }

    #[test]
    fn f16_sve_float_arithmetic_sane() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.0);
        assert_eq!(a.mul(b).to_f32(), 3.0);
        assert_eq!(a.add(b).to_f32(), 3.5);
    }
}
