//! Real floating-point arithmetic intrinsics.
//!
//! These are the instructions the auto-vectorizer falls back to for complex
//! multiplication (listing IV-B: `fmul`, `fmla`, `fnmls`, `movprfx`) and the
//! building blocks of the paper's Section V-E "alternative implementation of
//! complex arithmetics based on instructions for real arithmetics".

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::{SveElem, SveFloat};
use crate::pred::PReg;
use crate::vreg::VReg;

#[inline]
fn map2<E: SveFloat>(
    ctx: &SveCtx,
    pg: &PReg,
    a: &VReg,
    b: &VReg,
    merge: Merge,
    f: impl Fn(E, E) -> E,
) -> VReg {
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        let v = if pg.elem_active::<E>(e) {
            f(a.lane(e), b.lane(e))
        } else {
            match merge {
                Merge::Zero => E::zero(),
                Merge::First => a.lane(e),
                Merge::All => f(a.lane(e), b.lane(e)),
            }
        };
        out.set_lane(e, v);
    }
    out
}

#[derive(Clone, Copy)]
enum Merge {
    Zero,
    First,
    All,
}

/// `svdup` — broadcast a scalar into every lane (`mov z0.d, #imm` /
/// `dup z0.d, x0`).
pub fn svdup<E: SveElem>(ctx: &SveCtx, x: E) -> VReg {
    ctx.exec(Opcode::Dup);
    VReg::from_fn::<E>(ctx.vl(), |_| x)
}

/// `svadd_x` — lane-wise add; inactive lanes computed unpredicated.
pub fn svadd_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fadd);
    map2::<E>(ctx, pg, a, b, Merge::All, |x, y| x.add(y))
}

/// `svadd_m` — lane-wise add, inactive lanes keep `a`.
pub fn svadd_m<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fadd);
    map2::<E>(ctx, pg, a, b, Merge::First, |x, y| x.add(y))
}

/// `svsub_x` — lane-wise subtract.
pub fn svsub_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fsub);
    map2::<E>(ctx, pg, a, b, Merge::All, |x, y| x.sub(y))
}

/// `svmul_x` — lane-wise multiply (listing IV-A's `fmul`).
pub fn svmul_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmul);
    map2::<E>(ctx, pg, a, b, Merge::All, |x, y| x.mul(y))
}

/// `svmul_z` — lane-wise multiply with zeroing predication.
pub fn svmul_z<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmul);
    map2::<E>(ctx, pg, a, b, Merge::Zero, |x, y| x.mul(y))
}

/// `svneg_x` — lane-wise negate.
pub fn svneg_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fneg);
    map2::<E>(ctx, pg, a, a, Merge::All, |x, _| x.neg())
}

/// `svneg_m` — lane-wise negate with merging predication: active lanes are
/// negated, inactive lanes keep their value. One instruction; this is how
/// the real-arithmetic complex kernels flip signs on alternating lanes.
pub fn svneg_m<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fneg);
    let mut out = *a;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            out.set_lane(e, a.lane::<E>(e).neg());
        }
    }
    out
}

/// `svabs_x` — lane-wise absolute value.
pub fn svabs_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fabs);
    map2::<E>(ctx, pg, a, a, Merge::All, |x, _| x.abs())
}

/// `svsqrt_x` — lane-wise square root.
pub fn svsqrt_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Fsqrt);
    map2::<E>(ctx, pg, a, a, Merge::All, |x, _| x.sqrt())
}

/// `svmax_x` / `svmin_x` — lane-wise max/min.
pub fn svmax_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmax);
    map2::<E>(ctx, pg, a, b, Merge::All, |x, y| x.max(y))
}

/// `svmin_x` — lane-wise minimum.
pub fn svmin_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmin);
    map2::<E>(ctx, pg, a, b, Merge::All, |x, y| x.min(y))
}

/// `svmla_m` — fused multiply-add: `acc + a*b` per lane, inactive lanes keep
/// `acc` (listing IV-B's `fmla z7.d, p1/m, z3.d, z0.d`).
pub fn svmla_m<E: SveFloat>(ctx: &SveCtx, pg: &PReg, acc: &VReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmla);
    let mut out = *acc;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            out.set_lane(e, a.lane::<E>(e).mul_add(b.lane(e), acc.lane(e)));
        }
    }
    out
}

/// `svmls_m` — fused multiply-subtract: `acc - a*b` per lane.
pub fn svmls_m<E: SveFloat>(ctx: &SveCtx, pg: &PReg, acc: &VReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fmls);
    let mut out = *acc;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            out.set_lane(e, a.lane::<E>(e).neg().mul_add(b.lane(e), acc.lane(e)));
        }
    }
    out
}

/// `svnmls_m` — negated multiply-subtract: `a*b - acc` per lane (listing
/// IV-B's `fnmls z6.d, p1/m, z2.d, z0.d`).
pub fn svnmls_m<E: SveFloat>(ctx: &SveCtx, pg: &PReg, acc: &VReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Fnmls);
    let mut out = *acc;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            out.set_lane(e, a.lane::<E>(e).mul_add(b.lane(e), acc.lane::<E>(e).neg()));
        }
    }
    out
}

/// `svindex` — lane `i` gets `base + i * step` (64-bit integer lanes); the
/// standard way to materialize gather indices.
pub fn svindex(ctx: &SveCtx, base: u64, step: u64) -> VReg {
    ctx.exec(Opcode::Dup);
    VReg::from_fn::<u64>(ctx.vl(), |i| base.wrapping_add(step.wrapping_mul(i as u64)))
}

/// `svadda` — strictly-ordered add-accumulate: fold the active lanes into
/// `init` in lane order. Unlike the tree-reducing `faddv`, the result is
/// bit-identical to a scalar loop — what reproducible global sums use.
pub fn svadda<E: SveFloat>(ctx: &SveCtx, pg: &PReg, init: E, a: &VReg) -> E {
    ctx.exec(Opcode::Faddv);
    let mut acc = init;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            acc = acc.add(a.lane(e));
        }
    }
    acc
}

/// `svscale_x` — multiply each active lane by `2^exp[i]` (integer exponent
/// lanes); exact scaling used by range-reduction kernels.
pub fn svscale_x<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg, exp: &VReg) -> VReg {
    ctx.exec(Opcode::Fscale);
    let mut out = *a;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            let k = exp.lane::<u64>(e * E::BYTES / 8) as i32;
            out.set_lane(e, E::from_f64(a.lane::<E>(e).to_f64() * (2.0f64).powi(k)));
        }
    }
    out
}

/// `movprfx` — move-prefix: copies a register so a destructive FMA can have
/// an independent destination (listing IV-B lines 12/14). Functionally a
/// register copy; accounted separately because it occupies an issue slot.
pub fn movprfx(ctx: &SveCtx, src: &VReg) -> VReg {
    ctx.exec(Opcode::Movprfx);
    *src
}

/// `mov z, z` — plain vector register move.
pub fn movz(ctx: &SveCtx, src: &VReg) -> VReg {
    ctx.exec(Opcode::MovZ);
    *src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::{svptrue, svwhilelt};
    use crate::vl::VectorLength;

    fn ctx() -> SveCtx {
        SveCtx::new(VectorLength::of(256))
    }

    fn v(ctx: &SveCtx, vals: &[f64]) -> VReg {
        VReg::from_fn::<f64>(ctx.vl(), |i| vals[i])
    }

    #[test]
    fn dup_broadcasts() {
        let ctx = ctx();
        let r = svdup::<f64>(&ctx, 2.5);
        assert_eq!(r.to_vec::<f64>(ctx.vl()), vec![2.5; 4]);
    }

    #[test]
    fn elementwise_ops() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let a = v(&ctx, &[1.0, 2.0, 3.0, 4.0]);
        let b = v(&ctx, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(
            svadd_x::<f64>(&ctx, &pg, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![11.0, 22.0, 33.0, 44.0]
        );
        assert_eq!(
            svsub_x::<f64>(&ctx, &pg, &b, &a).to_vec::<f64>(ctx.vl()),
            vec![9.0, 18.0, 27.0, 36.0]
        );
        assert_eq!(
            svmul_x::<f64>(&ctx, &pg, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![10.0, 40.0, 90.0, 160.0]
        );
        assert_eq!(
            svneg_x::<f64>(&ctx, &pg, &a).to_vec::<f64>(ctx.vl()),
            vec![-1.0, -2.0, -3.0, -4.0]
        );
        assert_eq!(
            svmax_x::<f64>(&ctx, &pg, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![10.0, 20.0, 30.0, 40.0]
        );
    }

    #[test]
    fn fma_family_matches_arm_semantics() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let acc = v(&ctx, &[100.0, 100.0, 100.0, 100.0]);
        let a = v(&ctx, &[2.0, 3.0, 4.0, 5.0]);
        let b = v(&ctx, &[10.0, 10.0, 10.0, 10.0]);
        // fmla: acc + a*b
        assert_eq!(
            svmla_m::<f64>(&ctx, &pg, &acc, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![120.0, 130.0, 140.0, 150.0]
        );
        // fmls: acc - a*b
        assert_eq!(
            svmls_m::<f64>(&ctx, &pg, &acc, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![80.0, 70.0, 60.0, 50.0]
        );
        // fnmls: a*b - acc
        assert_eq!(
            svnmls_m::<f64>(&ctx, &pg, &acc, &a, &b).to_vec::<f64>(ctx.vl()),
            vec![-80.0, -70.0, -60.0, -50.0]
        );
    }

    #[test]
    fn merge_predication_keeps_inactive_lanes() {
        let ctx = ctx();
        let pg = svwhilelt::<f64>(&ctx, 0, 2);
        let acc = v(&ctx, &[1.0, 1.0, 1.0, 1.0]);
        let a = v(&ctx, &[5.0, 5.0, 5.0, 5.0]);
        let b = v(&ctx, &[2.0, 2.0, 2.0, 2.0]);
        let r = svmla_m::<f64>(&ctx, &pg, &acc, &a, &b);
        assert_eq!(r.to_vec::<f64>(ctx.vl()), vec![11.0, 11.0, 1.0, 1.0]);
        let rz = svmul_z::<f64>(&ctx, &pg, &a, &b);
        assert_eq!(rz.to_vec::<f64>(ctx.vl()), vec![10.0, 10.0, 0.0, 0.0]);
        let rm = svadd_m::<f64>(&ctx, &pg, &a, &b);
        assert_eq!(rm.to_vec::<f64>(ctx.vl()), vec![7.0, 7.0, 5.0, 5.0]);
    }

    #[test]
    fn sqrt_abs() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let a = v(&ctx, &[4.0, 9.0, 16.0, 25.0]);
        assert_eq!(
            svsqrt_x::<f64>(&ctx, &pg, &a).to_vec::<f64>(ctx.vl()),
            vec![2.0, 3.0, 4.0, 5.0]
        );
        let n = svneg_x::<f64>(&ctx, &pg, &a);
        assert_eq!(
            svabs_x::<f64>(&ctx, &pg, &n).to_vec::<f64>(ctx.vl()),
            vec![4.0, 9.0, 16.0, 25.0]
        );
    }

    #[test]
    fn movprfx_copies_and_counts() {
        let ctx = ctx();
        let a = v(&ctx, &[1.0, 2.0, 3.0, 4.0]);
        let c = movprfx(&ctx, &a);
        assert!(c.lanes_eq::<f64>(&a, ctx.vl()));
        assert_eq!(ctx.counters().get(Opcode::Movprfx), 1);
    }

    #[test]
    fn f32_lanes() {
        let ctx = ctx(); // 8 x f32
        let pg = svptrue::<f32>(&ctx);
        let a = VReg::from_fn::<f32>(ctx.vl(), |i| i as f32);
        let b = svdup::<f32>(&ctx, 2.0);
        let r = svmul_x::<f32>(&ctx, &pg, &a, &b);
        assert_eq!(r.lane::<f32>(7), 14.0);
    }

    #[test]
    fn index_materializes_arithmetic_sequence() {
        let ctx = ctx();
        let r = svindex(&ctx, 10, 3);
        assert_eq!(r.lane::<u64>(0), 10);
        assert_eq!(r.lane::<u64>(3), 19);
    }

    #[test]
    fn adda_is_strictly_ordered() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let a = v(&ctx, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(svadda::<f64>(&ctx, &pg, 100.0, &a), 110.0);
        let partial = svwhilelt::<f64>(&ctx, 0, 2);
        assert_eq!(svadda::<f64>(&ctx, &partial, 0.0, &a), 3.0);
    }

    #[test]
    fn scale_multiplies_by_powers_of_two() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let a = v(&ctx, &[1.5, 1.5, 1.5, 1.5]);
        let exp = VReg::from_fn::<u64>(ctx.vl(), |i| i as u64);
        let r = svscale_x::<f64>(&ctx, &pg, &a, &exp);
        assert_eq!(r.to_vec::<f64>(ctx.vl()), vec![1.5, 3.0, 6.0, 12.0]);
    }
}
