//! Permutation intrinsics.
//!
//! "Permutations of vector elements" are one of the machine-specific
//! operations Grid confines to its abstraction layer (paper, Section II-C):
//! the virtual-node layout turns nearest-neighbour access at sub-lattice
//! boundaries into lane permutations, and the Section V-E real-arithmetic
//! complex kernels need `trn1/trn2`-style de-interleaving inside registers.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::SveElem;
use crate::pred::PReg;
use crate::vreg::VReg;

/// `svext` — extract a vector spanning two sources: result lane `e` is
/// `a[e + shift]` while in range, continuing into `b`. The classic
/// rotate-lanes idiom is `svext(v, v, shift)`.
pub fn svext<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg, shift: usize) -> VReg {
    ctx.exec(Opcode::Ext);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    assert!(shift <= lanes, "ext shift beyond vector length");
    VReg::from_fn::<E>(ctx.vl(), |e| {
        let i = e + shift;
        if i < lanes {
            a.lane(i)
        } else {
            b.lane(i - lanes)
        }
    })
}

/// `svrev` — reverse all lanes.
pub fn svrev<E: SveElem>(ctx: &SveCtx, a: &VReg) -> VReg {
    ctx.exec(Opcode::Rev);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    VReg::from_fn::<E>(ctx.vl(), |e| a.lane(lanes - 1 - e))
}

/// `svzip1` — interleave the low halves of two vectors.
pub fn svzip1<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Zip1);
    VReg::from_fn::<E>(ctx.vl(), |e| {
        if e % 2 == 0 {
            a.lane(e / 2)
        } else {
            b.lane(e / 2)
        }
    })
}

/// `svzip2` — interleave the high halves of two vectors.
pub fn svzip2<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Zip2);
    let half = ctx.vl().lanes_of(E::BYTES) / 2;
    VReg::from_fn::<E>(ctx.vl(), |e| {
        if e % 2 == 0 {
            a.lane(half + e / 2)
        } else {
            b.lane(half + e / 2)
        }
    })
}

/// `svuzp1` — concatenate even lanes of `a` then `b` (de-interleave).
pub fn svuzp1<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Uzp1);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    let half = lanes / 2;
    VReg::from_fn::<E>(ctx.vl(), |e| {
        if e < half {
            a.lane(2 * e)
        } else {
            b.lane(2 * (e - half))
        }
    })
}

/// `svuzp2` — concatenate odd lanes of `a` then `b`.
pub fn svuzp2<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Uzp2);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    let half = lanes / 2;
    VReg::from_fn::<E>(ctx.vl(), |e| {
        if e < half {
            a.lane(2 * e + 1)
        } else {
            b.lane(2 * (e - half) + 1)
        }
    })
}

/// `svtrn1` — even lanes of both vectors, pairwise transposed: result lane
/// `2k` = `a[2k]`, lane `2k+1` = `b[2k]`.
pub fn svtrn1<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Trn1);
    VReg::from_fn::<E>(ctx.vl(), |e| {
        let base = e & !1;
        if e % 2 == 0 {
            a.lane(base)
        } else {
            b.lane(base)
        }
    })
}

/// `svtrn2` — odd-lane counterpart of [`svtrn1`].
pub fn svtrn2<E: SveElem>(ctx: &SveCtx, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Trn2);
    VReg::from_fn::<E>(ctx.vl(), |e| {
        let base = (e & !1) + 1;
        if e % 2 == 0 {
            a.lane(base)
        } else {
            b.lane(base)
        }
    })
}

/// `svtbl` — table lookup: result lane `e` is `a[idx[e]]`, or zero when the
/// index is out of range (hardware behaviour). The general permutation used
/// by Grid's virtual-node boundary shuffles.
pub fn svtbl<E: SveElem>(ctx: &SveCtx, a: &VReg, idx: &[usize]) -> VReg {
    ctx.exec(Opcode::Tbl);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    VReg::from_fn::<E>(ctx.vl(), |e| {
        let i = idx[e];
        if i < lanes {
            a.lane(i)
        } else {
            E::zero()
        }
    })
}

/// `svsel` — lane select: active lanes from `a`, inactive from `b`.
pub fn svsel<E: SveElem>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Sel);
    VReg::from_fn::<E>(ctx.vl(), |e| {
        if pg.elem_active::<E>(e) {
            a.lane(e)
        } else {
            b.lane(e)
        }
    })
}

/// `svdup_lane` — broadcast lane `i` of `a` to all lanes.
pub fn svdup_lane<E: SveElem>(ctx: &SveCtx, a: &VReg, i: usize) -> VReg {
    ctx.exec(Opcode::DupLane);
    let v: E = a.lane(i);
    VReg::from_fn::<E>(ctx.vl(), |_| v)
}

/// `svsplice` — active lanes of `a` (under `pg`), then leading lanes of `b`.
pub fn svsplice<E: SveElem>(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    ctx.exec(Opcode::Splice);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    let mut picked: Vec<E> = (0..lanes)
        .filter(|&e| pg.elem_active::<E>(e))
        .map(|e| a.lane(e))
        .collect();
    let mut bi = 0;
    while picked.len() < lanes {
        picked.push(b.lane(bi));
        bi += 1;
    }
    VReg::from_fn::<E>(ctx.vl(), |e| picked[e])
}

/// `svcompact` — pack the active lanes of `a` contiguously into the low
/// lanes of the result (inactive upper lanes zeroed). Only `.s`/`.d`
/// element sizes exist in hardware; modelled generically.
pub fn svcompact<E: SveElem>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> VReg {
    ctx.exec(Opcode::Splice);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    let mut out = VReg::zeroed();
    let mut k = 0;
    for e in 0..lanes {
        if pg.elem_active::<E>(e) {
            out.set_lane::<E>(k, a.lane(e));
            k += 1;
        }
    }
    out
}

/// `svclasta` — conditionally extract: the element *after* the last active
/// one (wrapping to the fallback when the predicate is empty or the last
/// active lane is the final lane).
pub fn svclasta<E: SveElem>(ctx: &SveCtx, pg: &PReg, fallback: E, a: &VReg) -> E {
    ctx.exec(Opcode::Sel);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    let last = (0..lanes).rev().find(|&e| pg.elem_active::<E>(e));
    match last {
        Some(e) if e + 1 < lanes => a.lane(e + 1),
        _ => fallback,
    }
}

/// `svclastb` — extract the last active element (or the fallback when the
/// predicate is empty).
pub fn svclastb<E: SveElem>(ctx: &SveCtx, pg: &PReg, fallback: E, a: &VReg) -> E {
    ctx.exec(Opcode::Sel);
    let lanes = ctx.vl().lanes_of(E::BYTES);
    match (0..lanes).rev().find(|&e| pg.elem_active::<E>(e)) {
        Some(e) => a.lane(e),
        None => fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::svwhilelt;
    use crate::vl::VectorLength;

    fn ctx() -> SveCtx {
        SveCtx::new(VectorLength::of(512)) // 8 x f64
    }

    fn iota(ctx: &SveCtx) -> VReg {
        VReg::from_fn::<f64>(ctx.vl(), |i| i as f64)
    }

    fn hund(ctx: &SveCtx) -> VReg {
        VReg::from_fn::<f64>(ctx.vl(), |i| 100.0 + i as f64)
    }

    #[test]
    fn ext_rotates_lanes() {
        let ctx = ctx();
        let a = iota(&ctx);
        let r = svext::<f64>(&ctx, &a, &a, 3);
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![3.0, 4.0, 5.0, 6.0, 7.0, 0.0, 1.0, 2.0]
        );
    }

    #[test]
    fn ext_spans_two_vectors() {
        let ctx = ctx();
        let r = svext::<f64>(&ctx, &iota(&ctx), &hund(&ctx), 6);
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![6.0, 7.0, 100.0, 101.0, 102.0, 103.0, 104.0, 105.0]
        );
    }

    #[test]
    fn rev_reverses() {
        let ctx = ctx();
        let r = svrev::<f64>(&ctx, &iota(&ctx));
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]
        );
    }

    #[test]
    fn zip_uzp_are_inverses() {
        let ctx = ctx();
        let a = iota(&ctx);
        let b = hund(&ctx);
        let lo = svzip1::<f64>(&ctx, &a, &b);
        let hi = svzip2::<f64>(&ctx, &a, &b);
        assert_eq!(
            lo.to_vec::<f64>(ctx.vl()),
            vec![0.0, 100.0, 1.0, 101.0, 2.0, 102.0, 3.0, 103.0]
        );
        // uzp1/uzp2 of (lo, hi) recover a and b.
        let ra = svuzp1::<f64>(&ctx, &lo, &hi);
        let rb = svuzp2::<f64>(&ctx, &lo, &hi);
        assert!(ra.lanes_eq::<f64>(&a, ctx.vl()));
        assert!(rb.lanes_eq::<f64>(&b, ctx.vl()));
    }

    #[test]
    fn trn_transposes_pairs() {
        let ctx = ctx();
        let r1 = svtrn1::<f64>(&ctx, &iota(&ctx), &hund(&ctx));
        let r2 = svtrn2::<f64>(&ctx, &iota(&ctx), &hund(&ctx));
        assert_eq!(
            r1.to_vec::<f64>(ctx.vl()),
            vec![0.0, 100.0, 2.0, 102.0, 4.0, 104.0, 6.0, 106.0]
        );
        assert_eq!(
            r2.to_vec::<f64>(ctx.vl()),
            vec![1.0, 101.0, 3.0, 103.0, 5.0, 105.0, 7.0, 107.0]
        );
    }

    #[test]
    fn tbl_general_permutation_and_oob_zero() {
        let ctx = ctx();
        let r = svtbl::<f64>(&ctx, &iota(&ctx), &[7, 6, 5, 4, 3, 2, 1, 99]);
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]
        );
    }

    #[test]
    fn sel_merges_by_predicate() {
        let ctx = ctx();
        let pg = svwhilelt::<f64>(&ctx, 0, 3);
        let r = svsel::<f64>(&ctx, &pg, &iota(&ctx), &hund(&ctx));
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![0.0, 1.0, 2.0, 103.0, 104.0, 105.0, 106.0, 107.0]
        );
    }

    #[test]
    fn dup_lane_broadcasts_one_lane() {
        let ctx = ctx();
        let r = svdup_lane::<f64>(&ctx, &iota(&ctx), 5);
        assert_eq!(r.to_vec::<f64>(ctx.vl()), vec![5.0; 8]);
    }

    #[test]
    fn splice_concatenates() {
        let ctx = ctx();
        let pg = svwhilelt::<f64>(&ctx, 0, 2);
        let r = svsplice::<f64>(&ctx, &pg, &iota(&ctx), &hund(&ctx));
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![0.0, 1.0, 100.0, 101.0, 102.0, 103.0, 104.0, 105.0]
        );
    }

    #[test]
    fn permute_ops_counted_as_permute_class() {
        use crate::count::OpClass;
        let ctx = ctx();
        let a = iota(&ctx);
        let _ = svext::<f64>(&ctx, &a, &a, 1);
        let _ = svrev::<f64>(&ctx, &a);
        let _ = svtbl::<f64>(&ctx, &a, &[0; 8]);
        assert_eq!(ctx.counters().total_class(OpClass::Permute), 3);
    }

    #[test]
    fn compact_packs_active_lanes() {
        let ctx = ctx();
        let mut pg = crate::pred::PReg::none();
        for e in [1usize, 3, 6] {
            pg.set_elem_active::<f64>(e, true);
        }
        let r = svcompact::<f64>(&ctx, &pg, &iota(&ctx));
        assert_eq!(
            r.to_vec::<f64>(ctx.vl()),
            vec![1.0, 3.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn clasta_and_clastb_extract_around_the_last_active() {
        let ctx = ctx();
        let pg = svwhilelt::<f64>(&ctx, 0, 3); // lanes 0..3 active
        let a = iota(&ctx);
        assert_eq!(svclastb::<f64>(&ctx, &pg, -1.0, &a), 2.0);
        assert_eq!(svclasta::<f64>(&ctx, &pg, -1.0, &a), 3.0);
        let empty = svwhilelt::<f64>(&ctx, 5, 5);
        assert_eq!(svclastb::<f64>(&ctx, &empty, -1.0, &a), -1.0);
        assert_eq!(svclasta::<f64>(&ctx, &empty, -1.0, &a), -1.0);
        // Last active lane is the final lane: clasta falls back.
        let full = svwhilelt::<f64>(&ctx, 0, 8);
        assert_eq!(svclasta::<f64>(&ctx, &full, -1.0, &a), -1.0);
    }
}
