//! ACLE-style intrinsics over the functional model.
//!
//! These functions mirror the ARM C Language Extensions for SVE (paper
//! reference \[6\]) that the Grid port uses: predicated loads/stores including
//! structure loads, real and complex arithmetic, permutes, reductions,
//! precision conversion and predicate construction. Naming follows ACLE
//! (`svld1`, `svcmla`, `svwhilelt`, ...) with the element type supplied as a
//! Rust generic instead of a suffix, and the [`crate::SveCtx`] supplied
//! explicitly where hardware has implicit state.
//!
//! Predication-variant suffixes follow ACLE:
//! * `_z` — inactive lanes of the result are zero,
//! * `_m` — inactive lanes merge from the first data operand,
//! * `_x` — inactive lanes are "don't care"; this model computes them anyway
//!   (deterministically), as unpredicated hardware forms would.

mod arith;
mod complex;
mod convert;
mod load_store;
mod perm;
mod predicate;
mod reduce;

pub use arith::*;
pub use complex::*;
pub use convert::*;
pub use load_store::*;
pub use perm::*;
pub use predicate::*;
pub use reduce::*;
