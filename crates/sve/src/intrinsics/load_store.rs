//! Predicated loads and stores, including the structure forms.
//!
//! Structure load/store is one of the SVE features the paper singles out as
//! beneficial for LQCD (Section III-A): `ld2d` loads an array of 2-element
//! structures into 2 vectors, one per structure element — which is exactly
//! how the auto-vectorizer de-interleaves `std::complex<double>` in listing
//! IV-B. Inactive lanes perform no memory access (so a predicate may mask
//! out-of-bounds tails, as hardware fault suppression would) and are zeroed
//! in the destination (`p/z`).

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::SveElem;
use crate::pred::PReg;
use crate::vreg::VReg;

#[inline]
fn load_lane<E: SveElem>(src: &[E], idx: usize) -> E {
    *src.get(idx).unwrap_or_else(|| {
        panic!(
            "sve: active lane reads out of bounds (index {idx}, slice len {})",
            src.len()
        )
    })
}

/// `svld1` — contiguous predicated load with zeroing.
pub fn svld1<E: SveElem>(ctx: &SveCtx, pg: &PReg, src: &[E]) -> VReg {
    ctx.exec(Opcode::Ld1);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            out.set_lane(e, load_lane(src, e));
        }
    }
    out
}

/// `svst1` — contiguous predicated store; only active lanes touch memory.
pub fn svst1<E: SveElem>(ctx: &SveCtx, pg: &PReg, dst: &mut [E], v: &VReg) {
    ctx.exec(Opcode::St1);
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            assert!(
                e < dst.len(),
                "sve: active lane writes out of bounds (index {e}, slice len {})",
                dst.len()
            );
            dst[e] = v.lane(e);
        }
    }
}

/// `svld2` — structure load of 2-element records: lane `e` of the first
/// result takes `src[2e]`, of the second `src[2e+1]` (listing IV-B's
/// `ld2d {z0.d, z1.d}`).
pub fn svld2<E: SveElem>(ctx: &SveCtx, pg: &PReg, src: &[E]) -> (VReg, VReg) {
    ctx.exec(Opcode::Ld2);
    let mut a = VReg::zeroed();
    let mut b = VReg::zeroed();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            a.set_lane(e, load_lane(src, 2 * e));
            b.set_lane(e, load_lane(src, 2 * e + 1));
        }
    }
    (a, b)
}

/// `svst2` — structure store of 2-element records (listing IV-B's `st2d`).
pub fn svst2<E: SveElem>(ctx: &SveCtx, pg: &PReg, dst: &mut [E], a: &VReg, b: &VReg) {
    ctx.exec(Opcode::St2);
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            assert!(
                2 * e + 1 < dst.len(),
                "sve: active lane writes out of bounds (record {e}, slice len {})",
                dst.len()
            );
            dst[2 * e] = a.lane(e);
            dst[2 * e + 1] = b.lane(e);
        }
    }
}

/// `svld3` — structure load of 3-element records (e.g. color vectors).
pub fn svld3<E: SveElem>(ctx: &SveCtx, pg: &PReg, src: &[E]) -> (VReg, VReg, VReg) {
    ctx.exec(Opcode::Ld3);
    let mut a = VReg::zeroed();
    let mut b = VReg::zeroed();
    let mut c = VReg::zeroed();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            a.set_lane(e, load_lane(src, 3 * e));
            b.set_lane(e, load_lane(src, 3 * e + 1));
            c.set_lane(e, load_lane(src, 3 * e + 2));
        }
    }
    (a, b, c)
}

/// `svst3` — structure store of 3-element records.
pub fn svst3<E: SveElem>(ctx: &SveCtx, pg: &PReg, dst: &mut [E], a: &VReg, b: &VReg, c: &VReg) {
    ctx.exec(Opcode::St3);
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            dst[3 * e] = a.lane(e);
            dst[3 * e + 1] = b.lane(e);
            dst[3 * e + 2] = c.lane(e);
        }
    }
}

/// `svld4` — structure load of 4-element records (e.g. spinor components).
pub fn svld4<E: SveElem>(ctx: &SveCtx, pg: &PReg, src: &[E]) -> [VReg; 4] {
    ctx.exec(Opcode::Ld4);
    let mut out = [VReg::zeroed(); 4];
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            for (k, reg) in out.iter_mut().enumerate() {
                reg.set_lane(e, load_lane(src, 4 * e + k));
            }
        }
    }
    out
}

/// `svst4` — structure store of 4-element records.
pub fn svst4<E: SveElem>(ctx: &SveCtx, pg: &PReg, dst: &mut [E], v: &[VReg; 4]) {
    ctx.exec(Opcode::St4);
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            for (k, reg) in v.iter().enumerate() {
                dst[4 * e + k] = reg.lane(e);
            }
        }
    }
}

/// `svld1_gather_index` — gather load: lane `e` takes `src[idx.lane::<u64>(e)]`.
pub fn svld1_gather<E: SveElem>(ctx: &SveCtx, pg: &PReg, src: &[E], idx: &VReg) -> VReg {
    ctx.exec(Opcode::Ld1Gather);
    let mut out = VReg::zeroed();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            // Index vector is of the same element *count*; u64 lanes are
            // only meaningful for 8-byte views, so use a scaled read.
            let i = idx_lane::<E>(idx, e);
            out.set_lane(e, load_lane(src, i));
        }
    }
    out
}

/// `svst1_scatter_index` — scatter store.
pub fn svst1_scatter<E: SveElem>(ctx: &SveCtx, pg: &PReg, dst: &mut [E], idx: &VReg, v: &VReg) {
    ctx.exec(Opcode::St1Scatter);
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            let i = idx_lane::<E>(idx, e);
            dst[i] = v.lane(e);
        }
    }
}

/// Read an index lane sized like `E` from an index vector (64-bit indices
/// for `.d` views, 32-bit for `.s`/`.h` views — the widths hardware gathers
/// support).
fn idx_lane<E: SveElem>(idx: &VReg, e: usize) -> usize {
    match E::BYTES {
        8 => idx.lane::<u64>(e) as usize,
        4 | 2 => idx.lane::<i32>(e * E::BYTES / 4) as usize,
        _ => panic!("gather/scatter: unsupported element width"),
    }
}

/// `svprf` — prefetch hint; accounted, no functional effect.
pub fn svprf(ctx: &SveCtx) {
    ctx.exec(Opcode::Prf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::{svptrue, svwhilelt};
    use crate::vl::VectorLength;

    fn ctx() -> SveCtx {
        SveCtx::new(VectorLength::of(256)) // 4 x f64
    }

    #[test]
    fn ld1_st1_round_trip() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let src = [1.0, 2.0, 3.0, 4.0];
        let v = svld1(&ctx, &pg, &src);
        let mut dst = [0.0; 4];
        svst1(&ctx, &pg, &mut dst, &v);
        assert_eq!(dst, src);
    }

    #[test]
    fn partial_predicate_masks_memory_access() {
        let ctx = ctx();
        // Slice of 3 < 4 lanes: whilelt predicate keeps lane 3 inactive so
        // no out-of-bounds access happens.
        let pg = svwhilelt::<f64>(&ctx, 0, 3);
        let src = [1.0, 2.0, 3.0];
        let v = svld1(&ctx, &pg, &src);
        assert_eq!(v.lane::<f64>(2), 3.0);
        assert_eq!(v.lane::<f64>(3), 0.0, "inactive lane zeroed (p/z)");
        let mut dst = [9.0; 3];
        svst1(&ctx, &pg, &mut dst, &v);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn active_lane_out_of_bounds_panics() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let src = [1.0, 2.0]; // 2 < 4 active lanes
        let _ = svld1(&ctx, &pg, &src);
    }

    #[test]
    fn ld2_deinterleaves_st2_reinterleaves() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        // (re, im) pairs as in listing IV-B.
        let src = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        let (re, im) = svld2(&ctx, &pg, &src);
        assert_eq!(re.to_vec::<f64>(ctx.vl()), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(im.to_vec::<f64>(ctx.vl()), vec![10.0, 20.0, 30.0, 40.0]);
        let mut dst = [0.0; 8];
        svst2(&ctx, &pg, &mut dst, &re, &im);
        assert_eq!(dst, src);
    }

    #[test]
    fn ld3_ld4_round_trip() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let src3: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let (a, b, c) = svld3(&ctx, &pg, &src3);
        assert_eq!(a.lane::<f64>(1), 3.0);
        assert_eq!(b.lane::<f64>(1), 4.0);
        assert_eq!(c.lane::<f64>(1), 5.0);
        let mut dst3 = vec![0.0; 12];
        svst3(&ctx, &pg, &mut dst3, &a, &b, &c);
        assert_eq!(dst3, src3);

        let src4: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        let regs = svld4(&ctx, &pg, &src4);
        let mut dst4 = vec![0.0; 16];
        svst4(&ctx, &pg, &mut dst4, &regs);
        assert_eq!(dst4, src4);
    }

    #[test]
    fn gather_scatter() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let src = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let idx = VReg::from_fn::<u64>(ctx.vl(), |e| (5 - e) as u64);
        let v = svld1_gather::<f64>(&ctx, &pg, &src, &idx);
        assert_eq!(v.to_vec::<f64>(ctx.vl()), vec![15.0, 14.0, 13.0, 12.0]);
        let mut dst = [0.0; 6];
        svst1_scatter::<f64>(&ctx, &pg, &mut dst, &idx, &v);
        assert_eq!(&dst[2..], &src[2..]);
    }

    #[test]
    fn f32_views_use_32bit_lane_count() {
        let ctx = ctx(); // VL256: 8 x f32
        let pg = svptrue::<f32>(&ctx);
        let src: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = svld1(&ctx, &pg, &src);
        assert_eq!(v.lane::<f32>(7), 7.0);
        assert_eq!(v.lane::<f32>(8), 0.0);
    }

    #[test]
    fn opcode_accounting() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let src = [0.0; 8];
        let _ = svld1(&ctx, &pg, &src[..4]);
        let _ = svld2(&ctx, &pg, &src);
        let mut dst = [0.0; 8];
        svst2(&ctx, &pg, &mut dst, &VReg::zeroed(), &VReg::zeroed());
        svprf(&ctx);
        assert_eq!(ctx.counters().get(Opcode::Ld1), 1);
        assert_eq!(ctx.counters().get(Opcode::Ld2), 1);
        assert_eq!(ctx.counters().get(Opcode::St2), 1);
        assert_eq!(ctx.counters().get(Opcode::Prf), 1);
    }
}
