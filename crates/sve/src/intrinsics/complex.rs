//! Vectorized complex arithmetic — the paper's centrepiece (Section III-D).
//!
//! `FCMLA` takes three vectors whose even lanes hold real components and odd
//! lanes imaginary components, plus an immediate rotation. Per complex
//! element, with accumulator `z`, operands `x`, `y`:
//!
//! | rotation | effect |
//! |---|---|
//! | 0°   | `z.re += x.re*y.re; z.im += x.re*y.im` |
//! | 90°  | `z.re -= x.im*y.im; z.im += x.im*y.re` |
//! | 180° | `z.re -= x.re*y.re; z.im -= x.re*y.im` |
//! | 270° | `z.re += x.im*y.im; z.im -= x.im*y.re` |
//!
//! Concatenating two FCMLAs yields a full complex multiply-add (paper
//! Eq. (2)): rotations (0°, 90°) give `z + x*y`; (0°, 270°) give
//! `z + conj(x)*y`. `FCADD` rotates one operand by ±90° before adding,
//! i.e. `x ± i*y` — which also provides multiplication by ±i.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::SveFloat;
use crate::pred::PReg;
use crate::vreg::VReg;

/// Rotation immediate of `FCMLA`/`FCADD`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rot {
    /// 0 degrees.
    R0 = 0,
    /// 90 degrees.
    R90 = 90,
    /// 180 degrees.
    R180 = 180,
    /// 270 degrees.
    R270 = 270,
}

/// `svcmla` — complex fused multiply-add with rotation; merging
/// predication (inactive lanes keep `acc`). The ACLE `_x` form behaves the
/// same here.
pub fn svcmla<E: SveFloat>(
    ctx: &SveCtx,
    pg: &PReg,
    acc: &VReg,
    x: &VReg,
    y: &VReg,
    rot: Rot,
) -> VReg {
    ctx.exec(Opcode::Fcmla);
    let mut out = *acc;
    let pairs = ctx.vl().lanes_of(E::BYTES) / 2;
    for p in 0..pairs {
        let (re_l, im_l) = (2 * p, 2 * p + 1);
        let (zr, zi) = (acc.lane::<E>(re_l), acc.lane::<E>(im_l));
        let (xr, xi) = (x.lane::<E>(re_l), x.lane::<E>(im_l));
        let (yr, yi) = (y.lane::<E>(re_l), y.lane::<E>(im_l));
        let (nr, ni) = match rot {
            Rot::R0 => (xr.mul_add(yr, zr), xr.mul_add(yi, zi)),
            Rot::R90 => (xi.neg().mul_add(yi, zr), xi.mul_add(yr, zi)),
            Rot::R180 => (xr.neg().mul_add(yr, zr), xr.neg().mul_add(yi, zi)),
            Rot::R270 => (xi.mul_add(yi, zr), xi.neg().mul_add(yr, zi)),
        };
        if pg.elem_active::<E>(re_l) {
            out.set_lane(re_l, nr);
        }
        if pg.elem_active::<E>(im_l) {
            out.set_lane(im_l, ni);
        }
    }
    out
}

/// `svcadd` — complex add with rotation: 90° gives `x + i*y`, 270° gives
/// `x - i*y`, per complex element. (Rotations 0/180 are plain `fadd`/`fsub`
/// and are not valid immediates for the instruction.)
pub fn svcadd<E: SveFloat>(ctx: &SveCtx, pg: &PReg, x: &VReg, y: &VReg, rot: Rot) -> VReg {
    ctx.exec(Opcode::Fcadd);
    assert!(
        matches!(rot, Rot::R90 | Rot::R270),
        "fcadd only supports 90/270 degree rotations"
    );
    let mut out = *x;
    let pairs = ctx.vl().lanes_of(E::BYTES) / 2;
    for p in 0..pairs {
        let (re_l, im_l) = (2 * p, 2 * p + 1);
        let (xr, xi) = (x.lane::<E>(re_l), x.lane::<E>(im_l));
        let (yr, yi) = (y.lane::<E>(re_l), y.lane::<E>(im_l));
        let (nr, ni) = match rot {
            Rot::R90 => (xr.sub(yi), xi.add(yr)),
            Rot::R270 => (xr.add(yi), xi.sub(yr)),
            _ => unreachable!(),
        };
        if pg.elem_active::<E>(re_l) {
            out.set_lane(re_l, nr);
        }
        if pg.elem_active::<E>(im_l) {
            out.set_lane(im_l, ni);
        }
    }
    out
}

/// Complex multiply-accumulate `acc + x*y` as the paper's two-FCMLA idiom
/// (Eq. (2)): rotation 90° then 0°. Counts exactly two `fcmla`.
pub fn fcmla_mul_add<E: SveFloat>(ctx: &SveCtx, pg: &PReg, acc: &VReg, x: &VReg, y: &VReg) -> VReg {
    let t = svcmla::<E>(ctx, pg, acc, x, y, Rot::R90);
    svcmla::<E>(ctx, pg, &t, x, y, Rot::R0)
}

/// Complex multiply-accumulate with conjugated first operand,
/// `acc + conj(x)*y`: rotations 0° then 270°.
pub fn fcmla_conj_mul_add<E: SveFloat>(
    ctx: &SveCtx,
    pg: &PReg,
    acc: &VReg,
    x: &VReg,
    y: &VReg,
) -> VReg {
    let t = svcmla::<E>(ctx, pg, acc, x, y, Rot::R0);
    svcmla::<E>(ctx, pg, &t, x, y, Rot::R270)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::{svdup, svptrue};
    use crate::vl::VectorLength;

    fn ctx() -> SveCtx {
        SveCtx::new(VectorLength::of(512)) // 8 f64 lanes = 4 complex
    }

    /// Scalar complex multiply for reference.
    fn cmul(x: (f64, f64), y: (f64, f64)) -> (f64, f64) {
        (x.0 * y.0 - x.1 * y.1, x.0 * y.1 + x.1 * y.0)
    }

    fn cvec(ctx: &SveCtx, c: &[(f64, f64)]) -> VReg {
        VReg::from_fn::<f64>(
            ctx.vl(),
            |i| if i % 2 == 0 { c[i / 2].0 } else { c[i / 2].1 },
        )
    }

    const XS: [(f64, f64); 4] = [(1.0, 2.0), (-0.5, 3.0), (0.0, 1.0), (2.5, -1.5)];
    const YS: [(f64, f64); 4] = [(3.0, -1.0), (2.0, 2.0), (-1.0, 0.5), (0.0, -2.0)];

    #[test]
    fn two_fcmla_make_a_complex_multiply() {
        // The paper's listing IV-C/IV-D pattern: acc = 0, rotate 90 then 0.
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let zero = svdup::<f64>(&ctx, 0.0);
        let x = cvec(&ctx, &XS);
        let y = cvec(&ctx, &YS);
        let r = fcmla_mul_add::<f64>(&ctx, &pg, &zero, &x, &y);
        for p in 0..4 {
            let want = cmul(XS[p], YS[p]);
            assert!((r.lane::<f64>(2 * p) - want.0).abs() < 1e-12, "re pair {p}");
            assert!(
                (r.lane::<f64>(2 * p + 1) - want.1).abs() < 1e-12,
                "im pair {p}"
            );
        }
        assert_eq!(ctx.counters().get(Opcode::Fcmla), 2);
    }

    #[test]
    fn conjugated_multiply() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let zero = svdup::<f64>(&ctx, 0.0);
        let x = cvec(&ctx, &XS);
        let y = cvec(&ctx, &YS);
        let r = fcmla_conj_mul_add::<f64>(&ctx, &pg, &zero, &x, &y);
        for p in 0..4 {
            let want = cmul((XS[p].0, -XS[p].1), YS[p]);
            assert!((r.lane::<f64>(2 * p) - want.0).abs() < 1e-12);
            assert!((r.lane::<f64>(2 * p + 1) - want.1).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulation_adds_to_existing_value() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let acc = cvec(&ctx, &[(10.0, 20.0); 4]);
        let x = cvec(&ctx, &XS);
        let y = cvec(&ctx, &YS);
        let r = fcmla_mul_add::<f64>(&ctx, &pg, &acc, &x, &y);
        let want = cmul(XS[0], YS[0]);
        assert!((r.lane::<f64>(0) - (10.0 + want.0)).abs() < 1e-12);
        assert!((r.lane::<f64>(1) - (20.0 + want.1)).abs() < 1e-12);
    }

    #[test]
    fn each_rotation_individually() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let zero = svdup::<f64>(&ctx, 0.0);
        let x = cvec(&ctx, &[(2.0, 3.0); 4]);
        let y = cvec(&ctx, &[(5.0, 7.0); 4]);
        let cases = [
            (Rot::R0, (2.0 * 5.0, 2.0 * 7.0)),
            (Rot::R90, (-3.0 * 7.0, 3.0 * 5.0)),
            (Rot::R180, (-2.0 * 5.0, -2.0 * 7.0)),
            (Rot::R270, (3.0 * 7.0, -3.0 * 5.0)),
        ];
        for (rot, want) in cases {
            let r = svcmla::<f64>(&ctx, &pg, &zero, &x, &y, rot);
            assert_eq!((r.lane::<f64>(0), r.lane::<f64>(1)), want, "{rot:?}");
        }
    }

    #[test]
    fn fcadd_is_multiplication_by_plus_minus_i() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let zero = svdup::<f64>(&ctx, 0.0);
        let y = cvec(&ctx, &XS);
        // 0 + i*y
        let plus_i = svcadd::<f64>(&ctx, &pg, &zero, &y, Rot::R90);
        // 0 - i*y
        let minus_i = svcadd::<f64>(&ctx, &pg, &zero, &y, Rot::R270);
        for (p, &(re, im)) in XS.iter().enumerate() {
            assert_eq!(plus_i.lane::<f64>(2 * p), -im);
            assert_eq!(plus_i.lane::<f64>(2 * p + 1), re);
            assert_eq!(minus_i.lane::<f64>(2 * p), im);
            assert_eq!(minus_i.lane::<f64>(2 * p + 1), -re);
        }
    }

    #[test]
    #[should_panic(expected = "90/270")]
    fn fcadd_rejects_invalid_rotation() {
        let ctx = ctx();
        let pg = svptrue::<f64>(&ctx);
        let z = svdup::<f64>(&ctx, 0.0);
        let _ = svcadd::<f64>(&ctx, &pg, &z, &z, Rot::R0);
    }

    #[test]
    fn predication_masks_complex_pairs() {
        let ctx = ctx();
        let mut pg = PReg::none();
        // Activate only pair 1 (lanes 2 and 3).
        pg.set_elem_active::<f64>(2, true);
        pg.set_elem_active::<f64>(3, true);
        let acc = cvec(&ctx, &[(9.0, 9.0); 4]);
        let x = cvec(&ctx, &XS);
        let y = cvec(&ctx, &YS);
        let r = fcmla_mul_add::<f64>(&ctx, &pg, &acc, &x, &y);
        // Pair 0 untouched.
        assert_eq!((r.lane::<f64>(0), r.lane::<f64>(1)), (9.0, 9.0));
        // Pair 1 updated.
        let want = cmul(XS[1], YS[1]);
        assert!((r.lane::<f64>(2) - (9.0 + want.0)).abs() < 1e-12);
    }

    #[test]
    fn f32_complex_multiply() {
        let ctx = SveCtx::new(VectorLength::of(256)); // 8 f32 = 4 complex
        let pg = svptrue::<f32>(&ctx);
        let zero = svdup::<f32>(&ctx, 0.0);
        let x = VReg::from_fn::<f32>(ctx.vl(), |i| (i as f32 + 1.0) * 0.5);
        let y = VReg::from_fn::<f32>(ctx.vl(), |i| 2.0 - i as f32 * 0.25);
        let r = fcmla_mul_add::<f32>(&ctx, &pg, &zero, &x, &y);
        for p in 0..4 {
            let (xr, xi) = (x.lane::<f32>(2 * p), x.lane::<f32>(2 * p + 1));
            let (yr, yi) = (y.lane::<f32>(2 * p), y.lane::<f32>(2 * p + 1));
            let want_re = xr * yr - xi * yi;
            let want_im = xr * yi + xi * yr;
            assert!((r.lane::<f32>(2 * p) - want_re).abs() < 1e-5);
            assert!((r.lane::<f32>(2 * p + 1) - want_im).abs() < 1e-5);
        }
    }
}
