//! Horizontal reductions — used by Grid for inner products and norms, the
//! scalars that drive the Conjugate Gradient iteration.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::SveFloat;
use crate::pred::PReg;
use crate::vreg::VReg;

/// `svaddv` — sum of the active lanes. Hardware performs a tree reduction;
/// this model sums in lane order, which is what a strictly-ordered `fadda`
/// would produce (deterministic across runs, and the ordering used by the
/// reference implementations in tests).
pub fn svaddv<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> E {
    ctx.exec(Opcode::Faddv);
    let mut acc = E::zero();
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            acc = acc.add(a.lane(e));
        }
    }
    acc
}

/// `svmaxv` — maximum of the active lanes (`-inf` identity when none).
pub fn svmaxv<E: SveFloat>(ctx: &SveCtx, pg: &PReg, a: &VReg) -> E {
    ctx.exec(Opcode::Fmaxv);
    let mut acc: Option<E> = None;
    for e in 0..ctx.vl().lanes_of(E::BYTES) {
        if pg.elem_active::<E>(e) {
            let v: E = a.lane(e);
            acc = Some(match acc {
                None => v,
                Some(m) => m.max(v),
            });
        }
    }
    acc.unwrap_or_else(E::zero)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::{svptrue, svwhilelt};
    use crate::vl::VectorLength;

    #[test]
    fn addv_sums_active_lanes() {
        let ctx = SveCtx::new(VectorLength::of(512));
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::from_fn::<f64>(ctx.vl(), |i| i as f64 + 1.0);
        assert_eq!(svaddv::<f64>(&ctx, &pg, &a), 36.0); // 1+..+8
        let partial = svwhilelt::<f64>(&ctx, 0, 3);
        assert_eq!(svaddv::<f64>(&ctx, &partial, &a), 6.0);
    }

    #[test]
    fn maxv_of_active_lanes() {
        let ctx = SveCtx::new(VectorLength::of(256));
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::from_fn::<f64>(ctx.vl(), |i| [3.0, -7.0, 11.0, 2.0][i]);
        assert_eq!(svmaxv::<f64>(&ctx, &pg, &a), 11.0);
        let first_two = svwhilelt::<f64>(&ctx, 0, 2);
        assert_eq!(svmaxv::<f64>(&ctx, &first_two, &a), 3.0);
    }

    #[test]
    fn reductions_counted() {
        use crate::count::OpClass;
        let ctx = SveCtx::new(VectorLength::of(128));
        let pg = svptrue::<f64>(&ctx);
        let a = VReg::zeroed();
        let _ = svaddv::<f64>(&ctx, &pg, &a);
        let _ = svmaxv::<f64>(&ctx, &pg, &a);
        assert_eq!(ctx.counters().total_class(OpClass::Reduce), 2);
    }
}
