//! Predicate-construction and element-count intrinsics.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::elem::SveElem;
use crate::pred::{PReg, PredFlags};

/// `svptrue_b{8,16,32,64}` — all elements of view `E` active.
pub fn svptrue<E: SveElem>(ctx: &SveCtx) -> PReg {
    ctx.exec(Opcode::Ptrue);
    PReg::ptrue::<E>(ctx.vl())
}

/// `svpfalse` — no elements active.
pub fn svpfalse(ctx: &SveCtx) -> PReg {
    ctx.exec(Opcode::Ptrue);
    PReg::none()
}

/// `svwhilelt_b{…}(base, bound)` — element `e` active iff `base + e <
/// bound`. This is the loop predicate of the paper's VLA listings; it is
/// also where the optional [`crate::ToolchainFault`] distorts results.
pub fn svwhilelt<E: SveElem>(ctx: &SveCtx, base: u64, bound: u64) -> PReg {
    ctx.exec(Opcode::Whilelo);
    let p = PReg::whilelt::<E>(ctx.vl(), base, bound);
    ctx.distort_whilelt::<E>(p)
}

/// `svwhilelt` plus the NZCV flags the hardware instruction sets; `flags.n`
/// is the `b.mi` "continue looping" condition of listing IV-A.
pub fn svwhilelt_with_flags<E: SveElem>(ctx: &SveCtx, base: u64, bound: u64) -> (PReg, PredFlags) {
    let p = svwhilelt::<E>(ctx, base, bound);
    let g = PReg::ptrue::<E>(ctx.vl());
    let flags = p.flags::<E>(&g, ctx.vl());
    (p, flags)
}

/// `svcntb/h/w/d` — number of elements of view `E` per vector. Listing IV-C
/// uses `svcntd()` as the loop stride.
pub fn svcnt<E: SveElem>(ctx: &SveCtx) -> usize {
    ctx.exec(Opcode::Cnt);
    ctx.vl().lanes_of(E::BYTES)
}

/// `svcntp` — number of active elements of `p` (within governing `g`).
pub fn svcntp<E: SveElem>(ctx: &SveCtx, g: &PReg, p: &PReg) -> usize {
    ctx.exec(Opcode::Cntp);
    (0..ctx.vl().lanes_of(E::BYTES))
        .filter(|&e| g.elem_active::<E>(e) && p.elem_active::<E>(e))
        .count()
}

/// `svbrkn` — propagate break: result is `pm` if the last active element of
/// `pn` under `g` is true, else all-false; also returns the flags the `s`
/// form sets (listing IV-A line 11 is `brkns`).
pub fn svbrkn_s(ctx: &SveCtx, g: &PReg, pn: &PReg, pm: &PReg) -> (PReg, PredFlags) {
    ctx.exec(Opcode::Brkns);
    let out = PReg::brkn(g, pn, pm, ctx.vl());
    let flags = out.flags::<u8_elem::U8>(g, ctx.vl());
    (out, flags)
}

/// `svand_z` — predicate AND under governing predicate.
pub fn svand_pred_z(ctx: &SveCtx, g: &PReg, a: &PReg, b: &PReg) -> PReg {
    ctx.exec(Opcode::PredLogic);
    a.and(b).and(g)
}

/// `svorr_z` — predicate OR under governing predicate.
pub fn svorr_pred_z(ctx: &SveCtx, g: &PReg, a: &PReg, b: &PReg) -> PReg {
    ctx.exec(Opcode::PredLogic);
    a.or(b).and(g)
}

/// Byte-granule element stand-in so `brkns` can compute `.b`-view flags.
mod u8_elem {
    use crate::elem::SveElem;

    #[derive(Clone, Copy, PartialEq, Debug)]
    pub struct U8(pub u8);

    impl SveElem for U8 {
        const BYTES: usize = 1;
        const SUFFIX: char = 'b';

        fn zero() -> Self {
            U8(0)
        }

        fn write_le(self, dst: &mut [u8]) {
            dst[0] = self.0;
        }

        fn read_le(src: &[u8]) -> Self {
            U8(src[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vl::VectorLength;

    fn ctx512() -> SveCtx {
        SveCtx::new(VectorLength::of(512))
    }

    #[test]
    fn ptrue_and_cnt() {
        let ctx = ctx512();
        let pg = svptrue::<f64>(&ctx);
        assert!(pg.is_full::<f64>(ctx.vl()));
        assert_eq!(svcnt::<f64>(&ctx), 8);
        assert_eq!(svcnt::<f32>(&ctx), 16);
    }

    #[test]
    fn whilelt_flags_match_loop_semantics() {
        let ctx = ctx512();
        let (_, f) = svwhilelt_with_flags::<f64>(&ctx, 0, 20);
        assert!(f.n && !f.z);
        let (_, f) = svwhilelt_with_flags::<f64>(&ctx, 24, 20);
        assert!(!f.n && f.z);
    }

    #[test]
    fn cntp_counts_intersection() {
        let ctx = ctx512();
        let g = svptrue::<f64>(&ctx);
        let p = svwhilelt::<f64>(&ctx, 0, 5);
        assert_eq!(svcntp::<f64>(&ctx, &g, &p), 5);
        let h = svwhilelt::<f64>(&ctx, 0, 3);
        assert_eq!(svcntp::<f64>(&ctx, &h, &p), 3);
    }

    #[test]
    fn brkn_sequences_vla_iterations() {
        // Reproduce the predicate dance of listing IV-A for n = 10 at
        // VL512 (8 d-lanes): iteration 0 full, iteration 1 partial (2),
        // then loop exit.
        let ctx = ctx512();
        let p0 = svptrue::<f64>(&ctx);
        let mut p1 = svwhilelt::<f64>(&ctx, 0, 10);
        assert_eq!(p1.active_count::<f64>(ctx.vl()), 8);
        let p2 = svwhilelt::<f64>(&ctx, 8, 10);
        let (next, flags) = svbrkn_s(&ctx, &p0, &p1, &p2);
        assert!(flags.n, "b.mi must take the branch: more work remains");
        p1 = next;
        assert_eq!(p1.active_count::<f64>(ctx.vl()), 2);
        let p2 = svwhilelt::<f64>(&ctx, 16, 10);
        let (_, flags) = svbrkn_s(&ctx, &p0, &p1, &p2);
        assert!(!flags.n, "loop must exit");
    }

    #[test]
    fn predicate_logic() {
        let ctx = ctx512();
        let g = svptrue::<f64>(&ctx);
        let a = svwhilelt::<f64>(&ctx, 0, 6);
        let b = svwhilelt::<f64>(&ctx, 0, 3);
        assert_eq!(
            svand_pred_z(&ctx, &g, &a, &b).active_count::<f64>(ctx.vl()),
            3
        );
        assert_eq!(
            svorr_pred_z(&ctx, &g, &a, &b).active_count::<f64>(ctx.vl()),
            6
        );
    }

    #[test]
    fn intrinsics_are_counted() {
        let ctx = ctx512();
        let _ = svptrue::<f64>(&ctx);
        let _ = svwhilelt::<f64>(&ctx, 0, 4);
        let _ = svcnt::<f64>(&ctx);
        assert_eq!(ctx.counters().get(Opcode::Ptrue), 1);
        assert_eq!(ctx.counters().get(Opcode::Whilelo), 1);
        assert_eq!(ctx.counters().get(Opcode::Cnt), 1);
    }
}
