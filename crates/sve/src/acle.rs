//! Typed ACLE-named wrappers.
//!
//! The paper's source listings use the exact ACLE spellings — `svcntd()`,
//! `svwhilelt_b64(i, 2*n)`, `svld1(pg, ptr)`, `svcmla_x(pg, z, x, y, 90)`,
//! `svdup_f64(0.)`, `svptrue_b64()` (Sections IV-C, IV-D, V-C). This module
//! provides those names over the generic intrinsics so the paper's C code
//! transliterates into Rust almost token for token; the module tests carry
//! the §IV-C and §IV-D kernels in that literal form and check them against
//! the emulated assembly.

use crate::count::Opcode;
use crate::ctx::SveCtx;
use crate::intrinsics as sv;
use crate::pred::PReg;
use crate::vreg::VReg;

/// `svcntd()` — 64-bit lanes per vector.
pub fn svcntd(ctx: &SveCtx) -> usize {
    sv::svcnt::<f64>(ctx)
}

/// `svcntw()` — 32-bit lanes per vector.
pub fn svcntw(ctx: &SveCtx) -> usize {
    sv::svcnt::<f32>(ctx)
}

/// `svcnth()` — 16-bit lanes per vector.
pub fn svcnth(ctx: &SveCtx) -> usize {
    sv::svcnt::<crate::F16>(ctx)
}

/// `svptrue_b64()`.
pub fn svptrue_b64(ctx: &SveCtx) -> PReg {
    sv::svptrue::<f64>(ctx)
}

/// `svptrue_b32()`.
pub fn svptrue_b32(ctx: &SveCtx) -> PReg {
    sv::svptrue::<f32>(ctx)
}

/// `svwhilelt_b64(base, bound)`.
pub fn svwhilelt_b64(ctx: &SveCtx, base: u64, bound: u64) -> PReg {
    sv::svwhilelt::<f64>(ctx, base, bound)
}

/// `svwhilelt_b32(base, bound)`.
pub fn svwhilelt_b32(ctx: &SveCtx, base: u64, bound: u64) -> PReg {
    sv::svwhilelt::<f32>(ctx, base, bound)
}

/// `svdup_f64(x)`.
pub fn svdup_f64(ctx: &SveCtx, x: f64) -> VReg {
    sv::svdup::<f64>(ctx, x)
}

/// `svdup_f32(x)`.
pub fn svdup_f32(ctx: &SveCtx, x: f32) -> VReg {
    sv::svdup::<f32>(ctx, x)
}

/// `svld1_f64(pg, ptr)` — the listings' unsuffixed `svld1` on doubles.
pub fn svld1_f64(ctx: &SveCtx, pg: &PReg, src: &[f64]) -> VReg {
    sv::svld1::<f64>(ctx, pg, src)
}

/// `svst1_f64(pg, ptr, v)`.
pub fn svst1_f64(ctx: &SveCtx, pg: &PReg, dst: &mut [f64], v: &VReg) {
    sv::svst1::<f64>(ctx, pg, dst, v)
}

/// `svcmla_f64_x(pg, acc, x, y, #rot)` — rotation given in degrees as in
/// the listings (0, 90, 180, 270).
pub fn svcmla_f64_x(
    ctx: &SveCtx,
    pg: &PReg,
    acc: &VReg,
    x: &VReg,
    y: &VReg,
    rot_degrees: u32,
) -> VReg {
    let rot = match rot_degrees {
        0 => sv::Rot::R0,
        90 => sv::Rot::R90,
        180 => sv::Rot::R180,
        270 => sv::Rot::R270,
        other => panic!("invalid FCMLA rotation #{other}"),
    };
    sv::svcmla::<f64>(ctx, pg, acc, x, y, rot)
}

/// `svmla_f64_m(pg, acc, a, b)`.
pub fn svmla_f64_m(ctx: &SveCtx, pg: &PReg, acc: &VReg, a: &VReg, b: &VReg) -> VReg {
    sv::svmla_m::<f64>(ctx, pg, acc, a, b)
}

/// `svmul_f64_x(pg, a, b)`.
pub fn svmul_f64_x(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    sv::svmul_x::<f64>(ctx, pg, a, b)
}

/// `svadd_f64_x(pg, a, b)`.
pub fn svadd_f64_x(ctx: &SveCtx, pg: &PReg, a: &VReg, b: &VReg) -> VReg {
    sv::svadd_x::<f64>(ctx, pg, a, b)
}

/// The paper's Section IV-C kernel, transliterated from its C source:
///
/// ```c
/// void mult_cplx(size_t n, const double *x, const double *y, double *z) {
///     svbool_t pg;
///     svfloat64_t sx, sy, sz;
///     svfloat64_t szero = svdup_f64(0.);
///     for (size_t i = 0; i < 2*n; i += svcntd()) {
///         pg = svwhilelt_b64(i, 2*n);
///         sx = svld1(pg, (float64_t*)&x[i]);
///         sy = svld1(pg, (float64_t*)&y[i]);
///         sz = svcmla_x(pg, szero, sx, sy, 90);
///         sz = svcmla_x(pg, sz, sx, sy, 0);
///         svst1(pg, (float64_t*)&z[i], sz);
///     }
/// }
/// ```
pub fn mult_cplx_acle_vla(ctx: &SveCtx, n: usize, x: &[f64], y: &[f64], z: &mut [f64]) {
    let szero = svdup_f64(ctx, 0.0);
    let mut i = 0usize;
    while i < 2 * n {
        ctx.exec(Opcode::ScalarAlu); // loop bookkeeping, as the compiler emits
        let pg = svwhilelt_b64(ctx, i as u64, (2 * n) as u64);
        let sx = svld1_f64(ctx, &pg, &x[i..]);
        let sy = svld1_f64(ctx, &pg, &y[i..]);
        let mut sz = svcmla_f64_x(ctx, &pg, &szero, &sx, &sy, 90);
        sz = svcmla_f64_x(ctx, &pg, &sz, &sx, &sy, 0);
        svst1_f64(ctx, &pg, &mut z[i..], &sz);
        i += svcntd(ctx);
    }
}

/// The paper's Section IV-D kernel (fixed vector length, loop-free):
///
/// ```c
/// void mult_cplx(size_t n, const double *x, const double *y, double *z) {
///     svbool_t pg = svptrue_b64();
///     svfloat64_t sx = svld1(pg, (float64_t*)x);
///     svfloat64_t sy = svld1(pg, (float64_t*)y);
///     svfloat64_t szero = svdup_f64(0.);
///     svfloat64_t sz = svcmla_x(pg, szero, sx, sy, 90);
///     sz = svcmla_x(pg, sz, sx, sy, 0);
///     svst1(pg, (float64_t*)z, sz);
/// }
/// ```
pub fn mult_cplx_acle_fixed(ctx: &SveCtx, x: &[f64], y: &[f64], z: &mut [f64]) {
    let pg = svptrue_b64(ctx);
    let sx = svld1_f64(ctx, &pg, x);
    let sy = svld1_f64(ctx, &pg, y);
    let szero = svdup_f64(ctx, 0.0);
    let mut sz = svcmla_f64_x(ctx, &pg, &szero, &sx, &sy, 90);
    sz = svcmla_f64_x(ctx, &pg, &sz, &sx, &sy, 0);
    svst1_f64(ctx, &pg, z, &sz);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vl::VectorLength;

    fn cplx_ref(x: &[f64], y: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; x.len()];
        for p in 0..x.len() / 2 {
            let (xr, xi) = (x[2 * p], x[2 * p + 1]);
            let (yr, yi) = (y[2 * p], y[2 * p + 1]);
            z[2 * p] = xr * yr - xi * yi;
            z[2 * p + 1] = xr * yi + xi * yr;
        }
        z
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.iter()
            .zip(b)
            .all(|(p, q)| (p - q).abs() <= 1e-12 * q.abs().max(1.0))
    }

    #[test]
    fn counts_match_acle_names() {
        for vl in VectorLength::sweep() {
            let ctx = SveCtx::new(vl);
            assert_eq!(svcntd(&ctx), vl.lanes64());
            assert_eq!(svcntw(&ctx), vl.lanes32());
            assert_eq!(svcnth(&ctx), vl.lanes16());
        }
    }

    #[test]
    fn section_iv_c_source_matches_reference_everywhere() {
        for vl in VectorLength::sweep() {
            for n in [0usize, 1, 3, 7, 16, 53] {
                let ctx = SveCtx::new(vl);
                let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.3).sin()).collect();
                let y: Vec<f64> = (0..2 * n).map(|i| 1.5 - i as f64 * 0.1).collect();
                let mut z = vec![0.0; 2 * n];
                mult_cplx_acle_vla(&ctx, n, &x, &y, &mut z);
                assert!(close(&z, &cplx_ref(&x, &y)), "vl={vl} n={n}");
            }
        }
    }

    #[test]
    fn section_iv_d_source_matches_the_emulated_listing() {
        // The C source (here) and the compiled assembly (armie's listing
        // IV-D) must produce identical results and identical SVE vector
        // instruction counts.
        for vl in VectorLength::sweep() {
            let lanes = vl.lanes64();
            let ctx = SveCtx::new(vl);
            let x: Vec<f64> = (0..lanes).map(|i| i as f64 - 2.0).collect();
            let y: Vec<f64> = (0..lanes).map(|i| 0.5 * i as f64 + 1.0).collect();
            let mut z = vec![0.0; lanes];
            mult_cplx_acle_fixed(&ctx, &x, &y, &mut z);
            assert!(close(&z, &cplx_ref(&x, &y)), "vl={vl}");
            // 1 ptrue + 2 ld1 + 1 dup + 2 fcmla + 1 st1 = 7 ops; the
            // compiled listing executes the same 7 plus `ret`.
            assert_eq!(ctx.counters().total(), 7);
            assert_eq!(ctx.counters().get(Opcode::Fcmla), 2);
        }
    }

    #[test]
    fn vla_kernel_handles_ragged_tails_like_the_listing() {
        // A size that never divides the vector: every VL ends on a partial
        // predicate, the case the paper's whilelt machinery exists for.
        let n = 31;
        let x: Vec<f64> = (0..2 * n).map(|i| (i as f64).cos()).collect();
        let y: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.7).sin()).collect();
        let want = cplx_ref(&x, &y);
        for vl in VectorLength::sweep() {
            let ctx = SveCtx::new(vl);
            let mut z = vec![0.0; 2 * n];
            mult_cplx_acle_vla(&ctx, n, &x, &y, &mut z);
            assert!(close(&z, &want), "vl={vl}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid FCMLA rotation")]
    fn bad_rotation_rejected() {
        let ctx = SveCtx::new(VectorLength::of(128));
        let z = svdup_f64(&ctx, 0.0);
        let pg = svptrue_b64(&ctx);
        let _ = svcmla_f64_x(&ctx, &pg, &z, &z, &z, 45);
    }
}
