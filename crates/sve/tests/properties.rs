//! Property-based tests for the SVE functional model: invariants that must
//! hold for every vector length, predicate and operand values. These are the
//! contracts the Grid port (paper, Section V) relies on.

use proptest::prelude::*;
use sve::intrinsics::*;
use sve::{SveCtx, SveFloat, VReg, VectorLength, F16};

/// Strategy: any architecturally valid vector length.
fn any_vl() -> impl Strategy<Value = VectorLength> {
    (1usize..=16).prop_map(|k| VectorLength::of(k * 128))
}

/// Strategy: a vector length plus finite f64 lane data covering it.
fn vl_and_lanes() -> impl Strategy<Value = (VectorLength, Vec<f64>, Vec<f64>)> {
    any_vl().prop_flat_map(|vl| {
        let n = vl.lanes64();
        (
            Just(vl),
            proptest::collection::vec(-1.0e6f64..1.0e6, n..=n),
            proptest::collection::vec(-1.0e6f64..1.0e6, n..=n),
        )
    })
}

fn vreg_from(vl: VectorLength, data: &[f64]) -> VReg {
    VReg::from_fn::<f64>(vl, |i| data[i])
}

proptest! {
    /// st1(ld1(x)) == x for any vector length and any slice covering the
    /// vector.
    #[test]
    fn ld1_st1_round_trip((vl, data, _) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let v = svld1(&ctx, &pg, &data);
        let mut out = vec![0.0; data.len()];
        svst1(&ctx, &pg, &mut out, &v);
        prop_assert_eq!(out, data);
    }

    /// A whilelt predicate never activates more lanes than remain, and a
    /// loop of whilelt steps covers 0..n exactly once.
    #[test]
    fn whilelt_partitions_the_index_space(vl in any_vl(), n in 0u64..10_000) {
        let ctx = SveCtx::new(vl);
        let lanes = vl.lanes64() as u64;
        let mut covered = 0u64;
        let mut i = 0u64;
        while i < n + lanes {
            let pg = svwhilelt::<f64>(&ctx, i, n);
            let active = pg.active_count::<f64>(vl) as u64;
            prop_assert!(active <= lanes);
            prop_assert_eq!(active, n.saturating_sub(i).min(lanes));
            covered += active;
            if active == 0 { break; }
            i += lanes;
        }
        prop_assert_eq!(covered, n);
    }

    /// Structure load/store are inverses: st2(ld2(x)) == x.
    #[test]
    fn ld2_st2_round_trip(vl in any_vl(), seed in any::<u64>()) {
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let n = 2 * vl.lanes64();
        let data: Vec<f64> = (0..n)
            .map(|i| ((seed.wrapping_add(i as u64 * 0x9e37_79b9) % 2048) as f64) - 1024.0)
            .collect();
        let (a, b) = svld2(&ctx, &pg, &data);
        let mut out = vec![0.0; n];
        svst2(&ctx, &pg, &mut out, &a, &b);
        prop_assert_eq!(out, data);
    }

    /// The two-FCMLA idiom equals the scalar complex product on every pair,
    /// for every vector length.
    #[test]
    fn fcmla_pair_is_complex_multiply((vl, xs, ys) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let x = vreg_from(vl, &xs);
        let y = vreg_from(vl, &ys);
        let zero = svdup::<f64>(&ctx, 0.0);
        let r = fcmla_mul_add::<f64>(&ctx, &pg, &zero, &x, &y);
        for p in 0..vl.lanes64() / 2 {
            let (xr, xi) = (xs[2 * p], xs[2 * p + 1]);
            let (yr, yi) = (ys[2 * p], ys[2 * p + 1]);
            let re = xr * yr - xi * yi;
            let im = xr * yi + xi * yr;
            let scale = re.abs().max(im.abs()).max(1.0);
            prop_assert!((r.lane::<f64>(2 * p) - re).abs() / scale < 1e-12);
            prop_assert!((r.lane::<f64>(2 * p + 1) - im).abs() / scale < 1e-12);
        }
    }

    /// conj(x)*y via FCMLA rotations (0, 270) matches scalar reference.
    #[test]
    fn fcmla_conjugate_matches_reference((vl, xs, ys) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let x = vreg_from(vl, &xs);
        let y = vreg_from(vl, &ys);
        let zero = svdup::<f64>(&ctx, 0.0);
        let r = fcmla_conj_mul_add::<f64>(&ctx, &pg, &zero, &x, &y);
        for p in 0..vl.lanes64() / 2 {
            let (xr, xi) = (xs[2 * p], -xs[2 * p + 1]);
            let (yr, yi) = (ys[2 * p], ys[2 * p + 1]);
            let re = xr * yr - xi * yi;
            let im = xr * yi + xi * yr;
            let scale = re.abs().max(im.abs()).max(1.0);
            prop_assert!((r.lane::<f64>(2 * p) - re).abs() / scale < 1e-12);
            prop_assert!((r.lane::<f64>(2 * p + 1) - im).abs() / scale < 1e-12);
        }
    }

    /// Predicated arithmetic only writes active lanes (merge form).
    #[test]
    fn merge_predication_is_surgical((vl, xs, ys) in vl_and_lanes(), cut in 0usize..33) {
        let ctx = SveCtx::new(vl);
        let cut = cut.min(vl.lanes64());
        let pg = svwhilelt::<f64>(&ctx, 0, cut as u64);
        let acc = vreg_from(vl, &xs);
        let a = vreg_from(vl, &ys);
        let r = svmla_m::<f64>(&ctx, &pg, &acc, &a, &a);
        for (e, &x) in xs.iter().enumerate().take(vl.lanes64()) {
            if e >= cut {
                prop_assert_eq!(r.lane::<f64>(e), x, "inactive lane {} must merge", e);
            }
        }
    }

    /// zip1/zip2 followed by uzp1/uzp2 is the identity (the de/re-interleave
    /// pair behind precision packing).
    #[test]
    fn zip_uzp_identity((vl, xs, ys) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let a = vreg_from(vl, &xs);
        let b = vreg_from(vl, &ys);
        let lo = svzip1::<f64>(&ctx, &a, &b);
        let hi = svzip2::<f64>(&ctx, &a, &b);
        let ra = svuzp1::<f64>(&ctx, &lo, &hi);
        let rb = svuzp2::<f64>(&ctx, &lo, &hi);
        prop_assert!(ra.lanes_eq::<f64>(&a, vl));
        prop_assert!(rb.lanes_eq::<f64>(&b, vl));
    }

    /// ext(v, v, k) is a rotation: applying it lanes times returns v.
    #[test]
    fn ext_rotation_has_full_period((vl, xs, _) in vl_and_lanes(), k in 1usize..8) {
        let ctx = SveCtx::new(vl);
        let lanes = vl.lanes64();
        let k = k % lanes.max(1);
        prop_assume!(k != 0);
        let v = vreg_from(vl, &xs);
        let mut r = v;
        // Rotate by k, lanes/gcd(k,lanes) ... simpler: rotate `lanes` times by k
        // equals rotating by k*lanes ≡ 0 (mod lanes).
        for _ in 0..lanes {
            r = svext::<f64>(&ctx, &r, &r, k);
        }
        prop_assert!(r.lanes_eq::<f64>(&v, vl));
    }

    /// rev(rev(v)) == v.
    #[test]
    fn rev_is_involution((vl, xs, _) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let v = vreg_from(vl, &xs);
        let r = svrev::<f64>(&ctx, &svrev::<f64>(&ctx, &v));
        prop_assert!(r.lanes_eq::<f64>(&v, vl));
    }

    /// addv of a vector equals the sequential sum of its lanes.
    #[test]
    fn addv_matches_sequential_sum((vl, xs, _) in vl_and_lanes()) {
        let ctx = SveCtx::new(vl);
        let pg = svptrue::<f64>(&ctx);
        let v = vreg_from(vl, &xs);
        let got = svaddv::<f64>(&ctx, &pg, &v);
        let want: f64 = xs.iter().sum();
        prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
    }

    /// f64 -> f32 -> f16 -> f32 compression path error stays within the
    /// binary16 epsilon bound for normal-range values.
    #[test]
    fn f16_codec_error_bounded(x in -6.0e4f64..6.0e4) {
        prop_assume!(x.abs() > 6.2e-5); // stay in f16 normal range
        let rel = ((x - f64_through_f16(x)) / x).abs();
        prop_assert!(rel <= 4.9e-4, "x={} rel={}", x, rel);
    }

    /// Executing any predicated op never touches memory out of bounds when
    /// the predicate comes from whilelt over the slice length.
    #[test]
    fn whilelt_guards_short_slices(vl in any_vl(), n in 0usize..64) {
        let ctx = SveCtx::new(vl);
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let pg = svwhilelt::<f64>(&ctx, 0, n as u64);
        let v = svld1(&ctx, &pg, &data); // must not panic
        let mut out = vec![0.0; n];
        svst1(&ctx, &pg, &mut out, &v);
        let m = n.min(vl.lanes64());
        prop_assert_eq!(&out[..m], &data[..m]);
    }

    /// The toolchain-fault model only corrupts partial predicates at its
    /// target vector length — full vectors are immune (why the paper's
    /// fixed-size style, listing IV-D, dodges such bugs).
    #[test]
    fn fault_model_spares_full_vectors(vl in any_vl(), n in 1u64..1000) {
        let ctx = SveCtx::with_fault(vl, sve::ToolchainFault::TailPredicationBug(vl));
        let pg = svwhilelt::<f64>(&ctx, 0, n);
        let lanes = vl.lanes64() as u64;
        if n >= lanes {
            prop_assert!(pg.is_full::<f64>(vl));
        } else {
            // Partial predicate: fault drops exactly one lane.
            prop_assert_eq!(pg.active_count::<f64>(vl) as u64, n - 1);
        }
    }
}

// --- binary16 conversion audit: `F16::from_f64`/`to_f64` must implement
// IEEE round-to-nearest-even with correct NaN/inf/subnormal handling,
// because the qcd-io container and the halo-exchange compression both
// trust it for on-disk / on-wire scalar rounding. ---

/// The finite binary16 values adjacent to `h` (crossing zero if needed).
fn f16_finite_neighbors(h: F16) -> Vec<F16> {
    let bits = h.to_bits();
    let sign = bits & 0x8000;
    let mag = bits & 0x7fff;
    let mut out = Vec::new();
    if mag == 0 {
        // ±0: the neighbors are the smallest subnormals of either sign.
        out.push(F16::from_bits(0x0001));
        out.push(F16::from_bits(0x8001));
    } else {
        out.push(F16::from_bits(sign | (mag - 1)));
        if mag + 1 < 0x7c00 {
            out.push(F16::from_bits(sign | (mag + 1)));
        }
    }
    out
}

proptest! {
    /// Nearest-representable: no finite f16 neighbor of the conversion
    /// result lies strictly closer to the input. This is the whole of
    /// "round to nearest" in one property.
    #[test]
    fn from_f64_picks_the_nearest_representable(x in -7.0e4f64..7.0e4) {
        let h = F16::from_f64(x);
        prop_assume!(!h.is_infinite()); // overflow handled separately
        let hv = h.to_f64();
        let err = (hv - x).abs();
        for n in f16_finite_neighbors(h) {
            let nerr = (n.to_f64() - x).abs();
            prop_assert!(
                err <= nerr,
                "x={} chose {:?} (err {}) over neighbor {:?} (err {})",
                x, h, err, n, nerr
            );
            // And exact ties must land on the even bit pattern.
            if err == nerr && h.to_bits() != n.to_bits() {
                prop_assert_eq!(h.to_bits() & 1, 0, "tie at x={} not to even", x);
            }
        }
    }

    /// Ties-to-even, constructed exactly: a value halfway between two
    /// adjacent normal f16 values rounds to the one with even mantissa.
    #[test]
    fn exact_midpoints_round_to_even(mag in 0x0400u16..0x7bff, neg in any::<bool>()) {
        // Midpoint between consecutive f16 values is exact in f64.
        let sign = if neg { -1.0 } else { 1.0 };
        let lo = F16::from_bits(mag);
        let hi = F16::from_bits(mag + 1);
        let mid = sign * (lo.to_f64() + hi.to_f64()) / 2.0;
        let got = F16::from_f64(mid);
        let want_mag = if mag & 1 == 0 { mag } else { mag + 1 };
        prop_assert_eq!(
            got.to_bits() & 0x7fff, want_mag,
            "midpoint of {:#06x}/{:#06x} (x={})", mag, mag + 1, mid
        );
        prop_assert_eq!(got.is_sign_negative(), neg);
    }

    /// Every f16 bit pattern survives a trip through f64 (NaNs stay NaN).
    #[test]
    fn to_f64_from_f64_is_identity_on_f16(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        let back = F16::from_f64(h.to_f64());
        if h.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), bits, "bits {:#06x}", bits);
        }
    }

    /// Subnormal f16 results are still nearest-representable: exercise the
    /// denormalized rounding path with inputs across 2^-26..2^-14.
    #[test]
    fn subnormal_range_rounds_nearest(frac in 0.0f64..1.0, e in -26i32..-13, neg in any::<bool>()) {
        let sign = if neg { -1.0 } else { 1.0 };
        let x = sign * (1.0 + frac) * (2.0f64).powi(e);
        let h = F16::from_f64(x);
        prop_assert!(!h.is_infinite());
        let err = (h.to_f64() - x).abs();
        for n in f16_finite_neighbors(h) {
            prop_assert!(err <= (n.to_f64() - x).abs(), "x={x} h={h:?} n={n:?}");
        }
        // A subnormal ulp is 2^-24; nearest means within half of it.
        prop_assert!(err <= (2.0f64).powi(-25) * 1.0000001 || err <= x.abs() * 4.89e-4);
    }

    /// Large magnitudes: overflow to infinity happens exactly at the
    /// rounding boundary 65520 = midpoint(MAX, 2^16), ties-to-even sending
    /// the midpoint itself up to infinity.
    #[test]
    fn overflow_boundary_is_exact(x in 6.0e4f64..7.0e4, neg in any::<bool>()) {
        let sign = if neg { -1.0 } else { 1.0 };
        let h = F16::from_f64(sign * x);
        prop_assert_eq!(h.is_sign_negative(), neg);
        if x >= 65520.0 {
            prop_assert!(h.is_infinite(), "x={x} must overflow");
        } else if x <= 65519.0 {
            prop_assert!(!h.is_infinite(), "x={x} must stay finite");
            // Anything past the last midpoint below MAX saturates to MAX.
            if x >= 65488.0 {
                prop_assert_eq!(h.to_bits() & 0x7fff, F16::MAX.to_bits());
            }
        }
    }
}

// --- binary16 *arithmetic* audit: the `SveFloat` ops for `F16` round
// through f32. Because f32's 24-bit significand satisfies 24 ≥ 2·11 + 2,
// the intermediate rounding is innocuous (the classic double-rounding
// bound): every op must equal the correctly rounded binary16 result of
// the exact real value, bit for bit. The solver's f16 compute tier — and
// its canonical reductions, which accumulate f16 products in f32 — lean
// on exactly these properties. ---

/// Strategy: any finite binary16 value, normals and subnormals alike.
fn any_finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("finite", |h| !h.is_nan() && !h.is_infinite())
}

/// Strategy: a binary16 value in a moderate range (no overflow in sums).
fn moderate_f16() -> impl Strategy<Value = F16> {
    (-8.0f64..8.0).prop_map(F16::from_f64)
}

proptest! {
    /// add/sub/mul through the f32 leg are *correctly rounded*: the sum or
    /// product of two f16 values is exact in f64, so `from_f64` of it is
    /// the one true RTNE result — and the f32 path must hit it exactly,
    /// including results that land in the subnormal range around 2⁻²⁵.
    #[test]
    fn f16_add_sub_mul_are_correctly_rounded(a in any_finite_f16(), b in any_finite_f16()) {
        let cases = [
            (a.add(b), a.to_f64() + b.to_f64(), "add"),
            (a.sub(b), a.to_f64() - b.to_f64(), "sub"),
            (a.mul(b), a.to_f64() * b.to_f64(), "mul"),
        ];
        for (got, exact, op) in cases {
            let want = F16::from_f64(exact);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "{}({:?}, {:?}): got {:?}, correctly rounded {:?}",
                op, a, b, got, want
            );
        }
    }

    /// `mul_add` single-rounds: the f16·f16 product is exact in f32, and
    /// the one f32 rounding of the subsequent add cannot shift the final
    /// f16 rounding (24 ≥ 2·11 + 2). The reference rounds the *fused* f64
    /// result, itself innocuous at 53 bits.
    #[test]
    fn f16_mul_add_is_single_rounded(
        a in any_finite_f16(), b in any_finite_f16(), c in any_finite_f16()
    ) {
        let got = a.mul_add(b, c);
        let want = F16::from_f64(a.to_f64().mul_add(b.to_f64(), c.to_f64()));
        if want.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "mul_add({:?}, {:?}, {:?}): got {:?}, want {:?}",
                a, b, c, got, want
            );
        }
    }

    /// The keystone of the ladder's f32-accumulated reductions: the
    /// product of any two finite f16 values is **exact** in f32 (22
    /// significand bits, exponents within ±48 — comfortably inside f32).
    #[test]
    fn f16_products_are_exact_in_f32(a in any_finite_f16(), b in any_finite_f16()) {
        let f32_product = (a.to_f32() * b.to_f32()) as f64;
        prop_assert_eq!(f32_product, a.to_f64() * b.to_f64());
    }

    /// A fused axpy + norm² sweep at binary16 with f32 scalar accumulation
    /// — the exact shape of the inner tier's `cg_update_x_r`-style pass.
    /// Every updated lane must be the correctly rounded f16 axpy, and the
    /// fixed-order f32 accumulator must track the exact f64 sum of the
    /// rounded lanes to accumulation grain: the squares themselves are
    /// exact in f32, so no double-rounding drift leaks into the scalar.
    #[test]
    fn fused_axpy_norm2_sweep_has_no_double_rounding_drift(
        a in moderate_f16(),
        lanes in proptest::collection::vec((moderate_f16(), moderate_f16()), 1..64)
    ) {
        let mut acc32 = 0.0f32;
        let mut exact = 0.0f64;
        for &(x, y) in &lanes {
            let h = a.mul_add(x, y);
            let want = F16::from_f64(a.to_f64().mul_add(x.to_f64(), y.to_f64()));
            prop_assert_eq!(h.to_bits(), want.to_bits(), "axpy lane double-rounded");
            acc32 += h.to_f32() * h.to_f32();
            exact += h.to_f64() * h.to_f64();
        }
        // Only the fixed-order f32 adds round: (n-1) of them, each within
        // eps32 of the running sum, which never exceeds the final sum here
        // (all terms are non-negative).
        let bound = lanes.len() as f64 * f64::from(f32::EPSILON) * exact.max(1.0);
        prop_assert!(
            ((acc32 as f64) - exact).abs() <= bound,
            "f32 accumulation drifted: acc={} exact={}", acc32, exact
        );
    }
}

#[test]
fn the_2pow_minus_25_subnormal_boundary_is_exact() {
    // 2⁻²⁵ is exactly half the smallest f16 subnormal (2⁻²⁴): a tie, and
    // ties-to-even flushes it to (signed) zero…
    let tiny = (2.0f64).powi(-25);
    assert_eq!(F16::from_f64(tiny).to_bits(), 0x0000);
    assert_eq!(F16::from_f64(-tiny).to_bits(), 0x8000);
    // …while anything past the midpoint survives as the smallest
    // subnormal. (The nudge must exceed f32's half-ulp ≈ 6·10⁻⁸: `from_f64`
    // models the hardware's two-step fcvt through f32, and a smaller nudge
    // is legitimately folded back onto the tie by the f32 leg.)
    assert_eq!(F16::from_f64(tiny * (1.0 + 1e-6)).to_bits(), 0x0001);

    // The same boundary reached through *arithmetic*: an exact product on
    // the midpoint must flush via the f32 leg too (f32 holds 2⁻²⁵ exactly,
    // so the tie is preserved, not double-rounded upward)…
    let a = F16::from_f64((2.0f64).powi(-13));
    let b = F16::from_f64((2.0f64).powi(-12));
    assert_eq!(a.mul(b).to_bits(), 0x0000);
    // …and a product one f16-ulp above the tie must round *up* to the
    // smallest subnormal, not collapse to zero.
    let b_up = F16::from_f64((2.0f64).powi(-12) * (1.0 + (2.0f64).powi(-10)));
    assert_eq!(a.mul(b_up).to_bits(), 0x0001);
}

#[test]
fn f16_special_values_convert_exactly() {
    assert!(F16::from_f64(f64::NAN).is_nan());
    assert!(F16::from_f64(f64::NAN).to_f64().is_nan());
    assert_eq!(
        F16::from_f64(f64::INFINITY).to_bits(),
        F16::INFINITY.to_bits()
    );
    assert_eq!(
        F16::from_f64(f64::NEG_INFINITY).to_bits(),
        F16::NEG_INFINITY.to_bits()
    );
    // Signed zeros survive, including the sign of -0.0.
    assert_eq!(F16::from_f64(0.0).to_bits(), 0x0000);
    assert_eq!(F16::from_f64(-0.0).to_bits(), 0x8000);
    assert_eq!(F16::from_f64(-0.0).to_f64().to_bits(), (-0.0f64).to_bits());
    // Values beyond f32 range funnel through the f32 cast to ±inf.
    assert!(F16::from_f64(1.0e308).is_infinite());
    assert!(F16::from_f64(-1.0e308).is_infinite());
    assert!(F16::from_f64(-1.0e308).is_sign_negative());
    // f64 subnormals flush to f16 zero with the sign kept.
    assert_eq!(F16::from_f64(5.0e-324).to_bits(), 0x0000);
    assert_eq!(F16::from_f64(-5.0e-324).to_bits(), 0x8000);
}
