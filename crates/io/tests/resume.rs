//! Resume-equivalence tests: a solve killed mid-flight and restored from
//! its on-disk checkpoint must retrace the uninterrupted iteration
//! sequence bit-for-bit.

use grid::prelude::*;
use qcd_io::checkpoint::bicgstab_checkpointed_from;
use qcd_io::{
    block_cg_checkpointed, cg_checkpointed, load_bicgstab, load_block_cg, load_cg, load_mixed,
    resume_bicgstab, resume_block_cg, resume_cg, save_bicgstab, save_block_cg, save_cg, save_mixed,
    IoError, MixedCheckpoint,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qcd-io-resume");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn setup() -> (WilsonDirac<f64>, FermionField) {
    let g: Arc<Grid<f64>> = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 81);
    let b = FermionField::random(g.clone(), 82);
    (WilsonDirac::new(u, 0.3), b)
}

#[test]
fn cg_killed_and_resumed_from_disk_is_bit_identical() {
    let (op, b) = setup();
    let apply = |v: &FermionField| op.mdag_m(v);
    let tol = 1e-10;
    let max_iter = 500;

    // Reference: the uninterrupted solve.
    let (x_ref, ref_report) = cg_op(apply, &b, tol, max_iter);

    // "Kill" a checkpointing solve by capping its iteration budget at 12;
    // the snapshot on disk is then the one written at iteration 10.
    let path = tmp("cg.qio");
    let (_, partial, snapshots) = cg_checkpointed(apply, &b, tol, 12, 5, &path).unwrap();
    assert_eq!(partial.iterations, 12);
    assert_eq!(snapshots, 2, "snapshots at iterations 5 and 10");
    let on_disk = load_cg(&path, b.grid()).unwrap();
    assert_eq!(on_disk.iterations, 10);

    // Resume from disk with the full budget.
    let (x, resumed, _) = resume_cg(apply, &b, tol, max_iter, 50, &path).unwrap();

    assert_eq!(resumed.iterations, ref_report.iterations);
    assert_eq!(
        resumed.residual.to_bits(),
        ref_report.residual.to_bits(),
        "final residual must match to the last bit ({} vs {})",
        resumed.residual,
        ref_report.residual
    );
    assert_eq!(
        x.max_abs_diff(&x_ref),
        0.0,
        "solutions must be bit-identical"
    );
    assert_eq!(resumed.history.len(), ref_report.history.len());
    for (i, (a, r)) in resumed.history.iter().zip(&ref_report.history).enumerate() {
        assert_eq!(a.to_bits(), r.to_bits(), "history entry {i} diverged");
    }
    assert!(resumed.converged);
    assert!((resumed.residual / tol) < 10.0);
}

#[test]
fn checkpoint_resumes_bit_identically_on_the_fused_workspace_path() {
    // A checkpoint written by the legacy closure-driven solver, resumed
    // through the allocation-free workspace path (`cg_ws_from_state` over
    // the fused `M†M` + curvature-dot kernel), must retrace the fused
    // reference solve bit for bit — the fused kernels retire the same
    // engine ops in the same order, so checkpoints are interchangeable
    // between the two drivers.
    let (op, b) = setup();
    let tol = 1e-10;
    let max_iter = 500;

    let (x_ref, ref_report) = cg(&op, &b, tol, max_iter);

    let path = tmp("cg_fused.qio");
    let apply = |v: &FermionField| op.mdag_m(v);
    let (_, _, snapshots) = cg_checkpointed(apply, &b, tol, 12, 5, &path).unwrap();
    assert_eq!(snapshots, 2);
    let state = load_cg(&path, b.grid()).unwrap();
    assert_eq!(state.iterations, 10);

    let mut ws = SolverWorkspace::new(b.grid().clone());
    let (x, resumed) = cg_ws_from_state(
        |p, ws| {
            let SolverWorkspace { tmp, ap, .. } = ws;
            op.mdag_m_into_dot(p, tmp, ap)
        },
        &b,
        &mut ws,
        state,
        tol,
        max_iter,
    );

    assert_eq!(resumed.iterations, ref_report.iterations);
    assert_eq!(resumed.residual.to_bits(), ref_report.residual.to_bits());
    assert_eq!(x.max_abs_diff(&x_ref), 0.0);
    assert_eq!(resumed.history.len(), ref_report.history.len());
    for (i, (a, r)) in resumed.history.iter().zip(&ref_report.history).enumerate() {
        assert_eq!(a.to_bits(), r.to_bits(), "history entry {i} diverged");
    }
    assert!(resumed.converged);
}

#[test]
fn cg_state_survives_a_save_load_cycle_bit_exactly() {
    let (op, b) = setup();
    let mut state = CgState::new(&b);
    for _ in 0..7 {
        state.step(|v| op.mdag_m(v));
    }
    let path = tmp("cg_state.qio");
    save_cg(&state, &path).unwrap();
    let back = load_cg(&path, b.grid()).unwrap();
    assert_eq!(back.iterations, state.iterations);
    assert_eq!(back.r2.to_bits(), state.r2.to_bits());
    assert_eq!(back.b_norm2.to_bits(), state.b_norm2.to_bits());
    assert_eq!(back.x.max_abs_diff(&state.x), 0.0);
    assert_eq!(back.r.max_abs_diff(&state.r), 0.0);
    assert_eq!(back.p.max_abs_diff(&state.p), 0.0);
    for (a, s) in back.history.iter().zip(&state.history) {
        assert_eq!(a.to_bits(), s.to_bits());
    }
}

#[test]
fn bicgstab_killed_and_resumed_from_disk_is_bit_identical() {
    let (op, b) = setup();
    let tol = 1e-8;
    let max_iter = 300;
    let (x_ref, ref_report) = bicgstab(&op, &b, tol, max_iter);

    let path = tmp("bicgstab.qio");
    let (_, _, snapshots) =
        bicgstab_checkpointed_from(&op, &b, BicgStabState::new(&b), tol, 9, 4, &path).unwrap();
    assert_eq!(snapshots, 2, "snapshots at iterations 4 and 8");
    let on_disk = load_bicgstab(&path, b.grid()).unwrap();
    assert_eq!(on_disk.iterations, 8);

    let (x, resumed, _) = resume_bicgstab(&op, &b, tol, max_iter, 100, &path).unwrap();
    assert_eq!(resumed.iterations, ref_report.iterations);
    assert_eq!(resumed.residual.to_bits(), ref_report.residual.to_bits());
    assert_eq!(x.max_abs_diff(&x_ref), 0.0);
}

#[test]
fn bicgstab_state_survives_a_save_load_cycle_bit_exactly() {
    let (op, b) = setup();
    let mut state = BicgStabState::new(&b);
    for _ in 0..5 {
        state.step(|v| op.apply(v));
    }
    let path = tmp("bicgstab_state.qio");
    save_bicgstab(&state, &path).unwrap();
    let back = load_bicgstab(&path, b.grid()).unwrap();
    assert_eq!(back.iterations, state.iterations);
    assert_eq!(back.rho.re.to_bits(), state.rho.re.to_bits());
    assert_eq!(back.rho.im.to_bits(), state.rho.im.to_bits());
    assert_eq!(back.b_norm2.to_bits(), state.b_norm2.to_bits());
    for (f_back, f_state) in [
        (&back.x, &state.x),
        (&back.r, &state.r),
        (&back.r0, &state.r0),
        (&back.p, &state.p),
    ] {
        assert_eq!(f_back.max_abs_diff(f_state), 0.0);
    }
}

#[test]
fn block_cg_killed_and_resumed_from_disk_is_bit_identical() {
    let (op, b0) = setup();
    let b1 = FermionField::random(b0.grid().clone(), 83);
    let b = FermionBlock::from_fields(&[b0.clone(), b1]);
    let tol = 1e-10;
    let max_iter = 500;

    // Reference: the uninterrupted batched solve.
    let (x_ref, ref_report) = block_cg(&op, &b, tol, max_iter);

    // "Kill" a checkpointing solve by capping its budget at 12 outer
    // steps; the snapshot on disk is then the one written at step 10.
    let path = tmp("blk.qio");
    let (_, partial, snapshots) = block_cg_checkpointed(&op, &b, tol, 12, 5, &path).unwrap();
    assert_eq!(partial.iterations, 12);
    assert_eq!(snapshots, 2, "snapshots at steps 5 and 10");
    let on_disk = load_block_cg(&path, b.grid()).unwrap();
    assert_eq!(on_disk.iterations, vec![10, 10]);

    // Resume from disk with the full budget: every right-hand side must
    // retrace the uninterrupted batched solve bit for bit.
    let (x, resumed, _) = resume_block_cg(&op, &b, tol, max_iter, 50, &path).unwrap();
    assert_eq!(resumed.per_rhs_iterations, ref_report.per_rhs_iterations);
    assert_eq!(
        x.max_abs_diff(&x_ref),
        0.0,
        "solutions must be bit-identical"
    );
    for j in 0..b.nrhs() {
        assert_eq!(
            resumed.residuals[j].to_bits(),
            ref_report.residuals[j].to_bits(),
            "RHS {j} residual diverged"
        );
        assert!(resumed.converged[j]);
        assert_eq!(resumed.histories[j].len(), ref_report.histories[j].len());
        for (i, (a, r)) in resumed.histories[j]
            .iter()
            .zip(&ref_report.histories[j])
            .enumerate()
        {
            assert_eq!(a.to_bits(), r.to_bits(), "RHS {j} history entry {i}");
        }
    }
}

#[test]
fn block_cg_state_survives_a_save_load_cycle_bit_exactly() {
    let (op, b0) = setup();
    let b1 = FermionField::random(b0.grid().clone(), 84);
    let b = FermionBlock::from_fields(&[b0, b1]);
    let mut state = BlockCgState::new(&b);
    let mut ws = BlockWorkspace::new(b.grid().clone(), b.nrhs());
    let mut apply = |p: &FermionBlock, ws: &mut BlockWorkspace| {
        let BlockWorkspace { tmp, ap, .. } = ws;
        op.mdag_m_block_into_dot(p, tmp, ap)
    };
    for _ in 0..7 {
        let active = state.active(1e-10, 500);
        state.step_ws(&mut ws, &mut apply, &active);
    }
    let path = tmp("blk_state.qio");
    save_block_cg(&state, &path).unwrap();
    let back = load_block_cg(&path, b.grid()).unwrap();
    assert_eq!(back.iterations, state.iterations);
    for j in 0..b.nrhs() {
        assert_eq!(back.r2[j].to_bits(), state.r2[j].to_bits());
        assert_eq!(back.b_norm2[j].to_bits(), state.b_norm2[j].to_bits());
        for (a, s) in back.histories[j].iter().zip(&state.histories[j]) {
            assert_eq!(a.to_bits(), s.to_bits());
        }
    }
    assert_eq!(back.x.max_abs_diff(&state.x), 0.0);
    assert_eq!(back.r.max_abs_diff(&state.r), 0.0);
    assert_eq!(back.p.max_abs_diff(&state.p), 0.0);
}

#[test]
fn block_resume_against_the_wrong_rhs_is_refused_by_index() {
    let (op, b0) = setup();
    let b1 = FermionField::random(b0.grid().clone(), 85);
    let b = FermionBlock::from_fields(&[b0.clone(), b1]);
    let path = tmp("blk_wrong_rhs.qio");
    block_cg_checkpointed(&op, &b, 1e-10, 12, 5, &path).unwrap();
    // Swap out the second right-hand side only: the error must name it.
    let other =
        FermionBlock::from_fields(&[b0.clone(), FermionField::random(b0.grid().clone(), 998)]);
    match resume_block_cg(&op, &other, 1e-10, 500, 50, &path) {
        Err(IoError::BadRecord { record, msg }) => {
            assert_eq!(record, "blk.scalars");
            assert!(msg.contains("right-hand side 1"), "{msg}");
        }
        other => panic!(
            "expected a right-hand-side mismatch, got {other:?}",
            other = other.err()
        ),
    }
}

#[test]
fn mixed_solve_resumes_from_a_disk_checkpoint() {
    let (op, b) = setup();
    // Partial solve, snapshot the f64 iterate, reload, and finish.
    let (x_partial, partial) = mixed_precision_solve(&op, &b, 1e-4, 1e-4, 2, 500);
    let path = tmp("mixed.qio");
    save_mixed(
        &MixedCheckpoint {
            x: x_partial,
            outer_done: partial.outer_iterations,
            inner_done: partial.inner_iterations,
        },
        &path,
    )
    .unwrap();

    let ck = load_mixed(&path, b.grid()).unwrap();
    assert_eq!(ck.outer_done, partial.outer_iterations);
    assert_eq!(ck.inner_done, partial.inner_iterations);
    let (x, resumed) = mixed_precision_solve_from(&op, &b, ck.x, 1e-10, 1e-4, 30, 500);
    assert!(resumed.converged, "{resumed:?}");
    assert!(resumed.residual <= 1e-10);
    let (_, cold) = mixed_precision_solve(&op, &b, 1e-10, 1e-4, 30, 500);
    assert!(
        resumed.outer_iterations < cold.outer_iterations,
        "the checkpointed progress must be reused ({} vs {})",
        resumed.outer_iterations,
        cold.outer_iterations
    );
    let (x_ref, _) = solve_wilson(&op, &b, 1e-10, 3000);
    let mut diff = FermionField::zero(b.grid().clone());
    diff.sub(&x, &x_ref);
    assert!((diff.norm2() / x_ref.norm2()).sqrt() < 1e-8);
}

#[test]
fn ladder_solve_killed_and_resumed_from_disk_is_bit_identical() {
    use grid::mixed::{ladder_solve, ladder_solve_from, LadderConfig};
    let (op, b) = setup();
    let tol = 1e-10;

    // Reference: the uninterrupted f16-inner ladder.
    let cfg = LadderConfig::new(tol);
    let (x_ref, full) = ladder_solve(&op, &b, &cfg);
    assert!(full.converged, "{full:?}");
    assert!(full.f16_iterations > 0, "f16 tier never ran");

    // "Kill" the solve after two outer rounds; the f64 iterate is a
    // complete restart point (each outer round is a memoryless function
    // of x), so the MixedCheckpoint container fits the ladder unchanged.
    let mut cut = cfg.clone();
    cut.max_outer = 2;
    let (x_partial, partial) = ladder_solve(&op, &b, &cut);
    assert!(!partial.converged, "cut solve must stop early");
    let path = tmp("ladder.qio");
    save_mixed(
        &MixedCheckpoint {
            x: x_partial,
            outer_done: partial.outer_iterations,
            inner_done: partial.f32_iterations + partial.f16_iterations,
        },
        &path,
    )
    .unwrap();

    // Reload and finish: the resumed trajectory must retrace the
    // uninterrupted one bit for bit — outer histories align round for
    // round past the kill point, and the solutions are identical.
    let ck = load_mixed(&path, b.grid()).unwrap();
    assert_eq!(ck.outer_done, partial.outer_iterations);
    let (x, resumed) = ladder_solve_from(&op, &b, ck.x, &cfg);
    assert!(resumed.converged, "{resumed:?}");
    assert_eq!(x.max_abs_diff(&x_ref), 0.0, "resumed solution diverged");
    assert_eq!(
        resumed.outer_iterations + ck.outer_done,
        full.outer_iterations,
        "checkpointed progress must be reused"
    );
    let tail = &full.outer_history[ck.outer_done..];
    assert_eq!(resumed.outer_history.len(), tail.len());
    for (a, r) in resumed.outer_history.iter().zip(tail) {
        assert_eq!(a.to_bits(), r.to_bits(), "outer history tail diverged");
    }
}

#[test]
fn resuming_against_the_wrong_rhs_is_refused() {
    let (op, b) = setup();
    let apply = |v: &FermionField| op.mdag_m(v);
    let path = tmp("cg_wrong_rhs.qio");
    let (_, _, _) = cg_checkpointed(apply, &b, 1e-10, 12, 5, &path).unwrap();
    let other_b = FermionField::random(b.grid().clone(), 999);
    match resume_cg(apply, &other_b, 1e-10, 500, 50, &path) {
        Err(IoError::BadRecord { record, .. }) => assert_eq!(record, "cg.scalars"),
        other => panic!(
            "expected a right-hand-side mismatch, got {other:?}",
            other = other.err()
        ),
    }
}
