//! Round-trip tests for the `qcd-io/v1` field container: lossless f64
//! storage, bounded-error narrow precisions, vector-length portability,
//! and validated metadata.

use grid::codec::Precision;
use grid::gauge::average_plaquette;
use grid::prelude::*;
use qcd_io::{
    plaquette_tolerance, read_field, read_gauge, rng_from_record, rng_record, write_field,
    write_gauge, Container, IoError,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qcd-io-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn grid_of(bits: usize) -> Arc<Grid<f64>> {
    Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
}

#[test]
fn gauge_f64_round_trip_is_bit_exact() {
    let g = grid_of(512);
    let u = random_gauge(g.clone(), 41);
    let path = tmp("gauge_f64.qio");
    write_gauge(&u, &path, Precision::F64).unwrap();
    let v = read_gauge(&path, &g).unwrap();
    assert_eq!(u.max_abs_diff(&v), 0.0, "f64 storage must be lossless");
    assert_eq!(
        average_plaquette(&u).to_bits(),
        average_plaquette(&v).to_bits()
    );
}

#[test]
fn fermion_f64_round_trip_is_bit_exact() {
    let g = grid_of(256);
    let b = FermionField::random(g.clone(), 42);
    let path = tmp("fermion_f64.qio");
    write_field(&b, &path, Precision::F64).unwrap();
    let c = read_field::<grid::field::FermionKind, f64>(&path, &g).unwrap();
    assert_eq!(b.max_abs_diff(&c), 0.0);
}

#[test]
fn narrow_precisions_bound_the_per_scalar_error() {
    let g = grid_of(512);
    let u = random_gauge(g.clone(), 43);
    for precision in [Precision::F32, Precision::F16] {
        let path = tmp(&format!("gauge_{precision}.qio"));
        write_gauge(&u, &path, precision).unwrap();
        // Plaquette validation passes at the precision's own tolerance.
        let v = read_gauge(&path, &g).unwrap();
        let bound = precision.relative_error_bound();
        for x in g.coords().step_by(5) {
            for comp in 0..36 {
                let a = u.peek(&x, comp);
                let b = v.peek(&x, comp);
                // Gauge link entries are O(1); bound the absolute error by
                // the relative bound with a small margin for subnormal-f16
                // quantization near zero.
                let tol = bound.max(1e-9) * a.re.abs().max(1.0);
                assert!(
                    (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol.max(bound),
                    "{precision}: site {x:?} comp {comp}: {a:?} vs {b:?}"
                );
            }
        }
        assert!(
            (average_plaquette(&u) - average_plaquette(&v)).abs() <= plaquette_tolerance(precision)
        );
    }
}

#[test]
fn files_are_portable_across_vector_lengths() {
    // The paper's whole point is VL-agnostic code; the container follows:
    // a file written on wide silicon loads bit-exactly on narrow silicon.
    let g_wide = grid_of(512);
    let u = random_gauge(g_wide.clone(), 44);
    let path = tmp("gauge_vl512.qio");
    write_gauge(&u, &path, Precision::F64).unwrap();
    for bits in [128, 256, 1024] {
        let g_narrow = grid_of(bits);
        let v = read_gauge(&path, &g_narrow).unwrap();
        for x in g_wide.coords().step_by(3) {
            for comp in (0..36).step_by(7) {
                assert_eq!(
                    u.peek(&x, comp).re.to_bits(),
                    v.peek(&x, comp).re.to_bits(),
                    "VL{bits}: site {x:?} comp {comp}"
                );
                assert_eq!(u.peek(&x, comp).im.to_bits(), v.peek(&x, comp).im.to_bits());
            }
        }
    }
}

#[test]
fn dimension_mismatch_is_typed() {
    let g = grid_of(256);
    let u = random_gauge(g.clone(), 45);
    let path = tmp("gauge_dims.qio");
    write_gauge(&u, &path, Precision::F64).unwrap();
    let g_other: Arc<Grid<f64>> =
        Grid::new([8, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
    match read_gauge(&path, &g_other) {
        Err(IoError::GridMismatch { .. }) => {}
        other => panic!("expected GridMismatch, got {other:?}", other = other.err()),
    }
}

#[test]
fn kind_mismatch_is_typed() {
    let g = grid_of(256);
    let b = FermionField::random(g.clone(), 46);
    let path = tmp("fermion_kind.qio");
    write_field(&b, &path, Precision::F64).unwrap();
    match read_gauge(&path, &g) {
        Err(IoError::KindMismatch { want, found }) => {
            assert_eq!(want, "SU(3) gauge links");
            assert_eq!(found, "spin-color fermion");
        }
        other => panic!("expected KindMismatch, got {other:?}", other = other.err()),
    }
}

#[test]
fn rng_state_round_trips_through_a_container_file() {
    // Serialize a mid-stream RNG, restore it from disk, and check the
    // continued stream is bit-identical to the uninterrupted one.
    let mut reference = StreamRng::new(0xFEED_5EED);
    let reference_draws: Vec<u64> = (0..300).map(|_| reference.next_u64()).collect();

    let mut rng = StreamRng::new(0xFEED_5EED);
    for _ in 0..123 {
        rng.next_u64();
    }
    let path = tmp("rng.qio");
    let mut c = Container::new();
    c.push(rng_record(&rng));
    c.write_atomic(&path).unwrap();

    let back = Container::open(&path).unwrap();
    let mut restored = rng_from_record(back.expect("rng").unwrap()).unwrap();
    assert_eq!(restored.draws(), 123);
    for (i, want) in reference_draws.iter().enumerate().skip(123) {
        assert_eq!(
            restored.next_u64(),
            *want,
            "draw {i} diverged after restore"
        );
    }
}

#[test]
fn io_spans_carry_byte_counts() {
    let g = grid_of(256);
    let u = random_gauge(g.clone(), 47);
    let path = tmp("gauge_telemetry.qio");
    write_gauge(&u, &path, Precision::F64).unwrap();
    let _ = read_gauge(&path, &g).unwrap();
    let snap = qcd_trace::snapshot();
    let file_len = std::fs::metadata(&path).unwrap().len();
    let w = snap.region("io.write").expect("io.write span recorded");
    assert!(
        w.bytes_written >= file_len,
        "io.write recorded {} bytes, file is {file_len}",
        w.bytes_written
    );
    let r = snap.region("io.read").expect("io.read span recorded");
    assert!(r.bytes_read >= file_len);
    assert!(
        snap.region("io.validate").is_some(),
        "plaquette validation must run under io.validate: {:?}",
        snap.regions.keys().collect::<Vec<_>>()
    );
}
