//! Fault-injection tests: every corruption class must surface as the right
//! typed error — never a panic, never silently wrong data.

use grid::codec::Precision;
use grid::prelude::*;
use qcd_io::fault::INJECTED_ERROR_KIND;
use qcd_io::fields::{FIELD_RECORD, META_RECORD};
use qcd_io::{
    read_gauge, write_gauge, Container, Fault, FaultyReader, FaultyWriter, FieldMeta, IoError,
    Record,
};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qcd-io-faults");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn small_grid() -> Arc<Grid<f64>> {
    Grid::new([4, 4, 2, 2], VectorLength::of(256), SimdBackend::Fcmla)
}

fn sample_bytes() -> Vec<u8> {
    let g = small_grid();
    let u = random_gauge(g, 71);
    let mut c = Container::new();
    let mut meta = FieldMeta::of(&u, Precision::F64);
    meta.plaquette = Some(grid::gauge::average_plaquette(&u));
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(
        FIELD_RECORD,
        qcd_io::fields::encode_field(&u, Precision::F64),
    ));
    let mut buf = Vec::new();
    c.write_to(&mut buf).unwrap();
    buf
}

#[test]
fn bit_flips_anywhere_are_detected_never_panic() {
    let bytes = sample_bytes();
    // Sweep flips across the whole file: header, record headers, payloads,
    // checksums. Every one must be a typed error (or, for a flip inside
    // the stored CRC itself, still a CrcMismatch).
    let stride = (bytes.len() / 97).max(1);
    for offset in (0..bytes.len() as u64).step_by(stride) {
        for bit in [0u8, 6] {
            let reader = FaultyReader::new(&bytes[..], Fault::BitFlip { offset, bit });
            match Container::read_from(reader) {
                Ok(_) => panic!("flip at {offset}:{bit} went undetected"),
                Err(
                    IoError::BadMagic { .. }
                    | IoError::UnsupportedVersion(_)
                    | IoError::BadRecordMark { .. }
                    | IoError::CrcMismatch { .. }
                    | IoError::Truncated { .. },
                ) => {}
                Err(other) => panic!("flip at {offset}:{bit}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let bytes = sample_bytes();
    // A cut exactly between two records reads as a (shorter) valid
    // container — the record framing cannot know more records were meant
    // to follow. Everywhere else, truncation must be a typed error.
    let full = Container::read_from(&bytes[..]).unwrap();
    let mut record_boundaries = vec![12u64];
    for r in &full.records {
        record_boundaries.push(record_boundaries.last().unwrap() + 32 + r.payload.len() as u64);
    }
    let stride = (bytes.len() / 53).max(1);
    for cut in (1..bytes.len() as u64).step_by(stride) {
        let reader = FaultyReader::new(&bytes[..], Fault::TruncateAfter { bytes: cut });
        match Container::read_from(reader) {
            Err(IoError::Truncated { .. }) => {
                assert!(!record_boundaries.contains(&cut));
            }
            Ok(_) => assert!(
                record_boundaries.contains(&cut),
                "cut at {cut} mid-record read back as a valid container"
            ),
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn device_failure_mid_read_is_an_io_error() {
    let bytes = sample_bytes();
    for fail_at in [0, 5, 12, 40, bytes.len() as u64 - 2] {
        let reader = FaultyReader::new(&bytes[..], Fault::FailAfter { bytes: fail_at });
        match Container::read_from(reader) {
            Err(IoError::Io(e)) => assert_eq!(e.kind(), INJECTED_ERROR_KIND),
            other => panic!("fail at {fail_at}: expected Io, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_write_is_caught_on_read_back() {
    // A writer that flips one bit mid-payload: the write itself succeeds,
    // but the CRC catches it on the next read.
    let bytes = sample_bytes();
    let mut w = FaultyWriter::new(
        Vec::new(),
        Fault::BitFlip {
            offset: bytes.len() as u64 / 2,
            bit: 3,
        },
    );
    w.write_all(&bytes).unwrap();
    let damaged = w.into_inner();
    assert!(matches!(
        Container::read_from(&damaged[..]),
        Err(IoError::CrcMismatch { .. })
    ));
}

#[test]
fn torn_write_is_caught_on_read_back() {
    // A writer that silently drops the tail (power loss before the last
    // blocks hit the platter): readers must refuse the torn file.
    let bytes = sample_bytes();
    let mut w = FaultyWriter::new(
        Vec::new(),
        Fault::TruncateAfter {
            bytes: bytes.len() as u64 * 2 / 3,
        },
    );
    w.write_all(&bytes).unwrap(); // the torn write itself reports success
    let torn = w.into_inner();
    assert!(matches!(
        Container::read_from(&torn[..]),
        Err(IoError::Truncated { .. })
    ));
}

#[test]
fn device_failure_mid_write_is_an_io_error() {
    let bytes = sample_bytes();
    let mut w = FaultyWriter::new(Vec::new(), Fault::FailAfter { bytes: 100 });
    let err = w.write_all(&bytes).unwrap_err();
    assert_eq!(err.kind(), INJECTED_ERROR_KIND);
}

#[test]
fn spliced_records_fail_physics_validation() {
    // Pass the CRC layer entirely: assemble a container from the metadata
    // of one configuration and the links of another. Only the plaquette
    // check can catch this.
    let g = small_grid();
    let u1 = random_gauge(g.clone(), 72);
    let u2 = random_gauge(g.clone(), 73);
    let mut meta = FieldMeta::of(&u1, Precision::F64);
    meta.plaquette = Some(grid::gauge::average_plaquette(&u1));
    let mut spliced = Container::new();
    spliced.push(Record::new(META_RECORD, meta.encode()));
    spliced.push(Record::new(
        FIELD_RECORD,
        qcd_io::fields::encode_field(&u2, Precision::F64),
    ));
    let path = tmp("spliced.qio");
    spliced.write_atomic(&path).unwrap();
    match read_gauge(&path, &g) {
        Err(IoError::PlaquetteMismatch {
            stored, computed, ..
        }) => assert_ne!(stored.to_bits(), computed.to_bits()),
        other => panic!(
            "expected PlaquetteMismatch, got {other:?}",
            other = other.err()
        ),
    }
}

#[test]
fn corrupting_a_file_on_disk_is_detected() {
    // The CI smoke test's scenario, in miniature: write a valid
    // configuration, flip one bit in a copy, and assert the reader refuses
    // the copy while still accepting the original.
    let g = small_grid();
    let u = random_gauge(g.clone(), 74);
    let path = tmp("good.qio");
    write_gauge(&u, &path, Precision::F64).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let target = bytes.len() / 2;
    bytes[target] ^= 0x40;
    let bad_path = tmp("corrupt.qio");
    std::fs::write(&bad_path, &bytes).unwrap();

    assert!(read_gauge(&path, &g).is_ok(), "original must stay readable");
    assert!(
        matches!(read_gauge(&bad_path, &g), Err(IoError::CrcMismatch { .. })),
        "corrupted copy must be refused"
    );
}

#[test]
fn missing_records_are_typed() {
    let mut c = Container::new();
    c.push(Record::new("unrelated", vec![1, 2, 3]));
    let path = tmp("missing.qio");
    c.write_atomic(&path).unwrap();
    let g = small_grid();
    assert!(matches!(
        read_gauge(&path, &g),
        Err(IoError::MissingRecord { .. })
    ));
}

#[test]
fn opening_a_nonexistent_file_is_an_io_error() {
    let g = small_grid();
    assert!(matches!(
        read_gauge(&tmp("does-not-exist.qio"), &g),
        Err(IoError::Io(_))
    ));
}

#[test]
fn injected_faults_land_in_the_flight_recorder_typed() {
    // The acceptance contract of the observability layer: drive errors
    // through `FaultyReader` and find each class in the flight-recorder
    // dump as a typed `io.error` event, in a dump that validates as
    // `qcd-metrics/v1` JSONL.
    let _guard = qcd_metrics::global_test_lock();
    qcd_metrics::flight_reset();
    let bytes = sample_bytes();

    // Device failure mid-read -> "io".
    let reader = FaultyReader::new(&bytes[..], Fault::FailAfter { bytes: 12 });
    assert!(Container::read_from(reader).is_err());
    // Torn stream -> "truncated".
    let reader = FaultyReader::new(
        &bytes[..],
        Fault::TruncateAfter {
            bytes: bytes.len() as u64 - 3,
        },
    );
    assert!(Container::read_from(reader).is_err());
    // Payload bit flip -> "crc_mismatch".
    let reader = FaultyReader::new(
        &bytes[..],
        Fault::BitFlip {
            offset: bytes.len() as u64 - 40,
            bit: 3,
        },
    );
    assert!(Container::read_from(reader).is_err());

    let events = qcd_metrics::flight_snapshot();
    let labels: Vec<&str> = events
        .iter()
        .filter(|ev| ev.kind == "io.error")
        .map(|ev| ev.label.as_str())
        .collect();
    for expected in ["io", "truncated", "crc_mismatch"] {
        assert!(
            labels.contains(&expected),
            "missing {expected} in {labels:?}"
        );
    }

    let dump = qcd_metrics::flight_dump_jsonl();
    qcd_metrics::validate_jsonl(&dump).expect("flight dump must validate");
    assert!(dump.contains("\"kind\":\"io.error\",\"label\":\"crc_mismatch\""));
    qcd_metrics::flight_reset();
}

#[test]
fn checkpoint_writes_are_flight_recorded() {
    let _guard = qcd_metrics::global_test_lock();
    qcd_metrics::flight_reset();
    let g = small_grid();
    let u = random_gauge(g.clone(), 72);
    let path = tmp("flight-write.qio");
    let written = write_gauge(&u, &path, Precision::F64).unwrap();
    let events = qcd_metrics::flight_snapshot();
    let ev = events
        .iter()
        .find(|ev| ev.kind == "checkpoint.write")
        .expect("write must be recorded");
    assert!(ev.label.ends_with("flight-write.qio"));
    assert_eq!(ev.data[0], ("bytes".to_string(), written as f64));
    std::fs::remove_file(&path).unwrap();
    qcd_metrics::flight_reset();
}
