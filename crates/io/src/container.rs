//! The `qcd-io/v1` record container — a LIME-inspired framing layer.
//!
//! Lattice QCD configuration archives (ILDG/SciDAC) wrap their payloads in
//! LIME: a flat sequence of self-describing records, each carrying a type
//! tag and a length, so tools can skip records they do not understand. This
//! module is the same idea reduced to what a single-node checkpoint needs,
//! plus a per-record CRC-32 so corruption is detected at read time rather
//! than discovered as wrong physics three solves later.
//!
//! ```text
//! file   := magic version record*
//! magic  := b"QCDIOv1\n"                     (8 bytes)
//! version:= u32 LE                           (currently 1)
//! record := mark type len payload crc
//! mark   := b"QREC"                          (4 bytes)
//! type   := [u8; 16]  ASCII, NUL padded
//! len    := u64 LE    payload byte count
//! crc    := u32 LE    CRC-32 (IEEE) over type ‖ len ‖ payload
//! ```
//!
//! All integers are little-endian. The CRC covers the type and length
//! fields too, so a corrupted header cannot redirect a valid payload.

use crate::crc::{crc32, Crc32};
use crate::error::{IoError, Result};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

/// File magic: identifies a `qcd-io` container and its major format line.
pub const MAGIC: [u8; 8] = *b"QCDIOv1\n";
/// Current container format version.
pub const VERSION: u32 = 1;
/// Marker opening every record header.
pub const RECORD_MARK: [u8; 4] = *b"QREC";
/// Fixed width of the record type field.
pub const TYPE_LEN: usize = 16;

/// A single decoded record: a type name and its payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// ASCII type tag (NUL padding stripped).
    pub rtype: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Record {
    /// Build a record, checking the type tag fits the fixed header field.
    pub fn new(rtype: &str, payload: Vec<u8>) -> Self {
        assert!(
            rtype.len() <= TYPE_LEN && rtype.is_ascii() && !rtype.contains('\0'),
            "record type must be ASCII, NUL-free, and at most {TYPE_LEN} bytes: {rtype:?}"
        );
        Record {
            rtype: rtype.to_string(),
            payload,
        }
    }
}

/// Encode the fixed-width type field.
fn type_bytes(rtype: &str) -> [u8; TYPE_LEN] {
    let mut t = [0u8; TYPE_LEN];
    t[..rtype.len()].copy_from_slice(rtype.as_bytes());
    t
}

/// Serializes records into any `Write` sink.
pub struct ContainerWriter<W: Write> {
    sink: W,
    bytes_written: u64,
}

impl<W: Write> ContainerWriter<W> {
    /// Start a container: writes the magic and version header.
    pub fn new(mut sink: W) -> Result<Self> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        Ok(ContainerWriter {
            sink,
            bytes_written: (MAGIC.len() + 4) as u64,
        })
    }

    /// Append one record (header, payload, CRC).
    pub fn write_record(&mut self, record: &Record) -> Result<()> {
        let t = type_bytes(&record.rtype);
        let len = (record.payload.len() as u64).to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&t);
        crc.update(&len);
        crc.update(&record.payload);
        self.sink.write_all(&RECORD_MARK)?;
        self.sink.write_all(&t)?;
        self.sink.write_all(&len)?;
        self.sink.write_all(&record.payload)?;
        self.sink.write_all(&crc.finalize().to_le_bytes())?;
        self.bytes_written += (RECORD_MARK.len() + TYPE_LEN + 8 + record.payload.len() + 4) as u64;
        Ok(())
    }

    /// Total bytes emitted so far (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flush and hand the sink back.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads records back from any `Read` source, validating framing and CRC.
pub struct ContainerReader<R: Read> {
    source: R,
    /// Offset of the next unread byte, relative to the start of the record
    /// stream (i.e. just after magic + version).
    offset: u64,
    bytes_read: u64,
}

/// Read exactly `buf.len()` bytes. Distinguishes a clean end-of-stream
/// (zero bytes read — `Ok(false)`) from a mid-item cut (`Truncated`).
fn read_exact_or_eof<R: Read>(source: &mut R, buf: &mut [u8], context: &str) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = source.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(IoError::Truncated {
                context: context.to_string(),
            });
        }
        filled += n;
    }
    Ok(true)
}

/// Read exactly `buf.len()` bytes; end-of-stream anywhere is truncation.
fn read_exact<R: Read>(source: &mut R, buf: &mut [u8], context: &str) -> Result<()> {
    if read_exact_or_eof(source, buf, context)? {
        Ok(())
    } else {
        Err(IoError::Truncated {
            context: context.to_string(),
        })
    }
}

impl<R: Read> ContainerReader<R> {
    /// Open a container: validates the magic and version header.
    pub fn new(mut source: R) -> Result<Self> {
        let mut magic = [0u8; 8];
        read_exact(&mut source, &mut magic, "container magic")?;
        if magic != MAGIC {
            return Err(IoError::BadMagic { found: magic });
        }
        let mut v = [0u8; 4];
        read_exact(&mut source, &mut v, "container version")?;
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(IoError::UnsupportedVersion(version));
        }
        Ok(ContainerReader {
            source,
            offset: 0,
            bytes_read: 12,
        })
    }

    /// Read the next record, or `None` at a clean end of stream. Any
    /// framing, truncation, or checksum problem is a typed error.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        let mut mark = [0u8; 4];
        if !read_exact_or_eof(&mut self.source, &mut mark, "record mark")? {
            return Ok(None);
        }
        if mark != RECORD_MARK {
            return Err(IoError::BadRecordMark {
                offset: self.offset,
            });
        }
        let mut t = [0u8; TYPE_LEN];
        read_exact(&mut self.source, &mut t, "record type")?;
        let rtype: String = t
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| b as char)
            .collect();
        let mut len_bytes = [0u8; 8];
        read_exact(&mut self.source, &mut len_bytes, "record length")?;
        let len = u64::from_le_bytes(len_bytes);
        let mut payload = vec![0u8; len as usize];
        read_exact(
            &mut self.source,
            &mut payload,
            &format!("'{rtype}' payload ({len} bytes)"),
        )?;
        let mut crc_bytes = [0u8; 4];
        read_exact(&mut self.source, &mut crc_bytes, "record checksum")?;
        let stored = u32::from_le_bytes(crc_bytes);
        let mut crc = Crc32::new();
        crc.update(&t);
        crc.update(&len_bytes);
        crc.update(&payload);
        let computed = crc.finalize();
        if stored != computed {
            return Err(IoError::CrcMismatch {
                record: rtype,
                stored,
                computed,
            });
        }
        let record_len = (RECORD_MARK.len() + TYPE_LEN + 8 + payload.len() + 4) as u64;
        self.offset += record_len;
        self.bytes_read += record_len;
        Ok(Some(Record { rtype, payload }))
    }

    /// Total bytes consumed so far (header included).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

/// A fully materialized container: every record, validated.
#[derive(Clone, Debug)]
pub struct Container {
    /// All records, in file order.
    pub records: Vec<Record>,
}

impl Container {
    /// An empty container ready for [`Container::push`].
    pub fn new() -> Self {
        Container {
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Parse and validate every record from a `Read` source. Any failure —
    /// OS error, lost framing, truncation, CRC mismatch — lands in the
    /// flight recorder as a typed `io.error` event before it propagates.
    pub fn read_from<R: Read>(source: R) -> Result<Self> {
        Self::read_from_inner(source).inspect_err(crate::record_io_error)
    }

    fn read_from_inner<R: Read>(source: R) -> Result<Self> {
        let mut reader = ContainerReader::new(source)?;
        let mut records = Vec::new();
        while let Some(r) = reader.next_record()? {
            records.push(r);
        }
        qcd_trace::record_bytes(reader.bytes_read(), 0);
        Ok(Container { records })
    }

    /// Open and fully validate a container file, under an `io.read` span.
    pub fn open(path: &Path) -> Result<Self> {
        let _span = qcd_trace::span!("io.read");
        Self::read_from(File::open(path)?)
    }

    /// First record of a type, if present.
    pub fn find(&self, rtype: &str) -> Option<&Record> {
        self.records.iter().find(|r| r.rtype == rtype)
    }

    /// First record of a type, or a [`IoError::MissingRecord`].
    pub fn expect(&self, rtype: &str) -> Result<&Record> {
        self.find(rtype).ok_or_else(|| IoError::MissingRecord {
            record: rtype.to_string(),
        })
    }

    /// Serialize every record into a writer.
    pub fn write_to<W: Write>(&self, sink: W) -> Result<u64> {
        let mut w = ContainerWriter::new(sink)?;
        for r in &self.records {
            w.write_record(r)?;
        }
        let n = w.bytes_written();
        w.finish()?;
        qcd_trace::record_bytes(0, n);
        Ok(n)
    }

    /// Write the container to `path` atomically, under an `io.write` span:
    /// the bytes land in a temporary file in the same directory, are fsynced,
    /// and only then renamed over the destination. A crash mid-write leaves
    /// either the old file or the new one — never a torn checkpoint.
    pub fn write_atomic(&self, path: &Path) -> Result<u64> {
        let _span = qcd_trace::span!("io.write");
        self.write_atomic_inner(path)
            .inspect(|&written| {
                qcd_metrics::counter("io.writes").inc();
                qcd_metrics::histogram("io.write.bytes").record(written);
                qcd_metrics::record_event(
                    "checkpoint.write",
                    &path.to_string_lossy(),
                    &[("bytes", written as f64)],
                );
            })
            .inspect_err(crate::record_io_error)
    }

    fn write_atomic_inner(&self, path: &Path) -> Result<u64> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let file = File::create(&tmp)?;
        let written = match self.write_to(&file) {
            Ok(n) => n,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        };
        file.sync_all()?;
        drop(file);
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Make the rename itself durable where the platform allows it.
        if let Some(d) = dir {
            if let Ok(dh) = File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(written)
    }
}

impl Default for Container {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 of a record exactly as stored on disk (exposed for tests and
/// external tooling that patches containers).
pub fn record_crc(record: &Record) -> u32 {
    let t = type_bytes(&record.rtype);
    let len = (record.payload.len() as u64).to_le_bytes();
    let mut bytes = Vec::with_capacity(TYPE_LEN + 8 + record.payload.len());
    bytes.extend_from_slice(&t);
    bytes.extend_from_slice(&len);
    bytes.extend_from_slice(&record.payload);
    crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new();
        c.push(Record::new("meta", b"dims=4444".to_vec()));
        c.push(Record::new("payload.a", vec![7u8; 300]));
        c.push(Record::new("payload.b", Vec::new()));
        c
    }

    #[test]
    fn round_trip_through_memory() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Container::read_from(&buf[..]).unwrap();
        assert_eq!(back.records, c.records);
    }

    #[test]
    fn header_layout_is_stable() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"QCDIOv1\n");
        assert_eq!(u32::from_le_bytes(buf[8..12].try_into().unwrap()), 1);
        assert_eq!(&buf[12..16], b"QREC");
        assert_eq!(&buf[16..20], b"meta");
        assert_eq!(buf[20], 0, "type field is NUL padded");
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[3] ^= 0xFF;
        match Container::read_from(&buf[..]) {
            Err(IoError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[8] = 99;
        match Container::read_from(&buf[..]) {
            Err(IoError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn payload_corruption_is_a_crc_mismatch() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Flip a bit inside the first record's payload.
        buf[12 + 4 + TYPE_LEN + 8 + 2] ^= 0x10;
        match Container::read_from(&buf[..]) {
            Err(IoError::CrcMismatch { record, .. }) => assert_eq!(record, "meta"),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_corruption_is_also_caught() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Corrupt the type tag of the first record — the CRC covers it.
        buf[12 + 4] ^= 0x01;
        assert!(matches!(
            Container::read_from(&buf[..]),
            Err(IoError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        for cut in [5, 10, 13, 30, 50, buf.len() - 1] {
            let r = Container::read_from(&buf[..cut]);
            assert!(
                matches!(r, Err(IoError::Truncated { .. })),
                "cut at {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn lost_framing_is_a_bad_record_mark() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Insert a stray byte between two records: the second record's
        // header no longer starts with the mark.
        let first_len = 4 + TYPE_LEN + 8 + 9 + 4;
        buf.insert(12 + first_len, 0xAB);
        match Container::read_from(&buf[..]) {
            Err(IoError::BadRecordMark { offset }) => assert_eq!(offset, first_len as u64),
            other => panic!("expected BadRecordMark, got {other:?}"),
        }
    }

    #[test]
    fn find_and_expect() {
        let c = sample();
        assert!(c.find("payload.a").is_some());
        assert!(c.find("absent").is_none());
        assert!(matches!(
            c.expect("absent"),
            Err(IoError::MissingRecord { .. })
        ));
    }

    #[test]
    fn record_crc_matches_the_stored_checksum() {
        let r = Record::new("meta", b"hello".to_vec());
        let mut c = Container::new();
        c.push(r.clone());
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        assert_eq!(stored, record_crc(&r));
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("qcd-io-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.qio");
        let c = sample();
        c.write_atomic(&path).unwrap();
        // Overwrite with different content: reader must see one or the other,
        // and afterwards exactly the new one.
        let mut c2 = Container::new();
        c2.push(Record::new("meta", b"second".to_vec()));
        c2.write_atomic(&path).unwrap();
        let back = Container::open(&path).unwrap();
        assert_eq!(back.records, c2.records);
        assert!(
            !dir.join("cfg.qio.tmp").exists(),
            "temporary file must not survive"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
