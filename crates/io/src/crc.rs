//! CRC-32 (IEEE 802.3) implemented in-crate.
//!
//! The container format checks every record payload against a CRC so that
//! bit corruption — on disk, in transit, or from a torn write — surfaces as
//! a typed error instead of silently wrong physics. This is the same
//! polynomial LIME/SciDAC configuration files use, in its reflected
//! table-driven form: polynomial `0xEDB88320`, initial value `0xFFFFFFFF`,
//! final XOR `0xFFFFFFFF`.

/// Reflected CRC-32 polynomial (IEEE 802.3 / zlib / LIME).
const POLY: u32 = 0xEDB8_8320;

/// Build the 256-entry byte table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 accumulator.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 31 % 251) as u8).collect();
        let base = crc32(&data);
        for (byte, bit) in [(0usize, 0u8), (17, 3), (511, 7), (255, 5)] {
            let mut corrupted = data.clone();
            corrupted[byte] ^= 1 << bit;
            assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
        }
    }

    #[test]
    fn zlib_style_vectors() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
