//! Lattice field records: metadata, payload encoding, and validated loads.
//!
//! A field file is a container holding a `meta` record (grid geometry,
//! vector length, storage precision, field kind, and — for gauge fields —
//! the average plaquette at write time) followed by a `field` record with
//! the scalar payload. Scalars are serialized in **global lexicographic
//! site order** via [`Field::peek`]/[`Field::poke`], which makes the format
//! independent of the in-memory virtual-node layout: a configuration
//! written on 512-bit SVE silicon loads bit-for-bit on a 128-bit machine.
//!
//! The payload runs through the shared [`grid::codec`] precision path, so a
//! file stored at binary16 rounds scalars exactly like the halo-exchange
//! wire compression does.

use crate::container::{Container, Record};
use crate::error::{IoError, Result};
use grid::codec::{decode_f64s, encode_f64s, Precision};
use grid::gauge::average_plaquette;
use grid::rng::StreamRng;
use grid::{Complex, Coor, Field, FieldKind, GaugeField, Grid};
use std::path::Path;
use std::sync::Arc;
use sve::SveFloat;

/// Record type of the metadata record in field files.
pub const META_RECORD: &str = "meta";
/// Record type of the scalar payload record in field files.
pub const FIELD_RECORD: &str = "field";
/// Record type of a serialized [`StreamRng`] state.
pub const RNG_RECORD: &str = "rng";

/// Everything needed to validate and decode a field payload.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldMeta {
    /// Global lattice extent per dimension.
    pub dims: Coor,
    /// SVE vector length (bits) of the writing machine — provenance only;
    /// the payload is layout-independent.
    pub vl_bits: u64,
    /// On-disk scalar precision.
    pub precision: Precision,
    /// Field kind name ([`FieldKind::NAME`]).
    pub kind: String,
    /// Complex components per site ([`FieldKind::NCOMP`]).
    pub ncomp: u64,
    /// Average plaquette of the gauge field at write time, for physics
    /// validation on load. `None` for non-gauge fields.
    pub plaquette: Option<f64>,
}

impl FieldMeta {
    /// Metadata describing `f` stored at `precision`.
    pub fn of<K: FieldKind, E: SveFloat>(f: &Field<K, E>, precision: Precision) -> Self {
        FieldMeta {
            dims: f.grid().fdims(),
            vl_bits: f.grid().vl().bits() as u64,
            precision,
            kind: K::NAME.to_string(),
            ncomp: K::NCOMP as u64,
            plaquette: None,
        }
    }

    /// Binary encoding (all little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for d in self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&self.vl_bits.to_le_bytes());
        out.push(self.precision.tag());
        out.extend_from_slice(&self.ncomp.to_le_bytes());
        out.extend_from_slice(&(self.kind.len() as u16).to_le_bytes());
        out.extend_from_slice(self.kind.as_bytes());
        match self.plaquette {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Decode from a `meta` record payload; malformed bytes are a typed
    /// [`IoError::BadRecord`] attributed to `record`.
    pub fn decode(bytes: &[u8], record: &str) -> Result<Self> {
        let mut cur = Cursor::new(bytes, record);
        let mut dims = [0usize; 4];
        for d in &mut dims {
            *d = cur.u64("lattice dimension")? as usize;
        }
        let vl_bits = cur.u64("vector length")?;
        let tag = cur.u8("precision tag")?;
        let precision = Precision::from_tag(tag).ok_or_else(|| IoError::BadRecord {
            record: record.to_string(),
            msg: format!("unknown precision tag {tag}"),
        })?;
        let ncomp = cur.u64("component count")?;
        let kind_len = cur.u16("kind length")? as usize;
        let kind_bytes = cur.bytes(kind_len, "kind name")?;
        let kind = String::from_utf8(kind_bytes.to_vec()).map_err(|_| IoError::BadRecord {
            record: record.to_string(),
            msg: "kind name is not UTF-8".to_string(),
        })?;
        let plaquette = match cur.u8("plaquette flag")? {
            0 => None,
            1 => Some(f64::from_bits(cur.u64("plaquette")?)),
            f => {
                return Err(IoError::BadRecord {
                    record: record.to_string(),
                    msg: format!("unknown plaquette flag {f}"),
                })
            }
        };
        cur.done()?;
        Ok(FieldMeta {
            dims,
            vl_bits,
            precision,
            kind,
            ncomp,
            plaquette,
        })
    }

    /// Human-readable geometry string used in mismatch errors.
    pub fn geometry(&self) -> String {
        format!("{:?} (written at VL{})", self.dims, self.vl_bits)
    }
}

/// A bounds-checked little-endian byte cursor with record-attributed errors.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    record: &'a str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8], record: &'a str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            record,
        }
    }

    pub(crate) fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(IoError::BadRecord {
                record: self.record.to_string(),
                msg: format!("payload too short for {what}"),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.bytes(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.bytes(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn done(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(IoError::BadRecord {
                record: self.record.to_string(),
                msg: format!(
                    "{} trailing bytes after the last field",
                    self.bytes.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Serialize a field's scalars in global lexicographic site order at the
/// requested precision.
pub fn encode_field<K: FieldKind, E: SveFloat>(f: &Field<K, E>, precision: Precision) -> Vec<u8> {
    let grid = f.grid();
    let mut scalars = Vec::with_capacity(grid.volume() * K::NCOMP * 2);
    for x in grid.coords() {
        for comp in 0..K::NCOMP {
            let z = f.peek(&x, comp);
            scalars.push(z.re);
            scalars.push(z.im);
        }
    }
    encode_f64s(&scalars, precision)
}

/// Decode a field payload into a field on `grid`, validating the metadata
/// against the target first. The file's vector length may differ from the
/// grid's — the payload is layout-independent.
pub fn decode_field<K: FieldKind, E: SveFloat>(
    meta: &FieldMeta,
    payload: &[u8],
    grid: &Arc<Grid<E>>,
    record: &str,
) -> Result<Field<K, E>> {
    if meta.kind != K::NAME {
        return Err(IoError::KindMismatch {
            want: K::NAME.to_string(),
            found: meta.kind.clone(),
        });
    }
    if meta.ncomp != K::NCOMP as u64 {
        return Err(IoError::BadRecord {
            record: record.to_string(),
            msg: format!(
                "{} components per site, but kind '{}' has {}",
                meta.ncomp,
                K::NAME,
                K::NCOMP
            ),
        });
    }
    if meta.dims != grid.fdims() {
        return Err(IoError::GridMismatch {
            want: format!("{:?}", grid.fdims()),
            found: meta.geometry(),
        });
    }
    let scalars = decode_f64s(payload, meta.precision)?;
    let want = grid.volume() * K::NCOMP * 2;
    if scalars.len() != want {
        return Err(IoError::BadRecord {
            record: record.to_string(),
            msg: format!("{} scalars in payload, lattice needs {want}", scalars.len()),
        });
    }
    let mut f = Field::<K, E>::zero(grid.clone());
    let mut i = 0;
    for x in grid.coords() {
        for comp in 0..K::NCOMP {
            f.poke(
                &x,
                comp,
                Complex {
                    re: scalars[i],
                    im: scalars[i + 1],
                },
            );
            i += 2;
        }
    }
    Ok(f)
}

/// Build the two records (`meta`, `field`) describing `f`.
pub fn field_records<K: FieldKind, E: SveFloat>(
    f: &Field<K, E>,
    precision: Precision,
) -> (Record, Record) {
    let meta = FieldMeta::of(f, precision);
    (
        Record::new(META_RECORD, meta.encode()),
        Record::new(FIELD_RECORD, encode_field(f, precision)),
    )
}

/// Write a field to `path` atomically at the chosen on-disk precision.
pub fn write_field<K: FieldKind, E: SveFloat>(
    f: &Field<K, E>,
    path: &Path,
    precision: Precision,
) -> Result<u64> {
    let (meta, payload) = field_records(f, precision);
    let mut c = Container::new();
    c.push(meta);
    c.push(payload);
    c.write_atomic(path)
}

/// Read a field written by [`write_field`] into a field on `grid`.
pub fn read_field<K: FieldKind, E: SveFloat>(
    path: &Path,
    grid: &Arc<Grid<E>>,
) -> Result<Field<K, E>> {
    let c = Container::open(path)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    decode_field(&meta, &c.expect(FIELD_RECORD)?.payload, grid, FIELD_RECORD)
}

/// Plaquette agreement tolerance for a storage precision: lossless for
/// f64 up to peek/poke rounding, then scaled to the per-scalar rounding
/// error amplified by the plaquette's products of link matrices.
pub fn plaquette_tolerance(precision: Precision) -> f64 {
    match precision {
        Precision::F64 => 1e-11,
        Precision::F32 => 1e-5,
        Precision::F16 => 0.03,
    }
}

/// Write a gauge configuration with its average plaquette in the metadata,
/// enabling physics-level validation on load.
pub fn write_gauge(u: &GaugeField, path: &Path, precision: Precision) -> Result<u64> {
    let mut meta = FieldMeta::of(u, precision);
    meta.plaquette = Some(average_plaquette(u));
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(FIELD_RECORD, encode_field(u, precision)));
    c.write_atomic(path)
}

/// Read a gauge configuration and validate its plaquette against the value
/// stored at write time (under an `io.validate` span). Detects corruption
/// that slips past the CRC layer — e.g. a file assembled from records of
/// two different configurations.
pub fn read_gauge(path: &Path, grid: &Arc<Grid<f64>>) -> Result<GaugeField> {
    // `Container::open` records its own failures; this wrapper catches the
    // post-open classes (missing records, decode failures, physics
    // validation) without double-recording transport errors.
    let c = Container::open(path)?;
    read_gauge_inner(&c, grid).inspect_err(crate::record_io_error)
}

fn read_gauge_inner(c: &Container, grid: &Arc<Grid<f64>>) -> Result<GaugeField> {
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let u = decode_field(&meta, &c.expect(FIELD_RECORD)?.payload, grid, FIELD_RECORD)?;
    if let Some(stored) = meta.plaquette {
        let _span = qcd_trace::span!("io.validate", grid.engine().ctx());
        let computed = average_plaquette(&u);
        let tolerance = plaquette_tolerance(meta.precision);
        if (computed - stored).abs() > tolerance {
            return Err(IoError::PlaquetteMismatch {
                stored,
                computed,
                tolerance,
            });
        }
    }
    Ok(u)
}

/// Serialize a [`StreamRng`] state into a record (seed, then draw counter).
pub fn rng_record(rng: &StreamRng) -> Record {
    let (seed, counter) = rng.state();
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&seed.to_le_bytes());
    payload.extend_from_slice(&counter.to_le_bytes());
    Record::new(RNG_RECORD, payload)
}

/// Restore a [`StreamRng`] from its record.
pub fn rng_from_record(record: &Record) -> Result<StreamRng> {
    let mut cur = Cursor::new(&record.payload, RNG_RECORD);
    let seed = cur.u64("seed")?;
    let counter = cur.u64("draw counter")?;
    cur.done()?;
    Ok(StreamRng::from_state(seed, counter))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        for plaquette in [None, Some(0.587_432_109_876)] {
            let meta = FieldMeta {
                dims: [4, 4, 8, 16],
                vl_bits: 512,
                precision: Precision::F16,
                kind: "SU(3) gauge links".to_string(),
                ncomp: 36,
                plaquette,
            };
            let back = FieldMeta::decode(&meta.encode(), "meta").unwrap();
            assert_eq!(back, meta);
        }
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(matches!(
            FieldMeta::decode(&[1, 2, 3], "meta"),
            Err(IoError::BadRecord { .. })
        ));
        let meta = FieldMeta {
            dims: [4, 4, 4, 4],
            vl_bits: 128,
            precision: Precision::F64,
            kind: "x".to_string(),
            ncomp: 1,
            plaquette: None,
        };
        let mut bytes = meta.encode();
        bytes.push(0xFF); // trailing byte
        assert!(matches!(
            FieldMeta::decode(&bytes, "meta"),
            Err(IoError::BadRecord { .. })
        ));
        let mut bytes = meta.encode();
        let tag_at = 4 * 8 + 8;
        bytes[tag_at] = 77; // unknown precision tag
        assert!(matches!(
            FieldMeta::decode(&bytes, "meta"),
            Err(IoError::BadRecord { .. })
        ));
    }

    #[test]
    fn rng_record_round_trips() {
        let mut rng = StreamRng::new(0xC0FFEE);
        for _ in 0..37 {
            rng.next_u64();
        }
        let restored = rng_from_record(&rng_record(&rng)).unwrap();
        assert_eq!(restored.state(), rng.state());
    }
}
