//! Solver checkpoints: snapshot an in-flight Krylov solve, kill the
//! process, restore, and converge to the *same* residual.
//!
//! The invariant the format guarantees is bit-exactness of the restored
//! state: field iterates are stored at [`Precision::F64`] (lossless through
//! `peek`/`poke`), and recurrence scalars (`r2`, `b_norm2`, `rho`, the
//! residual history) are stored as raw IEEE-754 bit patterns, never through
//! a decimal round trip. A resumed Conjugate Gradient therefore produces
//! the identical iteration sequence the uninterrupted solve would have —
//! the resume-equivalence tests compare final residual *bits*.
//!
//! Three solvers checkpoint, with per-solver record sets:
//!
//! * CG ([`CgState`]): `cg.scalars` + fields `cg.x`, `cg.r`, `cg.p`.
//! * BiCGStab ([`BicgStabState`]): `bi.scalars` + fields `bi.x`, `bi.r`,
//!   `bi.r0`, `bi.p`.
//! * Mixed precision: `mx.scalars` + field `mx.x` — defect correction is
//!   self-correcting, so the double-precision iterate alone is a complete
//!   checkpoint.

use crate::container::{Container, Record};
use crate::error::{IoError, Result};
use crate::fields::{decode_field, encode_field, Cursor, FieldMeta, META_RECORD};
use grid::codec::Precision;
use grid::prelude::{
    block_cg_ws_from_state, cg_op_from_state, BicgStabState, BlockCgState, BlockSolveReport,
    BlockWorkspace, CgState, SolveReport, WilsonDirac,
};
use grid::solver::bicgstab_from_state;
use grid::{Complex, FermionBlock, FermionField, Grid};
use std::path::Path;
use std::sync::Arc;

/// Record holding the CG recurrence scalars.
pub const CG_SCALARS: &str = "cg.scalars";
/// Record holding the BiCGStab recurrence scalars.
pub const BI_SCALARS: &str = "bi.scalars";
/// Record holding the mixed-precision outer-loop counters.
pub const MX_SCALARS: &str = "mx.scalars";
/// Record holding the block-CG recurrence scalars (all right-hand sides).
pub const BLK_SCALARS: &str = "blk.scalars";

fn push_f64_bits(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn push_history(out: &mut Vec<u8>, history: &[f64]) {
    out.extend_from_slice(&(history.len() as u64).to_le_bytes());
    for &h in history {
        push_f64_bits(out, h);
    }
}

fn read_history(cur: &mut Cursor<'_>) -> Result<Vec<f64>> {
    let n = cur.u64("history length")? as usize;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        history.push(f64::from_bits(cur.u64("history entry")?));
    }
    Ok(history)
}

fn field_record(name: &str, f: &FermionField) -> Record {
    Record::new(name, encode_field(f, Precision::F64))
}

fn load_field(
    c: &Container,
    meta: &FieldMeta,
    name: &str,
    grid: &Arc<Grid<f64>>,
) -> Result<FermionField> {
    decode_field(meta, &c.expect(name)?.payload, grid, name)
}

/// Snapshot an in-flight CG solve to `path` (atomic write).
pub fn save_cg(state: &CgState, path: &Path) -> Result<u64> {
    let meta = FieldMeta::of(&state.x, Precision::F64);
    let mut scalars = Vec::new();
    scalars.extend_from_slice(&(state.iterations as u64).to_le_bytes());
    push_f64_bits(&mut scalars, state.r2);
    push_f64_bits(&mut scalars, state.b_norm2);
    push_history(&mut scalars, &state.history);
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(CG_SCALARS, scalars));
    c.push(field_record("cg.x", &state.x));
    c.push(field_record("cg.r", &state.r));
    c.push(field_record("cg.p", &state.p));
    c.write_atomic(path)
}

/// Restore a CG snapshot written by [`save_cg`] onto `grid`.
pub fn load_cg(path: &Path, grid: &Arc<Grid<f64>>) -> Result<CgState> {
    let c = Container::open(path)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let scalars = &c.expect(CG_SCALARS)?.payload;
    let mut cur = Cursor::new(scalars, CG_SCALARS);
    let iterations = cur.u64("iteration count")? as usize;
    let r2 = f64::from_bits(cur.u64("r2")?);
    let b_norm2 = f64::from_bits(cur.u64("b_norm2")?);
    let history = read_history(&mut cur)?;
    cur.done()?;
    Ok(CgState {
        x: load_field(&c, &meta, "cg.x", grid)?,
        r: load_field(&c, &meta, "cg.r", grid)?,
        p: load_field(&c, &meta, "cg.p", grid)?,
        r2,
        b_norm2,
        iterations,
        history,
    })
}

/// Snapshot an in-flight BiCGStab solve to `path` (atomic write).
pub fn save_bicgstab(state: &BicgStabState, path: &Path) -> Result<u64> {
    let meta = FieldMeta::of(&state.x, Precision::F64);
    let mut scalars = Vec::new();
    scalars.extend_from_slice(&(state.iterations as u64).to_le_bytes());
    push_f64_bits(&mut scalars, state.rho.re);
    push_f64_bits(&mut scalars, state.rho.im);
    push_f64_bits(&mut scalars, state.b_norm2);
    push_history(&mut scalars, &state.history);
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(BI_SCALARS, scalars));
    c.push(field_record("bi.x", &state.x));
    c.push(field_record("bi.r", &state.r));
    c.push(field_record("bi.r0", &state.r0));
    c.push(field_record("bi.p", &state.p));
    c.write_atomic(path)
}

/// Restore a BiCGStab snapshot written by [`save_bicgstab`] onto `grid`.
pub fn load_bicgstab(path: &Path, grid: &Arc<Grid<f64>>) -> Result<BicgStabState> {
    let c = Container::open(path)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let scalars = &c.expect(BI_SCALARS)?.payload;
    let mut cur = Cursor::new(scalars, BI_SCALARS);
    let iterations = cur.u64("iteration count")? as usize;
    let rho = Complex {
        re: f64::from_bits(cur.u64("rho.re")?),
        im: f64::from_bits(cur.u64("rho.im")?),
    };
    let b_norm2 = f64::from_bits(cur.u64("b_norm2")?);
    let history = read_history(&mut cur)?;
    cur.done()?;
    Ok(BicgStabState {
        x: load_field(&c, &meta, "bi.x", grid)?,
        r: load_field(&c, &meta, "bi.r", grid)?,
        r0: load_field(&c, &meta, "bi.r0", grid)?,
        p: load_field(&c, &meta, "bi.p", grid)?,
        rho,
        b_norm2,
        iterations,
        history,
    })
}

/// Checkpoint of a mixed-precision defect-correction solve: the current
/// double-precision iterate plus progress counters.
#[derive(Clone)]
pub struct MixedCheckpoint {
    /// The double-precision iterate — a complete restart point, because the
    /// outer loop recomputes the defect from scratch each round.
    pub x: FermionField,
    /// Outer correction rounds completed before the snapshot.
    pub outer_done: usize,
    /// Inner single-precision iterations spent before the snapshot.
    pub inner_done: usize,
}

/// Snapshot a mixed-precision solve to `path` (atomic write).
pub fn save_mixed(ck: &MixedCheckpoint, path: &Path) -> Result<u64> {
    let meta = FieldMeta::of(&ck.x, Precision::F64);
    let mut scalars = Vec::new();
    scalars.extend_from_slice(&(ck.outer_done as u64).to_le_bytes());
    scalars.extend_from_slice(&(ck.inner_done as u64).to_le_bytes());
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(MX_SCALARS, scalars));
    c.push(field_record("mx.x", &ck.x));
    c.write_atomic(path)
}

/// Restore a mixed-precision snapshot written by [`save_mixed`].
pub fn load_mixed(path: &Path, grid: &Arc<Grid<f64>>) -> Result<MixedCheckpoint> {
    let c = Container::open(path)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let scalars = &c.expect(MX_SCALARS)?.payload;
    let mut cur = Cursor::new(scalars, MX_SCALARS);
    let outer_done = cur.u64("outer rounds")? as usize;
    let inner_done = cur.u64("inner iterations")? as usize;
    cur.done()?;
    Ok(MixedCheckpoint {
        x: load_field(&c, &meta, "mx.x", grid)?,
        outer_done,
        inner_done,
    })
}

/// Snapshot an in-flight block CG solve to `path` (atomic write). The
/// per-RHS recurrence scalars go to [`BLK_SCALARS`] as raw IEEE-754 bits;
/// the three block iterates are stored one field record per right-hand
/// side (`blk.x.<i>`, `blk.r.<i>`, `blk.p.<i>`), so the on-disk format
/// stays portable across vector lengths like every other field record.
pub fn save_block_cg(state: &BlockCgState, path: &Path) -> Result<u64> {
    let nrhs = state.nrhs();
    let meta = FieldMeta::of(&state.x.rhs_field(0), Precision::F64);
    let mut scalars = Vec::new();
    scalars.extend_from_slice(&(nrhs as u64).to_le_bytes());
    for j in 0..nrhs {
        scalars.extend_from_slice(&(state.iterations[j] as u64).to_le_bytes());
        push_f64_bits(&mut scalars, state.r2[j]);
        push_f64_bits(&mut scalars, state.b_norm2[j]);
        push_history(&mut scalars, &state.histories[j]);
    }
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(Record::new(BLK_SCALARS, scalars));
    for j in 0..nrhs {
        c.push(field_record(&format!("blk.x.{j}"), &state.x.rhs_field(j)));
        c.push(field_record(&format!("blk.r.{j}"), &state.r.rhs_field(j)));
        c.push(field_record(&format!("blk.p.{j}"), &state.p.rhs_field(j)));
    }
    c.write_atomic(path)
}

/// Restore a block CG snapshot written by [`save_block_cg`] onto `grid`.
pub fn load_block_cg(path: &Path, grid: &Arc<Grid<f64>>) -> Result<BlockCgState> {
    let c = Container::open(path)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let scalars = &c.expect(BLK_SCALARS)?.payload;
    let mut cur = Cursor::new(scalars, BLK_SCALARS);
    let nrhs = cur.u64("RHS count")? as usize;
    if nrhs == 0 {
        return Err(IoError::BadRecord {
            record: BLK_SCALARS.to_string(),
            msg: "a block checkpoint needs at least one right-hand side".to_string(),
        });
    }
    let mut iterations = Vec::with_capacity(nrhs);
    let mut r2 = Vec::with_capacity(nrhs);
    let mut b_norm2 = Vec::with_capacity(nrhs);
    let mut histories = Vec::with_capacity(nrhs);
    for _ in 0..nrhs {
        iterations.push(cur.u64("iteration count")? as usize);
        r2.push(f64::from_bits(cur.u64("r2")?));
        b_norm2.push(f64::from_bits(cur.u64("b_norm2")?));
        histories.push(read_history(&mut cur)?);
    }
    cur.done()?;
    let load_block = |stem: &str| -> Result<FermionBlock> {
        let fields = (0..nrhs)
            .map(|j| load_field(&c, &meta, &format!("{stem}.{j}"), grid))
            .collect::<Result<Vec<_>>>()?;
        Ok(FermionBlock::from_fields(&fields))
    };
    Ok(BlockCgState {
        x: load_block("blk.x")?,
        r: load_block("blk.r")?,
        p: load_block("blk.p")?,
        r2,
        b_norm2,
        iterations,
        histories,
    })
}

/// Step the block CG recurrence to convergence, writing an atomic snapshot
/// every `every` outer iterations. The restored run replays the identical
/// per-RHS iteration sequence the uninterrupted solve would have — the
/// active mask is *derived* from the checkpointed per-RHS scalars, so
/// convergence masking survives the round trip bit-exactly. Entry point
/// for both cold starts and resumes — pass either `BlockCgState::new(b)`
/// or a state from [`load_block_cg`].
pub fn block_cg_checkpointed_from(
    op: &WilsonDirac,
    b: &FermionBlock,
    mut state: BlockCgState,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionBlock, BlockSolveReport, usize)> {
    assert!(every > 0, "checkpoint interval must be positive");
    for (j, (&stored, recomputed)) in state.b_norm2.iter().zip(b.norms2()).enumerate() {
        if recomputed.to_bits() != stored.to_bits() {
            return Err(IoError::BadRecord {
                record: BLK_SCALARS.to_string(),
                msg: format!(
                    "right-hand side {j} does not match the checkpoint \
                     (|b|² {recomputed} vs stored {stored})"
                ),
            });
        }
    }
    let mut ws = BlockWorkspace::new(b.grid().clone(), b.nrhs());
    let mut apply = |p: &FermionBlock, ws: &mut BlockWorkspace| {
        let BlockWorkspace { tmp, ap, .. } = ws;
        op.mdag_m_block_into_dot(p, tmp, ap)
    };
    let mut snapshots = 0;
    let mut steps = 0usize;
    loop {
        let active = state.active(tol, max_iter);
        if !active.iter().any(|&a| a) {
            break;
        }
        state.step_ws(&mut ws, &mut apply, &active);
        steps += 1;
        if steps.is_multiple_of(every) {
            save_block_cg(&state, path)?;
            snapshots += 1;
        }
    }
    // Zero further iterations happen here; this builds the per-RHS report
    // with the true-residual check.
    let (x, report) = block_cg_ws_from_state(&mut apply, b, &mut ws, state, tol, max_iter);
    Ok((x, report, snapshots))
}

/// [`block_cg_checkpointed_from`] starting from the zero initial guess.
pub fn block_cg_checkpointed(
    op: &WilsonDirac,
    b: &FermionBlock,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionBlock, BlockSolveReport, usize)> {
    block_cg_checkpointed_from(op, b, BlockCgState::new(b), tol, max_iter, every, path)
}

/// Resume a block CG solve from the snapshot at `path` and run it to
/// convergence, continuing to checkpoint every `every` iterations.
pub fn resume_block_cg(
    op: &WilsonDirac,
    b: &FermionBlock,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionBlock, BlockSolveReport, usize)> {
    let state = load_block_cg(path, b.grid())?;
    block_cg_checkpointed_from(op, b, state, tol, max_iter, every, path)
}

/// Check that a resumed solve is continuing against the same right-hand
/// side it was checkpointed with: `|b|²` is recomputed deterministically,
/// so the bits must match exactly.
fn validate_rhs(stored_b_norm2: f64, b: &FermionField, record: &str) -> Result<()> {
    if b.norm2().to_bits() != stored_b_norm2.to_bits() {
        return Err(IoError::BadRecord {
            record: record.to_string(),
            msg: format!(
                "right-hand side does not match the checkpoint (|b|² {} vs stored {})",
                b.norm2(),
                stored_b_norm2
            ),
        });
    }
    Ok(())
}

/// Step the CG recurrence to convergence, writing an atomic snapshot every
/// `every` iterations. Returns the snapshot count alongside the usual
/// solve result. Entry point for both cold starts and resumes — pass
/// either `CgState::new(b)` or a state from [`load_cg`].
pub fn cg_checkpointed_from(
    apply: impl Fn(&FermionField) -> FermionField,
    b: &FermionField,
    mut state: CgState,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionField, SolveReport, usize)> {
    assert!(every > 0, "checkpoint interval must be positive");
    validate_rhs(state.b_norm2, b, CG_SCALARS)?;
    let mut snapshots = 0;
    while state.iterations < max_iter && !state.converged(tol) {
        state.step(&apply);
        if state.iterations % every == 0 {
            save_cg(&state, path)?;
            snapshots += 1;
        }
    }
    // Zero further iterations happen here; this builds the report with the
    // true-residual check.
    let (x, report) = cg_op_from_state(&apply, b, state, tol, max_iter);
    Ok((x, report, snapshots))
}

/// [`cg_checkpointed_from`] starting from the zero initial guess.
pub fn cg_checkpointed(
    apply: impl Fn(&FermionField) -> FermionField,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionField, SolveReport, usize)> {
    cg_checkpointed_from(&apply, b, CgState::new(b), tol, max_iter, every, path)
}

/// Resume a CG solve from the snapshot at `path` and run it to
/// convergence, continuing to checkpoint every `every` iterations.
pub fn resume_cg(
    apply: impl Fn(&FermionField) -> FermionField,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionField, SolveReport, usize)> {
    let state = load_cg(path, b.grid())?;
    cg_checkpointed_from(apply, b, state, tol, max_iter, every, path)
}

/// BiCGStab analogue of [`cg_checkpointed_from`].
pub fn bicgstab_checkpointed_from(
    op: &WilsonDirac,
    b: &FermionField,
    mut state: BicgStabState,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionField, SolveReport, usize)> {
    assert!(every > 0, "checkpoint interval must be positive");
    validate_rhs(state.b_norm2, b, BI_SCALARS)?;
    let mut snapshots = 0;
    while state.iterations < max_iter && !state.converged(tol) {
        state.step(|f| op.apply(f));
        if state.iterations.is_multiple_of(every) {
            save_bicgstab(&state, path)?;
            snapshots += 1;
        }
    }
    let (x, report) = bicgstab_from_state(op, b, state, tol, max_iter);
    Ok((x, report, snapshots))
}

/// Resume a BiCGStab solve from the snapshot at `path`.
pub fn resume_bicgstab(
    op: &WilsonDirac,
    b: &FermionField,
    tol: f64,
    max_iter: usize,
    every: usize,
    path: &Path,
) -> Result<(FermionField, SolveReport, usize)> {
    let state = load_bicgstab(path, b.grid())?;
    bicgstab_checkpointed_from(op, b, state, tol, max_iter, every, path)
}
