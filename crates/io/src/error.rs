//! Typed error surface of the checkpoint subsystem.
//!
//! Every failure mode a reader or writer can hit — OS errors, corrupted
//! headers, cut-off files, CRC mismatches, physically implausible content —
//! maps to a distinct [`IoError`] variant. Readers never panic on malformed
//! input and never hand back silently wrong data: the fault-injection tests
//! drive every corruption class through this enum.

use grid::codec::CodecError;
use std::fmt;

/// Any error the qcd-io readers and writers can produce.
#[derive(Debug)]
pub enum IoError {
    /// An operating-system level I/O failure (open, read, write, fsync,
    /// rename).
    Io(std::io::Error),
    /// The file does not start with the `qcd-io/v1` magic bytes.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The container declares a format version this reader does not speak.
    UnsupportedVersion(u32),
    /// A record boundary did not carry the record mark — the stream lost
    /// framing (overwritten, shifted, or interleaved bytes).
    BadRecordMark {
        /// Byte offset of the failed record header, relative to the start
        /// of the record stream.
        offset: u64,
    },
    /// The stream ended in the middle of a record header or payload.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A record's stored CRC-32 does not match the checksum of its bytes.
    CrcMismatch {
        /// Type name of the damaged record.
        record: String,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed from the record bytes.
        computed: u32,
    },
    /// A record passed its CRC but its payload does not parse as the
    /// declared type.
    BadRecord {
        /// Type name of the malformed record.
        record: String,
        /// What is wrong with it.
        msg: String,
    },
    /// A record the operation requires is absent from the container.
    MissingRecord {
        /// Type name of the record that was expected.
        record: String,
    },
    /// The file's lattice geometry does not match the target grid.
    GridMismatch {
        /// Geometry of the grid the caller wants to load into.
        want: String,
        /// Geometry recorded in the file.
        found: String,
    },
    /// The file stores a different field kind than the one requested
    /// (e.g. reading gauge links into a fermion field).
    KindMismatch {
        /// Kind the caller asked for.
        want: String,
        /// Kind recorded in the file.
        found: String,
    },
    /// Physics validation failed: the plaquette recomputed from the loaded
    /// gauge field disagrees with the value stored at write time beyond the
    /// precision's tolerance.
    PlaquetteMismatch {
        /// Plaquette stored in the metadata record.
        stored: f64,
        /// Plaquette recomputed from the loaded links.
        computed: f64,
        /// Tolerance allowed for the file's storage precision.
        tolerance: f64,
    },
    /// Physics validation failed: a stored operator parameter (e.g. the
    /// Wilson mass a deflation subspace was built at) does not match the
    /// operator the caller wants to use the data with. Comparison is exact
    /// (bit-level): a subspace deflates `M†M(mass)` and nothing else.
    MassMismatch {
        /// Mass of the operator the caller is solving with.
        want: f64,
        /// Mass recorded in the file.
        found: f64,
    },
    /// A scalar-stream decode failure from the shared precision codec.
    Codec(CodecError),
}

impl IoError {
    /// Stable variant tag for telemetry: the flight recorder labels
    /// `io.error` events with this name so dumps can be grepped by failure
    /// class without parsing the human-readable message.
    pub fn variant_name(&self) -> &'static str {
        match self {
            IoError::Io(_) => "io",
            IoError::BadMagic { .. } => "bad_magic",
            IoError::UnsupportedVersion(_) => "unsupported_version",
            IoError::BadRecordMark { .. } => "bad_record_mark",
            IoError::Truncated { .. } => "truncated",
            IoError::CrcMismatch { .. } => "crc_mismatch",
            IoError::BadRecord { .. } => "bad_record",
            IoError::MissingRecord { .. } => "missing_record",
            IoError::GridMismatch { .. } => "grid_mismatch",
            IoError::KindMismatch { .. } => "kind_mismatch",
            IoError::PlaquetteMismatch { .. } => "plaquette_mismatch",
            IoError::MassMismatch { .. } => "mass_mismatch",
            IoError::Codec(_) => "codec",
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::BadMagic { found } => {
                write!(f, "not a qcd-io container: magic bytes {found:02x?}")
            }
            IoError::UnsupportedVersion(v) => {
                write!(f, "unsupported qcd-io container version {v}")
            }
            IoError::BadRecordMark { offset } => {
                write!(f, "record framing lost at stream offset {offset}")
            }
            IoError::Truncated { context } => {
                write!(f, "container truncated while reading {context}")
            }
            IoError::CrcMismatch {
                record,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in record '{record}': stored {stored:#010x}, computed {computed:#010x}"
            ),
            IoError::BadRecord { record, msg } => {
                write!(f, "malformed record '{record}': {msg}")
            }
            IoError::MissingRecord { record } => {
                write!(f, "required record '{record}' not present in container")
            }
            IoError::GridMismatch { want, found } => {
                write!(f, "grid mismatch: want {want}, file has {found}")
            }
            IoError::KindMismatch { want, found } => {
                write!(f, "field kind mismatch: want {want}, file has {found}")
            }
            IoError::PlaquetteMismatch {
                stored,
                computed,
                tolerance,
            } => write!(
                f,
                "plaquette validation failed: stored {stored:.12}, recomputed {computed:.12}, tolerance {tolerance:e}"
            ),
            IoError::MassMismatch { want, found } => {
                write!(
                    f,
                    "operator mass mismatch: solving at {want:.12}, file built at {found:.12}"
                )
            }
            IoError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<CodecError> for IoError {
    fn from(e: CodecError) -> Self {
        IoError::Codec(e)
    }
}

/// Shorthand result type for the whole crate.
pub type Result<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays() {
        let cases: Vec<IoError> = vec![
            IoError::Io(std::io::Error::other("disk on fire")),
            IoError::BadMagic {
                found: *b"GARBAGE!",
            },
            IoError::UnsupportedVersion(42),
            IoError::BadRecordMark { offset: 96 },
            IoError::Truncated {
                context: "record payload".into(),
            },
            IoError::CrcMismatch {
                record: "gauge.field".into(),
                stored: 0xDEADBEEF,
                computed: 0x12345678,
            },
            IoError::BadRecord {
                record: "meta".into(),
                msg: "short header".into(),
            },
            IoError::MissingRecord {
                record: "meta".into(),
            },
            IoError::GridMismatch {
                want: "[4, 4, 4, 4]".into(),
                found: "[8, 8, 8, 8]".into(),
            },
            IoError::KindMismatch {
                want: "SU(3) gauge links".into(),
                found: "spin-color fermion".into(),
            },
            IoError::PlaquetteMismatch {
                stored: 0.5,
                computed: 0.4,
                tolerance: 1e-11,
            },
            IoError::MassMismatch {
                want: 0.1,
                found: 0.2,
            },
            IoError::Codec(CodecError {
                msg: "ragged stream".into(),
            }),
        ];
        let mut names = std::collections::BTreeSet::new();
        for e in cases {
            assert!(!e.to_string().is_empty());
            names.insert(e.variant_name());
        }
        assert_eq!(names.len(), 13, "variant names must be distinct");
    }

    #[test]
    fn io_and_codec_sources_are_chained() {
        let e = IoError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
        let e = IoError::from(CodecError { msg: "bad".into() });
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&IoError::UnsupportedVersion(9)).is_none());
    }
}
