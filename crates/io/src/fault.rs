//! Fault injection for the I/O path.
//!
//! Checkpointing code is only trustworthy if its failure handling has been
//! exercised; real bit rot and torn writes are too rare to test against.
//! [`FaultyWriter`] and [`FaultyReader`] wrap any `Write`/`Read` and inject
//! a chosen [`Fault`] at a byte-exact position, so tests can assert that
//! every corruption class surfaces as the right typed [`IoError`] variant —
//! never a panic, never silently wrong data.

use std::io::{self, Read, Write};

/// A deterministic fault to inject into a byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Flip bit `bit` (0–7) of the byte at stream `offset` — models bit rot
    /// on the medium.
    BitFlip {
        /// Byte position in the stream, counted from 0.
        offset: u64,
        /// Which bit of that byte to invert.
        bit: u8,
    },
    /// Silently stop transferring after `bytes` — models a torn write
    /// (writer) or a file cut short (reader). No error is reported; that is
    /// the point.
    TruncateAfter {
        /// Bytes transferred before the cut.
        bytes: u64,
    },
    /// Return an I/O error once `bytes` have been transferred — models a
    /// device failing mid-operation.
    FailAfter {
        /// Bytes transferred before the failure.
        bytes: u64,
    },
}

/// Kind used for injected [`Fault::FailAfter`] errors, so tests can tell
/// them from genuine OS failures.
pub const INJECTED_ERROR_KIND: io::ErrorKind = io::ErrorKind::BrokenPipe;

fn injected_error(pos: u64) -> io::Error {
    io::Error::new(
        INJECTED_ERROR_KIND,
        format!("injected device failure after {pos} bytes"),
    )
}

/// Apply a bit flip to the slice if the target offset falls inside
/// `[pos, pos + buf.len())`.
fn maybe_flip(buf: &mut [u8], pos: u64, offset: u64, bit: u8) {
    if offset >= pos && offset < pos + buf.len() as u64 {
        buf[(offset - pos) as usize] ^= 1 << (bit & 7);
    }
}

/// A `Write` adapter that injects one [`Fault`] into the outgoing stream.
pub struct FaultyWriter<W: Write> {
    inner: W,
    fault: Fault,
    pos: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wrap `inner`, injecting `fault`.
    pub fn new(inner: W, fault: Fault) -> Self {
        FaultyWriter {
            inner,
            fault,
            pos: 0,
        }
    }

    /// Bytes the caller has written so far (including silently dropped
    /// ones).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwrap the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            Fault::BitFlip { offset, bit } => {
                let mut owned = buf.to_vec();
                maybe_flip(&mut owned, self.pos, offset, bit);
                let n = self.inner.write(&owned)?;
                self.pos += n as u64;
                Ok(n)
            }
            Fault::TruncateAfter { bytes } => {
                let room = bytes.saturating_sub(self.pos).min(buf.len() as u64) as usize;
                if room > 0 {
                    let n = self.inner.write(&buf[..room])?;
                    self.pos += n as u64;
                    if n < room {
                        return Ok(n);
                    }
                }
                // Pretend the remainder landed: a torn write looks like
                // success to the application that made it.
                self.pos += (buf.len() - room) as u64;
                Ok(buf.len())
            }
            Fault::FailAfter { bytes } => {
                if self.pos >= bytes {
                    return Err(injected_error(self.pos));
                }
                let room = (bytes - self.pos).min(buf.len() as u64) as usize;
                let n = self.inner.write(&buf[..room])?;
                self.pos += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that injects one [`Fault`] into the incoming stream.
pub struct FaultyReader<R: Read> {
    inner: R,
    fault: Fault,
    pos: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner`, injecting `fault`.
    pub fn new(inner: R, fault: Fault) -> Self {
        FaultyReader {
            inner,
            fault,
            pos: 0,
        }
    }

    /// Bytes delivered to the caller so far.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.fault {
            Fault::BitFlip { offset, bit } => {
                let n = self.inner.read(buf)?;
                maybe_flip(&mut buf[..n], self.pos, offset, bit);
                self.pos += n as u64;
                Ok(n)
            }
            Fault::TruncateAfter { bytes } => {
                let room = bytes.saturating_sub(self.pos).min(buf.len() as u64) as usize;
                if room == 0 {
                    return Ok(0); // premature, silent end of stream
                }
                let n = self.inner.read(&mut buf[..room])?;
                self.pos += n as u64;
                Ok(n)
            }
            Fault::FailAfter { bytes } => {
                if self.pos >= bytes && !buf.is_empty() {
                    return Err(injected_error(self.pos));
                }
                let room = (bytes - self.pos).min(buf.len() as u64) as usize;
                let n = self.inner.read(&mut buf[..room])?;
                self.pos += n as u64;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        (0..200u8).collect()
    }

    #[test]
    fn bit_flip_writer_flips_exactly_one_bit() {
        let mut w = FaultyWriter::new(
            Vec::new(),
            Fault::BitFlip {
                offset: 130,
                bit: 5,
            },
        );
        // Write in awkward chunks to cross the fault offset.
        for chunk in payload().chunks(7) {
            w.write_all(chunk).unwrap();
        }
        let out = w.into_inner();
        let expect = payload();
        for (i, (a, b)) in out.iter().zip(&expect).enumerate() {
            if i == 130 {
                assert_eq!(*a, b ^ (1 << 5));
            } else {
                assert_eq!(a, b, "byte {i} must be untouched");
            }
        }
    }

    #[test]
    fn truncating_writer_reports_success_but_drops_the_tail() {
        let mut w = FaultyWriter::new(Vec::new(), Fault::TruncateAfter { bytes: 64 });
        w.write_all(&payload()).unwrap(); // no error — a torn write is silent
        assert_eq!(w.position(), 200);
        assert_eq!(w.into_inner(), payload()[..64].to_vec());
    }

    #[test]
    fn failing_writer_errors_at_the_boundary() {
        let mut w = FaultyWriter::new(Vec::new(), Fault::FailAfter { bytes: 50 });
        let err = w.write_all(&payload()).unwrap_err();
        assert_eq!(err.kind(), INJECTED_ERROR_KIND);
        assert_eq!(w.into_inner().len(), 50);
    }

    #[test]
    fn bit_flip_reader_flips_exactly_one_bit() {
        let src = payload();
        let mut r = FaultyReader::new(&src[..], Fault::BitFlip { offset: 3, bit: 0 });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out[3], src[3] ^ 1);
        out[3] = src[3];
        assert_eq!(out, src);
    }

    #[test]
    fn truncating_reader_ends_early_without_error() {
        let src = payload();
        let mut r = FaultyReader::new(&src[..], Fault::TruncateAfter { bytes: 33 });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, src[..33].to_vec());
    }

    #[test]
    fn failing_reader_errors_at_the_boundary() {
        let src = payload();
        let mut r = FaultyReader::new(&src[..], Fault::FailAfter { bytes: 10 });
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), INJECTED_ERROR_KIND);
    }
}
