//! HMC Markov-chain checkpoints: the `qcd-io/v1` record set that lets an
//! ensemble-generation run die at trajectory `k` and resume trajectories
//! `k+1..n` bit-identically to an uninterrupted chain.
//!
//! A chain snapshot is five records in one container:
//!
//! * `meta` / `field` — the gauge links at [`Precision::F64`] (lossless),
//!   with the average plaquette stored in the metadata for physics-level
//!   validation on load (as in [`crate::fields::read_gauge`]).
//! * `hmc.chain` — the chain scalars: coupling and integrator parameters
//!   (raw IEEE-754 bit patterns, never a decimal round trip), the chain
//!   seed, the trajectory index and the accept/reject tallies.
//! * `hmc.history` — the per-trajectory record of the chain so far: `ΔH`
//!   bits and the Metropolis decision for every completed trajectory.
//! * `rng` — the Metropolis [`StreamRng`] cursor (`(seed, counter)` is the
//!   complete RNG state; Gaussian momentum refreshes are keyed off the
//!   trajectory index and need no stored state at all).
//!
//! Consistency is validated on load: the tallies must sum to the trajectory
//! index and the histories must have exactly one entry per trajectory, so a
//! container stitched together from two different runs is rejected even
//! when every individual record passes its CRC.

use crate::container::{Container, Record};
use crate::error::{IoError, Result};
use crate::fields::{
    decode_field, encode_field, rng_from_record, rng_record, Cursor, FieldMeta, FIELD_RECORD,
    META_RECORD, RNG_RECORD,
};
use grid::codec::Precision;
use grid::gauge::average_plaquette;
use grid::prelude::StreamRng;
use grid::{GaugeField, Grid};
use std::path::Path;
use std::sync::Arc;

/// Record holding the chain scalars (parameters, counters, tallies).
pub const HMC_RECORD: &str = "hmc.chain";
/// Record holding the per-trajectory `ΔH` / accept history.
pub const HMC_HISTORY_RECORD: &str = "hmc.history";

/// Everything about a Markov chain except the links and the Metropolis RNG
/// cursor: the serializable chain state of the `qcd-hmc` driver.
#[derive(Clone, Debug, PartialEq)]
pub struct HmcChainState {
    /// Wilson gauge coupling β.
    pub beta: f64,
    /// Molecular-dynamics step size ε.
    pub step_size: f64,
    /// Molecular-dynamics steps per trajectory.
    pub n_steps: u64,
    /// Integrator discriminant (0 = leapfrog, 1 = Omelyan; owned by
    /// `qcd-hmc`, opaque at this layer).
    pub integrator: u8,
    /// Chain master seed (momentum refreshes derive from it and the
    /// trajectory index).
    pub seed: u64,
    /// Completed trajectories.
    pub trajectory: u64,
    /// Metropolis accepts so far.
    pub accepted: u64,
    /// Metropolis rejects so far.
    pub rejected: u64,
    /// `ΔH` of every completed trajectory (bit-exact).
    pub dh_history: Vec<f64>,
    /// Metropolis decision of every completed trajectory.
    pub accept_history: Vec<bool>,
}

impl HmcChainState {
    /// Internal-consistency check shared by the writer and the reader.
    fn validate(&self, record: &str) -> Result<()> {
        let bad = |msg: String| {
            Err(IoError::BadRecord {
                record: record.to_string(),
                msg,
            })
        };
        if self.accepted + self.rejected != self.trajectory {
            return bad(format!(
                "accept/reject tallies {}+{} do not sum to trajectory {}",
                self.accepted, self.rejected, self.trajectory
            ));
        }
        if self.dh_history.len() as u64 != self.trajectory
            || self.accept_history.len() as u64 != self.trajectory
        {
            return bad(format!(
                "history lengths {}/{} disagree with trajectory {}",
                self.dh_history.len(),
                self.accept_history.len(),
                self.trajectory
            ));
        }
        if self.accept_history.iter().filter(|&&a| a).count() as u64 != self.accepted {
            return bad("accept history disagrees with the accept tally".into());
        }
        if !(self.beta.is_finite() && self.step_size > 0.0) || self.n_steps == 0 {
            return bad(format!(
                "unphysical parameters beta={} eps={} steps={}",
                self.beta, self.step_size, self.n_steps
            ));
        }
        Ok(())
    }

    /// Serialize into the `hmc.chain` and `hmc.history` records.
    pub fn to_records(&self) -> (Record, Record) {
        let mut s = Vec::with_capacity(8 * 7 + 1);
        s.extend_from_slice(&self.beta.to_bits().to_le_bytes());
        s.extend_from_slice(&self.step_size.to_bits().to_le_bytes());
        s.extend_from_slice(&self.n_steps.to_le_bytes());
        s.push(self.integrator);
        s.extend_from_slice(&self.seed.to_le_bytes());
        s.extend_from_slice(&self.trajectory.to_le_bytes());
        s.extend_from_slice(&self.accepted.to_le_bytes());
        s.extend_from_slice(&self.rejected.to_le_bytes());
        let mut h = Vec::with_capacity(8 + self.dh_history.len() * 9);
        h.extend_from_slice(&(self.dh_history.len() as u64).to_le_bytes());
        for (dh, &acc) in self.dh_history.iter().zip(&self.accept_history) {
            h.extend_from_slice(&dh.to_bits().to_le_bytes());
            h.push(acc as u8);
        }
        (
            Record::new(HMC_RECORD, s),
            Record::new(HMC_HISTORY_RECORD, h),
        )
    }

    /// Rebuild from the records of [`HmcChainState::to_records`].
    pub fn from_records(chain: &Record, history: &Record) -> Result<Self> {
        let mut cur = Cursor::new(&chain.payload, HMC_RECORD);
        let beta = f64::from_bits(cur.u64("beta")?);
        let step_size = f64::from_bits(cur.u64("step size")?);
        let n_steps = cur.u64("step count")?;
        let integrator = cur.u8("integrator id")?;
        let seed = cur.u64("chain seed")?;
        let trajectory = cur.u64("trajectory index")?;
        let accepted = cur.u64("accept tally")?;
        let rejected = cur.u64("reject tally")?;
        cur.done()?;

        let mut hcur = Cursor::new(&history.payload, HMC_HISTORY_RECORD);
        let n = hcur.u64("history length")? as usize;
        let mut dh_history = Vec::with_capacity(n);
        let mut accept_history = Vec::with_capacity(n);
        for _ in 0..n {
            dh_history.push(f64::from_bits(hcur.u64("dH entry")?));
            let a = hcur.u8("accept flag")?;
            if a > 1 {
                return Err(IoError::BadRecord {
                    record: HMC_HISTORY_RECORD.to_string(),
                    msg: format!("accept flag {a} is not a boolean"),
                });
            }
            accept_history.push(a == 1);
        }
        hcur.done()?;

        let state = HmcChainState {
            beta,
            step_size,
            n_steps,
            integrator,
            seed,
            trajectory,
            accepted,
            rejected,
            dh_history,
            accept_history,
        };
        state.validate(HMC_RECORD)?;
        Ok(state)
    }
}

/// Snapshot a Markov chain (state + Metropolis RNG cursor + links) to
/// `path` atomically. Links go out at [`Precision::F64`] with their average
/// plaquette in the metadata — the checkpoint is lossless and
/// physics-validated on read-back.
pub fn write_hmc_chain(
    state: &HmcChainState,
    metropolis: &StreamRng,
    links: &GaugeField,
    path: &Path,
) -> Result<u64> {
    state.validate(HMC_RECORD)?;
    let mut meta = FieldMeta::of(links, Precision::F64);
    meta.plaquette = Some(average_plaquette(links));
    let (chain, history) = state.to_records();
    let mut c = Container::new();
    c.push(Record::new(META_RECORD, meta.encode()));
    c.push(chain);
    c.push(history);
    c.push(rng_record(metropolis));
    c.push(Record::new(
        FIELD_RECORD,
        encode_field(links, Precision::F64),
    ));
    c.write_atomic(path)
}

/// Restore a chain snapshot written by [`write_hmc_chain`] onto `grid`,
/// validating record consistency and the stored plaquette.
pub fn read_hmc_chain(
    path: &Path,
    grid: &Arc<Grid<f64>>,
) -> Result<(HmcChainState, StreamRng, GaugeField)> {
    let c = Container::open(path)?;
    let state = HmcChainState::from_records(c.expect(HMC_RECORD)?, c.expect(HMC_HISTORY_RECORD)?)?;
    let metropolis = rng_from_record(c.expect(RNG_RECORD)?)?;
    let meta = FieldMeta::decode(&c.expect(META_RECORD)?.payload, META_RECORD)?;
    let links = decode_field(&meta, &c.expect(FIELD_RECORD)?.payload, grid, FIELD_RECORD)?;
    if let Some(stored) = meta.plaquette {
        let _span = qcd_trace::span!("io.validate", grid.engine().ctx());
        let computed = average_plaquette(&links);
        let tolerance = crate::fields::plaquette_tolerance(Precision::F64);
        if (computed - stored).abs() > tolerance {
            return Err(IoError::PlaquetteMismatch {
                stored,
                computed,
                tolerance,
            });
        }
    }
    Ok((state, metropolis, links))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::prelude::*;
    use grid::tensor::su3::random_gauge;

    fn demo_state() -> HmcChainState {
        HmcChainState {
            beta: 5.7,
            step_size: 0.0625,
            n_steps: 16,
            integrator: 1,
            seed: 0xabad_1dea,
            trajectory: 3,
            accepted: 2,
            rejected: 1,
            dh_history: vec![0.021, -0.004, 1.332],
            accept_history: vec![true, true, false],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qcd-io-hmc-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn chain_state_round_trips_bit_exactly() {
        let state = demo_state();
        let (chain, history) = state.to_records();
        let back = HmcChainState::from_records(&chain, &history).unwrap();
        assert_eq!(back, state);
        for (a, b) in back.dh_history.iter().zip(&state.dh_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn full_checkpoint_round_trips() {
        let g = Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let mut rng = StreamRng::new(99);
        for _ in 0..5 {
            rng.next_uniform01();
        }
        let path = tmp("roundtrip");
        write_hmc_chain(&demo_state(), &rng, &u, &path).unwrap();
        let (state, rng2, u2) = read_hmc_chain(&path, &g).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state, demo_state());
        assert_eq!(rng2.state(), rng.state());
        assert_eq!(u2.max_abs_diff(&u), 0.0);
    }

    #[test]
    fn inconsistent_tallies_are_rejected() {
        let mut state = demo_state();
        state.accepted = 3; // 3 + 1 != 3 trajectories
        let err = state.to_records(); // encoding is mechanical...
        let got = HmcChainState::from_records(&err.0, &err.1).unwrap_err();
        assert!(matches!(got, IoError::BadRecord { .. }), "{got:?}");

        let mut state = demo_state();
        state.accept_history[2] = true; // history no longer matches tally
        let recs = state.to_records();
        assert!(HmcChainState::from_records(&recs.0, &recs.1).is_err());
    }

    #[test]
    fn missing_records_are_reported() {
        let g = Grid::new([2, 2, 2, 2], VectorLength::of(128), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 3);
        let path = tmp("missing");
        write_hmc_chain(
            &HmcChainState {
                trajectory: 0,
                accepted: 0,
                rejected: 0,
                dh_history: vec![],
                accept_history: vec![],
                ..demo_state()
            },
            &StreamRng::new(1),
            &u,
            &path,
        )
        .unwrap();
        // Drop the history record and the reader must complain.
        let mut c = Container::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        c.records.retain(|r| r.rtype != HMC_HISTORY_RECORD);
        let path2 = tmp("missing2");
        c.write_atomic(&path2).unwrap();
        let got = match read_hmc_chain(&path2, &g) {
            Err(e) => e,
            Ok(_) => panic!("reader accepted a container missing the history record"),
        };
        std::fs::remove_file(&path2).ok();
        assert!(matches!(got, IoError::MissingRecord { .. }), "{got:?}");
    }
}
