//! `qcd-io` — checkpoint/restart for the lattice QCD stack.
//!
//! Production lattice QCD campaigns run for weeks on machines where node
//! failure is routine; the SVE port this repository reproduces targets
//! exactly such systems (the Post-K/Fugaku line). This crate supplies the
//! persistence layer that makes long solves survivable:
//!
//! * **Container format** ([`container`]): `qcd-io/v1`, a LIME-inspired
//!   flat record stream — magic, version, then typed records, each
//!   protected by an in-crate CRC-32 ([`crc`]). Writes are atomic
//!   (temp file + fsync + rename), so a crash never leaves a torn
//!   checkpoint.
//! * **Field records** ([`fields`]): gauge/fermion fields and RNG state at
//!   a selectable on-disk precision (f64/f32/f16 via the shared
//!   [`grid::codec`] path). Scalars are serialized in global site order, so
//!   files are portable across SVE vector lengths. Gauge metadata carries
//!   the average plaquette for physics validation on load.
//! * **Solver checkpoints** ([`checkpoint`]): snapshot CG, BiCGStab, and
//!   mixed-precision solves; a killed solve resumes bit-identically.
//! * **Fault injection** ([`fault`]): wrap any reader/writer with bit
//!   flips, truncation, or mid-stream failures and assert every corruption
//!   class maps to a typed [`IoError`] — never a panic, never silent wrong
//!   data.
//!
//! I/O paths run under [`qcd_trace`] spans (`io.write`, `io.read`,
//! `io.validate`) with byte counts attached, so checkpoint bandwidth shows
//! up in the same profile as solver arithmetic. Failures additionally land
//! in the [`qcd_metrics`] flight recorder as typed `io.error` events
//! (labelled by [`IoError::variant_name`]), and checkpoint writes as
//! `checkpoint.write` events, so a postmortem dump shows what I/O happened
//! around a crash.
//!
//! # Quickstart
//!
//! ```
//! use grid::prelude::*;
//! use qcd_io::{read_gauge, write_gauge};
//!
//! let g = Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
//! let u = random_gauge(g.clone(), 11);
//! let path = std::env::temp_dir().join("qcd-io-doc.qio");
//! write_gauge(&u, &path, Precision::F64).unwrap();
//! let v = read_gauge(&path, &g).unwrap(); // CRC + plaquette validated
//! assert_eq!(u.max_abs_diff(&v), 0.0);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod container;
pub mod crc;
pub mod error;
pub mod fault;
pub mod fields;
pub mod hmc;
pub mod scan;
pub mod subspace;

pub use checkpoint::{
    bicgstab_checkpointed_from, block_cg_checkpointed, block_cg_checkpointed_from, cg_checkpointed,
    cg_checkpointed_from, load_bicgstab, load_block_cg, load_cg, load_mixed, resume_bicgstab,
    resume_block_cg, resume_cg, save_bicgstab, save_block_cg, save_cg, save_mixed, MixedCheckpoint,
};
pub use container::{Container, ContainerReader, ContainerWriter, Record, MAGIC, VERSION};
pub use crc::{crc32, Crc32};
pub use error::{IoError, Result};
pub use fault::{Fault, FaultyReader, FaultyWriter};
pub use fields::{
    plaquette_tolerance, read_field, read_gauge, rng_from_record, rng_record, write_field,
    write_gauge, FieldMeta,
};
pub use hmc::{read_hmc_chain, write_hmc_chain, HmcChainState, HMC_HISTORY_RECORD, HMC_RECORD};
pub use scan::{scan_checkpoints, CheckpointEntry, CheckpointKind, ScanReport, SkippedCheckpoint};
pub use subspace::{
    defl_vector_record, read_subspace, write_subspace, SubspaceData, DEFL_META_RECORD,
    DEFL_SCALARS_RECORD,
};

/// Record a typed `io.error` flight event and bump the `io.errors` counter.
/// Called by every read/write/validate path the moment a failure surfaces,
/// before the error propagates to the caller.
pub(crate) fn record_io_error(e: &IoError) {
    qcd_metrics::counter("io.errors").inc();
    qcd_metrics::record_event("io.error", e.variant_name(), &[]);
}
