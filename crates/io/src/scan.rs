//! Checkpoint-directory scanning: the crash-recovery entry point.
//!
//! A long-running service (the `qcd-farm` scheduler) owns a directory of
//! `qcd-io` containers — chain snapshots, solver checkpoints, job records.
//! After a crash it must answer "what work exists, and how far had it
//! got?" without trusting a single byte that has not been CRC-validated.
//! [`scan_checkpoints`] walks the directory once and classifies every
//! regular file:
//!
//! * fully valid containers become [`CheckpointEntry`]s with
//!   `crc_valid = true` — safe to resume from;
//! * containers that lose framing, truncate, or fail a CRC mid-stream are
//!   *salvaged*: if the records read before the fault identify the
//!   checkpoint kind, the entry is still returned with
//!   `crc_valid = false` (identify, never resume), otherwise the file
//!   lands in [`ScanReport::skipped`] with its typed [`IoError`];
//! * stale `*.tmp` files — the debris of an atomic write cut down by a
//!   crash — are collected separately and are safe to delete.
//!
//! Every skipped or salvaged file is surfaced as a warning on stderr and a
//! `farm.scan.skip` flight event, so a recovery that silently dropped work
//! is visible in the postmortem dump.

use crate::checkpoint::{BI_SCALARS, BLK_SCALARS, CG_SCALARS, MX_SCALARS};
use crate::container::{ContainerReader, Record};
use crate::error::{IoError, Result};
use crate::fields::Cursor;
use crate::hmc::{HmcChainState, HMC_HISTORY_RECORD, HMC_RECORD};
use std::fs::File;
use std::path::{Path, PathBuf};

/// What kind of work a checkpoint container belongs to, detected from the
/// record types it carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointKind {
    /// An HMC Markov-chain snapshot (`hmc.chain` record set).
    HmcChain,
    /// A single-RHS Conjugate Gradient snapshot (`cg.scalars`).
    Cg,
    /// A BiCGStab snapshot (`bi.scalars`).
    BiCgStab,
    /// A mixed-precision defect-correction snapshot (`mx.scalars`).
    Mixed,
    /// A batched block-CG snapshot (`blk.scalars`).
    BlockCg,
    /// A valid container of an unrecognised record set (e.g. a plain field
    /// archive, or an application-level record like a farm job spec). The
    /// first record type is carried so callers can dispatch on it.
    Other(String),
}

impl CheckpointKind {
    /// Stable lowercase name (status JSON, log lines).
    pub fn name(&self) -> &str {
        match self {
            CheckpointKind::HmcChain => "hmc-chain",
            CheckpointKind::Cg => "cg",
            CheckpointKind::BiCgStab => "bicgstab",
            CheckpointKind::Mixed => "mixed",
            CheckpointKind::BlockCg => "block-cg",
            CheckpointKind::Other(t) => t,
        }
    }
}

/// One classified checkpoint file.
#[derive(Clone, Debug)]
pub struct CheckpointEntry {
    /// Full path of the container file.
    pub path: PathBuf,
    /// Job identifier — the file stem (`streams/a7.chain.qio` → `a7.chain`).
    pub job_id: String,
    /// Detected checkpoint kind.
    pub kind: CheckpointKind,
    /// Progress marker: completed trajectories (HMC), iterations (Krylov
    /// snapshots — the slowest RHS for block solves), outer rounds (mixed),
    /// `0` for [`CheckpointKind::Other`].
    pub progress: u64,
    /// Whether every record in the file validated. Only a `true` entry may
    /// be resumed; a `false` one was salvaged from a damaged file and is
    /// good for identification only.
    pub crc_valid: bool,
}

/// A file the scan could not classify at all.
#[derive(Debug)]
pub struct SkippedCheckpoint {
    /// The offending file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: IoError,
}

/// Everything [`scan_checkpoints`] found in one directory pass.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Classified checkpoints, sorted by `job_id` (then path) so recovery
    /// order is deterministic.
    pub entries: Vec<CheckpointEntry>,
    /// Unreadable or unidentifiable files, with their typed errors.
    pub skipped: Vec<SkippedCheckpoint>,
    /// Stale `*.tmp` files from torn atomic writes — safe to delete.
    pub stale_tmp: Vec<PathBuf>,
}

/// Classify the records read so far; `None` when nothing identifies them.
fn classify(records: &[Record]) -> Option<(CheckpointKind, u64)> {
    let find = |t: &str| records.iter().find(|r| r.rtype == t);
    if let Some(chain) = find(HMC_RECORD) {
        // Prefer the full parse (validated trajectory); fall back to the
        // raw trajectory counter at byte 33 if the history record is gone.
        let progress = match find(HMC_HISTORY_RECORD)
            .and_then(|h| HmcChainState::from_records(chain, h).ok())
        {
            Some(state) => state.trajectory,
            None => chain
                .payload
                .get(33..41)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .unwrap_or(0),
        };
        return Some((CheckpointKind::HmcChain, progress));
    }
    let scalar_iterations = |r: &Record, record: &str| -> u64 {
        Cursor::new(&r.payload, record)
            .u64("iteration count")
            .unwrap_or(0)
    };
    if let Some(r) = find(CG_SCALARS) {
        return Some((CheckpointKind::Cg, scalar_iterations(r, CG_SCALARS)));
    }
    if let Some(r) = find(BI_SCALARS) {
        return Some((CheckpointKind::BiCgStab, scalar_iterations(r, BI_SCALARS)));
    }
    if let Some(r) = find(MX_SCALARS) {
        return Some((CheckpointKind::Mixed, scalar_iterations(r, MX_SCALARS)));
    }
    if let Some(r) = find(BLK_SCALARS) {
        // Per-RHS iteration counts; progress is the slowest RHS.
        let mut cur = Cursor::new(&r.payload, BLK_SCALARS);
        let mut progress = 0;
        if let Ok(nrhs) = cur.u64("RHS count") {
            for _ in 0..nrhs {
                let Ok(iters) = cur.u64("iteration count") else {
                    break;
                };
                progress = progress.max(iters);
                // Skip r2, b_norm2, then the history block.
                if cur.u64("r2").is_err() || cur.u64("b_norm2").is_err() {
                    break;
                }
                let Ok(hist) = cur.u64("history length") else {
                    break;
                };
                if (0..hist).any(|_| cur.u64("history entry").is_err()) {
                    break;
                }
            }
        }
        return Some((CheckpointKind::BlockCg, progress));
    }
    records
        .first()
        .map(|r| (CheckpointKind::Other(r.rtype.clone()), 0))
}

/// Read records until the stream ends or a fault surfaces; the error (if
/// any) is returned alongside whatever validated before it.
fn read_until_fault(path: &Path) -> (Vec<Record>, Option<IoError>) {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return (Vec::new(), Some(e.into())),
    };
    let mut reader = match ContainerReader::new(file) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Some(e)),
    };
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(r)) => records.push(r),
            Ok(None) => return (records, None),
            Err(e) => return (records, Some(e)),
        }
    }
}

fn warn_skip(path: &Path, error: &IoError, salvaged: bool) {
    let what = if salvaged {
        "salvaged (identify-only)"
    } else {
        "skipped"
    };
    eprintln!(
        "warning: checkpoint scan {what} {}: {error}",
        path.display()
    );
    qcd_metrics::counter("farm.scan.skipped").inc();
    qcd_metrics::record_event(
        "farm.scan.skip",
        &format!("{}: {}", path.display(), error.variant_name()),
        &[("salvaged", salvaged as u8 as f64)],
    );
}

/// Scan `dir` for `qcd-io` checkpoint containers and classify every
/// regular file (see the module docs for the full contract). Subdirectories
/// are not descended into. The only `Err` return is failing to read the
/// directory itself — per-file damage never aborts a recovery scan.
pub fn scan_checkpoints(dir: &Path) -> Result<ScanReport> {
    let _span = qcd_trace::span!("io.scan");
    let mut report = ScanReport::default();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .inspect_err(|e| {
            crate::record_io_error(&IoError::Io(std::io::Error::new(e.kind(), e.to_string())))
        })?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    for path in paths {
        if path.extension().is_some_and(|e| e == "tmp") {
            report.stale_tmp.push(path);
            continue;
        }
        let (records, fault) = read_until_fault(&path);
        let job_id = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        match (classify(&records), fault) {
            (Some((kind, progress)), fault) => {
                if let Some(e) = &fault {
                    warn_skip(&path, e, true);
                }
                report.entries.push(CheckpointEntry {
                    path,
                    job_id,
                    kind,
                    progress,
                    crc_valid: fault.is_none(),
                });
            }
            (None, Some(error)) => {
                warn_skip(&path, &error, false);
                report.skipped.push(SkippedCheckpoint { path, error });
            }
            (None, None) => {
                // A valid but empty container: nothing to identify it by.
                let error = IoError::MissingRecord {
                    record: "any".to_string(),
                };
                warn_skip(&path, &error, false);
                report.skipped.push(SkippedCheckpoint { path, error });
            }
        }
    }
    report
        .entries
        .sort_by(|a, b| a.job_id.cmp(&b.job_id).then_with(|| a.path.cmp(&b.path)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_cg;
    use crate::container::Container;
    use crate::fault::{Fault, FaultyWriter};
    use grid::prelude::*;
    use std::io::Write;
    use std::sync::Arc;

    fn grid4() -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(128), SimdBackend::Fcmla)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qcd-io-scan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_chain(dir: &Path, name: &str, trajectory: u64) -> Vec<u8> {
        let g = grid4();
        let links = grid::tensor::su3::random_gauge(g.clone(), 7 + trajectory);
        let state = crate::hmc::HmcChainState {
            beta: 5.6,
            step_size: 0.1,
            n_steps: 4,
            integrator: 0,
            seed: 11,
            trajectory,
            accepted: trajectory,
            rejected: 0,
            dh_history: vec![0.25; trajectory as usize],
            accept_history: vec![true; trajectory as usize],
        };
        let rng = StreamRng::from_state(3, trajectory);
        crate::hmc::write_hmc_chain(&state, &rng, &links, &dir.join(name)).unwrap();
        std::fs::read(dir.join(name)).unwrap()
    }

    #[test]
    fn classifies_chain_and_solver_checkpoints() {
        let dir = tmp_dir("kinds");
        write_chain(&dir, "s0.chain.qio", 3);
        let g = grid4();
        let op = WilsonDirac::new(grid::tensor::su3::random_gauge(g.clone(), 9), 0.25);
        let b = FermionField::random(g.clone(), 5);
        let mut cg = CgState::new(&b);
        cg.step(|p| op.mdag_m(p));
        cg.step(|p| op.mdag_m(p));
        save_cg(&cg, &dir.join("j1.solve.qio")).unwrap();

        let report = scan_checkpoints(&dir).unwrap();
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);
        assert_eq!(report.entries.len(), 2);
        // Sorted by job id: j1 before s0.
        assert_eq!(report.entries[0].job_id, "j1.solve");
        assert_eq!(report.entries[0].kind, CheckpointKind::Cg);
        assert_eq!(report.entries[0].progress, 2);
        assert!(report.entries[0].crc_valid);
        assert_eq!(report.entries[1].job_id, "s0.chain");
        assert_eq!(report.entries[1].kind, CheckpointKind::HmcChain);
        assert_eq!(report.entries[1].progress, 3);
        assert!(report.entries[1].crc_valid);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_file_is_salvaged_identify_only() {
        // Rewrite a valid chain through the fault harness, cutting the
        // stream inside the trailing links record: the scalar records
        // validate, so the scan identifies the chain but marks it
        // un-resumable.
        let dir = tmp_dir("torn");
        let bytes = write_chain(&dir, "s0.chain.qio", 5);
        let cut = bytes.len() as u64 - 1000;
        let torn = File::create(dir.join("s1.chain.qio")).unwrap();
        let mut w = FaultyWriter::new(torn, Fault::TruncateAfter { bytes: cut });
        w.write_all(&bytes).unwrap();
        w.flush().unwrap();

        let report = scan_checkpoints(&dir).unwrap();
        assert_eq!(report.entries.len(), 2);
        let torn_entry = report
            .entries
            .iter()
            .find(|e| e.job_id == "s1.chain")
            .expect("torn chain identified");
        assert_eq!(torn_entry.kind, CheckpointKind::HmcChain);
        assert_eq!(torn_entry.progress, 5);
        assert!(!torn_entry.crc_valid, "a torn file must not claim validity");
        assert!(report
            .entries
            .iter()
            .any(|e| e.job_id == "s0.chain" && e.crc_valid));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_head_is_skipped_with_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let bytes = write_chain(&dir, "good.qio", 2);
        // Bit-flip inside the first record's payload: CRC fails before
        // anything identifies the file.
        let bad = File::create(dir.join("bad.qio")).unwrap();
        let mut w = FaultyWriter::new(bad, Fault::BitFlip { offset: 40, bit: 3 });
        w.write_all(&bytes).unwrap();
        w.flush().unwrap();
        // Garbage that is not a container at all.
        std::fs::write(dir.join("noise.qio"), b"not a checkpoint").unwrap();

        let report = scan_checkpoints(&dir).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].job_id, "good");
        assert_eq!(report.skipped.len(), 2);
        assert!(report.skipped.iter().any(|s| matches!(
            s.error,
            IoError::CrcMismatch { .. } | IoError::BadRecordMark { .. }
        )));
        assert!(report
            .skipped
            .iter()
            .any(|s| matches!(s.error, IoError::BadMagic { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_collected_not_classified() {
        let dir = tmp_dir("tmp");
        write_chain(&dir, "s0.chain.qio", 1);
        std::fs::write(dir.join("s0.chain.qio.tmp"), b"torn atomic write").unwrap();
        let report = scan_checkpoints(&dir).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.stale_tmp.len(), 1);
        assert!(report.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_but_valid_containers_surface_as_other() {
        let dir = tmp_dir("other");
        let mut c = Container::new();
        c.push(Record::new("farm.job", b"spec".to_vec()));
        c.write_atomic(&dir.join("job7.qio")).unwrap();
        let report = scan_checkpoints(&dir).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(
            report.entries[0].kind,
            CheckpointKind::Other("farm.job".into())
        );
        assert_eq!(report.entries[0].kind.name(), "farm.job");
        assert!(report.entries[0].crc_valid);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error_empty_directory_is_not() {
        let dir = tmp_dir("empty");
        assert!(scan_checkpoints(&dir.join("absent")).is_err());
        let report = scan_checkpoints(&dir).unwrap();
        assert!(report.entries.is_empty() && report.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
