//! Deflation subspace records: persist a low-mode eigenspace of `M†M`.
//!
//! A deflation subspace is expensive to build (a Lanczos run costing many
//! operator applications) and cheap to apply, so campaigns want to compute
//! it once per configuration and share it across every solve at the same
//! mass — including farm jobs in other processes. This module stores the
//! subspace as `qcd-io/v1` records:
//!
//! * `defl.meta` — a [`FieldMeta`] describing the eigenvector geometry and
//!   on-disk precision (reusing the field metadata codec, so the payload is
//!   portable across SVE vector lengths exactly like field files).
//! * `defl.scalars` — the Wilson mass the subspace was built at (exact
//!   bits), then per-eigenpair eigenvalue and validated residual bits.
//! * `defl.v.<i>` — one field record per eigenvector, serialized in global
//!   lexicographic site order at the chosen precision tier (f64/f32/f16).
//!
//! Loads are validated: a wrong-geometry file raises
//! [`IoError::GridMismatch`], and a subspace built at a different operator
//! mass raises [`IoError::MassMismatch`] — the comparison is bit-exact,
//! because the stored vectors deflate `M†M(mass)` and nothing else.
//!
//! This module deliberately speaks only in primitives (`Field`s and `f64`
//! slices) so `qcd-io` needs no dependency on `qcd-deflate`; the deflate
//! crate wraps these functions with its `Subspace::save`/`load` methods.

use crate::container::{Container, Record};
use crate::error::{IoError, Result};
use crate::fields::{decode_field, encode_field, Cursor, FieldMeta};
use grid::codec::Precision;
use grid::field::FermionKind;
use grid::{Field, Grid};
use std::path::Path;
use std::sync::Arc;
use sve::SveFloat;

/// Record type of the subspace metadata record (a [`FieldMeta`]).
pub const DEFL_META_RECORD: &str = "defl.meta";
/// Record type of the scalar record (mass, eigenvalues, residuals).
pub const DEFL_SCALARS_RECORD: &str = "defl.scalars";

/// Record type of the `i`-th eigenvector payload.
pub fn defl_vector_record(i: usize) -> String {
    format!("defl.v.{i}")
}

/// A loaded deflation subspace: eigenvectors of `M†M` with their
/// eigenvalues, the residuals validated at build time, and the operator
/// mass the subspace belongs to.
pub struct SubspaceData<E: SveFloat = f64> {
    /// Approximate eigenvectors, lowest eigenvalue first.
    pub vectors: Vec<Field<FermionKind, E>>,
    /// Eigenvalues `θ_i` matching `vectors` (real and positive: `M†M` is
    /// Hermitian positive-definite).
    pub values: Vec<f64>,
    /// Explicit residuals `‖M†M v_i − θ_i v_i‖ / ‖v_i‖` validated when the
    /// subspace was built.
    pub residuals: Vec<f64>,
    /// Wilson mass of the operator the subspace deflates.
    pub mass: f64,
}

fn scalars_record(mass: f64, values: &[f64], residuals: &[f64]) -> Record {
    let mut payload = Vec::with_capacity(16 + 16 * values.len());
    payload.extend_from_slice(&mass.to_bits().to_le_bytes());
    payload.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for (&v, &r) in values.iter().zip(residuals.iter()) {
        payload.extend_from_slice(&v.to_bits().to_le_bytes());
        payload.extend_from_slice(&r.to_bits().to_le_bytes());
    }
    Record::new(DEFL_SCALARS_RECORD, payload)
}

fn decode_scalars(record: &Record) -> Result<(f64, Vec<f64>, Vec<f64>)> {
    let mut cur = Cursor::new(&record.payload, DEFL_SCALARS_RECORD);
    let mass = f64::from_bits(cur.u64("operator mass")?);
    let nev = cur.u64("eigenpair count")? as usize;
    let mut values = Vec::with_capacity(nev);
    let mut residuals = Vec::with_capacity(nev);
    for _ in 0..nev {
        values.push(f64::from_bits(cur.u64("eigenvalue")?));
        residuals.push(f64::from_bits(cur.u64("residual")?));
    }
    cur.done()?;
    Ok((mass, values, residuals))
}

/// Write a deflation subspace to `path` atomically at the chosen on-disk
/// precision tier. `values` and `residuals` must match `vectors` in length.
pub fn write_subspace<E: SveFloat>(
    vectors: &[Field<FermionKind, E>],
    values: &[f64],
    residuals: &[f64],
    mass: f64,
    path: &Path,
    precision: Precision,
) -> Result<u64> {
    assert!(!vectors.is_empty(), "cannot persist an empty subspace");
    assert_eq!(vectors.len(), values.len(), "one eigenvalue per vector");
    assert_eq!(vectors.len(), residuals.len(), "one residual per vector");
    let mut c = Container::new();
    c.push(Record::new(
        DEFL_META_RECORD,
        FieldMeta::of(&vectors[0], precision).encode(),
    ));
    c.push(scalars_record(mass, values, residuals));
    for (i, v) in vectors.iter().enumerate() {
        c.push(Record::new(
            &defl_vector_record(i),
            encode_field(v, precision),
        ));
    }
    c.write_atomic(path)
}

/// Read a subspace written by [`write_subspace`] into fields on `grid`,
/// for use with an operator at `want_mass`.
///
/// Fails typed: [`IoError::GridMismatch`] when the file's lattice geometry
/// does not match `grid`, [`IoError::MassMismatch`] when the stored mass is
/// not bit-identical to `want_mass`, plus the usual container-level errors
/// (CRC, truncation, missing records).
pub fn read_subspace<E: SveFloat>(
    path: &Path,
    grid: &Arc<Grid<E>>,
    want_mass: f64,
) -> Result<SubspaceData<E>> {
    let c = Container::open(path)?;
    read_subspace_inner(&c, grid, want_mass).inspect_err(crate::record_io_error)
}

fn read_subspace_inner<E: SveFloat>(
    c: &Container,
    grid: &Arc<Grid<E>>,
    want_mass: f64,
) -> Result<SubspaceData<E>> {
    let meta = FieldMeta::decode(&c.expect(DEFL_META_RECORD)?.payload, DEFL_META_RECORD)?;
    let (mass, values, residuals) = decode_scalars(c.expect(DEFL_SCALARS_RECORD)?)?;
    if mass.to_bits() != want_mass.to_bits() {
        return Err(IoError::MassMismatch {
            want: want_mass,
            found: mass,
        });
    }
    let mut vectors = Vec::with_capacity(values.len());
    for i in 0..values.len() {
        let name = defl_vector_record(i);
        let record = c.expect(&name)?;
        vectors.push(decode_field(&meta, &record.payload, grid, &name)?);
    }
    Ok(SubspaceData {
        vectors,
        values,
        residuals,
        mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::prelude::*;
    use grid::FieldKind;

    fn small_grid(bits: usize) -> Arc<Grid<f64>> {
        Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
    }

    fn sample_subspace(grid: &Arc<Grid<f64>>) -> (Vec<FermionField>, Vec<f64>, Vec<f64>) {
        let vectors: Vec<FermionField> = (0..3)
            .map(|i| FermionField::random(grid.clone(), 70 + i))
            .collect();
        let values = vec![0.017, 0.092, 0.213];
        let residuals = vec![1e-9, 3e-9, 8e-9];
        (vectors, values, residuals)
    }

    #[test]
    fn subspace_round_trips_bit_exactly_at_f64() {
        let grid = small_grid(256);
        let (vectors, values, residuals) = sample_subspace(&grid);
        let path = std::env::temp_dir().join("qcd-io-subspace-roundtrip.qio");
        write_subspace(&vectors, &values, &residuals, 0.08, &path, Precision::F64).unwrap();
        let back = read_subspace::<f64>(&path, &grid, 0.08).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.values, values);
        assert_eq!(back.residuals, residuals);
        assert_eq!(back.mass, 0.08);
        for (v, w) in vectors.iter().zip(back.vectors.iter()) {
            assert_eq!(v.max_abs_diff(w), 0.0);
        }
    }

    #[test]
    fn subspace_is_portable_across_vector_lengths() {
        let g_write = small_grid(512);
        let (vectors, values, residuals) = sample_subspace(&g_write);
        let path = std::env::temp_dir().join("qcd-io-subspace-portable.qio");
        write_subspace(&vectors, &values, &residuals, 0.08, &path, Precision::F64).unwrap();
        let g_read = small_grid(128);
        let back = read_subspace::<f64>(&path, &g_read, 0.08).unwrap();
        std::fs::remove_file(&path).unwrap();
        // Compare in layout-independent site order via peek.
        for (v, w) in vectors.iter().zip(back.vectors.iter()) {
            for x in v.grid().coords() {
                for comp in 0..grid::field::FermionKind::NCOMP {
                    assert_eq!(v.peek(&x, comp), w.peek(&x, comp));
                }
            }
        }
    }

    #[test]
    fn wrong_mass_is_a_typed_error() {
        let grid = small_grid(256);
        let (vectors, values, residuals) = sample_subspace(&grid);
        let path = std::env::temp_dir().join("qcd-io-subspace-mass.qio");
        write_subspace(&vectors, &values, &residuals, 0.08, &path, Precision::F64).unwrap();
        let err = read_subspace::<f64>(&path, &grid, 0.0800000001)
            .err()
            .unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, IoError::MassMismatch { .. }), "got {err}");
    }

    #[test]
    fn wrong_lattice_is_a_typed_error() {
        let grid = small_grid(256);
        let (vectors, values, residuals) = sample_subspace(&grid);
        let path = std::env::temp_dir().join("qcd-io-subspace-grid.qio");
        write_subspace(&vectors, &values, &residuals, 0.08, &path, Precision::F64).unwrap();
        let other = Grid::new([4, 4, 4, 8], VectorLength::of(256), SimdBackend::Fcmla);
        let err = read_subspace::<f64>(&path, &other, 0.08).err().unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, IoError::GridMismatch { .. }), "got {err}");
    }

    #[test]
    fn lossy_tiers_round_scalars_but_keep_metadata_exact() {
        let grid = small_grid(256);
        let (vectors, values, residuals) = sample_subspace(&grid);
        let path = std::env::temp_dir().join("qcd-io-subspace-f32.qio");
        write_subspace(&vectors, &values, &residuals, 0.08, &path, Precision::F32).unwrap();
        let back = read_subspace::<f64>(&path, &grid, 0.08).unwrap();
        std::fs::remove_file(&path).unwrap();
        // Eigenvalues/residuals/mass are stored at full width regardless of
        // the vector payload tier.
        assert_eq!(back.values, values);
        assert_eq!(back.residuals, residuals);
        for (v, w) in vectors.iter().zip(back.vectors.iter()) {
            let d = v.max_abs_diff(w);
            assert!(d > 0.0 && d < 1e-6, "f32 tier rounding out of range: {d}");
        }
    }
}
