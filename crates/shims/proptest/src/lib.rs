//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing API surface this workspace uses.
//!
//! The build container has no crates.io access, so this vendors the slice
//! the three `properties.rs` suites call: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_filter`,
//! range and tuple strategies, `collection::vec`, `sample::select`,
//! `Just`, `any`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Cases are generated deterministically from a splitmix64 stream seeded by
//! the test name and case index, so failures reproduce across runs. There is
//! no shrinking: a failing case panics with its generated inputs visible in
//! the assert message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a collection size specification.
    pub trait SizeRange {
        /// Draw a size from the range.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end);
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi);
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy producing a `Vec` of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[(rng.next_u64() as usize) % self.items.len()].clone()
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to provide.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run a block of property tests. Mirrors proptest's macro of the same
/// name: an optional `#![proptest_config(..)]` header followed by
/// `fn name(pat in strategy, ...) { body }` items (each carrying its own
/// `#[test]` attribute).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // The closure lets `prop_assume!` reject a case by
                    // returning early; rejected cases are simply skipped.
                    let _outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Reject the current case (skip it) when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-2.5f64..4.0).generate(&mut rng);
            assert!((-2.5..4.0).contains(&y));
            let z = (1u64..=8).generate(&mut rng);
            assert!((1..=8).contains(&z));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0.0f64..1.0, 5usize..=5);
        let a = strat.generate(&mut crate::test_runner::TestRng::for_case("d", 3));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_case("d", 3));
        let c = strat.generate(&mut crate::test_runner::TestRng::for_case("d", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=4)
            .prop_map(|k| k * 128)
            .prop_flat_map(|bits| (Just(bits), 0usize..bits))
            .prop_filter("even only", |(_, x)| x % 2 == 0);
        let mut rng = crate::test_runner::TestRng::for_case("combo", 1);
        for _ in 0..200 {
            let (bits, x) = strat.generate(&mut rng);
            assert!(bits % 128 == 0 && x < bits && x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, assume, assert.
        #[test]
        fn macro_smoke((a, b) in (0u64..50, 0u64..50), c in any::<bool>()) {
            prop_assume!(a != b || c);
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
