//! Deterministic case generation and run configuration.

/// Per-block configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the SVE functional model executes
        // every vector lane in software, so keep the offline default small
        // enough for a fast tier-1 suite.
        Config { cases: 32 }
    }
}

/// Why a case body ended without completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is skipped, not failed.
    Reject,
}

/// splitmix64 stream, seeded from the test name and case index so every
/// case is reproducible without any persisted state.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
