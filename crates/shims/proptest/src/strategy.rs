//! The `Strategy` trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws a value directly from the RNG stream.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds on it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { source: self, f }
    }

    /// Retry generation until `pred` accepts the value. Panics (with
    /// `reason`) after 10 000 straight rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter {
            source: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy over a type's whole value space (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types `any` can generate.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, symmetric, spanning many magnitudes.
        (rng.next_f64() - 0.5) * 2.0e12
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*
    };
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
