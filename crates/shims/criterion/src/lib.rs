//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmarking API surface this workspace uses.
//!
//! The build container has no crates.io access. This shim keeps every
//! `benches/*.rs` target compiling and producing *useful* (median-of-samples
//! wall-clock) numbers, without criterion's statistics, plotting, or CLI.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark throughput annotation (reported as a rate).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives closure timing inside a benchmark body.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Time `f`, collecting one duration per sample and keeping the median
    /// for the harness to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

fn report(group: &str, id: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3e} B/s)", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    if group.is_empty() {
        println!("{id:<50} {median:>12.2?}{rate}");
    } else {
        println!("{group}/{id:<40} {median:>12.2?}{rate}");
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            median: None,
        };
        let t0 = Instant::now();
        f(&mut b, input);
        let median = b
            .median
            .unwrap_or_else(|| t0.elapsed() / self.sample_size as u32);
        report(&self.name, &id.id, median, self.throughput);
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            median: None,
        };
        let t0 = Instant::now();
        f(&mut b);
        let median = b
            .median
            .unwrap_or_else(|| t0.elapsed() / self.sample_size as u32);
        report(&self.name, &id.to_string(), median, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            median: None,
        };
        let t0 = Instant::now();
        f(&mut b);
        let median = b.median.unwrap_or_else(|| t0.elapsed() / 10);
        report("", &id.to_string(), median, None);
        self
    }

    /// CLI configuration hook (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
