//! Offline stand-in for the [rayon](https://crates.io/crates/rayon) API
//! surface this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! thin slice of rayon it actually calls, implemented over
//! `std::thread::scope`. Chunks are distributed in contiguous groups across
//! worker threads, so data-parallel kernels still exercise real
//! multi-threading (the telemetry crate's thread-merge tests rely on that).
//!
//! Supported surface:
//! - `par_chunks_mut` / `par_chunks` with `enumerate()`, `for_each`, and
//!   order-preserving `map(..).collect()` (the indexed map/collect the
//!   deterministic field reductions need);
//! - `zip` of two mutable chunk iterators (fused two-field solver kernels);
//! - `current_num_threads()` / `set_num_threads()` with a `RAYON_NUM_THREADS`
//!   environment override, mirroring rayon's global pool sizing.
//!
//! When one worker would be used (or there is a single chunk), every
//! combinator degrades to a direct serial loop that performs **no heap
//! allocation** — the property the solvers' allocation-free steady state is
//! built on. `map(..).collect()` necessarily allocates its result vector;
//! callers that must stay allocation-free use `for_each` or serial fallbacks.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The items a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IndexedParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Global worker-count override installed by [`set_num_threads`];
/// `0` = not set.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS` parsed once (reading the environment allocates, and
/// `current_num_threads` is called from allocation-free kernels).
fn env_num_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Fix the number of worker threads parallel operations use (the moral
/// equivalent of rayon's `ThreadPoolBuilder::num_threads` on the global
/// pool). `0` restores the default (environment, then hardware count).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of worker threads parallel operations will use: the
/// [`set_num_threads`] override, else `RAYON_NUM_THREADS`, else
/// `available_parallelism()`.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    let e = env_num_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Slices that can be split into parallel immutable chunks.
pub trait ParallelSlice<T: Sync> {
    /// Parallel equivalent of [`slice::chunks`].
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Slices that can be split into parallel mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of [`slice::chunks_mut`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Marker trait so `use rayon::prelude::*` call sites that name it resolve.
pub trait IndexedParallelIterator {}

/// How many chunks of `chunk_size` cover `len` elements, and how many of
/// them each worker-thread group should take (contiguous assignment).
fn plan(len: usize, chunk_size: usize) -> (usize, usize) {
    let n_chunks = len.div_ceil(chunk_size).max(1);
    let threads = current_num_threads().min(n_chunks).max(1);
    (threads, n_chunks.div_ceil(threads))
}

// ---- immutable chunks ----

/// Parallel immutable chunk iterator (see [`ParallelSlice::par_chunks`]).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Pair every chunk with its index, preserving slice order.
    pub fn enumerate(self) -> EnumParChunks<'a, T> {
        EnumParChunks { inner: self }
    }

    /// Run `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&[T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunks`].
pub struct EnumParChunks<'a, T> {
    inner: ParChunks<'a, T>,
}

impl<'a, T: Sync> EnumParChunks<'a, T> {
    /// Run `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &[T])) + Sync,
    {
        let cs = self.inner.chunk_size;
        let slice = self.inner.slice;
        let (threads, per) = plan(slice.len(), cs);
        if threads <= 1 {
            for item in slice.chunks(cs).enumerate() {
                f(item);
            }
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * cs).min(rest.len());
                let (group, tail) = rest.split_at(take);
                rest = tail;
                let b = base;
                scope.spawn(move || {
                    for (j, c) in group.chunks(cs).enumerate() {
                        f((b + j, c));
                    }
                });
                base += per;
            }
        });
    }

    /// Map every `(index, chunk)` pair through `f` (order-preserving; see
    /// [`MapEnumParChunks::collect`]).
    pub fn map<R, F>(self, f: F) -> MapEnumParChunks<'a, T, F>
    where
        F: Fn((usize, &[T])) -> R + Sync,
        R: Send,
    {
        MapEnumParChunks {
            inner: self.inner,
            f,
        }
    }
}

/// Pending `map` over enumerated immutable chunks.
pub struct MapEnumParChunks<'a, T, F> {
    inner: ParChunks<'a, T>,
    f: F,
}

impl<'a, T: Sync, F> MapEnumParChunks<'a, T, F> {
    /// Evaluate the map in parallel and return results in chunk order.
    pub fn collect<R>(self) -> Vec<R>
    where
        F: Fn((usize, &[T])) -> R + Sync,
        R: Send,
    {
        let cs = self.inner.chunk_size;
        let slice = self.inner.slice;
        let (threads, per) = plan(slice.len(), cs);
        let f = &self.f;
        if threads <= 1 {
            return slice.chunks(cs).enumerate().map(f).collect();
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * cs).min(rest.len());
                let (group, tail) = rest.split_at(take);
                rest = tail;
                let b = base;
                handles.push(scope.spawn(move || {
                    group
                        .chunks(cs)
                        .enumerate()
                        .map(|(j, c)| f((b + j, c)))
                        .collect::<Vec<R>>()
                }));
                base += per;
            }
            let mut out = Vec::with_capacity(slice.len().div_ceil(cs));
            for h in handles {
                out.extend(h.join().expect("worker thread panicked"));
            }
            out
        })
    }
}

// ---- mutable chunks ----

/// Parallel mutable chunk iterator (see [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index, preserving slice order.
    pub fn enumerate(self) -> EnumParChunksMut<'a, T> {
        EnumParChunksMut { inner: self }
    }

    /// Run `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }

    /// Pair chunk `i` of `self` with chunk `i` of `other` (both slices must
    /// have the same length; chunking is element-wise identical).
    pub fn zip<U: Send>(self, other: ParChunksMut<'a, U>) -> ZipChunksMut<'a, T, U> {
        assert_eq!(
            self.slice.len(),
            other.slice.len(),
            "zipped parallel chunk iterators must cover equal lengths"
        );
        assert_eq!(
            self.chunk_size, other.chunk_size,
            "zipped parallel chunk iterators must agree on chunk size"
        );
        ZipChunksMut {
            a: self.slice,
            b: other.slice,
            chunk_size: self.chunk_size,
        }
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> EnumParChunksMut<'a, T> {
    /// Run `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let cs = self.inner.chunk_size;
        let slice = self.inner.slice;
        let (threads, per) = plan(slice.len(), cs);
        if threads <= 1 {
            for item in slice.chunks_mut(cs).enumerate() {
                f(item);
            }
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * cs).min(rest.len());
                let (group, tail) = rest.split_at_mut(take);
                rest = tail;
                let b = base;
                scope.spawn(move || {
                    for (j, c) in group.chunks_mut(cs).enumerate() {
                        f((b + j, c));
                    }
                });
                base += per;
            }
        });
    }

    /// Map every `(index, chunk)` pair through `f` (order-preserving; see
    /// [`MapEnumParChunksMut::collect`]).
    pub fn map<R, F>(self, f: F) -> MapEnumParChunksMut<'a, T, F>
    where
        F: Fn((usize, &mut [T])) -> R + Sync,
        R: Send,
    {
        MapEnumParChunksMut {
            inner: self.inner,
            f,
        }
    }
}

/// Pending `map` over enumerated mutable chunks.
pub struct MapEnumParChunksMut<'a, T, F> {
    inner: ParChunksMut<'a, T>,
    f: F,
}

impl<'a, T: Send, F> MapEnumParChunksMut<'a, T, F> {
    /// Evaluate the map in parallel and return results in chunk order.
    pub fn collect<R>(self) -> Vec<R>
    where
        F: Fn((usize, &mut [T])) -> R + Sync,
        R: Send,
    {
        let cs = self.inner.chunk_size;
        let slice = self.inner.slice;
        let (threads, per) = plan(slice.len(), cs);
        let f = &self.f;
        if threads <= 1 {
            return slice.chunks_mut(cs).enumerate().map(f).collect();
        }
        let n_chunks = slice.len().div_ceil(cs);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * cs).min(rest.len());
                let (group, tail) = rest.split_at_mut(take);
                rest = tail;
                let b = base;
                handles.push(scope.spawn(move || {
                    group
                        .chunks_mut(cs)
                        .enumerate()
                        .map(|(j, c)| f((b + j, c)))
                        .collect::<Vec<R>>()
                }));
                base += per;
            }
            let mut out = Vec::with_capacity(n_chunks);
            for h in handles {
                out.extend(h.join().expect("worker thread panicked"));
            }
            out
        })
    }
}

// ---- zipped mutable chunks ----

/// Two mutable chunk iterators advanced in lockstep (see
/// [`ParChunksMut::zip`]).
pub struct ZipChunksMut<'a, T, U> {
    a: &'a mut [T],
    b: &'a mut [U],
    chunk_size: usize,
}

impl<'a, T: Send, U: Send> ZipChunksMut<'a, T, U> {
    /// Pair every chunk pair with its index.
    pub fn enumerate(self) -> EnumZipChunksMut<'a, T, U> {
        EnumZipChunksMut { inner: self }
    }

    /// Run `f` on every chunk pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], &mut [U])) + Sync,
    {
        self.enumerate().for_each(|(_, pair)| f(pair));
    }
}

/// Enumerated variant of [`ZipChunksMut`].
pub struct EnumZipChunksMut<'a, T, U> {
    inner: ZipChunksMut<'a, T, U>,
}

impl<'a, T: Send, U: Send> EnumZipChunksMut<'a, T, U> {
    /// Run `f` on every `(index, (chunk_a, chunk_b))`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut [T], &mut [U]))) + Sync,
    {
        let cs = self.inner.chunk_size;
        let (a, b) = (self.inner.a, self.inner.b);
        let (threads, per) = plan(a.len(), cs);
        if threads <= 1 {
            for (i, pair) in a.chunks_mut(cs).zip(b.chunks_mut(cs)).enumerate() {
                f((i, pair));
            }
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest_a = a;
            let mut rest_b = b;
            let mut base = 0usize;
            while !rest_a.is_empty() {
                let take = (per * cs).min(rest_a.len());
                let (ga, ta) = rest_a.split_at_mut(take);
                let (gb, tb) = rest_b.split_at_mut(take);
                rest_a = ta;
                rest_b = tb;
                let bse = base;
                scope.spawn(move || {
                    for (j, pair) in ga.chunks_mut(cs).zip(gb.chunks_mut(cs)).enumerate() {
                        f((bse + j, pair));
                    }
                });
                base += per;
            }
        });
    }

    /// Map every `(index, (chunk_a, chunk_b))` through `f`
    /// (order-preserving).
    pub fn map<R, F>(self, f: F) -> MapEnumZipChunksMut<'a, T, U, F>
    where
        F: Fn((usize, (&mut [T], &mut [U]))) -> R + Sync,
        R: Send,
    {
        MapEnumZipChunksMut {
            inner: self.inner,
            f,
        }
    }
}

/// Pending `map` over enumerated zipped mutable chunks.
pub struct MapEnumZipChunksMut<'a, T, U, F> {
    inner: ZipChunksMut<'a, T, U>,
    f: F,
}

impl<'a, T: Send, U: Send, F> MapEnumZipChunksMut<'a, T, U, F> {
    /// Evaluate the map in parallel and return results in chunk order.
    pub fn collect<R>(self) -> Vec<R>
    where
        F: Fn((usize, (&mut [T], &mut [U]))) -> R + Sync,
        R: Send,
    {
        let cs = self.inner.chunk_size;
        let (a, b) = (self.inner.a, self.inner.b);
        let (threads, per) = plan(a.len(), cs);
        let f = &self.f;
        if threads <= 1 {
            return a
                .chunks_mut(cs)
                .zip(b.chunks_mut(cs))
                .enumerate()
                .map(f)
                .collect();
        }
        let n_chunks = a.len().div_ceil(cs);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest_a = a;
            let mut rest_b = b;
            let mut base = 0usize;
            while !rest_a.is_empty() {
                let take = (per * cs).min(rest_a.len());
                let (ga, ta) = rest_a.split_at_mut(take);
                let (gb, tb) = rest_b.split_at_mut(take);
                rest_a = ta;
                rest_b = tb;
                let bse = base;
                handles.push(scope.spawn(move || {
                    ga.chunks_mut(cs)
                        .zip(gb.chunks_mut(cs))
                        .enumerate()
                        .map(|(j, pair)| f((bse + j, pair)))
                        .collect::<Vec<R>>()
                }));
                base += per;
            }
            let mut out = Vec::with_capacity(n_chunks);
            for h in handles {
                out.extend(h.join().expect("worker thread panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_the_slice_in_order() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, j / 10 + 1);
        }
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let mut data = [0u8; 64];
        data.par_chunks_mut(1).for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let seen = ids.lock().unwrap().len();
        assert!(seen >= 1);
        if super::current_num_threads() > 1 {
            assert!(seen > 1, "expected work on more than one thread");
        }
    }

    #[test]
    fn immutable_chunks_see_the_right_data() {
        let data: Vec<usize> = (0..97).collect();
        let sums = std::sync::Mutex::new(vec![0usize; 10]);
        data.par_chunks(10).enumerate().for_each(|(i, chunk)| {
            sums.lock().unwrap()[i] = chunk.iter().sum();
        });
        let got = sums.into_inner().unwrap();
        for (i, s) in got.iter().enumerate() {
            let want: usize = (i * 10..((i + 1) * 10).min(97)).sum();
            assert_eq!(*s, want, "chunk {i}");
        }
    }

    #[test]
    fn map_collect_preserves_chunk_order() {
        let data: Vec<u32> = (0..57).collect();
        for threads in [1usize, 2, 8] {
            super::set_num_threads(threads);
            let got: Vec<(usize, u32)> = data
                .par_chunks(5)
                .enumerate()
                .map(|(i, c)| (i, c.iter().sum::<u32>()))
                .collect();
            assert_eq!(got.len(), 12);
            for (i, (gi, _)) in got.iter().enumerate() {
                assert_eq!(i, *gi);
            }
            let total: u32 = got.iter().map(|(_, s)| s).sum();
            assert_eq!(total, (0..57).sum::<u32>(), "threads={threads}");
        }
        super::set_num_threads(0);
    }

    #[test]
    fn mutable_map_collect_mutates_and_returns_in_order() {
        let mut data = vec![1u64; 40];
        let partials: Vec<u64> = data
            .par_chunks_mut(7)
            .enumerate()
            .map(|(i, c)| {
                for v in c.iter_mut() {
                    *v += i as u64;
                }
                c.iter().sum()
            })
            .collect();
        assert_eq!(partials.len(), 6);
        let direct: Vec<u64> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(partials, direct);
    }

    #[test]
    fn zip_advances_both_slices_in_lockstep() {
        let mut a = vec![0usize; 33];
        let mut b = vec![0usize; 33];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(4))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for v in ca.iter_mut() {
                    *v = 2 * i;
                }
                for v in cb.iter_mut() {
                    *v = 2 * i + 1;
                }
            });
        for (j, (va, vb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(*va, 2 * (j / 4));
            assert_eq!(*vb, 2 * (j / 4) + 1);
        }
    }

    #[test]
    fn set_num_threads_overrides_the_default() {
        super::set_num_threads(3);
        assert_eq!(super::current_num_threads(), 3);
        super::set_num_threads(0);
        assert!(super::current_num_threads() >= 1);
    }
}
