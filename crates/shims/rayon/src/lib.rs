//! Offline stand-in for the [rayon](https://crates.io/crates/rayon) API
//! surface this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! thin slice of rayon it actually calls — `par_chunks_mut` with
//! `enumerate().for_each(...)` — implemented over `std::thread::scope`.
//! Chunks are distributed in contiguous groups across
//! `available_parallelism()` worker threads, so data-parallel kernels still
//! exercise real multi-threading (the telemetry crate's thread-merge tests
//! rely on that).

#![forbid(unsafe_code)]

/// The items a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IndexedParallelIterator, ParallelSliceMut};
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Slices that can be split into parallel mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of [`slice::chunks_mut`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Marker trait so `use rayon::prelude::*` call sites that name it resolve.
pub trait IndexedParallelIterator {}

/// Parallel mutable chunk iterator (see [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index, preserving slice order.
    pub fn enumerate(self) -> EnumParChunksMut<'a, T> {
        EnumParChunksMut { inner: self }
    }

    /// Run `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> EnumParChunksMut<'a, T> {
    /// Run `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let mut work: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .collect();
        let threads = current_num_threads().min(work.len()).max(1);
        if threads <= 1 {
            for item in work {
                f(item);
            }
            return;
        }
        let per_thread = work.len().div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            while !work.is_empty() {
                let take = per_thread.min(work.len());
                let group: Vec<(usize, &mut [T])> = work.drain(..take).collect();
                scope.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_the_slice_in_order() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, j / 10 + 1);
        }
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let mut data = [0u8; 64];
        data.par_chunks_mut(1).for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let seen = ids.lock().unwrap().len();
        assert!(seen >= 1);
        if super::current_num_threads() > 1 {
            assert!(seen > 1, "expected work on more than one thread");
        }
    }
}
