//! Offline stand-in for the [crossbeam](https://crates.io/crates/crossbeam)
//! API surface this workspace uses: multi-producer multi-consumer unbounded
//! *and bounded* channels with cloneable senders *and* receivers.
//!
//! The build container has no crates.io access; this vendors the one slice
//! the comms layer calls, over `Mutex<VecDeque>` + `Condvar`.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels, mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        /// `usize::MAX` for unbounded channels; otherwise [`Sender::send`]
        /// blocks while the queue holds `capacity` messages.
        capacity: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot.
        space: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half; cloneable (any one receiver gets each message).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned when sending on a channel with no receivers left.
    /// (Never produced by this shim — receivers keep the queue alive —
    /// but kept for API compatibility.)
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders disconnected and the queue drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                capacity: usize::MAX,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    /// Create a bounded channel holding at most `cap` messages. A send on
    /// a full queue blocks until a receiver frees a slot — the sender
    /// experiences backpressure instead of growing the queue without
    /// bound. The queue's backing storage is reserved up front, so sends
    /// within capacity never allocate.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel needs capacity >= 1");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                capacity: cap,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message. On a bounded channel this blocks while the
        /// queue is at capacity (backpressure); unbounded sends never
        /// block.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            while st.queue.len() >= st.capacity {
                st = self.0.space.wait(st).unwrap();
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Enqueue without blocking; returns the message back if the
        /// bounded queue is full.
        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.queue.len() >= st.capacity {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive of an already-queued message.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let v = self.0.state.lock().unwrap().queue.pop_front();
            match v {
                Some(v) => {
                    self.0.space.notify_one();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn cross_thread_exchange() {
        let (tx, rx) = unbounded();
        let (tx2, rx2) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(42u64).unwrap();
                assert_eq!(rx2.recv(), Ok(7u64));
            });
            tx2.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(42));
        });
    }

    #[test]
    fn disconnected_recv_errors() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_at_capacity_until_a_recv_frees_a_slot() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Queue full: try_send reports backpressure instead of growing.
        assert_eq!(tx.try_send(3), Err(SendError(3)));
        std::thread::scope(|s| {
            let t = s.spawn(|| {
                // Blocks until the main thread drains one slot.
                tx.send(3).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
        });
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_capacity_is_preallocated() {
        // Within capacity, sends must not reallocate the backing queue —
        // the distributed hot path counts on this for its zero-allocation
        // steady state.
        let (tx, rx) = bounded::<u64>(4);
        for round in 0..8 {
            for i in 0..4 {
                tx.send(round * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv(), Ok(round * 4 + i));
            }
        }
    }

    #[test]
    fn cloned_endpoints_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        assert_eq!(rx2.recv(), Ok("a"));
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err());
    }
}
