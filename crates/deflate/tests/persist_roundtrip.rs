//! Subspace checkpoint kill/resume: a deflated solve driven by a subspace
//! reloaded from `defl.*` records is bit-identical to the solve driven by
//! the in-memory original — including across a vector-length change on
//! reload, because the records store sites in global lexicographic order
//! and every steering scalar is a canonical reduction. Wrong-lattice and
//! wrong-mass loads raise typed errors instead of corrupting the solve.

use grid::prelude::*;
use qcd_deflate::{build_subspace, defl_cg, Subspace};
use qcd_io::IoError;

const MASS: f64 = 0.1;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "qcd-deflate-persist-{tag}-{}.qio",
        std::process::id()
    ))
}

fn op_on(bits: usize) -> WilsonDirac {
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
    WilsonDirac::new(random_gauge(g, 7), MASS)
}

#[test]
fn reloaded_subspace_reproduces_the_deflated_solve_bitwise() {
    let path = tmp("resume");
    let op = op_on(256);
    let (sub, _rep) = build_subspace(&op, 4, 99);
    sub.save(&path, Precision::F64).unwrap();

    let b = FermionField::random(op.grid().clone(), 11);
    let (x_ref, rep_ref) = defl_cg(&op, &sub, &b, 1e-8, 2000);

    // Same-layout resume: the killed-and-restarted farm job case.
    let back = Subspace::load(&path, op.grid(), MASS).unwrap();
    let (x, rep) = defl_cg(&op, &back, &b, 1e-8, 2000);
    assert_eq!(rep.iterations, rep_ref.iterations);
    assert_eq!(rep.residual.to_bits(), rep_ref.residual.to_bits());
    assert_eq!(rep.history.len(), rep_ref.history.len());
    for (a, r) in rep.history.iter().zip(&rep_ref.history) {
        assert_eq!(a.to_bits(), r.to_bits());
    }
    assert_eq!(x.max_abs_diff(&x_ref), 0.0);

    // Cross-VL resume: a different machine picks up the same checkpoint.
    let op512 = op_on(512);
    let back512 = Subspace::load(&path, op512.grid(), MASS).unwrap();
    let b512 = FermionField::random(op512.grid().clone(), 11);
    let (_x512, rep512) = defl_cg(&op512, &back512, &b512, 1e-8, 2000);
    assert_eq!(rep512.iterations, rep_ref.iterations);
    assert_eq!(rep512.residual.to_bits(), rep_ref.residual.to_bits());
    for (a, r) in rep512.history.iter().zip(&rep_ref.history) {
        assert_eq!(a.to_bits(), r.to_bits());
    }
}

#[test]
fn wrong_mass_load_is_a_typed_error() {
    let path = tmp("mass");
    let op = op_on(256);
    let (sub, _) = build_subspace(&op, 2, 99);
    sub.save(&path, Precision::F64).unwrap();
    let err = Subspace::load(&path, op.grid(), 0.25).err().unwrap();
    match err {
        IoError::MassMismatch { want, found } => {
            assert_eq!(want, 0.25);
            assert_eq!(found, MASS);
        }
        other => panic!("expected MassMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_lattice_load_is_a_typed_error() {
    let path = tmp("lattice");
    let op = op_on(256);
    let (sub, _) = build_subspace(&op, 2, 99);
    sub.save(&path, Precision::F64).unwrap();
    let wrong: std::sync::Arc<Grid> =
        Grid::new([4, 4, 4, 8], VectorLength::of(256), SimdBackend::Fcmla);
    let err = Subspace::load(&path, &wrong, MASS).err().unwrap();
    assert!(
        matches!(err, IoError::GridMismatch { .. }),
        "expected GridMismatch, got {err:?}"
    );
}
