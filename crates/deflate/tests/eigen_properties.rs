//! Property tests of the spectral machinery.
//!
//! * γ₅-Hermiticity: `M† = γ₅ M γ₅` for every lattice shape, vector
//!   length and backend in the sweep — the identity that makes `M†M`
//!   Hermitian positive-definite and the whole deflation story sound.
//! * Eigenpair validity across VL × threads: on one thermalized gauge
//!   configuration (transported between vector lengths through the
//!   layout-independent `qcd-io` records), every Lanczos eigenpair has a
//!   real-positive eigenvalue and an explicitly validated residual
//!   `‖M†M v − θv‖ ≤ tol`, at every vector length and thread count.
//!
//! The VL × threads sweep mutates the global rayon pool, so it lives in a
//! single `#[test]`; the proptest blocks never touch thread state and are
//! insensitive to it (canonical reductions are thread-invariant).

use grid::prelude::*;
use grid::Coor;
use proptest::prelude::*;
use qcd_deflate::{lanczos, LanczosParams};
use qcd_hmc::{HmcParams, IntegratorKind, MarkovChain};
use std::sync::Arc;

/// Random valid configuration: small even lattice dims + any sweep VL +
/// any backend (the `any_cfg` idiom of the core property suite).
fn any_cfg() -> impl Strategy<Value = (Coor, VectorLength, SimdBackend)> {
    (
        proptest::sample::select(vec![
            [2usize, 2, 2, 2],
            [4, 2, 2, 2],
            [2, 4, 2, 4],
            [4, 4, 2, 2],
            [4, 4, 4, 4],
        ]),
        proptest::sample::select(VectorLength::sweep().to_vec()),
        proptest::sample::select(SimdBackend::all().to_vec()),
    )
        .prop_filter("lattice must host the virtual nodes", |(dims, vl, _)| {
            let lanes = vl.lanes64() / 2;
            let twos: u32 = dims.iter().map(|d| d.trailing_zeros()).sum();
            lanes.trailing_zeros() <= twos && lanes.is_power_of_two()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `M† = γ₅ M γ₅`: the Wilson operator is γ₅-Hermitian on every
    /// configuration the sweep can produce.
    #[test]
    fn wilson_operator_is_gamma5_hermitian(
        (dims, vl, backend) in any_cfg(),
        seed in 1u64..500,
        mass in -0.3f64..0.5,
    ) {
        let g = Grid::new(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), mass);
        let y = FermionField::random(g.clone(), seed + 1000);
        let direct = op.apply_dag(&y);
        let sandwiched = gamma5(&op.apply(&gamma5(&y)));
        let mut d = FermionField::zero(g);
        d.sub(&direct, &sandwiched);
        let scale = direct.norm2().sqrt().max(1.0);
        prop_assert!(
            d.norm2().sqrt() <= 1e-12 * scale,
            "‖M†y − γ₅Mγ₅y‖ = {} (scale {})", d.norm2().sqrt(), scale
        );
    }

    /// ⟨M†x, y⟩ = ⟨x, M y⟩: the dagger really is the adjoint under the
    /// canonical inner product.
    #[test]
    fn dagger_is_the_adjoint(
        (dims, vl, backend) in any_cfg(),
        seed in 1u64..500,
        mass in -0.3f64..0.5,
    ) {
        let g = Grid::new(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), mass);
        let x = FermionField::random(g.clone(), seed + 2000);
        let y = FermionField::random(g, seed + 3000);
        let lhs = op.apply_dag(&x).canonical_inner(&y);
        let rhs = x.canonical_inner(&op.apply(&y));
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-10 * scale, "{lhs:?} vs {rhs:?}");
    }

    /// `M†M` is positive-definite: ⟨x, M†M x⟩ = ‖Mx‖² > 0 for any
    /// non-trivial field.
    #[test]
    fn normal_operator_is_positive_definite(
        (dims, vl, backend) in any_cfg(),
        seed in 1u64..500,
        mass in -0.3f64..0.5,
    ) {
        let g = Grid::new(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), mass);
        let x = FermionField::random(g, seed + 4000);
        let quad = x.canonical_inner(&op.mdag_m(&x));
        prop_assert!(quad.re > 0.0, "⟨x, M†Mx⟩ = {quad:?}");
        prop_assert!(quad.im.abs() <= 1e-10 * quad.re, "⟨x, M†Mx⟩ = {quad:?}");
    }
}

/// Eigenpairs stay real-positive with validated residuals at every vector
/// length and thread count. The thermalized configuration is generated
/// once and transported between VLs through its `qcd-io` record (site data
/// is stored in global lexicographic order, so the decode is exact at any
/// layout).
#[test]
fn eigenpairs_are_valid_across_vl_and_threads() {
    const TOL: f64 = 1e-6;
    let gen_grid: Arc<Grid> = Grid::new([4, 4, 2, 2], VectorLength::of(256), SimdBackend::Fcmla);
    let hp = HmcParams {
        beta: 5.6,
        n_steps: 8,
        step_size: 0.0625,
        integrator: IntegratorKind::Omelyan,
    };
    let mut chain = MarkovChain::cold_start(gen_grid.clone(), hp, 5);
    chain.thermalize(10);
    let path =
        std::env::temp_dir().join(format!("qcd-deflate-eigenprops-{}.qio", std::process::id()));
    qcd_io::write_gauge(chain.links(), &path, Precision::F64).unwrap();
    drop(chain);

    let params = LanczosParams {
        nev: 4,
        m: 24,
        tol: TOL,
        max_restarts: 40,
    };
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        for bits in [128usize, 256, 512, 1024, 2048] {
            let g: Arc<Grid> = Grid::new([4, 4, 2, 2], VectorLength::of(bits), SimdBackend::Fcmla);
            let u = qcd_io::read_gauge(&path, &g).unwrap();
            let op = WilsonDirac::new(u, -0.2);
            let (sub, rep) = lanczos(&op, &params, 99);
            let tag = format!("VL {bits} × {threads} threads");
            assert!(
                rep.converged,
                "eigensolve did not converge @ {tag}: {rep:?}"
            );
            for i in 0..sub.nev() {
                assert!(
                    sub.values[i] > 0.0,
                    "eigenvalue {i} = {} not positive @ {tag}",
                    sub.values[i]
                );
                assert!(
                    sub.residuals[i] <= TOL,
                    "residual {i} = {} above {TOL} @ {tag}",
                    sub.residuals[i]
                );
            }
        }
    }
    rayon::set_num_threads(0);
    let _ = std::fs::remove_file(&path);
}
