//! Behavioural tests of the deflated solvers on a thermalized gauge
//! configuration: eigenpair validation, iteration gains over plain CG,
//! per-RHS bit-identity of the batched path, and the request-coalescing
//! contract.
//!
//! A *thermalized* configuration matters here: a random gauge field has no
//! low modes (`λ_min(M†M) ≳ 2.5` even at zero quark mass, because maximal
//! link disorder pushes the additive mass renormalization far from
//! criticality), so deflation would have nothing to deflate. After a short
//! HMC equilibration the spectrum develops the small eigenvalues the
//! subspace is built to remove.

use std::sync::{Arc, OnceLock};

use grid::prelude::*;
use qcd_deflate::{
    coarse_pcg, coarse_pcg_smoothed, defl_block_cg, defl_cg, defl_ladder_solve, defl_mixed_solve,
    galerkin_guess, galerkin_guess_f16, lanczos, solve_deflated_requests, CoarseSpace, F16Smoother,
    LanczosParams, Subspace,
};
use qcd_hmc::{HmcParams, IntegratorKind, MarkovChain};

const MASS: f64 = -0.2;
const TOL: f64 = 1e-8;

struct Fixture {
    grid: Arc<Grid>,
    op: WilsonDirac,
    sub: Subspace,
}

/// Thermalize once, build the subspace once; every test shares the result.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let grid = Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla);
        let hp = HmcParams {
            beta: 5.6,
            n_steps: 8,
            step_size: 0.0625,
            integrator: IntegratorKind::Omelyan,
        };
        let mut chain = MarkovChain::cold_start(grid.clone(), hp, 5);
        chain.thermalize(12);
        let op = WilsonDirac::new(chain.links().clone(), MASS);
        let params = LanczosParams {
            nev: 8,
            m: 24,
            tol: TOL,
            max_restarts: 80,
        };
        let (sub, rep) = lanczos(&op, &params, 99);
        assert!(
            rep.converged,
            "fixture eigensolve did not converge: {rep:?}"
        );
        Fixture { grid, op, sub }
    })
}

#[test]
fn lanczos_eigenpairs_are_validated_and_positive() {
    let f = fixture();
    assert_eq!(f.sub.nev(), 8);
    for i in 0..f.sub.nev() {
        assert!(
            f.sub.values[i] > 0.0,
            "M†M eigenvalue {i} not positive: {}",
            f.sub.values[i]
        );
        assert!(
            f.sub.residuals[i] <= TOL,
            "eigenpair {i} residual {} above tol",
            f.sub.residuals[i]
        );
        if i > 0 {
            assert!(
                f.sub.values[i] >= f.sub.values[i - 1],
                "values not ascending"
            );
        }
    }
    // Ritz vectors are orthonormal to solver accuracy.
    for i in 0..f.sub.nev() {
        for j in 0..=i {
            let ip = f.sub.vectors[j].canonical_inner(&f.sub.vectors[i]);
            let want = if i == j { 1.0 } else { 0.0 };
            assert!(
                (ip.re - want).abs() < 1e-7 && ip.im.abs() < 1e-7,
                "⟨v{j}, v{i}⟩ = {ip:?}"
            );
        }
    }
}

#[test]
fn deflated_cg_converges_in_fewer_iterations_than_plain_cg() {
    let f = fixture();
    let b = FermionField::random(f.grid.clone(), 11);
    let (x_plain, rep_plain) = cg(&f.op, &b, TOL, 6000);
    let (x_defl, rep_defl) = defl_cg(&f.op, &f.sub, &b, TOL, 6000);
    assert!(rep_plain.converged && rep_defl.converged);
    assert!(
        rep_defl.iterations < rep_plain.iterations,
        "deflation gained nothing: {} vs {} iterations",
        rep_defl.iterations,
        rep_plain.iterations
    );
    // Same solution to solver accuracy.
    let mut d = FermionField::zero(f.grid.clone());
    d.sub(&x_plain, &x_defl);
    assert!(d.norm2().sqrt() / x_plain.norm2().sqrt() < 1e-5);
}

#[test]
fn galerkin_guess_nails_in_subspace_rhs() {
    let f = fixture();
    // b = A v0: the exact solution is v0, which lies in the subspace, so
    // the Galerkin guess alone reaches the tolerance almost immediately.
    let b = f.op.mdag_m(&f.sub.vectors[0]);
    let (x, rep) = defl_cg(&f.op, &f.sub, &b, 1e-6, 100);
    assert!(rep.converged);
    assert!(
        rep.iterations <= 2,
        "in-subspace RHS took {} iterations",
        rep.iterations
    );
    let mut d = x.clone();
    d.sub(&x, &f.sub.vectors[0]);
    assert!(d.norm2().sqrt() < 1e-4, "solution is not v0");
}

#[test]
fn block_defl_cg_is_bit_identical_to_single_rhs_defl_cg() {
    let f = fixture();
    let rhss: Vec<FermionField> = (0..3)
        .map(|k| FermionField::random(f.grid.clone(), 21 + k))
        .collect();
    let solo: Vec<_> = rhss
        .iter()
        .map(|b| defl_cg(&f.op, &f.sub, b, TOL, 6000))
        .collect();
    let block = FermionBlock::from_fields(&rhss);
    let (x, rep) = defl_block_cg(&f.op, &f.sub, &block, TOL, 6000);
    for (j, (sx, srep)) in solo.iter().enumerate() {
        assert_eq!(rep.per_rhs_iterations[j], srep.iterations, "RHS {j}");
        assert_eq!(
            rep.residuals[j].to_bits(),
            srep.residual.to_bits(),
            "RHS {j} residual"
        );
        assert_eq!(rep.histories[j].len(), srep.history.len());
        for (a, b) in rep.histories[j].iter().zip(&srep.history) {
            assert_eq!(a.to_bits(), b.to_bits(), "RHS {j} history");
        }
        assert_eq!(x.rhs_field(j).max_abs_diff(sx), 0.0, "RHS {j} solution");
    }
}

#[test]
fn deflated_requests_match_standalone_solves_in_any_order() {
    let f = fixture();
    let rhss: Vec<FermionField> = (0..3)
        .map(|k| FermionField::random(f.grid.clone(), 31 + k))
        .collect();
    let solo: Vec<_> = rhss
        .iter()
        .map(|b| defl_cg(&f.op, &f.sub, b, TOL, 6000))
        .collect();
    for order in [[0usize, 1, 2], [2, 0, 1]] {
        let requests: Vec<_> = order
            .iter()
            .map(|&k| grid::requests::SolveRequest {
                id: 50 + k as u64,
                rhs: rhss[k].clone(),
            })
            .collect();
        let outcomes = solve_deflated_requests(&f.op, &f.sub, &requests, TOL, 6000);
        for (slot, &k) in order.iter().enumerate() {
            assert_eq!(outcomes[slot].id, 50 + k as u64);
            assert_eq!(outcomes[slot].report.iterations, solo[k].1.iterations);
            assert_eq!(
                outcomes[slot].report.residual.to_bits(),
                solo[k].1.residual.to_bits()
            );
            assert_eq!(outcomes[slot].solution.max_abs_diff(&solo[k].0), 0.0);
        }
    }
}

#[test]
fn deflation_composes_with_the_mixed_precision_ladder() {
    let f = fixture();
    let b = FermionField::random(f.grid.clone(), 41);
    let (x_mixed, rep_mixed) = mixed_precision_solve(&f.op, &b, TOL, 1e-5, 50, 600);
    let (x_defl, rep_defl) = defl_mixed_solve(&f.op, &f.sub, &b, TOL, 1e-5, 50, 600);
    assert!(rep_mixed.converged && rep_defl.converged);
    assert!(
        rep_defl.inner_iterations <= rep_mixed.inner_iterations,
        "deflated ladder spent more inner iterations: {} vs {}",
        rep_defl.inner_iterations,
        rep_mixed.inner_iterations
    );
    let mut d = x_mixed.clone();
    d.sub(&x_mixed, &x_defl);
    assert!(d.norm2().sqrt() / x_mixed.norm2().sqrt() < 1e-5);
}

#[test]
#[should_panic(expected = "subspace was built at mass")]
fn wrong_mass_subspace_is_rejected() {
    let f = fixture();
    let other = WilsonDirac::new(random_gauge(f.grid.clone(), 7), 0.25);
    let b = FermionField::random(f.grid.clone(), 11);
    let _ = defl_cg(&other, &f.sub, &b, TOL, 100);
}

#[test]
fn coarse_pcg_beats_plain_cg_on_the_thermalized_config() {
    let f = fixture();
    let cs = CoarseSpace::build(&f.op, &f.sub.vectors, [2, 2, 2, 2]);
    assert_eq!(cs.cdims(), [2, 2, 2, 2]);
    assert_eq!(cs.ncoarse(), 16 * f.sub.nev());
    let b = FermionField::random(f.grid.clone(), 11);
    let (x_plain, rep_plain) = cg(&f.op, &b, TOL, 6000);
    let (x_pcg, rep_pcg) = coarse_pcg(&f.op, &cs, &b, TOL, 6000);
    assert!(rep_plain.converged && rep_pcg.converged);
    assert!(
        rep_pcg.iterations < rep_plain.iterations,
        "coarse correction gained nothing: {} vs {} iterations",
        rep_pcg.iterations,
        rep_plain.iterations
    );
    let mut d = FermionField::zero(f.grid.clone());
    d.sub(&x_plain, &x_pcg);
    assert!(d.norm2().sqrt() / x_plain.norm2().sqrt() < 1e-5);
}

#[test]
fn restriction_is_the_adjoint_of_prolongation() {
    let f = fixture();
    let cs = CoarseSpace::build(&f.op, &f.sub.vectors[..4], [2, 2, 2, 2]);
    let fine = FermionField::random(f.grid.clone(), 61);
    // Any coarse vector with deterministic non-trivial entries.
    let y: Vec<Complex> = (0..cs.ncoarse())
        .map(|k| Complex::new(0.3 + 0.01 * k as f64, -0.2 + 0.02 * k as f64))
        .collect();
    let mut py = FermionField::zero(f.grid.clone());
    cs.prolong_into(&y, &mut py);
    let rf = cs.restrict(&fine);
    // ⟨P† f, y⟩_coarse must equal ⟨f, P y⟩_fine.
    let lhs: Complex = rf
        .iter()
        .zip(&y)
        .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b);
    let rhs = fine.canonical_inner(&py);
    assert!(
        (lhs - rhs).abs() < 1e-10 * (1.0 + rhs.abs()),
        "⟨P†f, y⟩ = {lhs:?} vs ⟨f, Py⟩ = {rhs:?}"
    );
}

#[test]
fn coarse_preconditioner_is_positive_definite() {
    let f = fixture();
    let cs = CoarseSpace::build(&f.op, &f.sub.vectors[..4], [2, 2, 2, 2]);
    for seed in [71u64, 72, 73] {
        let r = FermionField::random(f.grid.clone(), seed);
        let z = cs.precondition(&r);
        let rz = r.canonical_inner(&z);
        assert!(
            rz.re > 0.0 && rz.im.abs() < 1e-9 * rz.re,
            "⟨r, M⁻¹r⟩ = {rz:?} not real-positive (seed {seed})"
        );
    }
}

#[test]
fn f16_galerkin_guess_tracks_the_f64_projection() {
    let f = fixture();
    let b = FermionField::random(f.grid.clone(), 51);
    let x64 = galerkin_guess(&f.sub, &b);
    let x16 = galerkin_guess_f16(&f.sub, &b);
    let mut d = FermionField::zero(f.grid.clone());
    d.sub(&x64, &x16);
    let rel = (d.norm2() / x64.norm2()).sqrt();
    // Each projection term carries binary16 grain (~5·10⁻⁴ relative) from
    // the re-laid-out vectors, twice (inner product and accumulation).
    assert!(rel < 5e-2, "f16 projection off by {rel}");
    assert!(rel > 0.0, "suspiciously exact — f16 path not exercised?");
}

#[test]
fn deflation_composes_with_the_f16_inner_ladder() {
    let f = fixture();
    let b = FermionField::random(f.grid.clone(), 41);
    let cfg = grid::mixed::LadderConfig::new(TOL);
    let (x_plain, rep_plain) = grid::mixed::ladder_solve(&f.op, &b, &cfg);
    let (x_defl, rep_defl) = defl_ladder_solve(&f.op, &f.sub, &b, &cfg);
    assert!(rep_plain.converged && rep_defl.converged);
    assert!(
        rep_defl.f16_iterations > 0,
        "f16 tier never ran: {rep_defl:?}"
    );
    // The f16-applied guess removes the low modes to binary16 grain, so
    // the deflated ladder never needs *more* total inner work.
    let inner = |r: &grid::mixed::LadderReport| r.f16_iterations + r.f32_iterations;
    assert!(
        inner(&rep_defl) <= inner(&rep_plain),
        "deflated ladder spent more inner iterations: {} vs {}",
        inner(&rep_defl),
        inner(&rep_plain)
    );
    let mut d = FermionField::zero(f.grid.clone());
    d.sub(&x_plain, &x_defl);
    assert!(d.norm2().sqrt() / x_plain.norm2().sqrt() < 1e-5);
}

#[test]
fn f16_smoothed_pcg_converges_to_the_same_solution() {
    let f = fixture();
    let cs = CoarseSpace::build(&f.op, &f.sub.vectors, [2, 2, 2, 2]);
    let b = FermionField::random(f.grid.clone(), 11);
    let (x_pcg, rep_pcg) = coarse_pcg(&f.op, &cs, &b, TOL, 6000);
    let mut sm = F16Smoother::with_defaults(&f.op);
    let (x_sm, rep_sm) = coarse_pcg_smoothed(&f.op, &cs, &mut sm, &b, TOL, 6000);
    assert!(rep_pcg.converged && rep_sm.converged);
    // The additive f16 term perturbs the preconditioner at the binary16
    // grain — it must not derail convergence (small slack over the
    // unsmoothed count covers the perturbation).
    assert!(
        rep_sm.iterations <= rep_pcg.iterations + rep_pcg.iterations / 5 + 2,
        "smoothing derailed PCG: {} vs {} iterations",
        rep_sm.iterations,
        rep_pcg.iterations
    );
    let mut d = FermionField::zero(f.grid.clone());
    d.sub(&x_pcg, &x_sm);
    assert!(d.norm2().sqrt() / x_pcg.norm2().sqrt() < 1e-5);
    // The smoother genuinely ran in binary16, and rerunning it on the
    // same right-hand side is deterministic bit for bit.
    let (x_sm2, rep_sm2) = coarse_pcg_smoothed(&f.op, &cs, &mut sm, &b, TOL, 6000);
    assert_eq!(rep_sm2.iterations, rep_sm.iterations);
    assert_eq!(rep_sm2.residual.to_bits(), rep_sm.residual.to_bits());
    assert_eq!(x_sm2.max_abs_diff(&x_sm), 0.0);
}

#[test]
fn galerkin_guess_is_the_projected_exact_solve() {
    let f = fixture();
    let b = FermionField::random(f.grid.clone(), 51);
    let x0 = galerkin_guess(&f.sub, &b);
    // ⟨v_i, A x₀⟩ = ⟨v_i, b⟩ for every subspace direction: the low-mode
    // part of the residual b − A x₀ vanishes to eigensolver accuracy.
    let ax0 = f.op.mdag_m(&x0);
    for (i, v) in f.sub.vectors.iter().enumerate() {
        let lhs = v.canonical_inner(&ax0);
        let rhs = v.canonical_inner(&b);
        assert!(
            (lhs - rhs).abs() < 1e-6,
            "direction {i}: ⟨v,Ax₀⟩ = {lhs:?} vs ⟨v,b⟩ = {rhs:?}"
        );
    }
}
