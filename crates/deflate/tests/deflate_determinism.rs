//! The acceptance property of the deflation subsystem: eigenpairs and
//! deflated residual histories are **bit-identical** across every SVE
//! vector length (128…2048 bits) and thread count (1, 2, 8).
//!
//! Eigenvector *storage* is layout-dependent (virtual-node interleaving
//! differs per VL), so vectors are compared through the layout-independent
//! scalar accessor in global lexicographic site order — the same canonical
//! order every steering reduction uses.
//!
//! `rayon::set_num_threads` mutates process-global state, so this file is a
//! single `#[test]` in its own integration-test binary.

use grid::prelude::*;
use grid::FieldKind;
use qcd_deflate::{defl_cg, lanczos, LanczosParams};

struct Signature {
    values: Vec<u64>,
    eig_residuals: Vec<u64>,
    vector_bits: Vec<u64>,
    iterations: usize,
    residual: u64,
    history: Vec<u64>,
    solution_bits: Vec<u64>,
}

fn field_bits(f: &FermionField) -> Vec<u64> {
    let g = f.grid();
    let mut bits = Vec::with_capacity(g.volume() * grid::field::FermionKind::NCOMP * 2);
    for site in 0..g.volume() {
        let x = grid::layout::delex(site, &g.fdims());
        for comp in 0..grid::field::FermionKind::NCOMP {
            let z = f.peek(&x, comp);
            bits.push(z.re.to_bits());
            bits.push(z.im.to_bits());
        }
    }
    bits
}

fn run(bits: usize) -> Signature {
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 7);
    let op = WilsonDirac::new(u, 0.1);
    let params = LanczosParams {
        nev: 4,
        m: 12,
        tol: 1e-8,
        max_restarts: 4,
    };
    // 4 restarts on a random-gauge spectrum do not converge — irrelevant
    // here: the claim is that whatever the solver computes is the same to
    // the last bit everywhere, converged or not.
    let (sub, _rep) = lanczos(&op, &params, 99);
    let b = FermionField::random(g, 11);
    let (x, rep) = defl_cg(&op, &sub, &b, 1e-8, 2000);
    assert!(rep.converged, "deflated solve must converge at VL {bits}");
    Signature {
        values: sub.values.iter().map(|v| v.to_bits()).collect(),
        eig_residuals: sub.residuals.iter().map(|v| v.to_bits()).collect(),
        vector_bits: sub.vectors.iter().flat_map(field_bits).collect(),
        iterations: rep.iterations,
        residual: rep.residual.to_bits(),
        history: rep.history.iter().map(|v| v.to_bits()).collect(),
        solution_bits: field_bits(&x),
    }
}

#[test]
fn eigenpairs_and_deflated_histories_are_bit_identical_across_vl_and_threads() {
    rayon::set_num_threads(1);
    let reference = run(128);
    assert!(!reference.values.is_empty());

    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        for bits in [128usize, 256, 512, 1024, 2048] {
            if threads == 1 && bits == 128 {
                continue; // the reference itself
            }
            let s = run(bits);
            let tag = format!("VL {bits} × {threads} threads");
            assert_eq!(s.values, reference.values, "eigenvalues @ {tag}");
            assert_eq!(
                s.eig_residuals, reference.eig_residuals,
                "eigen residuals @ {tag}"
            );
            assert_eq!(s.vector_bits, reference.vector_bits, "Ritz vectors @ {tag}");
            assert_eq!(s.iterations, reference.iterations, "iterations @ {tag}");
            assert_eq!(s.residual, reference.residual, "final residual @ {tag}");
            assert_eq!(s.history, reference.history, "residual history @ {tag}");
            assert_eq!(s.solution_bits, reference.solution_bits, "solution @ {tag}");
        }
    }
    rayon::set_num_threads(0);
}
