//! `qcd-deflate`: low-mode deflation and coarse-grid preconditioning for
//! many-RHS campaigns.
//!
//! Lattice campaigns solve the same Wilson operator against dozens to
//! thousands of right-hand sides per gauge configuration. Near the
//! physical mass the cost is dominated by a handful of tiny `M†M`
//! eigenvalues that every solve re-discovers the hard way. This crate
//! computes that low-mode subspace **once** and recycles it:
//!
//! * **Eigensolver** ([`lanczos`]): deterministic thick-restart Lanczos
//!   with full reorthogonalization on `M†M`, producing a [`Subspace`] of
//!   validated eigenpairs (explicit `‖Av − θv‖` residuals, not estimates).
//! * **Deflated solves** ([`defl`]): [`defl_cg`] projects the low modes
//!   out of each RHS via the Galerkin guess `x₀ = V (V†AV)⁻¹ V† b`;
//!   [`defl_block_cg`] recycles one subspace across a whole N-RHS batch
//!   with per-RHS results bit-identical to the single-RHS path;
//!   [`defl_mixed_solve`] seeds the mixed-precision defect-correction
//!   ladder; [`solve_deflated_requests`] is the coalescing entry point a
//!   job farm drives.
//! * **Coarse grid** ([`coarse`]): cell-blocked near-null vectors,
//!   Galerkin triple-product coarse operator, and a two-level
//!   preconditioner inside CG ([`coarse_pcg`]).
//! * **Persistence** ([`persist`]): subspaces stored as `qcd-io/v1`
//!   `defl.*` records at f64/f32/f16 tiers, validated on load
//!   (wrong-lattice and wrong-mass are typed errors), so farm jobs load a
//!   shared subspace instead of recomputing it.
//!
//! # Determinism
//!
//! Everything here is bit-identical across SVE vector lengths, thread
//! counts, and (for the building blocks it shares with `dist`) ranks:
//! every scalar that steers an iteration is a *canonical* reduction
//! (global-lexicographic scatter, fixed chunk-tree sum), dense linear
//! algebra is fixed-order scalar arithmetic ([`dense`]), and intergrid
//! transfers use the layout-independent scalar accessors. Eigenpairs,
//! deflated residual histories, and coarse-corrected solves reproduce to
//! the last bit on any machine — the property the determinism suites
//! assert across VL ∈ {128…2048} × threads ∈ {1,2,8}.
//!
//! Solves run under `solver.deflate` spans, the eigensolver under
//! `eig.lanczos`, the coarse machinery under `mg.coarse`; health events
//! surface through the shared [`qcd_metrics`] monitor exactly like the
//! `grid` solvers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarse;
pub mod defl;
pub mod dense;
pub mod lanczos;
pub mod persist;
pub mod requests;

pub use coarse::{coarse_pcg, coarse_pcg_smoothed, CoarseSpace, F16Smoother};
pub use defl::{
    defl_block_cg, defl_cg, defl_ladder_solve, defl_mixed_solve, galerkin_guess, galerkin_guess_f16,
};
pub use lanczos::{build_subspace, lanczos, EigenReport, LanczosParams, Subspace};
pub use requests::solve_deflated_requests;
