//! Subspace persistence: save/load a [`Subspace`] as `qcd-io/v1`
//! `defl.*` records.
//!
//! Thin wrappers over [`qcd_io::subspace`] (which speaks in primitives so
//! `qcd-io` carries no dependency on this crate). Files are portable
//! across SVE vector lengths — payloads are serialized in global site
//! order — and validated on load: wrong lattice ⇒
//! [`qcd_io::IoError::GridMismatch`], wrong mass ⇒
//! [`qcd_io::IoError::MassMismatch`] (bit-exact comparison). An f64-tier
//! file reloads the eigenvectors bit-identically, so a solve deflated with
//! a reloaded subspace reproduces the original solve to the last bit; the
//! f32/f16 tiers trade that for footprint (the reloaded vectors still
//! deflate, with residuals degraded to the storage precision).

use crate::lanczos::Subspace;
use grid::codec::Precision;
use grid::Grid;
use std::path::Path;
use std::sync::Arc;
use sve::SveFloat;

impl<E: SveFloat> Subspace<E> {
    /// Write the subspace to `path` atomically at the chosen precision
    /// tier.
    pub fn save(&self, path: &Path, precision: Precision) -> qcd_io::Result<u64> {
        qcd_io::write_subspace(
            &self.vectors,
            &self.values,
            &self.residuals,
            self.mass,
            path,
            precision,
        )
    }

    /// Load a subspace written by [`Subspace::save`] onto `grid`, for use
    /// with an operator at `mass`. Typed errors for wrong lattice or
    /// wrong mass; see the module docs.
    pub fn load(path: &Path, grid: &Arc<Grid<E>>, mass: f64) -> qcd_io::Result<Self> {
        let data = qcd_io::read_subspace::<E>(path, grid, mass)?;
        Ok(Subspace {
            vectors: data.vectors,
            values: data.values,
            residuals: data.residuals,
            mass: data.mass,
        })
    }
}
