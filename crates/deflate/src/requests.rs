//! Deflated solve-request coalescing: the entry point a job service drives
//! when a shared subspace is available.
//!
//! Mirrors [`grid::requests::solve_cg_requests`] — gather pending
//! requests into one [`FermionBlock`], dispatch one batched deflated
//! solve, demultiplex per-request outcomes — with the same contract: each
//! outcome is bit-identical to a standalone [`defl_cg`](crate::defl_cg)
//! of its RHS, regardless of batch composition or arrival order. Batching
//! stays purely an amortization decision even with deflation in the loop.

use crate::defl::defl_block_cg;
use crate::lanczos::Subspace;
use grid::dirac::WilsonDirac;
use grid::field::FermionBlock;
use grid::requests::{SolveOutcome, SolveRequest};
use grid::solver::SolveReport;

/// Coalesce `requests` into one [`defl_block_cg`] dispatch and
/// demultiplex the results per request. Batch fill is recorded in the
/// `solver.requests.batch_fill` histogram like the undeflated path.
pub fn solve_deflated_requests(
    op: &WilsonDirac,
    sub: &Subspace,
    requests: &[SolveRequest],
    tol: f64,
    max_iter: usize,
) -> Vec<SolveOutcome> {
    assert!(
        !requests.is_empty(),
        "cannot coalesce an empty request batch"
    );
    let grid = requests[0].rhs.grid().clone();
    let mut block = FermionBlock::zero(grid, requests.len());
    for (i, req) in requests.iter().enumerate() {
        block.set_rhs(i, &req.rhs);
    }
    let span = qcd_trace::span!("solver.requests", block.grid().engine().ctx());
    qcd_metrics::histogram("solver.requests.batch_fill").record(requests.len() as u64);
    let (x, rep) = defl_block_cg(op, sub, &block, tol, max_iter);
    drop(span);
    requests
        .iter()
        .enumerate()
        .map(|(j, req)| SolveOutcome {
            id: req.id,
            solution: x.rhs_field(j),
            report: SolveReport {
                iterations: rep.per_rhs_iterations[j],
                residual: rep.residuals[j],
                converged: rep.converged[j],
                history: rep.histories[j].clone(),
                health: rep.health[j].clone(),
                telemetry: rep.telemetry.clone(),
            },
        })
        .collect()
}
