//! Multigrid-style coarse-grid correction: a two-level preconditioner for
//! CG built from blocked near-null vectors.
//!
//! Deflation (see [`crate::defl`]) removes the low modes it has *exactly*;
//! the coarse-grid correction removes the whole *subspace they locally
//! span*. The lattice is blocked into cells, the near-null vectors are
//! orthonormalized cell by cell (each vector chopped into per-cell
//! fragments — the classic "blocking" that gives the coarse space local
//! resolution), and their span defines a prolongator `P`. The coarse
//! operator is the Galerkin triple product `A_c = P† A P`, assembled
//! column by column (prolong a unit coarse vector, apply the fine
//! operator, restrict) and factored once by a deterministic complex
//! Cholesky. The preconditioner is then
//!
//! ```text
//! M⁻¹ r = (I − P P†) r + P A_c⁻¹ P† r
//! ```
//!
//! — identity on the complement of the coarse space, the exact coarse
//! solve on it. Both terms are Hermitian positive-definite, so `M⁻¹` is a
//! valid (fixed, linear) CG preconditioner, and [`coarse_pcg`] runs
//! standard preconditioned CG with it.
//!
//! # Determinism
//!
//! The intergrid transfers walk sites in **global lexicographic order**
//! through the layout-independent scalar accessors (`peek`/`poke`), the
//! coarse solve is fixed-order scalar arithmetic, and the fine-grid
//! scalars are canonical reductions — the whole preconditioned solve is
//! bit-identical across vector lengths and thread counts, like everything
//! else in this crate.

use crate::dense::Cholesky;
use grid::dirac::WilsonDirac;
use grid::field::FermionKind;
use grid::layout::{delex, lex};
use grid::mixed::{to_precision, to_precision_into};
use grid::solver::{SolveReport, SolverWorkspace, HISTORY_CAP};
use grid::{Complex, Coor, Field, FieldKind, Grid};
use qcd_metrics::HealthMonitor;
use std::sync::Arc;
use sve::{SveFloat, F16};

/// A built two-level coarse space: blocked orthonormal near-null vectors
/// plus the factored Galerkin coarse operator.
pub struct CoarseSpace<E: SveFloat = f64> {
    grid: Arc<Grid<E>>,
    /// Coarse-lattice extent per dimension (`fdims / cell`).
    cdims: Coor,
    /// Sites of each cell, in global lexicographic order.
    cell_sites: Vec<Vec<Coor>>,
    /// Near-null vectors after per-cell orthonormalization. `chi[k]`
    /// restricted to one cell is one column of the prolongator.
    chi: Vec<Field<FermionKind, E>>,
    /// Cholesky factor of the Galerkin coarse operator `P† A P`.
    chol: Cholesky,
}

impl<E: SveFloat> CoarseSpace<E> {
    /// Dimension of the coarse space (`ncells × nv`).
    pub fn ncoarse(&self) -> usize {
        self.cell_sites.len() * self.chi.len()
    }

    /// Number of near-null vectors per cell.
    pub fn nv(&self) -> usize {
        self.chi.len()
    }

    /// Block `near_null` over cells of extent `cell`, orthonormalize per
    /// cell, and assemble + factor the Galerkin coarse operator for `op`.
    /// Runs under an `mg.coarse` span; the coarse dimension lands in the
    /// `mg.coarse.dim` histogram.
    pub fn build(op: &WilsonDirac<E>, near_null: &[Field<FermionKind, E>], cell: Coor) -> Self {
        let grid = op.grid().clone();
        let span = qcd_trace::span!("mg.coarse", grid.engine().ctx());
        let nv = near_null.len();
        assert!(nv > 0, "need at least one near-null vector");
        let fdims = grid.fdims();
        let mut cdims = [0usize; 4];
        for d in 0..4 {
            assert!(
                cell[d] >= 1 && fdims[d].is_multiple_of(cell[d]),
                "cell extent {} does not divide lattice extent {} in dim {d}",
                cell[d],
                fdims[d]
            );
            cdims[d] = fdims[d] / cell[d];
        }
        let ncells: usize = cdims.iter().product();

        // Bucket global sites into cells, preserving lexicographic order
        // within each bucket.
        let mut cell_sites: Vec<Vec<Coor>> = vec![Vec::new(); ncells];
        for idx in 0..grid.volume() {
            let x = delex(idx, &fdims);
            let cx = [
                x[0] / cell[0],
                x[1] / cell[1],
                x[2] / cell[2],
                x[3] / cell[3],
            ];
            cell_sites[lex(&cx, &cdims)].push(x);
        }

        // Per-cell modified Gram–Schmidt over the near-null vectors, in
        // fixed (cell, vector, site) order through the scalar accessors.
        let mut chi: Vec<Field<FermionKind, E>> = near_null.to_vec();
        for sites in &cell_sites {
            for k in 0..nv {
                for l in 0..k {
                    let mut h = Complex::ZERO;
                    for x in sites {
                        for comp in 0..FermionKind::NCOMP {
                            h += chi[l].peek(x, comp).conj() * chi[k].peek(x, comp);
                        }
                    }
                    for x in sites {
                        for comp in 0..FermionKind::NCOMP {
                            let z = chi[k].peek(x, comp) - h * chi[l].peek(x, comp);
                            chi[k].poke(x, comp, z);
                        }
                    }
                }
                let mut n2 = 0.0;
                for x in sites {
                    for comp in 0..FermionKind::NCOMP {
                        n2 += chi[k].peek(x, comp).norm2();
                    }
                }
                assert!(
                    n2 > 0.0,
                    "near-null vectors are rank-deficient on a cell \
                     (vector {k}): coarse space would be singular"
                );
                let inv = 1.0 / n2.sqrt();
                for x in sites {
                    for comp in 0..FermionKind::NCOMP {
                        let z = chi[k].peek(x, comp).scale(inv);
                        chi[k].poke(x, comp, z);
                    }
                }
            }
        }

        // Galerkin triple product, column by column: A_c e = P† A P e.
        let nc = ncells * nv;
        let mut half = CoarseSpace {
            grid: grid.clone(),
            cdims,
            cell_sites,
            chi,
            chol: Cholesky::factor(&[Complex::ONE], 1), // placeholder
        };
        let mut ac = vec![Complex::ZERO; nc * nc];
        let mut fine = Field::<FermionKind, E>::zero(grid.clone());
        let mut tmp = Field::<FermionKind, E>::zero(grid.clone());
        let mut afine = Field::<FermionKind, E>::zero(grid.clone());
        let mut unit = vec![Complex::ZERO; nc];
        for col in 0..nc {
            unit[col] = Complex::ONE;
            half.prolong_into(&unit, &mut fine);
            unit[col] = Complex::ZERO;
            op.mdag_m_into(&fine, &mut tmp, &mut afine);
            let column = half.restrict(&afine);
            for (row, &z) in column.iter().enumerate() {
                ac[row * nc + col] = z;
            }
        }
        // A is Hermitian, so A_c is too up to rounding; symmetrize exactly
        // so the Cholesky sees a Hermitian matrix bit for bit.
        for i in 0..nc {
            for j in 0..i {
                let z = (ac[i * nc + j] + ac[j * nc + i].conj()).scale(0.5);
                ac[i * nc + j] = z;
                ac[j * nc + i] = z.conj();
            }
            ac[i * nc + i] = Complex::new(ac[i * nc + i].re, 0.0);
        }
        half.chol = Cholesky::factor(&ac, nc);
        qcd_metrics::histogram("mg.coarse.dim").record(nc as u64);
        span.finish();
        half
    }

    /// Restriction `P† f`: coarse coefficient `(c, k)` is the inner
    /// product of `chi_k`'s cell-`c` fragment with `f`.
    pub fn restrict(&self, f: &Field<FermionKind, E>) -> Vec<Complex> {
        let nv = self.chi.len();
        let mut y = vec![Complex::ZERO; self.ncoarse()];
        for (c, sites) in self.cell_sites.iter().enumerate() {
            for (k, chi) in self.chi.iter().enumerate() {
                let mut s = Complex::ZERO;
                for x in sites {
                    for comp in 0..FermionKind::NCOMP {
                        s += chi.peek(x, comp).conj() * f.peek(x, comp);
                    }
                }
                y[c * nv + k] = s;
            }
        }
        y
    }

    /// Prolongation `out = P y`: each coarse coefficient scales its
    /// vector's cell fragment into the fine field.
    pub fn prolong_into(&self, y: &[Complex], out: &mut Field<FermionKind, E>) {
        assert_eq!(y.len(), self.ncoarse(), "coarse vector length mismatch");
        let nv = self.chi.len();
        out.data_mut().fill(E::zero());
        for (c, sites) in self.cell_sites.iter().enumerate() {
            for (k, chi) in self.chi.iter().enumerate() {
                let coef = y[c * nv + k];
                if coef == Complex::ZERO {
                    continue;
                }
                for x in sites {
                    for comp in 0..FermionKind::NCOMP {
                        let z = out.peek(x, comp) + coef * chi.peek(x, comp);
                        out.poke(x, comp, z);
                    }
                }
            }
        }
    }

    /// Apply the two-level preconditioner:
    /// `M⁻¹ r = r + P (A_c⁻¹ P† r − P† r)`.
    pub fn precondition(&self, r: &Field<FermionKind, E>) -> Field<FermionKind, E> {
        let y = self.restrict(r);
        let mut z = y.clone();
        self.chol.solve(&mut z);
        for (zi, yi) in z.iter_mut().zip(y.iter()) {
            *zi -= *yi;
        }
        let mut correction = Field::<FermionKind, E>::zero(self.grid.clone());
        self.prolong_into(&z, &mut correction);
        correction.add_assign_field(r);
        correction
    }

    /// The coarse-lattice extent (`fdims / cell`).
    pub fn cdims(&self) -> Coor {
        self.cdims
    }
}

/// A fixed-polynomial **binary16 smoother**: `steps` Richardson sweeps
/// `s ← s + ω (r − A s)` on the normal operator, run entirely in f16
/// arithmetic through the real Dirac kernels on an F16 replica of the
/// gauge field. After `k` steps `s = p_k(A) r` with
/// `p_k(A) = ω Σ_{j<k} (I − ωA)^j`, a polynomial in `A` that is Hermitian
/// positive-definite whenever `0 < ω ≤ 1/λ_max` — so adding it to the
/// two-level correction keeps the preconditioner HPD.
///
/// The input residual is normalized to unit norm before the f16
/// conversion (the smoother is linear, so the scale commutes out
/// exactly up to f16 rounding of the scaled field) — the same range
/// trick the solver ladder's inner tier uses, keeping the iterate clear
/// of the binary16 floor as CG drives `r` down. Every sweep is
/// pointwise fixed-order arithmetic with **no reductions**, so the
/// smoother is bit-identical across vector lengths and thread counts
/// like the rest of the preconditioner.
pub struct F16Smoother<E: SveFloat = f64> {
    op16: WilsonDirac<F16>,
    omega: f64,
    steps: usize,
    r16: Field<FermionKind, F16>,
    s16: Field<FermionKind, F16>,
    t16: Field<FermionKind, F16>,
    ws16: SolverWorkspace<F16>,
    fine: Field<FermionKind, E>,
}

impl<E: SveFloat> F16Smoother<E> {
    /// Conservative default damping factor `1/64`: an under-estimate of
    /// `1/λ_max(M†M)` for Wilson operators anywhere near the physical
    /// region (`λ_max ≲ (8 + 2|m|)²/…` is safely below 64 on the lattices
    /// this crate targets).
    pub const DEFAULT_OMEGA: f64 = 1.0 / 64.0;
    /// Default sweep count: enough to damp the top of the spectrum,
    /// cheap enough (in f16 bytes) to disappear next to the fine
    /// operator applications of the CG iteration itself.
    pub const DEFAULT_STEPS: usize = 4;

    /// Build the F16 replica of `op` and the smoother workspaces.
    pub fn new(op: &WilsonDirac<E>, omega: f64, steps: usize) -> Self {
        assert!(omega > 0.0, "Richardson damping must be positive");
        assert!(steps > 0, "a zero-step smoother is the zero operator");
        let g = op.grid();
        let g16 = Grid::<F16>::new(g.fdims(), g.vl(), g.engine().backend());
        let u16 = to_precision(op.gauge(), &g16);
        F16Smoother {
            op16: WilsonDirac::<F16>::new(u16, op.mass),
            omega,
            steps,
            r16: Field::zero(g16.clone()),
            s16: Field::zero(g16.clone()),
            t16: Field::zero(g16.clone()),
            ws16: SolverWorkspace::new(g16),
            fine: Field::zero(g.clone()),
        }
    }

    /// `new` with the default `ω` and sweep count.
    pub fn with_defaults(op: &WilsonDirac<E>) -> Self {
        Self::new(op, Self::DEFAULT_OMEGA, Self::DEFAULT_STEPS)
    }

    /// Accumulate the smoothed residual: `out += p_k(A) r`, the polynomial
    /// applied in binary16.
    pub fn accumulate(&mut self, r: &Field<FermionKind, E>, out: &mut Field<FermionKind, E>) {
        let rn2 = r.canonical_norm2();
        if rn2.is_nan() || rn2 <= 0.0 {
            return; // smoothing a zero residual is a no-op
        }
        let scale = rn2.sqrt();
        self.fine.clone_from(r);
        self.fine.scale(1.0 / scale);
        to_precision_into(&self.fine, &mut self.r16);
        self.s16.scale(0.0);
        for _ in 0..self.steps {
            self.op16
                .mdag_m_into(&self.s16, &mut self.ws16.tmp, &mut self.t16);
            self.ws16.ap.sub(&self.r16, &self.t16);
            self.s16.axpy_inplace(self.omega, &self.ws16.ap);
        }
        to_precision_into(&self.s16, &mut self.fine);
        out.axpy_inplace(scale, &self.fine);
        qcd_metrics::counter("mg.smoother.f16_sweeps").add(self.steps as u64);
    }
}

/// Preconditioned Conjugate Gradient on `M†M` with the two-level coarse
/// correction of `cs` as the (fixed, HPD) preconditioner. Every steering
/// scalar is canonical; convergence is tested on the true residual norm
/// `|r|/|b|` like the unpreconditioned CG, so iteration counts compare
/// directly. Runs under an `mg.coarse` span with health monitoring in the
/// `solver.coarse_pcg` region.
pub fn coarse_pcg<E: SveFloat>(
    op: &WilsonDirac<E>,
    cs: &CoarseSpace<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    coarse_pcg_inner(op, cs, None, b, tol, max_iter)
}

/// [`coarse_pcg`] with an additive [`F16Smoother`] term in the
/// preconditioner: `M⁻¹ r = (I − P P†) r + P A_c⁻¹ P† r + p_k(A) r`, the
/// last term computed in binary16. The coarse solve removes the low end
/// of the spectrum, the smoother damps the high end — and the smoother's
/// operator applications run at half precision, moving that slice of the
/// preconditioning work onto the f16 compute tier.
pub fn coarse_pcg_smoothed<E: SveFloat>(
    op: &WilsonDirac<E>,
    cs: &CoarseSpace<E>,
    smoother: &mut F16Smoother<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    coarse_pcg_inner(op, cs, Some(smoother), b, tol, max_iter)
}

fn coarse_pcg_inner<E: SveFloat>(
    op: &WilsonDirac<E>,
    cs: &CoarseSpace<E>,
    mut smoother: Option<&mut F16Smoother<E>>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    let grid = b.grid().clone();
    let span = qcd_trace::span!("mg.coarse", grid.engine().ctx());
    let mut monitor = HealthMonitor::new("solver.coarse_pcg");
    let mut ws = SolverWorkspace::<E>::new(grid.clone());

    let b_norm2 = b.canonical_norm2();
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
    let mut x = Field::<FermionKind, E>::zero(grid.clone());
    let mut r = b.clone();
    let mut r2 = b_norm2;
    let mut z = cs.precondition(&r);
    if let Some(sm) = smoother.as_deref_mut() {
        sm.accumulate(&r, &mut z);
    }
    let mut p = z.clone();
    let mut rz = r.canonical_inner_re(&z);
    let mut history = vec![(r2 / b_norm2).sqrt()];
    monitor.replay(&history);

    let mut iterations = 0;
    while iterations < max_iter && r2 > tol * tol * b_norm2 {
        op.mdag_m_into(&p, &mut ws.tmp, &mut ws.ap);
        let p_ap = p.canonical_inner_re(&ws.ap);
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = rz / p_ap;
        x.axpy_inplace(alpha, &p);
        r.axpy_inplace(-alpha, &ws.ap);
        r2 = r.canonical_norm2();
        iterations += 1;
        history.push((r2 / b_norm2).sqrt());
        monitor.observe(*history.last().unwrap());
        if r2 <= tol * tol * b_norm2 {
            break;
        }
        z = cs.precondition(&r);
        if let Some(sm) = smoother.as_deref_mut() {
            sm.accumulate(&r, &mut z);
        }
        let rz_new = r.canonical_inner_re(&z);
        let beta = rz_new / rz;
        p.aypx(beta, &z);
        rz = rz_new;
    }

    let converged = r2 <= tol * tol * b_norm2;
    op.mdag_m_into(&x, &mut ws.tmp, &mut ws.ap);
    let mut true_r = Field::<FermionKind, E>::zero(grid.clone());
    true_r.sub(b, &ws.ap);
    let residual = (true_r.canonical_norm2() / b_norm2).sqrt();
    let (history, health) = qcd_metrics::conclude_solver_health(
        "solver.coarse_pcg",
        monitor,
        &history,
        iterations,
        HISTORY_CAP,
    );
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}
