//! Deflated Conjugate Gradient: project the low modes out of every solve.
//!
//! CG's iteration count scales with `√κ` of the operator, and for `M†M`
//! near the physical mass the condition number is dominated by a handful
//! of tiny eigenvalues. Given a converged [`Subspace`] those modes are
//! solved *exactly* in one shot — the **Galerkin initial guess**
//! `x₀ = V (V†AV)⁻¹ V† b`, which for Ritz pairs is simply
//! `x₀ = Σ_i v_i ⟨v_i, b⟩ / θ_i` — and CG starts from the residual
//! `r₀ = b − A x₀` whose low-mode content is already at the eigensolver's
//! residual level. The Krylov iteration then only has to traverse the
//! deflated spectrum `[θ_{nev}, λ_max]`, cutting iterations while each
//! iteration costs exactly what plain CG costs (the subspace is touched
//! only in the setup), so an iteration win is a wall-clock win by
//! construction.
//!
//! The batched [`defl_block_cg`] recycles one subspace across a whole
//! N-RHS [`FermionBlock`] — the amortization the eigensolver setup is paid
//! back by — with the per-RHS guarantee the rest of the stack is built on:
//! RHS `j` of a block solve is **bit-identical** to [`defl_cg`] of that
//! RHS alone, for any batch width and composition. [`defl_mixed_solve`]
//! composes deflation with the mixed-precision defect-correction ladder:
//! the Galerkin guess seeds the outer double-precision loop.
//!
//! Determinism follows the same rule as the eigensolver: every steering
//! scalar is a canonical reduction, every field update is pointwise, so
//! residual histories are bit-identical across vector lengths and thread
//! counts.

use crate::lanczos::Subspace;
use grid::dirac::WilsonDirac;
use grid::field::{block_cg_update_x_r, cg_update_x_r, FermionBlock, FermionKind};
use grid::mixed::{
    ladder_solve_from, mixed_precision_solve_from, to_precision, to_precision_into, LadderConfig,
    LadderReport, MixedReport,
};
use grid::reduce::canonical_sum;
use grid::solver::{BlockSolveReport, SolveReport, SolverWorkspace, HISTORY_CAP};
use grid::{FermionField, Field, Grid};
use qcd_metrics::HealthMonitor;
use sve::{SveFloat, F16};

/// Check that `sub` belongs to `op`: same lattice, bit-identical mass.
fn assert_subspace_matches<E: SveFloat>(op: &WilsonDirac<E>, sub: &Subspace<E>) {
    assert!(sub.nev() > 0, "deflation needs a non-empty subspace");
    assert_eq!(
        sub.vectors[0].grid().fdims(),
        op.grid().fdims(),
        "subspace lattice does not match the operator"
    );
    assert_eq!(
        sub.mass.to_bits(),
        op.mass.to_bits(),
        "subspace was built at mass {} but the operator solves at {} — \
         a subspace deflates M†M at exactly one mass",
        sub.mass,
        op.mass
    );
}

/// The Galerkin (exact-deflation) initial guess for `A x = b`:
/// `x₀ = Σ_i v_i ⟨v_i, b⟩ / θ_i`. For Ritz pairs `V†AV = diag(θ)`, so this
/// is `V (V†AV)⁻¹ V† b` without a dense solve. All inner products are
/// canonical; the accumulation order over `i` is fixed.
pub fn galerkin_guess<E: SveFloat>(
    sub: &Subspace<E>,
    b: &Field<FermionKind, E>,
) -> Field<FermionKind, E> {
    let mut x0 = Field::<FermionKind, E>::zero(b.grid().clone());
    for (v, &theta) in sub.vectors.iter().zip(sub.values.iter()) {
        let c = v.canonical_inner(b);
        x0.axpy_complex(c.scale(1.0 / theta), v);
    }
    x0
}

/// The Galerkin guess with the subspace **applied at binary16**: the Ritz
/// vectors and the right-hand side are re-laid-out to F16 fields, the
/// projection coefficients `⟨v_i, b⟩` are canonical reductions over the
/// f16 data, and the accumulation `x₀ += (c_i/θ_i) v_i` runs in f16
/// arithmetic. Storing and streaming the subspace at 2 bytes/scalar is
/// the point — a 16-vector subspace applied this way moves a quarter of
/// the bytes of the f64 [`galerkin_guess`].
///
/// The guess is an *initial iterate*, so binary16 grain (`~5·10⁻⁴`
/// relative) is harmless: whatever low-mode content the rounding
/// re-introduces, the outer loop it seeds removes again. Use it to seed
/// defect-correction solvers ([`defl_ladder_solve`]), not as a
/// standalone projector.
pub fn galerkin_guess_f16(sub: &Subspace<f64>, b: &FermionField) -> FermionField {
    let g = b.grid();
    let g16 = Grid::<F16>::new(g.fdims(), g.vl(), g.engine().backend());
    let b16 = to_precision(b, &g16);
    let mut x0_16 = Field::<FermionKind, F16>::zero(g16.clone());
    for (v, &theta) in sub.vectors.iter().zip(sub.values.iter()) {
        let v16 = to_precision(v, &g16);
        let c = v16.canonical_inner(&b16);
        x0_16.axpy_complex(c.scale(1.0 / theta), &v16);
    }
    let mut x0 = FermionField::zero(g.clone());
    to_precision_into(&x0_16, &mut x0);
    x0
}

/// Deflation composed with the three-level precision ladder: solve
/// `M x = b` (like [`defl_mixed_solve`]) seeded by the **f16-applied**
/// Galerkin guess for `x = (M†M)⁻¹ M† b`, then run the f64 ↔ f32 ↔ f16
/// reliable-update ladder from there. The subspace projection and the
/// bulk of the Krylov work both execute on the binary16 compute tier;
/// the f64 outer loop still certifies the final residual, so the
/// accuracy contract of [`ladder_solve_from`] is untouched.
pub fn defl_ladder_solve(
    op: &WilsonDirac<f64>,
    sub: &Subspace<f64>,
    b: &FermionField,
    cfg: &LadderConfig,
) -> (FermionField, LadderReport) {
    assert_subspace_matches(op, sub);
    let _span = qcd_trace::span!("solver.deflate", op.grid().engine().ctx());
    let rhs_dag = op.apply_dag(b);
    let x0 = galerkin_guess_f16(sub, &rhs_dag);
    ladder_solve_from(op, b, x0, cfg)
}

/// Deflated Conjugate Gradient on the Wilson normal equations:
/// `M†M x = b` from the Galerkin guess of `sub`, with every steering
/// scalar canonical. Runs under a `solver.deflate` span with health
/// monitoring in the `solver.defl_cg` region.
pub fn defl_cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    sub: &Subspace<E>,
    b: &Field<FermionKind, E>,
    tol: f64,
    max_iter: usize,
) -> (Field<FermionKind, E>, SolveReport) {
    assert_subspace_matches(op, sub);
    let grid = b.grid().clone();
    let span = qcd_trace::span!("solver.deflate", grid.engine().ctx());
    let mut monitor = HealthMonitor::new("solver.defl_cg");
    let mut ws = SolverWorkspace::<E>::new(grid.clone());

    let b_norm2 = b.canonical_norm2();
    assert!(b_norm2 > 0.0, "CG needs a nonzero right-hand side");
    let mut x = galerkin_guess(sub, b);
    op.mdag_m_into(&x, &mut ws.tmp, &mut ws.ap);
    let mut r = Field::<FermionKind, E>::zero(grid.clone());
    r.sub(b, &ws.ap);
    let mut r2 = r.canonical_norm2();
    let mut p = r.clone();
    let mut history = vec![(r2 / b_norm2).sqrt()];
    monitor.replay(&history);

    let mut iterations = 0;
    while iterations < max_iter && r2 > tol * tol * b_norm2 {
        op.mdag_m_into(&p, &mut ws.tmp, &mut ws.ap);
        let p_ap = p.canonical_inner_re(&ws.ap);
        assert!(
            p_ap > 0.0,
            "search direction has non-positive curvature: operator not HPD?"
        );
        let alpha = r2 / p_ap;
        // The fused sweep's returned |r|² is layout-dependent; discard it
        // and recompute canonically so the trajectory is VL-invariant.
        let _ = cg_update_x_r(&mut x, &mut r, alpha, &p, &ws.ap);
        let r2_new = r.canonical_norm2();
        let beta = r2_new / r2;
        p.aypx(beta, &r);
        r2 = r2_new;
        iterations += 1;
        history.push((r2 / b_norm2).sqrt());
        monitor.observe(*history.last().unwrap());
    }

    let converged = r2 <= tol * tol * b_norm2;
    // True residual check (canonical, guards recurrence drift).
    op.mdag_m_into(&x, &mut ws.tmp, &mut ws.ap);
    let mut true_r = Field::<FermionKind, E>::zero(grid.clone());
    true_r.sub(b, &ws.ap);
    let residual = (true_r.canonical_norm2() / b_norm2).sqrt();
    let (history, health) = qcd_metrics::conclude_solver_health(
        "solver.defl_cg",
        monitor,
        &history,
        iterations,
        HISTORY_CAP,
    );
    (
        x,
        SolveReport {
            iterations,
            residual,
            converged,
            history,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Per-RHS canonical squared norms of a block: each RHS's sites scattered
/// into global lexicographic order, then summed through the fixed chunk
/// tree — bit-identical to [`Field::canonical_norm2`] of the extracted RHS.
fn block_canonical_norms2<E: SveFloat>(b: &FermionBlock<E>, buf: &mut [f64]) -> Vec<f64> {
    b.site_norms2_lex(buf);
    let vol = b.grid().volume();
    buf.chunks_exact(vol).map(canonical_sum).collect()
}

/// Per-RHS canonical real inner products — the block counterpart of
/// [`Field::canonical_inner_re`].
fn block_canonical_inners_re<E: SveFloat>(
    a: &FermionBlock<E>,
    b: &FermionBlock<E>,
    buf: &mut [f64],
) -> Vec<f64> {
    a.site_inners_re_lex(b, buf);
    let vol = a.grid().volume();
    buf.chunks_exact(vol).map(canonical_sum).collect()
}

/// Deflated **block** Conjugate Gradient: solve `M†M x_j = b_j` for every
/// RHS of `b` at once, recycling one subspace across the whole batch. The
/// Galerkin guess is computed per RHS with the exact [`galerkin_guess`]
/// operation sequence, and the masked batch recurrence freezes converged
/// RHS without perturbing the rest — RHS `j` (solution, history, report)
/// is bit-identical to a standalone [`defl_cg`] of `b_j`.
pub fn defl_block_cg<E: SveFloat>(
    op: &WilsonDirac<E>,
    sub: &Subspace<E>,
    b: &FermionBlock<E>,
    tol: f64,
    max_iter: usize,
) -> (FermionBlock<E>, BlockSolveReport) {
    assert_subspace_matches(op, sub);
    let grid = b.grid().clone();
    let nrhs = b.nrhs();
    let vol = grid.volume();
    let span = qcd_trace::span!("solver.deflate", grid.engine().ctx());
    let mut monitors: Vec<HealthMonitor> = (0..nrhs)
        .map(|j| HealthMonitor::new(&format!("solver.defl_block_cg[{j}]")))
        .collect();
    let mut buf = vec![0.0f64; nrhs * vol];

    let b_norm2 = block_canonical_norms2(b, &mut buf);
    for (j, &n) in b_norm2.iter().enumerate() {
        assert!(n > 0.0, "CG needs a nonzero right-hand side (RHS {j})");
    }

    // Per-RHS Galerkin guesses through the single-field path (identical
    // bits to defl_cg's setup), assembled into the block iterate.
    let mut x = FermionBlock::zero(grid.clone(), nrhs);
    for j in 0..nrhs {
        x.set_rhs(j, &galerkin_guess(sub, &b.rhs_field(j)));
    }
    let mut tmp = FermionBlock::zero(grid.clone(), nrhs);
    let mut ap = FermionBlock::zero(grid.clone(), nrhs);
    op.mdag_m_block_into(&x, &mut tmp, &mut ap);
    let mut r = FermionBlock::zero(grid.clone(), nrhs);
    // b + (−1)·Ax: bit-identical to the single-field `sub` (negation and
    // the unit multiply are exact).
    r.scale_axpy_from(-1.0, &ap, 1.0, b);
    let mut r2 = block_canonical_norms2(&r, &mut buf);
    let mut p = r.clone();
    let mut iterations = vec![0usize; nrhs];
    let mut histories: Vec<Vec<f64>> = (0..nrhs)
        .map(|j| vec![(r2[j] / b_norm2[j]).sqrt()])
        .collect();
    for (m, h) in monitors.iter_mut().zip(&histories) {
        m.replay(h);
    }

    loop {
        let active: Vec<bool> = (0..nrhs)
            .map(|j| iterations[j] < max_iter && r2[j] > tol * tol * b_norm2[j])
            .collect();
        if !active.iter().any(|&a| a) {
            break;
        }
        op.mdag_m_block_into(&p, &mut tmp, &mut ap);
        let p_ap = block_canonical_inners_re(&p, &ap, &mut buf);
        let mut alphas = vec![0.0; nrhs];
        for j in 0..nrhs {
            if active[j] {
                assert!(
                    p_ap[j] > 0.0,
                    "search direction has non-positive curvature: operator not HPD? (RHS {j})"
                );
                alphas[j] = r2[j] / p_ap[j];
            }
        }
        let _ = block_cg_update_x_r(&mut x, &mut r, &alphas, &p, &ap, &active);
        let r2_new = block_canonical_norms2(&r, &mut buf);
        let mut betas = vec![0.0; nrhs];
        for j in 0..nrhs {
            if active[j] {
                betas[j] = r2_new[j] / r2[j];
            }
        }
        p.aypx_masked(&betas, &r, &active);
        for j in 0..nrhs {
            if active[j] {
                r2[j] = r2_new[j];
                iterations[j] += 1;
                histories[j].push((r2[j] / b_norm2[j]).sqrt());
                monitors[j].observe(*histories[j].last().unwrap());
            }
        }
    }

    let converged: Vec<bool> = (0..nrhs).map(|j| r2[j] <= tol * tol * b_norm2[j]).collect();
    // True residuals, canonical per RHS.
    op.mdag_m_block_into(&x, &mut tmp, &mut ap);
    let mut true_r = FermionBlock::zero(grid.clone(), nrhs);
    true_r.scale_axpy_from(-1.0, &ap, 1.0, b);
    let tr2 = block_canonical_norms2(&true_r, &mut buf);
    let residuals: Vec<f64> = (0..nrhs).map(|j| (tr2[j] / b_norm2[j]).sqrt()).collect();

    let mut capped = Vec::with_capacity(nrhs);
    let mut health = Vec::with_capacity(nrhs);
    for (monitor, (full, iters)) in monitors.into_iter().zip(histories.iter().zip(&iterations)) {
        let (c, e) = qcd_metrics::conclude_solver_health(
            "solver.defl_block_cg",
            monitor,
            full,
            *iters,
            HISTORY_CAP,
        );
        capped.push(c);
        health.push(e);
    }
    (
        x,
        BlockSolveReport {
            iterations: iterations.iter().copied().max().unwrap_or(0),
            per_rhs_iterations: iterations,
            residuals,
            converged,
            histories: capped,
            health,
            telemetry: span.finish(),
        },
    )
}

/// Deflation composed with the mixed-precision defect-correction ladder:
/// solve `M x = b` (not the normal equations) by seeding the outer
/// double-precision loop with the Galerkin guess for
/// `x = (M†M)⁻¹ M† b`, then running the standard f32-inner/f64-outer
/// ladder from there. The low-mode content of the error is removed before
/// the first inner solve, so the ladder starts several digits ahead.
pub fn defl_mixed_solve(
    op: &WilsonDirac<f64>,
    sub: &Subspace<f64>,
    b: &FermionField,
    tol: f64,
    inner_tol: f64,
    max_outer: usize,
    max_inner: usize,
) -> (FermionField, MixedReport) {
    assert_subspace_matches(op, sub);
    let _span = qcd_trace::span!("solver.deflate", op.grid().engine().ctx());
    let rhs_dag = op.apply_dag(b);
    let x0 = galerkin_guess(sub, &rhs_dag);
    mixed_precision_solve_from(op, b, x0, tol, inner_tol, max_outer, max_inner)
}
