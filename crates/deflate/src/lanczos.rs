//! Deterministic thick-restart Lanczos on the Wilson normal operator.
//!
//! Computes the `nev` lowest eigenpairs of `M†M` — the low modes whose
//! removal accelerates every subsequent solve at the same mass. `M†M` is
//! Hermitian positive-definite (γ₅-Hermiticity: `M† = γ₅ M γ₅`, so
//! `M†M = (γ₅M)²` with `γ₅M` Hermitian), so a symmetric Lanczos process
//! applies and all Ritz values are real and positive.
//!
//! # Algorithm
//!
//! A restarted Rayleigh–Ritz iteration with **full reorthogonalization**:
//! each cycle extends the basis to `m` vectors, orthogonalizing every new
//! `A v_j` against the whole basis with two modified-Gram–Schmidt passes
//! (classic "twice is enough"). The projected matrix is assembled from the
//! Gram–Schmidt coefficients themselves — for column `j` the accumulated
//! coefficient against `v_i` *is* `⟨v_i, A v_j⟩` — so it stays a faithful
//! Rayleigh quotient even when rounding breaks three-term-recurrence
//! orthogonality. At the end of a cycle the projected matrix is
//! eigen-decomposed (deterministic cyclic Jacobi, [`crate::dense`]), Ritz
//! residuals are estimated from the bottom row of the rotation
//! (`‖A(Vy) − θ(Vy)‖ = β_m |y_{m-1}|`), and the basis is
//! **thick-restarted**: the lowest `k > nev` Ritz vectors plus the final
//! residual direction seed the next cycle, whose arrowhead coupling column
//! re-emerges from the Gram–Schmidt coefficients without explicit seeding.
//!
//! # Determinism
//!
//! Acceptance requires eigenpairs bit-identical across SVE vector lengths
//! and thread counts. Every scalar that steers the iteration — inner
//! products, norms, the projected matrix — is produced by the *canonical*
//! reductions of [`grid::Field`] (global-lexicographic scatter + fixed
//! chunk-tree sum), which are layout- and thread-invariant. The pointwise
//! field updates and the per-site operator are vector-length-invariant
//! already, and the dense eigensolve is fixed-order scalar arithmetic, so
//! the whole trajectory — restart decisions included — reproduces to the
//! last bit.
//!
//! # Memory
//!
//! All field storage is allocated once up front — the `m + 1` basis slots,
//! the `k` restart-scratch slots, the operator intermediate, and the
//! candidate vector — and reused across every column and every restart,
//! `SolverWorkspace`-style: the steady state of a cycle performs no heap
//! allocation beyond the dense `m × m` eigensolve.

use crate::dense::jacobi_eigh;
use grid::dirac::WilsonDirac;
use grid::field::FermionKind;
use grid::{Complex, Field};
use sve::SveFloat;

/// Tuning knobs of the eigensolver.
#[derive(Clone, Debug)]
pub struct LanczosParams {
    /// Number of eigenpairs wanted (lowest end of the spectrum).
    pub nev: usize,
    /// Basis size per restart cycle (`> nev + 1`; larger converges in
    /// fewer restarts at the cost of more reorthogonalization work and
    /// storage).
    pub m: usize,
    /// Convergence target on the explicit residual `‖M†M v − θ v‖` of each
    /// wanted eigenpair (eigenvectors are unit-normalized).
    pub tol: f64,
    /// Restart budget; the solver stops early once all `nev` pairs pass
    /// `tol`.
    pub max_restarts: usize,
}

impl LanczosParams {
    /// Reasonable defaults for `nev` wanted pairs: basis `2·nev + 8`,
    /// residual target `1e-8`, up to 40 restarts.
    pub fn for_nev(nev: usize) -> Self {
        LanczosParams {
            nev,
            m: 2 * nev + 8,
            tol: 1e-8,
            max_restarts: 40,
        }
    }
}

/// A converged low-mode subspace of `M†M`: the deflation operand.
pub struct Subspace<E: SveFloat = f64> {
    /// Ritz vectors, unit-normalized, eigenvalue-ascending.
    pub vectors: Vec<Field<FermionKind, E>>,
    /// Ritz values `θ_i` (real and positive).
    pub values: Vec<f64>,
    /// Explicit residuals `‖M†M v_i − θ_i v_i‖`, validated after the final
    /// restart — not the cheap bottom-row estimates.
    pub residuals: Vec<f64>,
    /// Bare mass of the Wilson operator the subspace was built at. A
    /// subspace deflates `M†M(mass)` and nothing else; the solvers and the
    /// persistence layer enforce the match bit-exactly.
    pub mass: f64,
}

impl<E: SveFloat> Subspace<E> {
    /// Number of eigenpairs held.
    pub fn nev(&self) -> usize {
        self.values.len()
    }
}

/// What the eigensolver did, for benchmarks and health surfaces.
#[derive(Clone, Debug)]
pub struct EigenReport {
    /// Restart cycles consumed (0 = converged within the first cycle).
    pub restarts: usize,
    /// Operator applications (`M†M` products) performed.
    pub mvps: usize,
    /// Whether every wanted pair passed the explicit residual check.
    pub converged: bool,
    /// Profile of the whole eigensolve (wall time, SVE instruction delta).
    pub telemetry: qcd_trace::RegionSummary,
}

/// Normalize `f` by its canonical norm; returns the norm.
fn canonical_normalize<E: SveFloat>(f: &mut Field<FermionKind, E>) -> f64 {
    let n = f.canonical_norm2().sqrt();
    assert!(n > 0.0, "cannot normalize a zero vector");
    f.scale(1.0 / n);
    n
}

/// Two-pass modified Gram–Schmidt of `w` against `basis[..n]`, returning
/// the accumulated (both passes) coefficient against each basis vector.
/// All inner products are canonical.
fn reorthogonalize<E: SveFloat>(
    w: &mut Field<FermionKind, E>,
    basis: &[Field<FermionKind, E>],
    n: usize,
) -> Vec<Complex> {
    let mut coef = vec![Complex::ZERO; n];
    for _pass in 0..2 {
        for (i, c) in coef.iter_mut().enumerate() {
            let h = basis[i].canonical_inner(w);
            w.axpy_complex(-h, &basis[i]);
            *c += h;
        }
    }
    coef
}

/// Compute the `nev` lowest eigenpairs of `M†M` for `op`, starting the
/// Krylov process from a seeded deterministic random vector.
///
/// Runs under an `eig.lanczos` trace span; restart count and operator
/// applications land in the `eig.lanczos.restarts` / `eig.lanczos.mvps`
/// histograms.
pub fn lanczos<E: SveFloat>(
    op: &WilsonDirac<E>,
    params: &LanczosParams,
    seed: u64,
) -> (Subspace<E>, EigenReport) {
    let grid = op.grid().clone();
    let span = qcd_trace::span!("eig.lanczos", grid.engine().ctx());
    let (nev, m) = (params.nev, params.m);
    assert!(nev >= 1, "need at least one wanted eigenpair");
    assert!(
        m > nev + 1,
        "basis size must exceed nev + 1 (got m={m}, nev={nev})"
    );
    let keep = (nev + 4).clamp(nev, m - 2);

    // The preallocated pools (see module docs): basis slots 0..=m, restart
    // scratch, operator intermediate, candidate vector.
    let mut basis: Vec<Field<FermionKind, E>> = (0..=m)
        .map(|_| Field::<FermionKind, E>::zero(grid.clone()))
        .collect();
    let mut scratch: Vec<Field<FermionKind, E>> = (0..keep)
        .map(|_| Field::<FermionKind, E>::zero(grid.clone()))
        .collect();
    let mut tmp = Field::<FermionKind, E>::zero(grid.clone());
    let mut w = Field::<FermionKind, E>::zero(grid.clone());

    basis[0] = Field::<FermionKind, E>::random(grid.clone(), seed);
    canonical_normalize(&mut basis[0]);

    // Projected matrix (row-major m×m, kept exactly symmetric).
    let mut h = vec![0.0f64; m * m];
    let mut filled = 0usize; // columns of `h` already final this cycle
    let mut mvps = 0usize;
    let mut restarts = 0usize;
    let (theta, q) = loop {
        // Extend the basis to m vectors plus the residual direction.
        let mut beta_last = 0.0;
        for j in filled..m {
            op.mdag_m_into(&basis[j], &mut tmp, &mut w);
            mvps += 1;
            let coef = reorthogonalize(&mut w, &basis, j + 1);
            for (i, c) in coef.iter().enumerate() {
                // ⟨v_i, A v_j⟩: real for a Hermitian operator up to
                // rounding; the imaginary part is noise and is dropped so
                // the projected matrix stays exactly symmetric.
                h[i * m + j] = c.re;
                h[j * m + i] = c.re;
            }
            let beta = w.canonical_norm2().sqrt();
            assert!(
                beta > 0.0,
                "Krylov breakdown: invariant subspace hit before basis filled"
            );
            if j + 1 < m {
                h[(j + 1) * m + j] = beta;
                h[j * m + (j + 1)] = beta;
            }
            w.scale(1.0 / beta);
            std::mem::swap(&mut basis[j + 1], &mut w);
            beta_last = beta;
        }

        // Rayleigh–Ritz on the projected matrix; residual estimate of pair
        // i from the bottom row: ‖A(Vy) − θ(Vy)‖ = β_m |y_{m−1}|.
        let (vals, vecs) = jacobi_eigh(&h, m);
        let all_converged =
            (0..nev).all(|i| (beta_last * vecs[(m - 1) * m + i]).abs() <= params.tol);
        if all_converged || restarts >= params.max_restarts {
            break (vals, vecs);
        }

        // Thick restart: form the lowest `keep` Ritz vectors in the scratch
        // pool (fixed combination order), swap them into the basis, and
        // carry the residual direction as v_keep.
        restarts += 1;
        for (c, s) in scratch.iter_mut().enumerate() {
            s.data_mut().fill(E::zero());
            for (j, v) in basis.iter().take(m).enumerate() {
                s.axpy_inplace(vecs[j * m + c], v);
            }
            canonical_normalize(s);
        }
        for (c, s) in scratch.iter_mut().enumerate() {
            std::mem::swap(&mut basis[c], s);
        }
        basis.swap(keep, m);
        // The carried direction is orthogonal to the Ritz vectors in exact
        // arithmetic; enforce it under rounding and renormalize.
        {
            let (ritz, rest) = basis.split_at_mut(keep);
            let vk = &mut rest[0];
            for _pass in 0..2 {
                for r in ritz.iter() {
                    let c = r.canonical_inner(vk);
                    vk.axpy_complex(-c, r);
                }
            }
            canonical_normalize(vk);
        }
        // Restarted projected matrix: diag(θ) on the kept block. The
        // arrowhead coupling column regenerates from the Gram–Schmidt
        // coefficients when column `keep` is built.
        h.iter_mut().for_each(|x| *x = 0.0);
        for (c, &t) in vals.iter().take(keep).enumerate() {
            h[c * m + c] = t;
        }
        filled = keep;
    };

    // Form the wanted Ritz vectors and validate each pair explicitly.
    let mut vectors = Vec::with_capacity(nev);
    let mut values = Vec::with_capacity(nev);
    let mut residuals = Vec::with_capacity(nev);
    for i in 0..nev {
        let mut u = Field::<FermionKind, E>::zero(grid.clone());
        for (j, v) in basis.iter().take(m).enumerate() {
            u.axpy_inplace(q[j * m + i], v);
        }
        canonical_normalize(&mut u);
        let mut au = Field::<FermionKind, E>::zero(grid.clone());
        op.mdag_m_into(&u, &mut tmp, &mut au);
        mvps += 1;
        au.axpy_inplace(-theta[i], &u); // au = A u − θ u
        residuals.push(au.canonical_norm2().sqrt());
        values.push(theta[i]);
        vectors.push(u);
    }
    let converged = residuals.iter().all(|&r| r <= params.tol);
    qcd_metrics::histogram("eig.lanczos.restarts").record(restarts as u64);
    qcd_metrics::histogram("eig.lanczos.mvps").record(mvps as u64);
    (
        Subspace {
            vectors,
            values,
            residuals,
            mass: op.mass,
        },
        EigenReport {
            restarts,
            mvps,
            converged,
            telemetry: span.finish(),
        },
    )
}

/// Convenience wrapper at f64: build a subspace for `op` with the default
/// parameters for `nev` pairs.
pub fn build_subspace(op: &WilsonDirac, nev: usize, seed: u64) -> (Subspace, EigenReport) {
    lanczos(op, &LanczosParams::for_nev(nev), seed)
}
