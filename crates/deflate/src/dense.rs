//! Deterministic dense linear algebra on small matrices.
//!
//! The eigensolver and the coarse-grid correction both reduce the lattice
//! problem to dense systems whose dimension is the subspace size (tens,
//! not thousands). Everything here is plain scalar `f64` arithmetic in a
//! fixed operation order — no SIMD, no threading, no pivoting heuristics
//! that depend on runtime state — so the results are bit-identical across
//! SVE vector lengths, thread counts, and ranks by construction. That
//! determinism is what lets the Lanczos restarts and the coarse solves
//! reproduce exactly on any machine.

use grid::Complex;

/// Eigen-decomposition of a real symmetric matrix by cyclic Jacobi
/// rotations.
///
/// `a` is the `n × n` matrix in row-major order; only the values are read
/// (symmetry is assumed, the strictly-lower triangle is ignored). Returns
/// `(values, vectors)` with eigenvalues ascending and `vectors[j * n + i]`
/// the `j`-th component of the eigenvector for `values[i]` (column-major
/// eigenvector matrix: column `i` pairs with eigenvalue `i`).
///
/// Cyclic sweeps visit the strict upper triangle in fixed row-major order
/// and rotate every off-diagonal entry above a shrinking threshold; the
/// sweep count is bounded and the termination test is exact, so the whole
/// computation is a fixed scalar instruction sequence for given input bits.
pub fn jacobi_eigh(a: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let mut m = a.to_vec();
    // Symmetrize from the upper triangle so rounding asymmetries in the
    // input cannot steer the rotation sequence.
    for p in 0..n {
        for q in (p + 1)..n {
            m[q * n + p] = m[p * n + q];
        }
    }
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let total: f64 = m.iter().map(|x| x * x).sum();
    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p * n + q] * m[p * n + q];
            }
        }
        // Converged to working precision: the remaining off-diagonal mass
        // cannot move the diagonal. The test is an exact f64 comparison on
        // deterministically computed values, so every machine stops after
        // the same sweep.
        if off <= 1e-60 * total {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq == 0.0 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Stable rotation angle (Golub & Van Loan, sym.schur2).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort eigenpairs ascending. The sort key includes the column index so
    // ties (degenerate eigenvalues) break deterministically.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[i * n + i]
            .partial_cmp(&m[j * n + j])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let values: Vec<f64> = order.iter().map(|&i| m[i * n + i]).collect();
    let mut vectors = vec![0.0; n * n];
    for (col, &src) in order.iter().enumerate() {
        for row in 0..n {
            vectors[row * n + col] = v[row * n + src];
        }
    }
    (values, vectors)
}

/// Cholesky factor `L` (lower-triangular, `A = L L†`) of a Hermitian
/// positive-definite complex matrix, plus its triangular solves.
pub struct Cholesky {
    n: usize,
    l: Vec<Complex>,
}

impl Cholesky {
    /// Factor the `n × n` row-major Hermitian matrix `a`. Only the lower
    /// triangle (including the diagonal) is read. Panics if a pivot is not
    /// strictly positive — the coarse operator is Galerkin-projected from a
    /// positive-definite fine operator, so a non-positive pivot means the
    /// near-null vectors were rank-deficient, which the orthonormalization
    /// step must prevent.
    pub fn factor(a: &[Complex], n: usize) -> Self {
        assert_eq!(a.len(), n * n, "matrix shape mismatch");
        let mut l = vec![Complex::ZERO; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k].conj();
                }
                if i == j {
                    assert!(
                        sum.re > 0.0,
                        "coarse operator is not positive-definite (pivot {i}: {})",
                        sum.re
                    );
                    l[i * n + i] = Complex::new(sum.re.sqrt(), 0.0);
                } else {
                    let d = l[j * n + j].re;
                    l[i * n + j] = sum.scale(1.0 / d);
                }
            }
        }
        Cholesky { n, l }
    }

    /// Solve `A x = b` in place: forward substitution with `L`, then back
    /// substitution with `L†`.
    #[allow(clippy::needless_range_loop)] // fixed evaluation order is load-bearing
    pub fn solve(&self, b: &mut [Complex]) {
        let n = self.n;
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * n + k] * b[k];
            }
            b[i] = sum.scale(1.0 / self.l[i * n + i].re);
        }
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self.l[k * n + i].conj() * b[k];
            }
            b[i] = sum.scale(1.0 / self.l[i * n + i].re);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_recovers_known_spectrum() {
        // diag(1, 4, 9) conjugated by a rotation in the (0,2) plane.
        let (c, s) = (0.8f64, 0.6f64);
        // R diag R^T with R = [[c,0,-s],[0,1,0],[s,0,c]].
        let d = [1.0, 4.0, 9.0];
        let mut a = vec![0.0; 9];
        let r = [[c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c]];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    a[i * 3 + j] += r[i][k] * d[k] * r[j][k];
                }
            }
        }
        let (vals, vecs) = jacobi_eigh(&a, 3);
        for (got, want) in vals.iter().zip([1.0, 4.0, 9.0]) {
            assert!((got - want).abs() < 1e-12, "eigenvalue {got} vs {want}");
        }
        // Residual ‖A q − λ q‖ per pair.
        for e in 0..3 {
            for i in 0..3 {
                let mut aq = 0.0;
                for j in 0..3 {
                    aq += a[i * 3 + j] * vecs[j * 3 + e];
                }
                assert!((aq - vals[e] * vecs[i * 3 + e]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobi_is_bitwise_deterministic() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        let mut seed = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            for j in i..n {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        let (v1, q1) = jacobi_eigh(&a, n);
        let (v2, q2) = jacobi_eigh(&a, n);
        assert_eq!(
            v1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            v2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            q1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            q2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cholesky_solves_hermitian_system() {
        // A = B B† + I is Hermitian positive-definite.
        let n = 4;
        let mut b = vec![Complex::ZERO; n * n];
        let mut seed = 42u64;
        for z in b.iter_mut() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            *z = Complex::new(re, im);
        }
        let mut a = vec![Complex::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { Complex::ONE } else { Complex::ZERO };
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k].conj();
                }
                a[i * n + j] = s;
            }
        }
        let chol = Cholesky::factor(&a, n);
        let rhs: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64 + 1.0, -(i as f64)))
            .collect();
        let mut x = rhs.clone();
        chol.solve(&mut x);
        for i in 0..n {
            let mut ax = Complex::ZERO;
            for j in 0..n {
                ax += a[i * n + j] * x[j];
            }
            assert!(
                (ax - rhs[i]).abs() < 1e-10,
                "row {i}: {ax:?} vs {:?}",
                rhs[i]
            );
        }
    }
}
