//! The Markov-chain driver: momentum refresh, molecular-dynamics
//! trajectory, Metropolis accept/reject, and checkpoint/resume.
//!
//! **Determinism and restart model.** Every source of randomness is
//! counter-based and keyed so that drawing order never matters:
//!
//! * the momenta of trajectory `k` come from a seed that is a pure
//!   function of `(chain seed, k)` — a restarted chain refreshes the
//!   exact same momenta without replaying anything;
//! * the Metropolis [`StreamRng`] consumes exactly one draw per
//!   trajectory (the uniform is drawn even when `ΔH ≤ 0`, where it cannot
//!   change the outcome), so its counter equals the trajectory index and
//!   survives checkpointing as a single `u64`.
//!
//! Together with the fixed-chunk deterministic reductions in
//! [`crate::action`], a chain checkpointed at trajectory `k` and resumed
//! produces bit-identical links, `ΔH` history, and accept/reject sequence
//! to the uninterrupted run — at any worker-thread count (the cross-VL
//! story is different: changing the vector length relayouts the reduction
//! leaves, so different VLs are different — each equally valid — chains).

use crate::action::{kinetic_energy, refresh_momenta, wilson_action};
use crate::algebra::ta_project;
use crate::integrator::IntegratorKind;
use grid::gauge::max_unitarity_deviation;
use grid::prelude::StreamRng;
use grid::rng::splitmix64;
use grid::tensor::su3::{peek_link, unit_gauge};
use grid::{GaugeField, Grid, NCOLOR, NDIM};
use qcd_io::{read_hmc_chain, write_hmc_chain, HmcChainState, IoError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Unitarity drift above which [`MarkovChain::load`] attaches a warning.
pub const UNITARITY_WARN_THRESHOLD: f64 = 1e-10;

/// Parameters of an HMC run (fixed over the life of a chain).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HmcParams {
    /// Wilson gauge coupling β.
    pub beta: f64,
    /// Molecular-dynamics steps per trajectory.
    pub n_steps: usize,
    /// Molecular-dynamics step size ε.
    pub step_size: f64,
    /// Integration scheme.
    pub integrator: IntegratorKind,
}

/// What one trajectory did — returned by [`MarkovChain::step`].
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryReport {
    /// 1-based index of the completed trajectory.
    pub trajectory: u64,
    /// Energy violation `H₁ - H₀` of the candidate trajectory.
    pub dh: f64,
    /// Whether the Metropolis test accepted the candidate.
    pub accepted: bool,
    /// Hamiltonian at trajectory start (after momentum refresh).
    pub h0: f64,
    /// Hamiltonian at trajectory end (before accept/reject).
    pub h1: f64,
    /// Average plaquette of the chain state *after* accept/reject.
    pub plaquette: f64,
}

/// Diagnostic attached by [`MarkovChain::load`] when the restored links
/// have drifted measurably off the group manifold.
///
/// The loader never repairs the field itself — reprojection would break
/// bit-exact resume — it only reports; call
/// [`MarkovChain::reunitarize`] explicitly to accept the perturbation.
#[derive(Clone, Copy, Debug)]
pub struct UnitarityWarning {
    /// Worst `‖U U† - 1‖ + |det U - 1|` over all restored links.
    pub max_deviation: f64,
    /// The [`UNITARITY_WARN_THRESHOLD`] that was exceeded.
    pub threshold: f64,
}

/// What a chunked [`MarkovChain::run_trajectories`] call accomplished.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Reports of the trajectories that completed, in order.
    pub reports: Vec<TrajectoryReport>,
    /// Whether the stop flag cut the chunk short. When `true`, fewer than
    /// the requested `k` trajectories ran (possibly zero) and the caller
    /// should re-enqueue the remaining work.
    pub stopped: bool,
}

/// A pure-gauge Wilson-action HMC Markov chain.
pub struct MarkovChain {
    links: GaugeField,
    params: HmcParams,
    seed: u64,
    trajectory: u64,
    accepted: u64,
    rejected: u64,
    dh_history: Vec<f64>,
    accept_history: Vec<bool>,
    metropolis: StreamRng,
}

impl MarkovChain {
    /// Start a chain from the unit (cold) configuration.
    pub fn cold_start(grid: Arc<Grid>, params: HmcParams, seed: u64) -> Self {
        Self::from_links(unit_gauge(grid), params, seed)
    }

    /// Start a chain from an existing gauge configuration.
    pub fn from_links(links: GaugeField, params: HmcParams, seed: u64) -> Self {
        MarkovChain {
            links,
            params,
            seed,
            trajectory: 0,
            accepted: 0,
            rejected: 0,
            dh_history: Vec::new(),
            accept_history: Vec::new(),
            metropolis: StreamRng::new(splitmix64(seed ^ 0x4d45_5452_4f50_4f4c)), // "METROPOL"
        }
    }

    /// The momentum-refresh seed of trajectory `k` — a pure function of
    /// the chain seed and `k`, so restarts refresh identical momenta.
    fn momentum_seed(&self, k: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(k.wrapping_add(1)))
    }

    /// Run one HMC trajectory: refresh momenta, integrate, accept/reject.
    pub fn step(&mut self) -> TrajectoryReport {
        self.advance(false)
    }

    /// One trajectory; with `force_accept` the Metropolis verdict is
    /// overridden to "accept" (the uniform is still drawn and discarded so
    /// the RNG counter keeps equalling the trajectory index).
    fn advance(&mut self, force_accept: bool) -> TrajectoryReport {
        let grid = self.links.grid().clone();
        let beta = self.params.beta;
        let p0 = refresh_momenta(grid.clone(), self.momentum_seed(self.trajectory));
        let s0 = wilson_action(&self.links, beta);
        let h0 = kinetic_energy(&p0) + s0;

        let mut u = self.links.clone();
        let mut p = p0;
        {
            let _span = qcd_trace::span!("hmc.integrate", grid.engine().ctx());
            self.params.integrator.as_integrator().integrate(
                &mut u,
                &mut p,
                beta,
                self.params.n_steps,
                self.params.step_size,
            );
        }
        let s1 = wilson_action(&u, beta);
        let h1 = kinetic_energy(&p) + s1;
        let dh = h1 - h0;

        // Exactly one uniform per trajectory, drawn unconditionally so the
        // Metropolis counter equals the trajectory index.
        let accepted = {
            let _span = qcd_trace::span!("hmc.metropolis", grid.engine().ctx());
            let metropolis = self.metropolis.next_uniform01() < (-dh).exp();
            metropolis || force_accept
        };
        let s_now = if accepted {
            self.links = u;
            s1
        } else {
            s0
        };
        self.trajectory += 1;
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
        self.dh_history.push(dh);
        self.accept_history.push(accepted);

        // ⟨plaq⟩ falls out of the action: S = β·6V·(1 - ⟨plaq⟩).
        let n_plaq = (grid.volume() * NDIM * (NDIM - 1) / 2) as f64;
        let plaquette = 1.0 - s_now / (beta * n_plaq);
        qcd_metrics::counter(if accepted {
            "hmc.accepted"
        } else {
            "hmc.rejected"
        })
        .inc();
        qcd_metrics::gauge("hmc.plaquette").set(plaquette);
        // |ΔH| in micro-units so the log2-bucket histogram resolves the
        // typical 1e-4..1e-1 range of a well-tuned integrator.
        qcd_metrics::histogram("hmc.abs_dh_micro").record((dh.abs() * 1e6) as u64);
        qcd_metrics::record_event(
            "hmc.trajectory",
            if accepted { "accept" } else { "reject" },
            &[
                ("trajectory", self.trajectory as f64),
                ("dh", dh),
                ("plaquette", plaquette),
            ],
        );
        TrajectoryReport {
            trajectory: self.trajectory,
            dh,
            accepted,
            h0,
            h1,
            plaquette,
        }
    }

    /// Run `n` trajectories, returning the report of each.
    pub fn run(&mut self, n: usize) -> Vec<TrajectoryReport> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Run up to `k` trajectories as one preemptible work chunk.
    ///
    /// This is the step-K entry point a job scheduler drives: the `stop`
    /// flag is polled at every trajectory boundary (a trajectory is the
    /// atomic unit of work — a flag raised mid-integration finishes the
    /// current trajectory first), and when `checkpoint` is given the chain
    /// is snapshotted once at chunk exit — normal completion *or* early
    /// stop — so an accepted trajectory is never lost to a SIGTERM-style
    /// shutdown whose handler raises the flag. Because [`MarkovChain`]
    /// randomness is counter-based, `run_trajectories(a)` followed by
    /// `run_trajectories(b)` — across any number of checkpoint/resume
    /// cycles — is bit-identical to one uninterrupted `run(a + b)`.
    ///
    /// Callers that dump the [`qcd_metrics`] flight recorder should flush
    /// it after the chunk that observed the stop (the `qcd_farm` binary
    /// does), so the shutdown's trailing events reach the postmortem file.
    pub fn run_trajectories(
        &mut self,
        k: usize,
        stop: &AtomicBool,
        checkpoint: Option<&Path>,
    ) -> Result<RunOutcome, IoError> {
        let mut reports = Vec::with_capacity(k);
        let mut stopped = false;
        for _ in 0..k {
            if stop.load(Ordering::SeqCst) {
                stopped = true;
                break;
            }
            reports.push(self.step());
        }
        // One snapshot per chunk, at the boundary: everything in `reports`
        // is durable once this returns.
        if let Some(path) = checkpoint {
            self.save(path)?;
        }
        Ok(RunOutcome { reports, stopped })
    }

    /// Run `n` trajectories with the Metropolis verdict overridden to
    /// "accept" — the standard escape from the cold-start catch-22, where
    /// the systematically positive `ΔH` of the relaxation phase would
    /// reject every move and the chain could never leave `U = 1`.
    ///
    /// This breaks detailed balance, so it is for *thermalization only*:
    /// discard these trajectories and take measurements from a subsequent
    /// [`MarkovChain::run`] window. Everything else matches [`step`]:
    /// momenta still come from the per-trajectory counter streams, the
    /// Metropolis uniform is still drawn (and discarded), and the
    /// trajectories land in the histories — so checkpoint/resume stays
    /// bit-identical through a thermalization phase.
    ///
    /// [`step`]: MarkovChain::step
    pub fn thermalize(&mut self, n: usize) -> Vec<TrajectoryReport> {
        (0..n).map(|_| self.advance(true)).collect()
    }

    /// Snapshot the complete chain (links, history, RNG cursor) to `path`.
    pub fn save(&self, path: &Path) -> Result<u64, IoError> {
        let state = HmcChainState {
            beta: self.params.beta,
            step_size: self.params.step_size,
            n_steps: self.params.n_steps as u64,
            integrator: self.params.integrator.id(),
            seed: self.seed,
            trajectory: self.trajectory,
            accepted: self.accepted,
            rejected: self.rejected,
            dh_history: self.dh_history.clone(),
            accept_history: self.accept_history.clone(),
        };
        write_hmc_chain(&state, &self.metropolis, &self.links, path)
    }

    /// Restore a chain saved by [`MarkovChain::save`] onto `grid`.
    ///
    /// The links are used exactly as stored — never reprojected — so the
    /// resumed chain is bit-identical to the uninterrupted one; any
    /// measurable drift off SU(3) is surfaced as a [`UnitarityWarning`]
    /// for the caller to act on.
    pub fn load(
        path: &Path,
        grid: &Arc<Grid>,
    ) -> Result<(Self, Option<UnitarityWarning>), IoError> {
        let (state, metropolis, links) = read_hmc_chain(path, grid)?;
        let integrator =
            IntegratorKind::from_id(state.integrator).map_err(|msg| IoError::BadRecord {
                record: qcd_io::HMC_RECORD.to_string(),
                msg,
            })?;
        let max_deviation = max_unitarity_deviation(&links);
        let warning = (max_deviation > UNITARITY_WARN_THRESHOLD).then_some(UnitarityWarning {
            max_deviation,
            threshold: UNITARITY_WARN_THRESHOLD,
        });
        Ok((
            MarkovChain {
                links,
                params: HmcParams {
                    beta: state.beta,
                    n_steps: state.n_steps as usize,
                    step_size: state.step_size,
                    integrator,
                },
                seed: state.seed,
                trajectory: state.trajectory,
                accepted: state.accepted,
                rejected: state.rejected,
                dh_history: state.dh_history,
                accept_history: state.accept_history,
                metropolis,
            },
            warning,
        ))
    }

    /// Project every link back onto SU(3) (explicit opt-in; breaks
    /// bit-exact equivalence with a never-reprojected chain).
    pub fn reunitarize(&mut self) {
        self.links.reunitarize();
    }

    /// The current gauge configuration.
    pub fn links(&self) -> &GaugeField {
        &self.links
    }

    /// Completed trajectories.
    pub fn trajectory(&self) -> u64 {
        self.trajectory
    }

    /// Fraction of trajectories accepted so far (1 for an empty chain).
    pub fn acceptance_rate(&self) -> f64 {
        if self.trajectory == 0 {
            1.0
        } else {
            self.accepted as f64 / self.trajectory as f64
        }
    }

    /// `ΔH` of every completed trajectory.
    pub fn dh_history(&self) -> &[f64] {
        &self.dh_history
    }

    /// Metropolis decision of every completed trajectory.
    pub fn accept_history(&self) -> &[bool] {
        &self.accept_history
    }

    /// The chain parameters.
    pub fn params(&self) -> &HmcParams {
        &self.params
    }

    /// The chain master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Maximum distance of any link from its own traceless anti-Hermitian
/// projection — a cheap "is this field still a momentum?" diagnostic used
/// by tests.
pub fn max_algebra_defect(p: &GaugeField) -> f64 {
    let grid = p.grid().clone();
    let mut worst: f64 = 0.0;
    for x in grid.coords() {
        for mu in 0..NDIM {
            let m = peek_link(p, &x, mu);
            let t = ta_project(&m);
            for r in 0..NCOLOR {
                for c in 0..NCOLOR {
                    worst = worst.max((m[r][c] - t[r][c]).abs());
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::prelude::*;

    fn small_params() -> HmcParams {
        HmcParams {
            beta: 5.6,
            n_steps: 8,
            step_size: 0.0625,
            integrator: IntegratorKind::Omelyan,
        }
    }

    fn grid4() -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(256), SimdBackend::Fcmla)
    }

    #[test]
    fn metropolis_consumes_one_draw_per_trajectory() {
        let mut chain = MarkovChain::cold_start(grid4(), small_params(), 11);
        chain.run(3);
        assert_eq!(chain.metropolis.draws(), 3);
        assert_eq!(chain.trajectory(), 3);
        assert_eq!(chain.dh_history().len(), 3);
        assert_eq!(chain.accept_history().len(), 3);
    }

    #[test]
    fn cold_start_thermalizes_toward_equilibrium() {
        // From U = 1 the action can only rise toward equilibrium; a short
        // chain must accept generously at this step size and move the
        // plaquette strictly below 1.
        let mut chain = MarkovChain::cold_start(grid4(), small_params(), 5);
        let reports = chain.run(4);
        assert!(chain.acceptance_rate() > 0.5, "{}", chain.acceptance_rate());
        let last = reports.last().unwrap();
        assert!(last.plaquette < 1.0 && last.plaquette > 0.3, "{last:?}");
        assert!(max_unitarity_deviation(chain.links()) < 1e-11);
    }

    #[test]
    fn chunked_run_is_bit_identical_to_one_uninterrupted_run() {
        let g = grid4();
        let stop = AtomicBool::new(false);
        let mut whole = MarkovChain::cold_start(g.clone(), small_params(), 31);
        let whole_reports = whole.run(4);

        let mut chunked = MarkovChain::cold_start(g.clone(), small_params(), 31);
        let a = chunked.run_trajectories(2, &stop, None).unwrap();
        let b = chunked.run_trajectories(2, &stop, None).unwrap();
        assert!(!a.stopped && !b.stopped);
        let chunk_reports: Vec<_> = a.reports.into_iter().chain(b.reports).collect();

        assert_eq!(chunk_reports.len(), whole_reports.len());
        for (x, y) in chunk_reports.iter().zip(&whole_reports) {
            assert_eq!(x.dh.to_bits(), y.dh.to_bits());
            assert_eq!(x.plaquette.to_bits(), y.plaquette.to_bits());
            assert_eq!(x.accepted, y.accepted);
        }
        assert_eq!(chunked.links().max_abs_diff(whole.links()), 0.0);
    }

    #[test]
    fn raised_stop_flag_checkpoints_before_any_work() {
        let g = grid4();
        let stop = AtomicBool::new(true);
        let mut chain = MarkovChain::cold_start(g.clone(), small_params(), 17);
        let mut path = std::env::temp_dir();
        path.push(format!("qcd-hmc-stop-{}", std::process::id()));
        let out = chain.run_trajectories(3, &stop, Some(&path)).unwrap();
        assert!(out.stopped);
        assert!(out.reports.is_empty());
        assert_eq!(chain.trajectory(), 0);
        // The checkpoint was still written, so a supervisor that re-enqueues
        // from disk resumes exactly where the flag caught the chain.
        let (back, _) = MarkovChain::load(&path, &g).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.trajectory(), 0);
        assert_eq!(back.links().max_abs_diff(chain.links()), 0.0);
    }

    #[test]
    fn stop_then_resume_from_checkpoint_loses_no_trajectory() {
        let g = grid4();
        let mut reference = MarkovChain::cold_start(g.clone(), small_params(), 23);
        reference.run(4);

        let stop = AtomicBool::new(false);
        let mut chain = MarkovChain::cold_start(g.clone(), small_params(), 23);
        let mut path = std::env::temp_dir();
        path.push(format!("qcd-hmc-resume-{}", std::process::id()));
        // Chunk of 2 with a checkpoint at the boundary, then "crash": drop
        // the in-memory chain and restart from disk for the rest.
        let first = chain.run_trajectories(2, &stop, Some(&path)).unwrap();
        assert_eq!(first.reports.len(), 2);
        drop(chain);
        let (mut resumed, warn) = MarkovChain::load(&path, &g).unwrap();
        assert!(warn.is_none());
        let second = resumed.run_trajectories(2, &stop, Some(&path)).unwrap();
        assert_eq!(second.reports.len(), 2);
        std::fs::remove_file(&path).ok();

        assert_eq!(resumed.trajectory(), reference.trajectory());
        assert_eq!(resumed.links().max_abs_diff(reference.links()), 0.0);
        for (a, b) in resumed.dh_history().iter().zip(reference.dh_history()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn save_load_round_trips_everything() {
        let g = grid4();
        let mut chain = MarkovChain::cold_start(g.clone(), small_params(), 21);
        chain.run(2);
        let mut path = std::env::temp_dir();
        path.push(format!("qcd-hmc-chain-{}", std::process::id()));
        chain.save(&path).unwrap();
        let (back, warn) = MarkovChain::load(&path, &g).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(warn.is_none());
        assert_eq!(back.params(), chain.params());
        assert_eq!(back.trajectory(), 2);
        assert_eq!(back.metropolis.state(), chain.metropolis.state());
        assert_eq!(back.links().max_abs_diff(chain.links()), 0.0);
        for (a, b) in back.dh_history().iter().zip(chain.dh_history()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
