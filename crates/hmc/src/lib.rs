//! `qcd-hmc`: pure-gauge SU(3) Wilson-action Hybrid Monte Carlo on top of
//! the SVE lattice stack.
//!
//! The crate closes the loop the paper's kernels leave open: the stack can
//! *apply* operators to gauge configurations at any vector length, and this
//! crate *generates* those configurations, with the same determinism
//! guarantees the solvers have. Layering:
//!
//! * [`algebra`] — scalar su(3): the TA projection, the matrix exponential
//!   (scaling-and-squaring with a proven truncation bound), the Gell-Mann
//!   generator basis for Gaussian momenta;
//! * [`action`] — the word-level compute kernels: Wilson action, staple
//!   sums, the gauge force `F = -(β/6)·TA(UΣ)`, momentum refresh on
//!   counter-based RNG streams, and the `U ← exp(εP)U` drift;
//! * [`integrator`] — reversible symplectic schemes (leapfrog and the
//!   Omelyan 2nd-order minimum-norm composition) behind one trait;
//! * [`chain`] — the Markov-chain driver: trajectories, Metropolis,
//!   per-trajectory trace spans, and checkpoint/resume through `qcd-io`
//!   that is bit-identical to an uninterrupted run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod algebra;
pub mod chain;
pub mod integrator;

pub use action::{
    average_plaquette_fast, force, kinetic_energy, refresh_momenta, staple_field, update_links,
    wilson_action, ACTION_FLOPS_PER_SITE, FORCE_FLOPS_PER_SITE,
};
pub use algebra::{exp_su3, momentum_from_gaussians, ta_project};
pub use chain::{
    max_algebra_defect, HmcParams, MarkovChain, RunOutcome, TrajectoryReport, UnitarityWarning,
    UNITARITY_WARN_THRESHOLD,
};
pub use integrator::{Integrator, IntegratorKind, Leapfrog, Omelyan, OMELYAN_LAMBDA};
