//! The su(3) Lie-algebra layer of the molecular-dynamics update.
//!
//! HMC evolves gauge links `U ∈ SU(3)` alongside conjugate momenta
//! `P ∈ su(3)` (anti-Hermitian, traceless). Three operations close the
//! loop:
//!
//! * [`ta_project`] — the traceless anti-Hermitian projection `TA(M)`, the
//!   map that turns the raw staple product `U Σ` into a force living in the
//!   algebra;
//! * [`exp_su3`] — the matrix exponential pushing a momentum step back into
//!   the group (`U ← exp(ε P) U`), via scaling-and-squaring with a proven
//!   truncation bound;
//! * [`momentum_from_gaussians`] — the Gaussian heat-bath draw
//!   `P = Σ_a η_a (i T_a)` over the eight Gell-Mann generators, normalized
//!   so `exp(-K)` with `K = -Σ tr P²` is the product of standard normals.

use grid::tensor::su3::{mat_mul_scalar, ColorMatrix};
use grid::Complex;
use grid::NCOLOR;

/// The 3×3 identity.
pub fn identity() -> ColorMatrix {
    std::array::from_fn(|r| {
        std::array::from_fn(|c| if r == c { Complex::ONE } else { Complex::ZERO })
    })
}

/// Entry-wise `a + b`.
pub fn mat_add(a: &ColorMatrix, b: &ColorMatrix) -> ColorMatrix {
    std::array::from_fn(|r| std::array::from_fn(|c| a[r][c] + b[r][c]))
}

/// Entry-wise real scale `s·m`.
pub fn mat_scale(m: &ColorMatrix, s: f64) -> ColorMatrix {
    std::array::from_fn(|r| std::array::from_fn(|c| m[r][c].scale(s)))
}

/// Frobenius norm `(Σ_ij |m_ij|²)^½`.
pub fn frobenius_norm(m: &ColorMatrix) -> f64 {
    m.iter().flatten().map(|z| z.norm2()).sum::<f64>().sqrt()
}

/// Trace of a 3×3 matrix.
pub fn trace(m: &ColorMatrix) -> Complex {
    m[0][0] + m[1][1] + m[2][2]
}

/// Traceless anti-Hermitian projection
/// `TA(M) = ½(M - M†) - (1/2N_c) tr(M - M†) · 1`.
///
/// For momenta `P ∈ su(3)` and arbitrary `M`, `Re tr(P M) = tr(P · TA(M))`
/// — the identity that turns the Wilson-action time derivative into a force
/// in the algebra. `TA` is idempotent and its image is exactly su(3).
pub fn ta_project(m: &ColorMatrix) -> ColorMatrix {
    let mut ah: ColorMatrix =
        std::array::from_fn(|r| std::array::from_fn(|c| (m[r][c] - m[c][r].conj()).scale(0.5)));
    let t = trace(&ah).scale(1.0 / NCOLOR as f64);
    for (d, row) in ah.iter_mut().enumerate() {
        row[d] -= t;
    }
    ah
}

/// Taylor truncation order of [`exp_su3`] after scaling.
const EXP_TAYLOR_ORDER: usize = 12;
/// Frobenius-norm threshold the argument is halved down to before the
/// Taylor sum.
const EXP_SCALE_THRESHOLD: f64 = 0.25;

/// Matrix exponential by scaling-and-squaring with a truncated Taylor
/// series.
///
/// The argument is halved `s` times until `‖M/2^s‖_F ≤ θ = 0.25`, the
/// series is summed to order `N = 12`, and the result is squared `s` times.
/// For `‖A‖ ≤ θ < 1` the Taylor remainder is bounded by the geometric tail
/// `θ^{N+1} / ((N+1)! (1-θ)) ≈ 2.6·10⁻¹⁸` — below the f64 unit roundoff, so
/// the truncation is invisible next to the arithmetic rounding itself
/// (asserted by the `exponential_is_accurate_at_machine_precision` test).
/// For anti-Hermitian input the result is unitary with `det = 1` up to
/// rounding — the group-closure property the link update relies on.
pub fn exp_su3(m: &ColorMatrix) -> ColorMatrix {
    // Scaling: ‖M/2^s‖ ≤ θ.
    let norm = frobenius_norm(m);
    let mut s = 0u32;
    let mut scaled = *m;
    if norm > EXP_SCALE_THRESHOLD {
        s = (norm / EXP_SCALE_THRESHOLD).log2().ceil() as u32;
        scaled = mat_scale(m, 0.5f64.powi(s as i32));
    }
    // Horner-style Taylor: e^A ≈ 1 + A(1 + A/2 (1 + A/3 (...))).
    let mut sum = identity();
    for k in (1..=EXP_TAYLOR_ORDER).rev() {
        let t = mat_mul_scalar(&scaled, &sum);
        sum = mat_add(&identity(), &mat_scale(&t, 1.0 / k as f64));
    }
    // Squaring: e^M = (e^{M/2^s})^{2^s}.
    for _ in 0..s {
        sum = mat_mul_scalar(&sum, &sum);
    }
    sum
}

/// The eight anti-Hermitian traceless generators `i T_a = i λ_a / 2`
/// (Gell-Mann basis), normalized so `tr(T_a T_b) = δ_ab / 2`.
pub fn antihermitian_generator(a: usize) -> ColorMatrix {
    let mut m: ColorMatrix = std::array::from_fn(|_| std::array::from_fn(|_| Complex::ZERO));
    let i2 = Complex::new(0.0, 0.5);
    let h = Complex::new(0.5, 0.0);
    match a {
        0 => {
            m[0][1] = i2;
            m[1][0] = i2;
        }
        1 => {
            m[0][1] = h;
            m[1][0] = -h;
        }
        2 => {
            m[0][0] = i2;
            m[1][1] = -i2;
        }
        3 => {
            m[0][2] = i2;
            m[2][0] = i2;
        }
        4 => {
            m[0][2] = h;
            m[2][0] = -h;
        }
        5 => {
            m[1][2] = i2;
            m[2][1] = i2;
        }
        6 => {
            m[1][2] = h;
            m[2][1] = -h;
        }
        7 => {
            let d = Complex::new(0.0, 0.5 / 3.0f64.sqrt());
            m[0][0] = d;
            m[1][1] = d;
            m[2][2] = d.scale(-2.0);
        }
        _ => panic!("su(3) has 8 generators, index {a} out of range"),
    }
    m
}

/// Heat-bath momentum: `P = Σ_a η_a (i T_a)` for eight standard normals.
/// With `tr(T_a T_b) = δ_ab/2` the kinetic energy is
/// `K = -tr P² = Σ_a η_a²/2`, so `exp(-K)` is exactly the density the
/// normals were drawn from — no rescaling factors anywhere.
pub fn momentum_from_gaussians(etas: &[f64; 8]) -> ColorMatrix {
    let mut p: ColorMatrix = std::array::from_fn(|_| std::array::from_fn(|_| Complex::ZERO));
    for (a, &eta) in etas.iter().enumerate() {
        let g = antihermitian_generator(a);
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                p[r][c] += g[r][c].scale(eta);
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::tensor::su3::{dagger, det, random_su3, unitarity_defect};

    fn max_abs_diff(a: &ColorMatrix, b: &ColorMatrix) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                worst = worst.max((a[r][c] - b[r][c]).abs());
            }
        }
        worst
    }

    fn random_algebra(seed: u64, scale: f64) -> ColorMatrix {
        // TA of a random unitary: a generic su(3) element.
        mat_scale(&ta_project(&random_su3(seed, 1)), scale)
    }

    #[test]
    fn ta_projection_lands_in_the_algebra_and_is_idempotent() {
        let m = random_su3(3, 7);
        let p = ta_project(&m);
        // Anti-Hermitian: P† = -P.
        assert!(max_abs_diff(&dagger(&p), &mat_scale(&p, -1.0)) < 1e-15);
        // Traceless.
        assert!(trace(&p).abs() < 1e-15);
        // Idempotent.
        assert!(max_abs_diff(&ta_project(&p), &p) < 1e-15);
    }

    #[test]
    fn ta_reproduces_the_pairing_identity() {
        // Re tr(P M) == tr(P · TA(M)) for P ∈ su(3), arbitrary M.
        let p = random_algebra(11, 1.3);
        let m = random_su3(12, 5);
        let lhs = trace(&mat_mul_scalar(&p, &m)).re;
        let rhs = trace(&mat_mul_scalar(&p, &ta_project(&m)));
        assert!((lhs - rhs.re).abs() < 1e-14);
        assert!(rhs.im.abs() < 1e-14, "tr(P·TA(M)) must be real");
    }

    #[test]
    fn exponential_is_accurate_at_machine_precision() {
        // exp(A)·exp(-A) = 1 for arguments across the scaling cut-over.
        for (seed, scale) in [(1u64, 0.05), (2, 0.3), (3, 1.7), (4, 6.0)] {
            let a = random_algebra(seed, scale);
            let prod = mat_mul_scalar(&exp_su3(&a), &exp_su3(&mat_scale(&a, -1.0)));
            let err = max_abs_diff(&prod, &identity());
            assert!(err < 1e-13, "scale {scale}: exp(A)exp(-A) off by {err}");
        }
    }

    #[test]
    fn exponential_of_antihermitian_is_special_unitary() {
        for seed in 1..12u64 {
            let a = random_algebra(seed, 0.9);
            let e = exp_su3(&a);
            assert!(unitarity_defect(&e) < 1e-14, "seed {seed}");
            assert!((det(&e) - Complex::ONE).abs() < 1e-14, "seed {seed}");
        }
    }

    #[test]
    fn exponential_matches_small_angle_expansion() {
        let a = random_algebra(5, 1e-4);
        // e^A ≈ 1 + A + A²/2 to O(‖A‖³) = O(1e-12).
        let want = mat_add(
            &mat_add(&identity(), &a),
            &mat_scale(&mat_mul_scalar(&a, &a), 0.5),
        );
        assert!(max_abs_diff(&exp_su3(&a), &want) < 1e-12);
    }

    #[test]
    fn generators_are_orthonormal_su3_basis() {
        for a in 0..8 {
            let ga = antihermitian_generator(a);
            assert!(max_abs_diff(&dagger(&ga), &mat_scale(&ga, -1.0)) < 1e-15);
            assert!(trace(&ga).abs() < 1e-15);
            for b in 0..8 {
                let gb = antihermitian_generator(b);
                // tr((iT_a)(iT_b)) = -tr(T_aT_b) = -δ_ab/2.
                let t = trace(&mat_mul_scalar(&ga, &gb));
                let want = if a == b { -0.5 } else { 0.0 };
                assert!((t.re - want).abs() < 1e-15, "tr(iT_{a} iT_{b}) = {t:?}");
                assert!(t.im.abs() < 1e-15);
            }
        }
    }

    #[test]
    fn momentum_kinetic_energy_is_half_sum_of_squares() {
        let etas = [0.3, -1.2, 0.7, 2.1, -0.4, 0.0, 1.5, -0.9];
        let p = momentum_from_gaussians(&etas);
        // K = -tr P² = Σ η²/2, and P ∈ su(3).
        let k = -trace(&mat_mul_scalar(&p, &p)).re;
        let want: f64 = etas.iter().map(|e| e * e).sum::<f64>() / 2.0;
        assert!((k - want).abs() < 1e-14);
        assert!(max_abs_diff(&dagger(&p), &mat_scale(&p, -1.0)) < 1e-15);
        assert!(trace(&p).abs() < 1e-15);
        // -tr P² is also the Frobenius norm²: the field-level kinetic
        // energy reduction can reuse `Field::norm2`.
        let frob: f64 = p.iter().flatten().map(|z| z.norm2()).sum();
        assert!((k - frob).abs() < 1e-14);
    }
}
