//! Reversible symplectic integrators for the molecular-dynamics
//! trajectory.
//!
//! Both schemes are palindromic compositions of two exact flows —
//! the momentum *kick* `P ← P + ε F(U)` and the link *drift*
//! `U ← exp(ε P) U` — so each trajectory is time-reversible up to
//! floating-point rounding (asserted to 1e-10 by the integration tests)
//! and area-preserving, which is what makes the Metropolis correction
//! exact at any step size.
//!
//! * [`Leapfrog`]: `ΔH = O(ε²)` per unit trajectory — the baseline.
//! * [`Omelyan`]: the 2nd-order minimum-norm scheme of Omelyan, Mryglod &
//!   Folk (λ ≈ 0.1932), five sub-steps per ε but with an error constant
//!   roughly 10× smaller — cheaper per unit acceptance at the same cost
//!   order.

use crate::action::{force, update_links};
use grid::GaugeField;

/// The tuned constant of the 2nd-order minimum-norm (2MN) scheme.
pub const OMELYAN_LAMBDA: f64 = 0.193_183_327_503_783_6;

/// A reversible molecular-dynamics integration scheme.
pub trait Integrator {
    /// Human-readable scheme name.
    fn name(&self) -> &'static str;
    /// Stable discriminant persisted in checkpoints (0 = leapfrog,
    /// 1 = Omelyan).
    fn id(&self) -> u8;
    /// Evolve `(U, P)` through `n_steps` steps of size `eps` under the
    /// Wilson action at coupling `beta`.
    fn integrate(
        &self,
        u: &mut GaugeField,
        p: &mut GaugeField,
        beta: f64,
        n_steps: usize,
        eps: f64,
    );
}

/// Momentum kick `P ← P + ε F(U)` (one force evaluation).
fn kick(p: &mut GaugeField, u: &GaugeField, beta: f64, eps: f64) {
    p.axpy_inplace(eps, &force(u, beta));
}

/// Standard leapfrog (Störmer–Verlet): half kick, `n` full drifts with
/// full kicks between, half kick. One force evaluation per step.
pub struct Leapfrog;

impl Integrator for Leapfrog {
    fn name(&self) -> &'static str {
        "leapfrog"
    }
    fn id(&self) -> u8 {
        0
    }
    fn integrate(
        &self,
        u: &mut GaugeField,
        p: &mut GaugeField,
        beta: f64,
        n_steps: usize,
        eps: f64,
    ) {
        kick(p, u, beta, 0.5 * eps);
        for step in 0..n_steps {
            update_links(u, p, eps);
            let last = step + 1 == n_steps;
            kick(p, u, beta, if last { 0.5 * eps } else { eps });
        }
    }
}

/// Omelyan–Mryglod–Folk 2nd-order minimum-norm scheme: per step the
/// palindrome `kick λε · drift ε/2 · kick (1−2λ)ε · drift ε/2 · kick λε`.
/// Two force evaluations per step (the touching λε kicks of adjacent steps
/// are left unmerged so the sequence of states is exactly the published
/// composition — reversibility tests exercise the same code path).
pub struct Omelyan;

impl Integrator for Omelyan {
    fn name(&self) -> &'static str {
        "omelyan"
    }
    fn id(&self) -> u8 {
        1
    }
    fn integrate(
        &self,
        u: &mut GaugeField,
        p: &mut GaugeField,
        beta: f64,
        n_steps: usize,
        eps: f64,
    ) {
        let lambda = OMELYAN_LAMBDA;
        for _ in 0..n_steps {
            kick(p, u, beta, lambda * eps);
            update_links(u, p, 0.5 * eps);
            kick(p, u, beta, (1.0 - 2.0 * lambda) * eps);
            update_links(u, p, 0.5 * eps);
            kick(p, u, beta, lambda * eps);
        }
    }
}

/// The integrator schemes a chain can be configured with — the enum form
/// is what chain parameters and checkpoints carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegratorKind {
    /// [`Leapfrog`].
    Leapfrog,
    /// [`Omelyan`].
    Omelyan,
}

impl IntegratorKind {
    /// The scheme object implementing this kind.
    pub fn as_integrator(self) -> &'static dyn Integrator {
        match self {
            IntegratorKind::Leapfrog => &Leapfrog,
            IntegratorKind::Omelyan => &Omelyan,
        }
    }

    /// Stable checkpoint discriminant ([`Integrator::id`]).
    pub fn id(self) -> u8 {
        self.as_integrator().id()
    }

    /// Inverse of [`IntegratorKind::id`], for checkpoint restore.
    pub fn from_id(id: u8) -> Result<Self, String> {
        match id {
            0 => Ok(IntegratorKind::Leapfrog),
            1 => Ok(IntegratorKind::Omelyan),
            other => Err(format!("unknown integrator id {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ids_round_trip() {
        for kind in [IntegratorKind::Leapfrog, IntegratorKind::Omelyan] {
            assert_eq!(IntegratorKind::from_id(kind.id()).unwrap(), kind);
            assert_eq!(kind.as_integrator().id(), kind.id());
        }
        assert!(IntegratorKind::from_id(7).is_err());
        assert_eq!(IntegratorKind::Leapfrog.as_integrator().name(), "leapfrog");
        assert_eq!(IntegratorKind::Omelyan.as_integrator().name(), "omelyan");
    }
}
