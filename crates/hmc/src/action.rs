//! Wilson gauge action, staple-sum force, and the molecular-dynamics field
//! updates — the compute kernels of the HMC trajectory.
//!
//! All heavy loops run word-level through the [`grid::SimdEngine`] (one
//! 3×3 product per virtual node per call) and are parallelized through the
//! rayon shim using the same fixed-chunk decomposition as the solver
//! kernels: chunks of [`reduce::CHUNK_SITES`] outer sites, reductions over
//! a fixed binary-split tree. Forces are per-site maps (no reduction at
//! all), actions reduce through the chunk tree — so every number produced
//! here is bit-identical for 1, 2, or 8 worker threads.
//!
//! **Force derivation.** With `U̇_µ(x) = P_µ(x) U_µ(x)` and the Wilson
//! action `S = β Σ_{x,µ<ν} (1 - Re tr P_{µν}/3)`, writing `Σ_µ(x)` for the
//! sum of the six staples of the link, energy conservation
//! `d(K+S)/dt = 0` for every `P ∈ su(3)` fixes
//!
//! ```text
//! Ṗ_µ(x) = -(β/6) · TA(U_µ(x) Σ_µ(x)),    K = -Σ_{x,µ} tr P_µ(x)²
//! ```
//!
//! using `Re tr(P M) = tr(P · TA(M))` (see [`crate::algebra::ta_project`]).
//! The `β/6 = β/(2N_c)` normalization is not folklore here: the
//! `force_matches_numerical_gradient` test differentiates the action
//! numerically along a random algebra direction, and the ΔH ∝ ε² sweep
//! would expose any mismatch as an O(1) energy drift.

use crate::algebra::{exp_su3, momentum_from_gaussians};
use grid::field::GaugeKind;
use grid::gauge::ColourMatrixKind;
use grid::prelude::*;
use grid::reduce;
use grid::rng::{gaussian, stream_id};
use grid::tensor::su3::{mat_dag_mul, mat_mul, mat_mul_dag, mat_mul_scalar, ColorMatrix};
use grid::{gauge_comp, CVec, Field, FieldKind, NCOLOR, NDIM};
use rayon::prelude::*;
use std::sync::Arc;

/// Complex 3×3 matrix product: 9 entries × (3 complex mults + 2 adds).
const MATMUL_FLOPS: u64 = 9 * (3 * 6 + 2 * 2);

/// Useful flops per lattice site of one [`force`] evaluation: 12 ordered
/// staple pairs × (4 matrix products + 2 accumulating adds of 9 complex
/// entries), plus the 4 per-direction `U·Σ` products and TA projections.
pub const FORCE_FLOPS_PER_SITE: u64 = 12 * (4 * MATMUL_FLOPS + 2 * 18) + 4 * (MATMUL_FLOPS + 46);

/// Useful flops per lattice site of one [`wilson_action`] sweep: 6 planes ×
/// (2 matrix products + the 9-term trace inner product).
pub const ACTION_FLOPS_PER_SITE: u64 = 6 * (2 * MATMUL_FLOPS + 70);

/// Load a 3×3 complex word matrix from `NCOMP ≥ comp0 + 9` field storage.
#[inline]
fn load_mat<K: FieldKind>(
    eng: &SimdEngine<f64>,
    f: &Field<K>,
    osite: usize,
    comp0: usize,
) -> [[CVec; NCOLOR]; NCOLOR] {
    std::array::from_fn(|r| std::array::from_fn(|c| eng.load(f.word(osite, comp0 + r * 3 + c))))
}

/// Deterministic fixed-chunk sum over outer sites: ascending-osite leaves
/// of [`reduce::CHUNK_SITES`] sites combined through the fixed binary tree,
/// exactly like the field reductions — thread count never changes the bits.
fn osite_tree_sum(grid: &Arc<Grid>, leaf: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    let osites = grid.osites();
    let n = reduce::n_chunks(osites, reduce::CHUNK_SITES);
    let chunk_sum = |ci: usize| {
        let lo = ci * reduce::CHUNK_SITES;
        let hi = (lo + reduce::CHUNK_SITES).min(osites);
        leaf(lo, hi)
    };
    if rayon::current_num_threads() <= 1 || n <= 1 {
        let mut lf = chunk_sum;
        reduce::reduce_serial(n, &mut lf, &|a, b| a + b)
    } else {
        let ids: Vec<usize> = (0..n).collect();
        let leaves: Vec<f64> = ids
            .par_chunks(1)
            .enumerate()
            .map(|(_, c)| chunk_sum(c[0]))
            .collect();
        reduce::combine_tree(&leaves, &|a, b| a + b)
    }
}

/// `tr(M C†)` per word: `Σ_{r,k} M[r][k]·conj(C[r][k])` — the trace of a
/// product with an adjoint without materializing the product.
#[inline]
fn trace_mul_dag(
    eng: &SimdEngine<f64>,
    m: &[[CVec; NCOLOR]; NCOLOR],
    c: &[[CVec; NCOLOR]; NCOLOR],
) -> CVec {
    let mut acc = eng.mult_conj(c[0][0], m[0][0]);
    for r in 0..NCOLOR {
        for k in 0..NCOLOR {
            if r == 0 && k == 0 {
                continue;
            }
            acc = eng.madd_conj(acc, c[r][k], m[r][k]);
        }
    }
    acc
}

/// Sum of `Re tr P_{µν}(x)` over all sites and the six `µ<ν` planes,
/// word-level with a deterministic chunk-tree reduction.
fn plaquette_re_trace_sum(u: &GaugeField) -> f64 {
    let grid = u.grid().clone();
    let eng = grid.engine();
    // U(x+d̂) for every direction, site-local after the shift.
    let shifted: Vec<GaugeField> = (0..NDIM).map(|d| cshift(u, d, 1)).collect();
    osite_tree_sum(&grid, |lo, hi| {
        let mut sum = 0.0;
        for osite in lo..hi {
            for mu in 0..NDIM {
                let umu = load_mat(eng, u, osite, gauge_comp(mu, 0, 0));
                for nu in (mu + 1)..NDIM {
                    let unu_xmu = load_mat(eng, &shifted[mu], osite, gauge_comp(nu, 0, 0));
                    let umu_xnu = load_mat(eng, &shifted[nu], osite, gauge_comp(mu, 0, 0));
                    let unu = load_mat(eng, u, osite, gauge_comp(nu, 0, 0));
                    // P = U_µ(x) U_ν(x+µ̂) U_µ†(x+ν̂) U_ν†(x); take the
                    // trace against the last adjoint directly.
                    let m1 = mat_mul(eng, &umu, &unu_xmu);
                    let m2 = mat_mul_dag(eng, &m1, &umu_xnu);
                    sum += eng.reduce_sum(trace_mul_dag(eng, &m2, &unu)).re;
                }
            }
        }
        sum
    })
}

/// Wilson gauge action `S = β Σ_{x,µ<ν} (1 - Re tr P_{µν}(x) / 3)`.
///
/// Zero on a unit gauge configuration, `≈ 6βV` deep in the random regime.
/// Gauge invariant, and bit-identical across 1/2/8 worker threads (fixed
/// chunk-tree reduction).
pub fn wilson_action(u: &GaugeField, beta: f64) -> f64 {
    let grid = u.grid().clone();
    let eng = grid.engine();
    let _span = qcd_trace::span!("hmc.action", eng.ctx());
    let sites = grid.volume() as u64;
    qcd_trace::record_sites(sites);
    qcd_trace::record_flops(sites * ACTION_FLOPS_PER_SITE);
    let n_plaq = (grid.volume() * NDIM * (NDIM - 1) / 2) as f64;
    beta * (n_plaq - plaquette_re_trace_sum(u) / NCOLOR as f64)
}

/// Average plaquette `⟨Re tr P / 3⟩` through the same word-level kernel as
/// [`wilson_action`] (agrees with `grid::gauge::average_plaquette` to
/// rounding; this one is parallel and cheap enough to log per trajectory).
pub fn average_plaquette_fast(u: &GaugeField) -> f64 {
    let grid = u.grid().clone();
    let n_plaq = (grid.volume() * NDIM * (NDIM - 1) / 2) as f64;
    plaquette_re_trace_sum(u) / NCOLOR as f64 / n_plaq
}

/// Sum of the six staples `Σ_µ(x)` for every link, packed like gauge
/// links (component `gauge_comp(µ, r, c)`):
///
/// ```text
/// Σ_µ(x) = Σ_{ν≠µ}  U_ν(x+µ̂) U_µ†(x+ν̂) U_ν†(x)                    (up)
///                 + U_ν†(x+µ̂-ν̂) U_µ†(x-ν̂) U_ν(x-ν̂)               (down)
/// ```
///
/// so that `Re tr[U_µ(x) Σ_µ(x)]` summed over links counts every plaquette
/// four times (once per link it contains).
pub fn staple_field(u: &GaugeField) -> GaugeField {
    let grid = u.grid().clone();
    let eng = grid.engine();
    let w = eng.word_len();
    let shifted: Vec<GaugeField> = (0..NDIM).map(|d| cshift(u, d, 1)).collect();
    let mut staple = GaugeField::zero(grid.clone());
    let cs = reduce::CHUNK_SITES * GaugeKind::NCOMP * w;

    for mu in 0..NDIM {
        for nu in 0..NDIM {
            if nu == mu {
                continue;
            }
            // Down staple: build D(y) = U_ν†(y+µ̂) U_µ†(y) U_ν(y) site-
            // locally, then shift it down so D arrives at x = y+ν̂.
            let mut down_src = Field::<ColourMatrixKind>::zero(grid.clone());
            let tcs = reduce::CHUNK_SITES * ColourMatrixKind::NCOMP * w;
            down_src
                .data_mut()
                .par_chunks_mut(tcs)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * reduce::CHUNK_SITES;
                    for (j, block) in chunk
                        .chunks_exact_mut(ColourMatrixKind::NCOMP * w)
                        .enumerate()
                    {
                        let osite = base + j;
                        let a = load_mat(eng, &shifted[mu], osite, gauge_comp(nu, 0, 0));
                        let b = load_mat(eng, u, osite, gauge_comp(mu, 0, 0));
                        let c = load_mat(eng, u, osite, gauge_comp(nu, 0, 0));
                        let d = mat_dag_mul(eng, &a, &mat_dag_mul(eng, &b, &c));
                        for r in 0..NCOLOR {
                            for cc in 0..NCOLOR {
                                eng.store(&mut block[(r * 3 + cc) * w..][..w], d[r][cc]);
                            }
                        }
                    }
                });
            let down = cshift(&down_src, nu, -1);

            // Up staple is site-local given the shifted fields; accumulate
            // both contributions into the packed staple component.
            staple
                .data_mut()
                .par_chunks_mut(cs)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let base = ci * reduce::CHUNK_SITES;
                    for (j, block) in chunk.chunks_exact_mut(GaugeKind::NCOMP * w).enumerate() {
                        let osite = base + j;
                        let a = load_mat(eng, &shifted[mu], osite, gauge_comp(nu, 0, 0));
                        let b = load_mat(eng, &shifted[nu], osite, gauge_comp(mu, 0, 0));
                        let c = load_mat(eng, u, osite, gauge_comp(nu, 0, 0));
                        let up = mat_mul_dag(eng, &mat_mul_dag(eng, &a, &b), &c);
                        let d = load_mat(eng, &down, osite, 0);
                        for r in 0..NCOLOR {
                            for cc in 0..NCOLOR {
                                let slot = &mut block[(gauge_comp(mu, r, cc)) * w..][..w];
                                let acc = eng.add(eng.load(slot), eng.add(up[r][cc], d[r][cc]));
                                eng.store(slot, acc);
                            }
                        }
                    }
                });
        }
    }
    staple
}

/// The HMC gauge force `F_µ(x) = -(β/6) · TA(U_µ(x) Σ_µ(x))` as a
/// link-shaped field — the time derivative `Ṗ` of the momenta.
///
/// A pure per-site map (no reduction), parallel over fixed chunks; emits a
/// `hmc.force` trace span with site and flop counts.
pub fn force(u: &GaugeField, beta: f64) -> GaugeField {
    let grid = u.grid().clone();
    let eng = grid.engine();
    let _span = qcd_trace::span!("hmc.force", eng.ctx());
    let sites = grid.volume() as u64;
    qcd_trace::record_sites(sites);
    qcd_trace::record_flops(sites * FORCE_FLOPS_PER_SITE);

    let staple = staple_field(u);
    let w = eng.word_len();
    let coef = eng.dup_real(-beta / (2.0 * NCOLOR as f64));
    let half = eng.dup_real(0.5);
    let third = eng.dup_real(1.0 / NCOLOR as f64);
    let mut f = GaugeField::zero(grid.clone());
    let cs = reduce::CHUNK_SITES * GaugeKind::NCOMP * w;
    f.data_mut()
        .par_chunks_mut(cs)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let base = ci * reduce::CHUNK_SITES;
            for (j, block) in chunk.chunks_exact_mut(GaugeKind::NCOMP * w).enumerate() {
                let osite = base + j;
                for mu in 0..NDIM {
                    let um = load_mat(eng, u, osite, gauge_comp(mu, 0, 0));
                    let sm = load_mat(eng, &staple, osite, gauge_comp(mu, 0, 0));
                    let wm = mat_mul(eng, &um, &sm);
                    // A = W - W† (anti-Hermitian part, twice).
                    let a: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
                        std::array::from_fn(|c| eng.sub(wm[r][c], eng.conj(wm[c][r])))
                    });
                    // TA(W) = A/2 - (tr A / 2N_c) · 1, then scale by -β/2N_c.
                    let tr = eng.add(eng.add(a[0][0], a[1][1]), a[2][2]);
                    let tr_term = eng.scale(half, eng.scale(third, tr));
                    for r in 0..NCOLOR {
                        for c in 0..NCOLOR {
                            let mut v = eng.scale(half, a[r][c]);
                            if r == c {
                                v = eng.sub(v, tr_term);
                            }
                            eng.store(
                                &mut block[gauge_comp(mu, r, c) * w..][..w],
                                eng.scale(coef, v),
                            );
                        }
                    }
                }
            }
        });
    f
}

/// Kinetic energy of a momentum field: `K = -Σ_{x,µ} tr P_µ(x)²`, which for
/// anti-Hermitian momenta is exactly the Frobenius `norm2` — reusing the
/// field's deterministic chunk-tree reduction.
pub fn kinetic_energy(p: &GaugeField) -> f64 {
    p.norm2()
}

/// Gaussian heat-bath momentum refresh: an independent
/// `P_µ(x) = Σ_a η_a (i T_a)` per link, with every normal drawn from its
/// own counter-mode stream keyed by `(global site, µ·8+a)` — drawing order
/// never matters, so the field is identical across vector lengths, thread
/// counts, and site iteration orders.
pub fn refresh_momenta(grid: Arc<Grid>, seed: u64) -> GaugeField {
    let mut p = GaugeField::zero(grid.clone());
    for x in grid.coords() {
        let gi = grid.global_index(&x);
        for mu in 0..NDIM {
            let etas: [f64; 8] =
                std::array::from_fn(|a| gaussian(seed, stream_id(gi, mu * 8 + a, 0)));
            let m = momentum_from_gaussians(&etas);
            for (r, row) in m.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    p.poke(&x, gauge_comp(mu, r, c), v);
                }
            }
        }
    }
    p
}

/// Molecular-dynamics link drift: `U_µ(x) ← exp(ε P_µ(x)) U_µ(x)` for every
/// link — a per-site map (parallel, deterministic), with the exponential
/// evaluated per SIMD lane through [`crate::algebra::exp_su3`].
pub fn update_links(u: &mut GaugeField, p: &GaugeField, eps: f64) {
    let grid = u.grid().clone();
    let eng = grid.engine();
    let w = eng.word_len();
    let lanes = eng.lanes_c();
    let cs = reduce::CHUNK_SITES * GaugeKind::NCOMP * w;
    u.data_mut()
        .par_chunks_mut(cs)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let base = ci * reduce::CHUNK_SITES;
            for (j, block) in chunk.chunks_exact_mut(GaugeKind::NCOMP * w).enumerate() {
                let osite = base + j;
                for mu in 0..NDIM {
                    let pw = load_mat(eng, p, osite, gauge_comp(mu, 0, 0));
                    let uw: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
                        std::array::from_fn(|c| eng.load(&block[gauge_comp(mu, r, c) * w..][..w]))
                    });
                    let per_lane: Vec<ColorMatrix> = (0..lanes)
                        .map(|l| {
                            let pm: ColorMatrix = std::array::from_fn(|r| {
                                std::array::from_fn(|c| eng.lane(pw[r][c], l).scale(eps))
                            });
                            let um: ColorMatrix = std::array::from_fn(|r| {
                                std::array::from_fn(|c| eng.lane(uw[r][c], l))
                            });
                            mat_mul_scalar(&exp_su3(&pm), &um)
                        })
                        .collect();
                    for r in 0..NCOLOR {
                        for c in 0..NCOLOR {
                            let v = eng.from_fn(|l| per_lane[l][r][c]);
                            eng.store(&mut block[gauge_comp(mu, r, c) * w..][..w], v);
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::gauge::{average_plaquette, max_unitarity_deviation};
    use grid::tensor::su3::{peek_link, random_gauge, unit_gauge};

    fn grid4(bits: usize) -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
    }

    #[test]
    fn action_matches_scalar_plaquette() {
        let g = grid4(256);
        let u = random_gauge(g.clone(), 51);
        let beta = 5.7;
        let n_plaq = (g.volume() * 6) as f64;
        let want = beta * n_plaq * (1.0 - average_plaquette(&u));
        let got = wilson_action(&u, beta);
        assert!(
            (want - got).abs() < 1e-9 * want.abs().max(1.0),
            "{want} vs {got}"
        );
        assert!((average_plaquette_fast(&u) - average_plaquette(&u)).abs() < 1e-12);
    }

    #[test]
    fn action_is_zero_on_unit_gauge() {
        let g = grid4(128);
        assert!(wilson_action(&unit_gauge(g.clone()), 6.0).abs() < 1e-9);
        let f = force(&unit_gauge(g), 6.0);
        assert!(f.norm2() < 1e-20, "unit gauge must be a fixed point");
    }

    #[test]
    fn action_is_identical_across_vector_lengths() {
        // Same physical field, different layouts: per-site arithmetic is
        // lane-wise identical, but the summation order over sites follows
        // the layout, so agreement is to rounding, not to the bit.
        let mut vals = Vec::new();
        for bits in [128usize, 512, 2048] {
            let g = grid4(bits);
            let u = random_gauge(g, 52);
            vals.push(wilson_action(&u, 5.7));
        }
        for v in &vals[1..] {
            assert!((v - vals[0]).abs() < 1e-8 * vals[0].abs());
        }
    }

    #[test]
    fn force_lives_in_the_algebra() {
        let g = grid4(256);
        let u = random_gauge(g.clone(), 53);
        let f = force(&u, 5.7);
        for x in g.coords().step_by(7) {
            for mu in 0..NDIM {
                let m = peek_link(&f, &x, mu);
                let p = crate::algebra::ta_project(&m);
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        assert!((m[r][c] - p[r][c]).abs() < 1e-13, "not in su(3)");
                    }
                }
            }
        }
    }

    #[test]
    fn force_matches_numerical_gradient() {
        // Directional derivative along a random algebra direction Q:
        //   d/dt S(e^{tQ} U)|_0  =  2 Σ_{x,µ} tr(Q_µ(x) F_µ(x))
        // — the identity that makes Ḣ = 0, since K = -Σ tr P² gives
        // K̇ = -2 Σ tr(P Ṗ) = -2 Σ tr(P F). Checked by symmetric
        // difference.
        let g = Grid::new([2, 2, 2, 2], VectorLength::of(128), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 54);
        let beta = 5.7;
        let q = {
            let mut q = GaugeField::zero(g.clone());
            for x in g.coords() {
                let gi = g.global_index(&x);
                for mu in 0..NDIM {
                    let etas: [f64; 8] =
                        std::array::from_fn(|a| gaussian(99, stream_id(gi, mu * 8 + a, 0)));
                    let m = momentum_from_gaussians(&etas);
                    for (r, row) in m.iter().enumerate() {
                        for (c, &v) in row.iter().enumerate() {
                            q.poke(&x, gauge_comp(mu, r, c), v);
                        }
                    }
                }
            }
            q
        };
        let h = 1e-5;
        let mut up = u.clone();
        update_links(&mut up, &q, h);
        let mut dn = u.clone();
        update_links(&mut dn, &q, -h);
        let numeric = (wilson_action(&up, beta) - wilson_action(&dn, beta)) / (2.0 * h);

        let f = force(&u, beta);
        let mut analytic = 0.0;
        for x in g.coords() {
            for mu in 0..NDIM {
                let qm = peek_link(&q, &x, mu);
                let fm = peek_link(&f, &x, mu);
                analytic += crate::algebra::trace(&mat_mul_scalar(&qm, &fm)).re;
            }
        }
        analytic *= 2.0;
        assert!(
            (numeric - analytic).abs() < 1e-6 * analytic.abs().max(1.0),
            "dS numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn refresh_is_layout_independent_and_gaussian() {
        let a = refresh_momenta(grid4(128), 7);
        let b = refresh_momenta(grid4(1024), 7);
        let x = [1, 2, 3, 0];
        for mu in 0..NDIM {
            assert_eq!(peek_link(&a, &x, mu), peek_link(&b, &x, mu));
        }
        // K/dof = ½ in expectation with dof = 8 per link.
        let dof = (a.grid().volume() * NDIM * 8) as f64;
        let k = kinetic_energy(&a);
        assert!(
            (k / dof - 0.5).abs() < 0.03,
            "K/dof = {} should be near 1/2",
            k / dof
        );
    }

    #[test]
    fn update_links_stays_in_the_group_and_inverts() {
        let g = grid4(256);
        let mut u = random_gauge(g.clone(), 55);
        let u0 = u.clone();
        let p = refresh_momenta(g.clone(), 8);
        update_links(&mut u, &p, 0.2);
        assert!(max_unitarity_deviation(&u) < 1e-12);
        assert!(u.max_abs_diff(&u0) > 1e-3, "drift must move the links");
        update_links(&mut u, &p, -0.2);
        assert!(
            u.max_abs_diff(&u0) < 1e-13,
            "exp(-εP) must undo exp(εP) to rounding"
        );
    }

    #[test]
    fn staple_reconstructs_the_action() {
        // Σ_{x,µ} Re tr[U_µ Σ_µ] counts every plaquette 4 times.
        let g = grid4(256);
        let u = random_gauge(g.clone(), 56);
        let staple = staple_field(&u);
        let mut sum = 0.0;
        for x in g.coords() {
            for mu in 0..NDIM {
                let um = peek_link(&u, &x, mu);
                let sm = peek_link(&staple, &x, mu);
                sum += crate::algebra::trace(&mat_mul_scalar(&um, &sm)).re;
            }
        }
        let plaq_sum = plaquette_re_trace_sum(&u);
        assert!(
            (sum - 4.0 * plaq_sum).abs() < 1e-8 * plaq_sum.abs().max(1.0),
            "{sum} vs 4·{plaq_sum}"
        );
    }
}
