//! Bit-level determinism of the Markov chain: a chain checkpointed at
//! trajectory `k` and resumed must be indistinguishable — links, ΔH
//! history, accept/reject sequence, bit for bit — from the chain that
//! never stopped, at every vector length and worker-thread count.
//!
//! `rayon::set_num_threads` mutates process-global state, so the thread
//! sweep lives in a single `#[test]` (same discipline as the core
//! `thread_determinism` suite); the resume sweep runs single-threaded
//! configurations side by side.

use grid::prelude::*;
use qcd_hmc::{HmcParams, IntegratorKind, MarkovChain};
use std::path::PathBuf;
use std::sync::Arc;

fn params() -> HmcParams {
    HmcParams {
        beta: 5.7,
        n_steps: 4,
        step_size: 0.1,
        integrator: IntegratorKind::Omelyan,
    }
}

fn grid4(bits: usize) -> Arc<Grid> {
    Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
}

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qcd-hmc-det-{tag}-{}", std::process::id()));
    p
}

fn link_bits(u: &grid::GaugeField) -> Vec<u64> {
    u.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn resume_is_bit_identical_to_uninterrupted_chain() {
    for bits in [128usize, 256, 512, 1024, 2048] {
        let g = grid4(bits);

        // The chain that never stops: 4 trajectories straight.
        let mut whole = MarkovChain::cold_start(g.clone(), params(), 97);
        whole.run(4);

        // The chain that dies at trajectory 2 and is restored from disk.
        let mut head = MarkovChain::cold_start(g.clone(), params(), 97);
        head.run(2);
        let path = tmp(&format!("vl{bits}"));
        head.save(&path).unwrap();
        drop(head); // the "crash"
        let (mut resumed, warn) = MarkovChain::load(&path, &g).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(warn.is_none(), "fresh checkpoint must be on the manifold");
        resumed.run(2);

        assert_eq!(
            link_bits(whole.links()),
            link_bits(resumed.links()),
            "VL{bits}: links diverged after resume"
        );
        assert_eq!(
            whole
                .dh_history()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            resumed
                .dh_history()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            "VL{bits}: ΔH history diverged"
        );
        assert_eq!(
            whole.accept_history(),
            resumed.accept_history(),
            "VL{bits}: accept/reject sequence diverged"
        );
        assert_eq!(whole.trajectory(), resumed.trajectory());
    }
}

#[test]
fn trajectories_are_bit_identical_across_thread_counts() {
    let g = grid4(256);

    rayon::set_num_threads(1);
    let mut reference = MarkovChain::cold_start(g.clone(), params(), 101);
    reference.run(3);

    for threads in [2usize, 8] {
        rayon::set_num_threads(threads);
        let mut chain = MarkovChain::cold_start(g.clone(), params(), 101);
        chain.run(3);
        assert_eq!(
            link_bits(reference.links()),
            link_bits(chain.links()),
            "links @ {threads} threads"
        );
        assert_eq!(
            reference
                .dh_history()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            chain
                .dh_history()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            "ΔH history @ {threads} threads"
        );
        assert_eq!(reference.accept_history(), chain.accept_history());
    }
    rayon::set_num_threads(0);
}

/// The physics acceptance gate: a thermalized 8⁴ chain at β = 5.7 must
/// reproduce the known plaquette ≈ 0.549. Minutes of software-SIMD work,
/// so opt-in (`cargo test -p qcd-hmc -- --ignored`); the CI `hmc-smoke`
/// job runs the same physics through the release-mode bench driver.
#[test]
#[ignore = "long: thermalizes an 8^4 lattice (CI covers it in release mode)"]
fn thermalized_plaquette_matches_literature() {
    let g = Grid::new([8, 8, 8, 8], VectorLength::of(512), SimdBackend::Fcmla);
    let mut chain = MarkovChain::cold_start(
        g,
        HmcParams {
            beta: 5.7,
            n_steps: 10,
            step_size: 0.1,
            integrator: IntegratorKind::Omelyan,
        },
        7,
    );
    chain.thermalize(30); // force-accepted relaxation out of the cold start
    let reports = chain.run(30);
    let plaq: f64 = reports.iter().map(|r| r.plaquette).sum::<f64>() / reports.len() as f64;
    assert!(
        (plaq - 0.549).abs() < 0.01,
        "8^4 β=5.7 plaquette {plaq} off the literature value 0.549"
    );
    let acc = reports.iter().filter(|r| r.accepted).count() as f64 / reports.len() as f64;
    assert!(acc > 0.5, "measured-window acceptance {acc}");
}
