//! Physics-level integration tests of the HMC machinery: gauge
//! invariance of the action, time-reversibility of the integrators, and
//! the ΔH step-size scaling that separates a symplectic integrator from a
//! merely stable one.

use grid::prelude::*;
use qcd_hmc::{
    kinetic_energy, refresh_momenta, wilson_action, HmcParams, Integrator, IntegratorKind,
    Leapfrog, MarkovChain, Omelyan,
};
use std::sync::Arc;

fn grid4(bits: usize) -> Arc<Grid> {
    Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
}

/// A configuration a few trajectories off cold start — rough enough to be
/// generic, smooth enough that modest step sizes sit in the asymptotic
/// scaling regime.
fn warm_links(grid: Arc<Grid>) -> grid::GaugeField {
    let mut chain = MarkovChain::cold_start(
        grid,
        HmcParams {
            beta: 5.7,
            n_steps: 4,
            step_size: 0.1,
            integrator: IntegratorKind::Omelyan,
        },
        23,
    );
    chain.run(3);
    chain.links().clone()
}

#[test]
fn action_and_observables_are_gauge_invariant() {
    let g = grid4(256);
    let u = random_gauge(g.clone(), 61);
    let t = random_transform(g.clone(), 62);
    let v = transform_links(&u, &t);
    let beta = 5.7;

    let s0 = wilson_action(&u, beta);
    let s1 = wilson_action(&v, beta);
    assert!(
        (s0 - s1).abs() < 1e-12 * s0.abs().max(1.0),
        "action not gauge invariant: {s0} vs {s1}"
    );

    let p0 = average_plaquette(&u);
    let p1 = average_plaquette(&v);
    assert!((p0 - p1).abs() < 1e-12, "plaquette: {p0} vs {p1}");

    let w0 = wilson_loop(&u, 0, 3, 2, 2);
    let w1 = wilson_loop(&v, 0, 3, 2, 2);
    assert!((w0 - w1).abs() < 1e-12, "wilson loop: {w0} vs {w1}");
}

#[test]
fn integrators_are_time_reversible() {
    let g = grid4(256);
    let u0 = warm_links(g.clone());
    let p0 = refresh_momenta(g.clone(), 71);
    let beta = 5.7;

    for (name, integ) in [
        ("leapfrog", &Leapfrog as &dyn Integrator),
        ("omelyan", &Omelyan as &dyn Integrator),
    ] {
        let mut u = u0.clone();
        let mut p = p0.clone();
        integ.integrate(&mut u, &mut p, beta, 4, 0.1);
        // Momentum flip + the same forward integration runs the
        // palindrome backwards.
        p.scale(-1.0);
        integ.integrate(&mut u, &mut p, beta, 4, 0.1);
        let dev = u.max_abs_diff(&u0);
        assert!(dev < 1e-10, "{name} irreversible: link deviation {dev:e}");
        // The momenta must return to -P0.
        p.scale(-1.0);
        let pdev = p.max_abs_diff(&p0);
        assert!(pdev < 1e-10, "{name}: momentum deviation {pdev:e}");
    }
}

/// ΔH of one trajectory of physical length τ = n·ε.
fn trajectory_dh(
    u0: &grid::GaugeField,
    p0: &grid::GaugeField,
    integ: &dyn Integrator,
    beta: f64,
    n: usize,
    eps: f64,
) -> f64 {
    let h0 = kinetic_energy(p0) + wilson_action(u0, beta);
    let mut u = u0.clone();
    let mut p = p0.clone();
    integ.integrate(&mut u, &mut p, beta, n, eps);
    kinetic_energy(&p) + wilson_action(&u, beta) - h0
}

#[test]
fn energy_violation_scales_with_the_integrator_order() {
    let g = grid4(256);
    let u = warm_links(g.clone());
    let p = refresh_momenta(g.clone(), 81);
    let beta = 5.7;

    // Fixed trajectory length τ = 0.5, halving ε twice.
    let steps = [(4usize, 0.125f64), (8, 0.0625), (16, 0.03125)];
    let lf: Vec<f64> = steps
        .iter()
        .map(|&(n, eps)| trajectory_dh(&u, &p, &Leapfrog, beta, n, eps))
        .collect();
    let om: Vec<f64> = steps[..2]
        .iter()
        .map(|&(n, eps)| trajectory_dh(&u, &p, &Omelyan, beta, n, eps))
        .collect();

    // Leapfrog: ΔH ∝ ε² at fixed τ — halving ε quarters ΔH.
    for w in lf.windows(2) {
        let order = (w[0].abs() / w[1].abs()).log2();
        assert!(
            (1.6..=2.4).contains(&order),
            "leapfrog order {order} from ΔH {lf:?}"
        );
    }

    // Omelyan: same formal order but a far smaller error constant — the
    // tuned λ cancels most of the ε² coefficient, so at these step sizes
    // the violation is dominated by higher powers of ε.
    for (o, l) in om.iter().zip(&lf) {
        assert!(
            o.abs() < l.abs() / 5.0,
            "omelyan ΔH {o:e} not ≪ leapfrog {l:e}"
        );
    }
    let om_order = (om[0].abs() / om[1].abs()).log2();
    assert!(om_order > 1.6, "omelyan order {om_order} from ΔH {om:?}");
}

#[test]
fn acceptance_and_exp_dh_look_like_equilibrium() {
    // Creutz equality ⟨exp(-ΔH)⟩ = 1 holds trajectory by trajectory in
    // equilibrium; a short warm chain must already hover near it.
    let g = grid4(128);
    let mut chain = MarkovChain::cold_start(
        g,
        HmcParams {
            beta: 5.6,
            n_steps: 6,
            step_size: 0.1,
            integrator: IntegratorKind::Omelyan,
        },
        31,
    );
    chain.thermalize(3); // discard (force-accepted) thermalization
    let reports = chain.run(8);
    let mean_exp: f64 = reports.iter().map(|r| (-r.dh).exp()).sum::<f64>() / reports.len() as f64;
    assert!(
        (0.5..2.0).contains(&mean_exp),
        "⟨exp(-ΔH)⟩ = {mean_exp} far from 1"
    );
    let acc = reports.iter().filter(|r| r.accepted).count() as f64 / reports.len() as f64;
    assert!(acc > 0.5, "measured-window acceptance {acc}");
    for r in &reports {
        assert!((0.0..1.0).contains(&r.plaquette), "{r:?}");
        assert_eq!(r.dh, r.h1 - r.h0);
    }
}
