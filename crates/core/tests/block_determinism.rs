//! Determinism and single-RHS equivalence of the batched multi-RHS path.
//!
//! The batching contract is that a `FermionBlock` never changes the math:
//! per right-hand side, the block kernels and `block_cg` retire the exact
//! op sequence of the single-RHS fused path, so every RHS of a batched
//! solve is bit-identical to its own independent `cg` solve — per-RHS
//! convergence masking included — at every precision, vector length and
//! thread count.
//!
//! `rayon::set_num_threads` mutates process-global state, so this file is
//! a single `#[test]` in its own integration-test binary.

use grid::field::FermionKind;
use grid::prelude::*;
use grid::{FermionBlock, Field};

/// One precision × vector-length case: assert the block path against the
/// single-RHS path RHS by RHS, and distill every result into a bit
/// signature for the cross-thread comparison.
macro_rules! block_case {
    ($ty:ty, $vl:expr, $tol:expr) => {{
        let g = Grid::<$ty>::new([4, 4, 4, 4], VectorLength::of($vl), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 51);
        let op = WilsonDirac::<$ty>::new(u, 0.2);
        let fields: Vec<Field<FermionKind, $ty>> = (0..3)
            .map(|j| Field::random(g.clone(), 52 + j as u64))
            .collect();
        let mut sig: Vec<u64> = Vec::new();

        // Batched fused M†M + curvature dot vs the single-RHS workspace
        // kernel, for N = 1 and N = 3: bit-identical per RHS.
        for n in [1usize, 3] {
            let block = FermionBlock::from_fields(&fields[..n]);
            let mut tmp = FermionBlock::zero(g.clone(), n);
            let mut out = FermionBlock::zero(g.clone(), n);
            let dots = op.mdag_m_block_into_dot(&block, &mut tmp, &mut out);
            for j in 0..n {
                let mut stmp = Field::<FermionKind, $ty>::zero(g.clone());
                let mut sout = Field::<FermionKind, $ty>::zero(g.clone());
                let sdot = op.mdag_m_into_dot(&fields[j], &mut stmp, &mut sout);
                assert_eq!(
                    dots[j].to_bits(),
                    sdot.to_bits(),
                    "vl={} N={n} rhs={j} curvature dot",
                    $vl
                );
                assert_eq!(
                    out.rhs_field(j).max_abs_diff(&sout),
                    0.0,
                    "vl={} N={n} rhs={j} M†M output",
                    $vl
                );
                sig.push(sdot.to_bits() as u64);
            }
        }

        // Batched CG with per-RHS convergence masking vs three independent
        // single-RHS solves: iteration counts, residuals, histories and
        // solutions must all match bit for bit even though the RHS
        // converge at different iterations.
        let block = FermionBlock::from_fields(&fields);
        let (x, rep) = block_cg(&op, &block, $tol, 60);
        for (j, f) in fields.iter().enumerate() {
            let (xs, rs) = cg(&op, f, $tol, 60);
            assert_eq!(
                rep.per_rhs_iterations[j], rs.iterations,
                "vl={} rhs={j} iterations",
                $vl
            );
            assert_eq!(
                rep.residuals[j].to_bits(),
                rs.residual.to_bits(),
                "vl={} rhs={j} residual",
                $vl
            );
            assert_eq!(
                rep.histories[j]
                    .iter()
                    .map(|r| r.to_bits())
                    .collect::<Vec<_>>(),
                rs.history.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "vl={} rhs={j} history",
                $vl
            );
            assert_eq!(
                x.rhs_field(j).max_abs_diff(&xs),
                0.0,
                "vl={} rhs={j} solution",
                $vl
            );
            sig.push(rs.iterations as u64);
            sig.push(rs.residual.to_bits());
        }
        sig.extend(x.data().iter().map(|w| w.to_bits() as u64));
        sig
    }};
}

/// The full sweep at the current rayon thread count.
fn signatures() -> Vec<Vec<u64>> {
    let mut sigs = Vec::new();
    for vl in [128usize, 256, 512, 1024, 2048] {
        sigs.push(block_case!(f64, vl, 1e-8));
        sigs.push(block_case!(f32, vl, 1e-3));
    }
    sigs
}

#[test]
fn block_path_is_deterministic_across_threads_precisions_and_vls() {
    rayon::set_num_threads(1);
    let reference = signatures();

    for threads in [2usize, 8] {
        rayon::set_num_threads(threads);
        let got = signatures();
        assert_eq!(
            got, reference,
            "block path diverged at {threads} threads (vs single-thread reference)"
        );
    }
    rayon::set_num_threads(0);
}
