//! Determinism sweep for the distributed solver: for a fixed global
//! lattice, the distributed CG solution and residual history must be
//! **bit-identical** across every combination of rank count, vector
//! length, and worker thread count.
//!
//! This is the distributed extension of `thread_determinism.rs`: the
//! canonical scalar reductions of `dist_cg` (per-site scalars allgathered
//! into global lexical order, summed by the fixed chunk tree) remove the
//! rank count and the SIMD layout from every α and β, and the halo-patched
//! site kernel runs the exact op sequence of the global operator — so
//! nothing in the configuration can move a single bit.

use grid::prelude::*;
use grid::{Coor, NDIM};

const GLOBAL: Coor = [4, 4, 4, 8];
const NCOMP: usize = 12;
const MASS: f64 = 0.3;
const ITERS: usize = 12;

/// One configuration's outcome: sorted (global site × component) solution
/// bits plus the residual-history bits.
type SolveBits = (Vec<(usize, u64, u64)>, Vec<u64>);

/// Solve on `nranks` t-ranks at `vl` and return the solution bits (keyed
/// by global site and component) plus the residual-history bits.
fn dist_solve_bits(nranks: usize, vl: VectorLength) -> SolveBits {
    let mut rank_grid = [1; NDIM];
    rank_grid[3] = nranks;
    let mut per_rank = run_multinode_grid(GLOBAL, rank_grid, vl, SimdBackend::Fcmla, |ctx| {
        let g = Grid::new(GLOBAL, vl, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let b = FermionField::random(g, 13);
        let dw = DistWilson::new(
            ctx,
            restrict_field(ctx, &u),
            MASS,
            GaugeWire::TwoRow,
            Compression::None,
        );
        // Tiny tolerance pins the iteration count: every configuration
        // runs exactly ITERS iterations and compares mid-convergence bits.
        let (x, report) = dist_cg(&dw, &restrict_field(ctx, &b), 1e-30, ITERS);
        assert_eq!(report.iterations, ITERS);
        let mut bits = Vec::new();
        for local in ctx.grid.coords() {
            let gc = ctx.to_global(&local);
            let gidx = grid::layout::lex(&gc, &ctx.global_dims);
            for comp in 0..NCOMP {
                let v = x.peek(&local, comp);
                bits.push((gidx * NCOMP + comp, v.re.to_bits(), v.im.to_bits()));
            }
        }
        let history: Vec<u64> = report.history.iter().map(|h| h.to_bits()).collect();
        (bits, history)
    });
    let mut bits: Vec<(usize, u64, u64)> = per_rank
        .iter_mut()
        .flat_map(|(b, _)| std::mem::take(b))
        .collect();
    bits.sort_unstable();
    let history = per_rank.pop().unwrap().1;
    for (_, h) in &per_rank {
        assert_eq!(h, &history, "ranks disagree on the residual history");
    }
    (bits, history)
}

#[test]
fn distributed_solve_is_invariant_across_ranks_vl_and_threads() {
    let mut reference: Option<SolveBits> = None;
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        for nranks in [1usize, 2, 4] {
            for bits in [128usize, 256, 512, 1024, 2048] {
                let vl = VectorLength::of(bits);
                let run = dist_solve_bits(nranks, vl);
                match &reference {
                    None => reference = Some(run),
                    Some(r) => {
                        assert_eq!(
                            run.1, r.1,
                            "history differs at R={nranks} VL={bits} threads={threads}"
                        );
                        assert_eq!(
                            run.0, r.0,
                            "solution differs at R={nranks} VL={bits} threads={threads}"
                        );
                    }
                }
            }
        }
    }
    rayon::set_num_threads(0);
}
