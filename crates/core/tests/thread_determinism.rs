//! Thread-count determinism of the parallel field reductions.
//!
//! The fixed-chunk tree reduction guarantees that `inner`, `norm2` and the
//! fused axpy+norm kernels produce *bit-identical* scalars whether they run
//! on 1, 2 or 8 workers — the property that makes checkpoints, residual
//! histories and CI logs reproducible across machines.
//!
//! `rayon::set_num_threads` mutates process-global state, so this file is a
//! single `#[test]` in its own integration-test binary.

use grid::prelude::*;

struct Sample {
    inner: (u64, u64),
    norm2: u64,
    axpy_norm2: u64,
    caxpy_norm2: u64,
    sub_norm2: u64,
    axpy_out: Vec<u64>,
}

fn sample(x: &FermionField, y: &FermionField) -> Sample {
    let ip = x.inner(y);
    let mut ax = y.clone();
    let axn = ax.axpy_norm2(-0.375, x);
    let mut cx = y.clone();
    let cxn = cx.caxpy_norm2(Complex::new(0.25, -0.5), x);
    let mut sub = FermionField::zero(x.grid().clone());
    let sn = sub.sub_norm2(x, y);
    Sample {
        inner: (ip.re.to_bits(), ip.im.to_bits()),
        norm2: x.norm2().to_bits(),
        axpy_norm2: axn.to_bits(),
        caxpy_norm2: cxn.to_bits(),
        sub_norm2: sn.to_bits(),
        axpy_out: ax.data().iter().map(|v| v.to_bits()).collect(),
    }
}

#[test]
fn reductions_are_bit_identical_across_thread_counts() {
    let g = Grid::new([4, 4, 4, 8], VectorLength::of(512), SimdBackend::Fcmla);
    let x = FermionField::random(g.clone(), 41);
    let y = FermionField::random(g.clone(), 42);

    rayon::set_num_threads(1);
    let reference = sample(&x, &y);

    for threads in [2usize, 8] {
        rayon::set_num_threads(threads);
        let s = sample(&x, &y);
        assert_eq!(s.inner, reference.inner, "inner @ {threads} threads");
        assert_eq!(s.norm2, reference.norm2, "norm2 @ {threads} threads");
        assert_eq!(
            s.axpy_norm2, reference.axpy_norm2,
            "axpy_norm2 @ {threads} threads"
        );
        assert_eq!(
            s.caxpy_norm2, reference.caxpy_norm2,
            "caxpy_norm2 @ {threads} threads"
        );
        assert_eq!(
            s.sub_norm2, reference.sub_norm2,
            "sub_norm2 @ {threads} threads"
        );
        assert_eq!(
            s.axpy_out, reference.axpy_out,
            "axpy_norm2 output field @ {threads} threads"
        );
    }

    // A full solve — reductions feed step acceptance, so any divergence
    // would compound. The whole history must match, not just the answer.
    rayon::set_num_threads(1);
    let u = random_gauge(g.clone(), 43);
    let d = WilsonDirac::new(u, 0.3);
    let (x1, rep1) = cg(&d, &y, 1e-8, 500);
    rayon::set_num_threads(8);
    let (x8, rep8) = cg(&d, &y, 1e-8, 500);
    rayon::set_num_threads(0);
    assert_eq!(rep1.iterations, rep8.iterations);
    assert_eq!(rep1.residual.to_bits(), rep8.residual.to_bits());
    assert_eq!(
        rep1.history.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        rep8.history.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(x1.max_abs_diff(&x8), 0.0);
}
