//! Property tests pinning the halo wire-byte model for *any* rank count
//! and face geometry.
//!
//! The `qcd-bench-comms/v1` regression gate and the comms telemetry both
//! trust the per-site model (gauge: 576/384/96 B per site for full-f64 /
//! two-row-f64 / two-row-f16; fermion: 192/48 B per site for f64/f16).
//! These properties tie the model to the actual bytes [`HaloMsg`] puts on
//! the wire, for arbitrary rank grids and local extents — not just the
//! geometries the unit tests happen to use.

use grid::prelude::*;
use grid::{Coor, NDIM};
use proptest::prelude::*;

/// Pinned gauge bytes per site for a 4-link face (the model table in
/// `topology.rs`, plus the full-f16 corner it implies).
fn gauge_bytes_per_site(wire: GaugeWire, comp: Compression) -> usize {
    match (wire, comp) {
        (GaugeWire::Full, Compression::None) => 576,
        (GaugeWire::TwoRow, Compression::None) => 384,
        (GaugeWire::Full, Compression::F16) => 144,
        (GaugeWire::TwoRow, Compression::F16) => 96,
    }
}

fn fermion_bytes_per_site(comp: Compression) -> usize {
    match comp {
        Compression::None => 192,
        Compression::F16 => 48,
    }
}

fn link_scalars(wire: GaugeWire) -> usize {
    match wire {
        GaugeWire::Full => LINK_SCALARS_FULL,
        GaugeWire::TwoRow => LINK_SCALARS_TWO_ROW,
    }
}

fn coor_from(choices: Vec<usize>) -> impl Strategy<Value = Coor> {
    proptest::collection::vec(proptest::sample::select(choices), 4)
        .prop_map(|v| std::array::from_fn(|d| v[d]))
}

/// A rank-grid strategy: zero to four split dimensions, 1–4 ranks each.
fn rank_grids() -> impl Strategy<Value = Coor> {
    coor_from(vec![1, 2, 4])
}

/// Local extents: small even sizes so every generated global lattice is a
/// legal decomposition.
fn local_extents() -> impl Strategy<Value = Coor> {
    coor_from(vec![2, 4, 6])
}

fn wires() -> impl Strategy<Value = GaugeWire> {
    proptest::sample::select(vec![GaugeWire::Full, GaugeWire::TwoRow])
}

fn compressions() -> impl Strategy<Value = Compression> {
    proptest::sample::select(vec![Compression::None, Compression::F16])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any topology, every face's modeled byte counts are exactly
    /// `sites × bytes/site` from the pinned table, and the face site count
    /// is the transverse volume of the local lattice.
    #[test]
    fn face_geometry_follows_the_pinned_per_site_model(
        rank_grid in rank_grids(),
        local in local_extents(),
        wire in wires(),
        comp in compressions(),
    ) {
        let topo = RankTopology::new(rank_grid);
        let global: Coor = std::array::from_fn(|d| rank_grid[d] * local[d]);
        let faces = topo.faces(&global);
        let n_split = (0..NDIM).filter(|&d| rank_grid[d] > 1).count();
        prop_assert_eq!(faces.len(), n_split);
        for f in faces {
            prop_assert!(rank_grid[f.dim] > 1);
            let transverse: usize =
                local.iter().product::<usize>() / local[f.dim];
            prop_assert_eq!(f.sites, transverse);
            prop_assert_eq!(
                gauge_face_bytes(f.sites, wire, comp),
                f.sites * gauge_bytes_per_site(wire, comp)
            );
            prop_assert_eq!(
                link_ghost_bytes(f.sites, wire, comp),
                f.sites * gauge_bytes_per_site(wire, comp) / 4
            );
            prop_assert_eq!(
                fermion_face_bytes(f.sites, comp),
                f.sites * fermion_bytes_per_site(comp)
            );
        }
    }

    /// The bytes a fermion-face [`HaloMsg`] actually carries equal the
    /// model, and an uncompressed round trip through `decode_into` is
    /// bit-exact.
    #[test]
    fn fermion_halo_messages_match_the_model(
        sites in 1usize..200,
        comp in compressions(),
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = (0..sites * 24)
            .map(|i| ((seed as f64) + i as f64).sin())
            .collect();
        let msg = HaloMsg::encode(&data, comp);
        prop_assert_eq!(msg.wire_bytes(), fermion_face_bytes(sites, comp));
        prop_assert_eq!(msg.scalars(), sites * 24);
        let mut out = vec![0.0; data.len()];
        msg.decode_into(&mut out);
        if comp == Compression::None {
            prop_assert_eq!(out, data);
        }
    }

    /// The bytes a one-link gauge-ghost [`HaloMsg`] carries equal the
    /// model's `link_ghost_bytes` — the quantity `DistWilson::ghost_bytes`
    /// sums per split dimension.
    #[test]
    fn gauge_ghost_messages_match_the_model(
        sites in 1usize..200,
        wire in wires(),
        comp in compressions(),
    ) {
        let data = vec![0.5; sites * link_scalars(wire)];
        let msg = HaloMsg::encode(&data, comp);
        prop_assert_eq!(msg.wire_bytes(), link_ghost_bytes(sites, wire, comp));
    }
}
