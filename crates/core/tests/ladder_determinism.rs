//! Layout invariance of the three-level precision ladder: residual
//! histories (outer and inner) and the solution must be **bit-identical**
//! across vector lengths {128..2048} and thread counts {1, 2, 8}. Every
//! steering scalar in the ladder is a canonical reduction — the f16 tier's
//! with f32 per-site accumulation — and every field update is pointwise,
//! so nothing may depend on the virtual-node decomposition or the worker
//! count.
//!
//! `rayon::set_num_threads` mutates process-global state, so this file is
//! a single `#[test]` in its own integration-test binary.

use grid::mixed::{ladder_solve, LadderConfig};
use grid::prelude::*;

struct Run {
    outer: Vec<u64>,
    inner: Vec<u64>,
    solution: Vec<u64>,
    f16_iterations: usize,
    reliable_updates: usize,
}

fn run(vl_bits: usize) -> Run {
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(vl_bits), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 121);
    let b = FermionField::random(g.clone(), 122);
    let op = WilsonDirac::new(u, 0.3);
    let (x, report) = ladder_solve(&op, &b, &LadderConfig::new(1e-8));
    assert!(report.converged, "vl {vl_bits}: {report:?}");
    assert!(
        report.f16_iterations > 0,
        "vl {vl_bits}: f16 tier never ran"
    );
    // The SIMD layout differs per VL, so compare site values, not words.
    let mut solution = Vec::with_capacity(g.volume() * 24);
    for xcoor in g.coords() {
        for comp in 0..12 {
            let z = x.peek(&xcoor, comp);
            solution.push(z.re.to_bits());
            solution.push(z.im.to_bits());
        }
    }
    Run {
        outer: report.outer_history.iter().map(|v| v.to_bits()).collect(),
        inner: report.inner_history.iter().map(|v| v.to_bits()).collect(),
        solution,
        f16_iterations: report.f16_iterations,
        reliable_updates: report.reliable_updates,
    }
}

#[test]
fn ladder_is_bit_identical_across_vector_lengths_and_thread_counts() {
    rayon::set_num_threads(1);
    let reference = run(128);
    assert!(reference.reliable_updates >= 1);
    for threads in [1, 2, 8] {
        rayon::set_num_threads(threads);
        for vl_bits in [128, 256, 512, 1024, 2048] {
            let probe = run(vl_bits);
            assert_eq!(
                probe.f16_iterations, reference.f16_iterations,
                "f16 iteration count differs at vl {vl_bits} / {threads} threads"
            );
            assert_eq!(
                probe.outer, reference.outer,
                "outer residual history differs at vl {vl_bits} / {threads} threads"
            );
            assert_eq!(
                probe.inner, reference.inner,
                "inner residual history differs at vl {vl_bits} / {threads} threads"
            );
            assert_eq!(
                probe.solution, reference.solution,
                "solution bits differ at vl {vl_bits} / {threads} threads"
            );
        }
    }
    rayon::set_num_threads(0); // restore the default pool
}
