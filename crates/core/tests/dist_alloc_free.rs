//! The distributed solve path's steady state performs **zero heap
//! allocations** — the multi-rank extension of `alloc_free.rs`.
//!
//! One overlapped normal-operator application plus one canonical global
//! reduction touches every comms mechanism: face packing, `HaloMsg`
//! encode-into-shell (the recycled-shell pool), bounded-channel send/recv,
//! `decode_into` the pre-registered halo buffers, and the ring allgather
//! circulating reduction slabs. After a warm-up that fills the shell pool,
//! ten such sweeps must leave the global allocation counter untouched on
//! every rank simultaneously.
//!
//! Telemetry detail (per-face spans, flight events) is disabled: those are
//! debugging surfaces and allocate by design. The guarantee is for the
//! serial sweep path, so the test pins one rayon worker; ranks themselves
//! are scoped threads spawned once, outside the measured region. The
//! allocator is process-global, hence this file is its own test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use grid::prelude::*;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Warm, barrier, measure `iters` overlapped `M†M` + canonical-norm
/// sweeps, barrier, and return the counter delta observed by this rank.
fn measured_sweeps(
    ctx: &RankCtx,
    dw: &DistWilson,
    ws: &mut DistWorkspace,
    psi: &FermionField,
    out: &mut FermionField,
) -> u64 {
    let mut bar = vec![0.0];
    for _ in 0..3 {
        dw.mdag_m_into(psi, ws, out);
        let _ = dw.canon_norm2(out, ws);
    }
    // All ranks finish warm-up (shell pools filled, halo buffers sized)
    // before anyone snapshots the process-global counter.
    bar = ctx.ring_allgather(bar, |_, _| {});
    let before = allocations();
    for _ in 0..10 {
        dw.mdag_m_into(psi, ws, out);
        let _ = dw.canon_norm2(out, ws);
    }
    // All ranks leave the measured region before the counter is read.
    bar = ctx.ring_allgather(bar, |_, _| {});
    drop(bar);
    allocations() - before
}

#[test]
fn distributed_steady_state_allocates_nothing() {
    rayon::set_num_threads(1);
    qcd_metrics::set_flight_enabled(false);
    const GLOBAL: [usize; 4] = [4, 4, 4, 8];
    for compression in [Compression::None, Compression::F16] {
        let deltas = run_multinode_grid(
            GLOBAL,
            [1, 1, 1, 2],
            VectorLength::of(512),
            SimdBackend::Fcmla,
            |ctx| {
                ctx.set_detail_spans(false);
                let g = Grid::new(GLOBAL, VectorLength::of(512), SimdBackend::Fcmla);
                let u = restrict_field(ctx, &random_gauge(g.clone(), 51));
                let psi = restrict_field(ctx, &FermionField::random(g, 52));
                let dw = DistWilson::new(ctx, u, 0.2, GaugeWire::TwoRow, compression);
                let mut ws = DistWorkspace::new(&dw);
                let mut out = FermionField::zero(ctx.grid.clone());
                measured_sweeps(ctx, &dw, &mut ws, &psi, &mut out)
            },
        );
        for (rank, delta) in deltas.iter().enumerate() {
            assert_eq!(
                *delta, 0,
                "rank {rank} steady state performed {delta} allocations ({compression:?})"
            );
        }
    }
    qcd_metrics::set_flight_enabled(true);
    rayon::set_num_threads(0);
}
