//! Proof that the solvers' steady state performs **zero heap allocations**.
//!
//! A counting global allocator wraps `System`; after a warm-up (which may
//! grow the residual-history vector to its reserved capacity), a block of
//! `step_ws` iterations must leave the allocation counter untouched — for
//! CG on the fused `M†M` path, for BiCGStab on `apply_into`, and for all
//! six precision-pair directions of `to_precision_into` (f64/f32/f16,
//! both ways) into preallocated destinations.
//!
//! The guarantee is for the serial sweep path (`rayon` worker spawning
//! allocates thread stacks by design), so the test pins one worker. The
//! allocator is process-global and parallel test threads would pollute
//! the measurement window, hence this file is a single test in its own
//! binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use grid::field::FermionKind;
use grid::prelude::*;
use sve::F16;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn solver_steady_state_allocates_nothing() {
    rayon::set_num_threads(1);
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 51);
    let d = WilsonDirac::new(u, 0.2);
    let b = FermionField::random(g.clone(), 52);

    // --- CG on the fused normal operator -------------------------------
    let mut state = CgState::new(&b);
    state.history.reserve(64);
    let mut ws = SolverWorkspace::new(g.clone());
    let mut apply = |p: &FermionField, ws: &mut SolverWorkspace| {
        let SolverWorkspace { tmp, ap, .. } = ws;
        d.mdag_m_into_dot(p, tmp, ap)
    };
    for _ in 0..3 {
        state.step_ws(&mut ws, &mut apply); // warm-up
    }
    let before = allocations();
    for _ in 0..10 {
        state.step_ws(&mut ws, &mut apply);
        assert!(!state.converged(1e-30), "test lattice converged too fast");
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "CG steady state performed {delta} allocations");

    // --- BiCGStab on the fused Wilson apply ----------------------------
    let mut bstate = BicgStabState::new(&b);
    bstate.history.reserve(64);
    let mut bapply = |p: &FermionField, out: &mut FermionField| d.apply_into(p, out);
    for _ in 0..3 {
        bstate.step_ws(&mut ws, &mut bapply);
    }
    let before = allocations();
    for _ in 0..10 {
        bstate.step_ws(&mut ws, &mut bapply);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "BiCGStab steady state performed {delta} allocations"
    );

    // --- to_precision_into: all six precision-pair directions ----------
    // The re-layout walks the allocation-free `coords()` iterator and
    // pokes into a preallocated destination; once the fields exist, no
    // direction may touch the heap.
    let g32 = Grid::<f32>::new(g.fdims(), g.vl(), g.engine().backend());
    let g16 = Grid::<F16>::new(g.fdims(), g.vl(), g.engine().backend());
    let f64a = FermionField::random(g.clone(), 53);
    let mut f64b = FermionField::zero(g.clone());
    let mut f32a = Field::<FermionKind, f32>::zero(g32.clone());
    let mut f16a = Field::<FermionKind, F16>::zero(g16.clone());
    let mut convert_all = || {
        to_precision_into(&f64a, &mut f32a); // f64 -> f32
        to_precision_into(&f64a, &mut f16a); // f64 -> f16
        to_precision_into(&f32a, &mut f16a); // f32 -> f16
        to_precision_into(&f16a, &mut f32a); // f16 -> f32
        to_precision_into(&f32a, &mut f64b); // f32 -> f64
        to_precision_into(&f16a, &mut f64b); // f16 -> f64
    };
    convert_all(); // warm-up (first trace-counter touch may intern)
    let before = allocations();
    for _ in 0..5 {
        convert_all();
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "to_precision_into steady state performed {delta} allocations"
    );
    // And the chain was lossy in the expected, bounded way: the final
    // f16 -> f64 image differs from the source by at most the binary16
    // grain per scalar.
    let mut diff = FermionField::zero(g.clone());
    diff.sub(&f64a, &f64b);
    let rel = (diff.norm2() / f64a.norm2()).sqrt();
    assert!(rel > 0.0 && rel < 2e-3, "f16 round-trip error {rel}");
    rayon::set_num_threads(0);
}
