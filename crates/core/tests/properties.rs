//! Property-based tests of the lattice library: algebraic laws that must
//! hold for random lattices, vector lengths, backends and field content.

use grid::prelude::*;
use grid::Coor;
use proptest::prelude::*;
use std::sync::Arc;

/// Random valid configuration: small even lattice dims + any sweep VL +
/// any backend.
fn any_cfg() -> impl Strategy<Value = (Coor, VectorLength, SimdBackend)> {
    (
        proptest::sample::select(vec![
            [2usize, 2, 2, 2],
            [4, 2, 2, 2],
            [2, 4, 2, 4],
            [4, 4, 2, 2],
            [4, 4, 4, 4],
        ]),
        proptest::sample::select(VectorLength::sweep().to_vec()),
        proptest::sample::select(SimdBackend::all().to_vec()),
    )
        .prop_filter("lattice must host the virtual nodes", |(dims, vl, _)| {
            // lanes_c must factor into the even dims.
            let lanes = vl.lanes64() / 2;
            let twos: u32 = dims.iter().map(|d| d.trailing_zeros()).sum();
            lanes.trailing_zeros() <= twos && lanes.is_power_of_two()
        })
}

fn make_grid(dims: Coor, vl: VectorLength, backend: SimdBackend) -> Arc<Grid> {
    Grid::new(dims, vl, backend)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// cshift(+mu) and cshift(-mu) are inverse bijections on field data.
    #[test]
    fn cshift_round_trips((dims, vl, backend) in any_cfg(), mu in 0usize..4, seed in 1u64..500) {
        let g = make_grid(dims, vl, backend);
        let f = FermionField::random(g.clone(), seed);
        let round = cshift(&cshift(&f, mu, 1), mu, -1);
        prop_assert_eq!(round.max_abs_diff(&f), 0.0);
    }

    /// cshift preserves the norm exactly (pure data movement).
    #[test]
    fn cshift_preserves_norm((dims, vl, backend) in any_cfg(), mu in 0usize..4, seed in 1u64..500) {
        let g = make_grid(dims, vl, backend);
        let f = FermionField::random(g.clone(), seed);
        let s = cshift(&f, mu, 1);
        prop_assert!((s.norm2() - f.norm2()).abs() < 1e-9 * f.norm2().max(1.0));
    }

    /// Storage mapping is a bijection for every valid configuration.
    #[test]
    fn layout_is_a_bijection((dims, vl, backend) in any_cfg()) {
        let g = make_grid(dims, vl, backend);
        let mut seen = vec![false; g.volume()];
        for x in g.coords() {
            let (o, l) = g.coor_to_osite_lane(&x);
            prop_assert_eq!(g.osite_lane_to_coor(o, l), x);
            let slot = o * g.lanes_c() + l;
            prop_assert!(!seen[slot]);
            seen[slot] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Field inner product is a positive-definite sesquilinear form.
    #[test]
    fn inner_product_axioms((dims, vl, backend) in any_cfg(), s1 in 1u64..200, s2 in 200u64..400, a in -3.0f64..3.0) {
        let g = make_grid(dims, vl, backend);
        let x = FermionField::random(g.clone(), s1);
        let y = FermionField::random(g.clone(), s2);
        // conjugate symmetry
        let xy = x.inner(&y);
        let yx = y.inner(&x);
        prop_assert!((xy - yx.conj()).abs() < 1e-8 * xy.abs().max(1.0));
        // linearity in the second argument (real scalar)
        let mut ay = y.clone();
        ay.scale(a);
        let x_ay = x.inner(&ay);
        prop_assert!((x_ay - xy * a).abs() < 1e-8 * xy.abs().max(1.0));
        // positivity
        let xx = x.inner(&x);
        prop_assert!(xx.re > 0.0);
        prop_assert!(xx.im.abs() < 1e-8 * xx.re);
    }

    /// The Wilson operator is linear: M(aψ + φ) == a·Mψ + Mφ.
    #[test]
    fn wilson_operator_is_linear((dims, vl, backend) in any_cfg(), a in -2.0f64..2.0, seed in 1u64..100) {
        let g = make_grid(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), 0.2);
        let psi = FermionField::random(g.clone(), seed + 1000);
        let phi = FermionField::random(g.clone(), seed + 2000);
        let mut combo = FermionField::zero(g.clone());
        combo.axpy(a, &psi, &phi);
        let lhs = op.apply(&combo);
        let mut rhs = FermionField::zero(g.clone());
        rhs.axpy(a, &op.apply(&psi), &op.apply(&phi));
        let scale = rhs.norm2().sqrt().max(1.0);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10 * scale);
    }

    /// γ5-hermiticity holds for random masses and gauge backgrounds.
    #[test]
    fn g5_hermiticity_random_mass((dims, vl, backend) in any_cfg(), mass in -0.5f64..2.0, seed in 1u64..100) {
        let g = make_grid(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), mass);
        let psi = FermionField::random(g.clone(), seed + 500);
        let lhs = gamma5(&op.apply(&gamma5(&psi)));
        let rhs = op.apply_dag(&psi);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10 * rhs.norm2().sqrt().max(1.0));
    }

    /// Checkerboard projections decompose every field orthogonally.
    #[test]
    fn parity_decomposition((dims, vl, backend) in any_cfg(), seed in 1u64..500) {
        let g = make_grid(dims, vl, backend);
        let f = FermionField::random(g.clone(), seed);
        let even = parity_project(&f, 0);
        let odd = parity_project(&f, 1);
        let mut sum = even.clone();
        sum.add_assign_field(&odd);
        prop_assert_eq!(sum.max_abs_diff(&f), 0.0);
        prop_assert!((even.norm2() + odd.norm2() - f.norm2()).abs() < 1e-9 * f.norm2().max(1.0));
        prop_assert!((even.inner(&odd)).abs() < 1e-12);
    }

    /// The hopping term swaps checkerboards: Dh P_e = P_o Dh P_e.
    #[test]
    fn hopping_swaps_parities((dims, vl, backend) in any_cfg(), seed in 1u64..100) {
        let g = make_grid(dims, vl, backend);
        let op = WilsonDirac::new(random_gauge(g.clone(), seed), 0.1);
        let f = parity_project(&FermionField::random(g.clone(), seed + 300), 0);
        prop_assume!(f.norm2() > 0.0);
        let hop = op.hopping(&f);
        let leak = parity_project(&hop, 0);
        prop_assert!(leak.norm2() < 1e-20 * hop.norm2().max(1.0));
    }

    /// Plaquette is gauge invariant for random transformations.
    #[test]
    fn plaquette_gauge_invariance(seed in 1u64..200, gseed in 200u64..400) {
        let g = Grid::new([4, 4, 2, 2], VectorLength::of(256), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), seed);
        let t = random_transform(g.clone(), gseed);
        let p0 = average_plaquette(&u);
        let p1 = average_plaquette(&transform_links(&u, &t));
        prop_assert!((p0 - p1).abs() < 1e-10);
    }

    /// A Gaussian stream checkpointed at an arbitrary cursor — including
    /// between the two raw draws of a single Box–Muller pair — resumes
    /// bit-identically, and the stateful cursor agrees bit for bit with
    /// the stateless generator at the same stream. `(seed, counter)` is
    /// the complete RNG state: there is no cached spare normal to lose.
    #[test]
    fn gaussian_pairs_survive_mid_pair_checkpoints(
        seed in any::<u64>(), prefix in 0u64..96, pairs in 1usize..12,
    ) {
        use grid::rng::{box_muller, gaussian};

        let mut whole = StreamRng::new(seed);
        for _ in 0..prefix {
            whole.next_u64();
        }
        let want: Vec<(f64, f64)> = (0..pairs).map(|_| whole.next_gaussian_pair()).collect();

        // Replay with a kill/restore between the two halves of every pair.
        let mut cursor = StreamRng::from_state(seed, prefix);
        for w in &want {
            let h1 = cursor.next_u64();
            let (s, c) = cursor.state();
            cursor = StreamRng::from_state(s, c); // the checkpoint boundary
            let h2 = cursor.next_u64();
            let got = box_muller(h1, h2);
            prop_assert_eq!(w.0.to_bits(), got.0.to_bits());
            prop_assert_eq!(w.1.to_bits(), got.1.to_bits());
        }

        // Stateless/stateful agreement at the restored cursor.
        let mut check = StreamRng::from_state(seed, prefix);
        prop_assert_eq!(
            check.next_gaussian().to_bits(),
            gaussian(seed, prefix).to_bits()
        );
    }

    /// Two-row reconstruction of a reunitarized link is exact to rounding
    /// — in fact bit-exact: `project_su3`'s unitary completion and
    /// `reconstruct_su3` build row 2 from rows 0–1 with the identical
    /// conjugate-cross-product expression, so compressing a freshly
    /// reunitarized link loses nothing at all.
    #[test]
    fn two_row_reconstruction_of_a_reunitarized_link_is_exact(
        seed in 1u64..500,
        stream in 0u64..8,
        drift in 0.0f64..1e-6,
    ) {
        use grid::tensor::su3::{compress_su3, project_su3, random_su3, reconstruct_su3, unitarity_defect};
        // A random SU(3) link with injected non-unitary drift, as
        // accumulated by long HMC chains.
        let mut m = random_su3(seed, stream);
        for (r, row) in m.iter_mut().enumerate() {
            for (c, e) in row.iter_mut().enumerate() {
                *e = e.scale(1.0 + drift * ((r * 3 + c) as f64 - 4.0) / 4.0);
            }
        }
        let u = project_su3(&m); // reunitarize
        prop_assert!(unitarity_defect(&u) < 1e-12);
        let rec = reconstruct_su3(&compress_su3(&u));
        for r in 0..3 {
            for c in 0..3 {
                prop_assert_eq!(rec[r][c].re.to_bits(), u[r][c].re.to_bits());
                prop_assert_eq!(rec[r][c].im.to_bits(), u[r][c].im.to_bits());
            }
        }
    }

    /// Spin projection halves data and reconstructs exactly.
    #[test]
    fn half_spinor_projection(mu in 0usize..4, plus in any::<bool>(), seed in 1u64..500) {
        let g = Grid::new([2, 2, 2, 4], VectorLength::of(512), SimdBackend::Fcmla);
        let psi = FermionField::random(g.clone(), seed);
        let h = project_half(mu, plus, &psi);
        prop_assert_eq!(2 * h.data().len(), psi.data().len());
        let full = reconstruct_half(mu, plus, &h);
        // (1±γ)² = 2(1±γ): projecting the reconstruction doubles it.
        let h2 = project_half(mu, plus, &full);
        let mut doubled = h.clone();
        doubled.scale(2.0);
        prop_assert!(h2.max_abs_diff(&doubled) < 1e-10 * doubled.norm2().sqrt().max(1.0));
    }
}
