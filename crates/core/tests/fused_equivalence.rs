//! Bit-for-bit equivalence of the fused hot-path kernels against the same
//! math composed from separate full-field primitives, across precisions
//! (f64, f32) and vector lengths (128 through 2048 bits).
//!
//! The fusion contract is that `apply_into`, `apply_dag_into` and the
//! fused curvature dot retire the *exact same engine ops per word in the
//! same order* as the unfused formulation — so solutions, residual
//! histories and checkpoints are interchangeable between the two paths.

use grid::field::FermionKind;
use grid::prelude::*;
use grid::Field;

macro_rules! fused_equivalence_for {
    ($name:ident, $ty:ty) => {
        #[test]
        fn $name() {
            for bits in [128usize, 256, 512, 1024, 2048] {
                let g = Grid::<$ty>::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
                let u = random_gauge(g.clone(), 31);
                let d = WilsonDirac::<$ty>::new(u, 0.2);
                let psi = Field::<FermionKind, $ty>::random(g.clone(), 32);
                let m = 0.2 + 4.0;

                // M ψ = (m+4)ψ − ½ Dh ψ: the fused sweep vs the hopping
                // kernel followed by the two-term linear combination with
                // the matching mul-then-fmla op order.
                let hop = d.hopping(&psi);
                let mut reference = Field::<FermionKind, $ty>::zero(g.clone());
                reference.scale_axpy_from(-0.5, &hop, m, &psi);
                let fused = d.apply(&psi);
                for (i, (a, r)) in fused.data().iter().zip(reference.data()).enumerate() {
                    assert_eq!(a.to_bits(), r.to_bits(), "vl={bits} apply word {i}");
                }

                // Same for the adjoint.
                let hop_dag = d.hopping_dag(&psi);
                let mut ref_dag = Field::<FermionKind, $ty>::zero(g.clone());
                ref_dag.scale_axpy_from(-0.5, &hop_dag, m, &psi);
                let fused_dag = d.apply_dag(&psi);
                for (i, (a, r)) in fused_dag.data().iter().zip(ref_dag.data()).enumerate() {
                    assert_eq!(a.to_bits(), r.to_bits(), "vl={bits} apply_dag word {i}");
                }

                // The curvature dot fused into the second hopping sweep vs
                // the inner product taken afterwards.
                let mut tmp = Field::<FermionKind, $ty>::zero(g.clone());
                let mut ap = Field::<FermionKind, $ty>::zero(g.clone());
                let fused_dot = d.mdag_m_into_dot(&psi, &mut tmp, &mut ap);
                let after_dot = psi.inner(&ap).re;
                assert_eq!(
                    fused_dot.to_bits(),
                    after_dot.to_bits(),
                    "vl={bits} fused curvature dot"
                );

                // And the workspace normal operator vs the allocating one.
                let ref_mm = d.mdag_m(&psi);
                for (i, (a, r)) in ap.data().iter().zip(ref_mm.data()).enumerate() {
                    assert_eq!(a.to_bits(), r.to_bits(), "vl={bits} mdag_m word {i}");
                }
            }
        }
    };
}

fused_equivalence_for!(fused_sweeps_are_bit_identical_in_f64, f64);
fused_equivalence_for!(fused_sweeps_are_bit_identical_in_f32, f32);

#[test]
fn fused_solvers_are_bit_identical_to_the_closure_solvers() {
    // End-to-end: full fused CG vs closure CG at several vector lengths in
    // both precisions (the unit tests cover one; this sweeps the matrix).
    for bits in [128usize, 256, 512, 1024, 2048] {
        let g = Grid::<f64>::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 33);
        let d = WilsonDirac::new(u, 0.25);
        let b = FermionField::random(g.clone(), 34);
        let (x_ws, rep_ws) = cg(&d, &b, 1e-8, 2000);
        let (x_cl, rep_cl) = cg_op(|p| d.mdag_m(p), &b, 1e-8, 2000);
        assert_eq!(rep_ws.iterations, rep_cl.iterations, "vl={bits}");
        assert_eq!(rep_ws.residual.to_bits(), rep_cl.residual.to_bits());
        assert_eq!(x_ws.max_abs_diff(&x_cl), 0.0, "vl={bits}");
    }
    for bits in [128usize, 256, 512, 1024, 2048] {
        let g = Grid::<f32>::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 35);
        let d = WilsonDirac::<f32>::new(u, 0.25);
        let b = Field::<FermionKind, f32>::random(g.clone(), 36);
        let (x_ws, rep_ws) = cg(&d, &b, 1e-4, 1000);
        let (x_cl, rep_cl) = cg_op(|p| d.mdag_m(p), &b, 1e-4, 1000);
        assert_eq!(rep_ws.iterations, rep_cl.iterations, "vl={bits}");
        assert_eq!(rep_ws.residual.to_bits(), rep_cl.residual.to_bits());
        for (a, c) in x_ws.data().iter().zip(x_cl.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "vl={bits}");
        }
    }
}
