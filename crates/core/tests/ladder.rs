//! The binary16 compute tier, end to end: F16 instantiations of the real
//! Dirac kernels (single-field and block paths), the accuracy bound of the
//! f16-inner ladder against a pure double-precision solve, and the
//! health-driven tier fallback as seen by the flight recorder.

use grid::mixed::{ladder_solve, LadderConfig};
use grid::prelude::*;
use sve::F16;

type F16Field = Field<grid::field::FermionKind, F16>;

fn setup64() -> (WilsonDirac<f64>, FermionField) {
    let g = Grid::new([4, 4, 4, 4], VectorLength::of(512), SimdBackend::Fcmla);
    let u = random_gauge(g.clone(), 121);
    let b = FermionField::random(g.clone(), 122);
    (WilsonDirac::new(u, 0.3), b)
}

/// Binary16 replica of an f64 operator on its own (denser) layout.
fn replicate_f16(op: &WilsonDirac<f64>) -> WilsonDirac<F16> {
    let g64 = op.grid();
    let g16 = Grid::<F16>::new(g64.fdims(), g64.vl(), g64.engine().backend());
    let u16 = grid::mixed::to_precision(op.gauge(), &g16);
    WilsonDirac::<F16>::new(u16, op.mass)
}

#[test]
fn f16_wilson_kernels_track_the_f64_operator() {
    // The generic dslash/mass sweeps instantiated at F16 must reproduce
    // the f64 operator to binary16 grain (~2⁻¹¹ per op, a site value is a
    // short fixed-order sum of products).
    let (op, psi) = setup64();
    let op16 = replicate_f16(&op);
    let g16 = op16.grid().clone();
    let psi16 = grid::mixed::to_precision(&psi, &g16);

    let mut out64 = FermionField::zero(psi.grid().clone());
    op.apply_into(&psi, &mut out64);
    let mut out16 = F16Field::zero(g16.clone());
    op16.apply_into(&psi16, &mut out16);

    let out16_up = grid::mixed::to_precision(&out16, psi.grid());
    let mut diff = FermionField::zero(psi.grid().clone());
    diff.sub(&out64, &out16_up);
    let rel = (diff.norm2() / out64.norm2()).sqrt();
    assert!(rel < 2e-2, "f16 dslash off by {rel}");
    assert!(rel > 0.0, "suspiciously exact — f16 path not exercised?");

    // Normal operator too (two hopping sweeps back to back).
    let mut ws16 = SolverWorkspace::<F16>::new(g16.clone());
    let mut nrm16 = F16Field::zero(g16.clone());
    op16.mdag_m_into(&psi16, &mut ws16.tmp, &mut nrm16);
    let mut nrm64 = FermionField::zero(psi.grid().clone());
    let mut tmp64 = FermionField::zero(psi.grid().clone());
    op.mdag_m_into(&psi, &mut tmp64, &mut nrm64);
    let nrm16_up = grid::mixed::to_precision(&nrm16, psi.grid());
    diff.sub(&nrm64, &nrm16_up);
    let rel = (diff.norm2() / nrm64.norm2()).sqrt();
    assert!(rel < 5e-2, "f16 normal operator off by {rel}");
}

#[test]
fn f16_block_path_is_bit_identical_to_single_field_kernels() {
    // The batched kernels at F16 carry the same per-RHS guarantee as at
    // f64: RHS j of a block sweep is bit-identical to the single-field
    // sweep of that RHS alone.
    let (op, _) = setup64();
    let op16 = replicate_f16(&op);
    let g16 = op16.grid().clone();
    let fields: Vec<F16Field> = (0..3)
        .map(|j| {
            let f = FermionField::random(op.grid().clone(), 300 + j);
            grid::mixed::to_precision(&f, &g16)
        })
        .collect();
    let block = FermionBlock::from_fields(&fields);
    let mut tmp = FermionBlock::zero(g16.clone(), fields.len());
    let mut out = FermionBlock::zero(g16.clone(), fields.len());
    op16.mdag_m_block_into(&block, &mut tmp, &mut out);

    let mut ws = SolverWorkspace::<F16>::new(g16.clone());
    for (j, f) in fields.iter().enumerate() {
        let mut single = F16Field::zero(g16.clone());
        op16.mdag_m_into(f, &mut ws.tmp, &mut single);
        assert_eq!(
            out.rhs_field(j).max_abs_diff(&single),
            0.0,
            "block RHS {j} diverged from the single-field F16 kernel"
        );
    }
}

#[test]
fn f16_inner_ladder_meets_the_accuracy_bound() {
    // The asserted contract: ‖x − x_f64‖ / ‖x_f64‖ ≤ tol for an f16-inner
    // solve targeting tol, with x_f64 a pure double-precision solve driven
    // two decades tighter.
    let (op, b) = setup64();
    let tol = 1e-10;
    let (x, report) = ladder_solve(&op, &b, &LadderConfig::new(tol));
    assert!(report.converged, "{report:?}");
    assert!(report.f16_iterations > 0, "f16 tier never ran");
    let (x_ref, ref_report) = solve_wilson(&op, &b, 1e-12, 5000);
    assert!(ref_report.converged);
    let mut diff = FermionField::zero(b.grid().clone());
    diff.sub(&x, &x_ref);
    let err = (diff.norm2() / x_ref.norm2()).sqrt();
    assert!(err <= tol, "accuracy bound violated: {err} > {tol}");
}

#[test]
fn tier_fallback_is_visible_in_the_flight_recorder() {
    // A deliberately under-precise f16 cycle tolerance stalls the inner
    // recurrence. The dump must show (a) the typed stall episode from the
    // inner-tier monitor, (b) the tier-switch events of the healthy
    // cycles, and (c) the fallback event of the demotion — and the whole
    // dump must be schema-valid qcd-metrics/v1.
    let _guard = qcd_metrics::global_test_lock();
    qcd_metrics::flight_reset();
    let (op, b) = setup64();
    let mut cfg = LadderConfig::new(1e-10);
    cfg.f16_cycle_tol = 1e-7; // below F16_RESIDUAL_FLOOR: unreachable
    let (_, report) = ladder_solve(&op, &b, &cfg);
    assert!(report.tier_fallbacks >= 1, "no fallback: {report:?}");
    assert!(report.converged, "fallback must still converge: {report:?}");

    let dump = qcd_metrics::flight_dump_jsonl();
    assert!(
        dump.contains("\"label\":\"solver.ladder.f16:stall\""),
        "typed stall episode missing from flight dump"
    );
    assert!(
        dump.contains("\"label\":\"solver.ladder.switch:f32_to_f16\""),
        "tier-switch event missing from flight dump"
    );
    assert!(
        dump.contains("\"label\":\"solver.ladder.fallback:f16_to_f32\""),
        "fallback event missing from flight dump"
    );
    qcd_metrics::validate_jsonl(&dump).expect("flight dump must be schema-valid");
}
