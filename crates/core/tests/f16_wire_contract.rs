//! The lossy-wire accuracy contract of `Compression::F16`
//! (`comms::F16_WIRE_EPS`): a distributed solve whose halos cross the wire
//! as binary16 still converges against its own recurrence, and its
//! solution sits within `O(κ · 2⁻¹¹)` of the uncompressed-wire solution —
//! close, but measurably *not* identical (the wire really is lossy).

use grid::comms::F16_WIRE_EPS;
use grid::prelude::*;
use grid::Coor;

const GLOBAL: Coor = [4, 4, 4, 8];
const MASS: f64 = 0.3;
const TOL: f64 = 1e-8;

/// Two-rank solve under the given compression; returns the solution
/// reassembled onto `gout` and the report.
fn dist_solve(
    compression: Compression,
    gout: &std::sync::Arc<Grid>,
) -> (FermionField, SolveReport) {
    let vl = VectorLength::of(512);
    let mut rank_grid = [1; 4];
    rank_grid[3] = 2;
    let mut per_rank = run_multinode_grid(GLOBAL, rank_grid, vl, SimdBackend::Fcmla, |ctx| {
        let g = Grid::new(GLOBAL, vl, SimdBackend::Fcmla);
        let u = random_gauge(g.clone(), 7);
        let b = FermionField::random(g, 13);
        let dw = DistWilson::new(
            ctx,
            restrict_field(ctx, &u),
            MASS,
            GaugeWire::TwoRow,
            compression,
        );
        let (x, report) = dist_cg(&dw, &restrict_field(ctx, &b), TOL, 2000);
        let mut vals = Vec::new();
        for local in ctx.grid.coords() {
            let gc = ctx.to_global(&local);
            let comps: Vec<Complex> = (0..12).map(|c| x.peek(&local, c)).collect();
            vals.push((gc, comps));
        }
        (vals, report)
    });
    let mut x = FermionField::zero(gout.clone());
    for (vals, _) in &per_rank {
        for (gc, comps) in vals {
            for (c, z) in comps.iter().enumerate() {
                x.poke(gc, c, *z);
            }
        }
    }
    let report = per_rank.pop().unwrap().1;
    (x, report)
}

#[test]
fn f16_wire_halos_meet_the_accuracy_contract() {
    let g = Grid::new(GLOBAL, VectorLength::of(512), SimdBackend::Fcmla);
    let (x_none, rep_none) = dist_solve(Compression::None, &g);
    let (x_f16, rep_f16) = dist_solve(Compression::F16, &g);

    // 1. The compressed-wire solve converges against its own recurrence
    //    at the same target as the uncompressed one. Its *true* residual,
    //    however, floors at the wire grain: halo compression is applied
    //    per sweep (nonlinear in the field), so no recurrence can push the
    //    actual defect below O(κ · F16_WIRE_EPS) — that is the contract,
    //    and why residual targets beneath it require the uncompressed
    //    wire. The floor must sit inside the per-scalar grain and five
    //    decades above the recurrence target.
    assert!(rep_none.converged, "{rep_none:?}");
    assert!(
        rep_none.residual <= 10.0 * TOL,
        "residual {}",
        rep_none.residual
    );
    assert!(rep_f16.converged, "f16 wire broke convergence: {rep_f16:?}");
    assert!(
        rep_f16.residual <= F16_WIRE_EPS,
        "true residual {} above the wire grain",
        rep_f16.residual
    );
    assert!(
        rep_f16.residual > 10.0 * TOL,
        "true residual {} below the lossy-wire floor — compression inactive?",
        rep_f16.residual
    );

    // 2. The contract bound: the two solutions agree to O(κ · 2⁻¹¹).
    //    The budget below is ~40× the per-scalar wire grain — room for
    //    the modest condition number of this operator — and five decades
    //    above the solver tolerance, so it genuinely measures wire loss.
    let mut diff = FermionField::zero(x_none.grid().clone());
    diff.sub(&x_f16, &x_none);
    let rel = (diff.norm2() / x_none.norm2()).sqrt();
    assert!(
        rel <= 40.0 * F16_WIRE_EPS,
        "contract violated: ‖Δx‖/‖x‖ = {rel} > 40·F16_WIRE_EPS"
    );

    // 3. …and the wire is genuinely lossy: the perturbation must dominate
    //    the solver tolerance, or the compression path silently fell back
    //    to f64.
    assert!(
        rel > 10.0 * TOL,
        "f16 wire produced a near-exact solution ({rel}) — compression inactive?"
    );
}
