//! Gauge transformations and gauge-invariant observables.
//!
//! The deepest correctness check available for a lattice Dirac operator:
//! under a local SU(3) rotation `g(x)` the links transform as
//! `U'_µ(x) = g(x) U_µ(x) g†(x+µ̂)` and fermions as `ψ'(x) = g(x) ψ(x)`;
//! the hopping term must transform *covariantly*, `Dh[U'] ψ' = g · Dh[U] ψ`,
//! and the plaquette must not change at all. These identities exercise every
//! piece of the stack at once — layout, permutes, complex backends, spin
//! projection and SU(3) algebra — which is why Grid's own test suite leans
//! on them.

use crate::complex::Complex;
use crate::field::{spinor_comp, FermionField, Field, FieldKind, GaugeField};
use crate::layout::{Grid, NCOLOR, NDIM, NSPIN};
use crate::rng::stream_id;
use crate::simd::CVec;
use crate::tensor::su3::{dagger, mat_mul_scalar, mat_vec, random_su3, ColorMatrix};
use std::sync::Arc;

/// One SU(3) matrix per site (a gauge-transformation field).
pub struct ColourMatrixKind;
impl FieldKind for ColourMatrixKind {
    const NCOMP: usize = 9;
    const NAME: &'static str = "colour matrix";
}

/// A site-local SU(3) rotation field.
pub type TransformField = Field<ColourMatrixKind>;

fn tf_comp(row: usize, col: usize) -> usize {
    row * 3 + col
}

/// Read the matrix of a transform field at a site.
pub fn peek_transform(g: &TransformField, x: &crate::layout::Coor) -> ColorMatrix {
    std::array::from_fn(|r| std::array::from_fn(|c| g.peek(x, tf_comp(r, c))))
}

/// A deterministic random gauge-transformation field (independent SU(3)
/// per site).
pub fn random_transform(grid: Arc<Grid>, seed: u64) -> TransformField {
    let mut g = TransformField::zero(grid.clone());
    for x in grid.coords() {
        let gi = grid.global_index(&x);
        let m = random_su3(seed, stream_id(gi, 17, 0) | 1);
        for r in 0..NCOLOR {
            for c in 0..NCOLOR {
                g.poke(&x, tf_comp(r, c), m[r][c]);
            }
        }
    }
    g
}

/// Transform the gauge links: `U'_µ(x) = g(x) U_µ(x) g†(x + µ̂)`.
pub fn transform_links(u: &GaugeField, g: &TransformField) -> GaugeField {
    let grid = u.grid().clone();
    let mut out = GaugeField::zero(grid.clone());
    let fd = grid.fdims();
    for x in grid.coords() {
        let gx = peek_transform(g, &x);
        for mu in 0..NDIM {
            let mut xp = x;
            xp[mu] = (xp[mu] + 1) % fd[mu];
            let gxp = peek_transform(g, &xp);
            let link = crate::tensor::su3::peek_link(u, &x, mu);
            let new = mat_mul_scalar(&mat_mul_scalar(&gx, &link), &dagger(&gxp));
            for r in 0..NCOLOR {
                for c in 0..NCOLOR {
                    out.poke(&x, crate::field::gauge_comp(mu, r, c), new[r][c]);
                }
            }
        }
    }
    out
}

/// Transform a fermion field: `ψ'(x) = g(x) ψ(x)` — site-local SU(3)
/// multiply on every spin component, through the vectorized SU(3) kernel.
pub fn transform_fermion(psi: &FermionField, g: &TransformField) -> FermionField {
    let grid = psi.grid().clone();
    let eng = grid.engine();
    let mut out = FermionField::zero(grid.clone());
    for osite in 0..grid.osites() {
        let gw: [[CVec; NCOLOR]; NCOLOR] = std::array::from_fn(|r| {
            std::array::from_fn(|c| eng.load(g.word(osite, tf_comp(r, c))))
        });
        for s in 0..NSPIN {
            let v: [CVec; NCOLOR] =
                std::array::from_fn(|c| eng.load(psi.word(osite, spinor_comp(s, c))));
            let r = mat_vec(eng, &gw, &v);
            for c in 0..NCOLOR {
                eng.store(out.word_mut(osite, spinor_comp(s, c)), r[c]);
            }
        }
    }
    out
}

/// Largest entry-wise deviation from unitarity over every link of a gauge
/// field: `max_{x,µ} max_ij |U†U - 1|_ij`. The drift diagnostic long HMC
/// chains run after restoring a checkpoint — molecular-dynamics updates
/// multiply links by matrix exponentials, so rounding error accumulates
/// multiplicatively and this number grows slowly with trajectory count.
pub fn max_unitarity_deviation<E: sve::SveFloat>(u: &Field<crate::field::GaugeKind, E>) -> f64 {
    let grid = u.grid().clone();
    let mut worst: f64 = 0.0;
    for x in grid.coords() {
        for mu in 0..NDIM {
            worst = worst.max(crate::tensor::su3::unitarity_defect(
                &crate::tensor::su3::peek_link(u, &x, mu),
            ));
        }
    }
    worst
}

impl<E: sve::SveFloat> Field<crate::field::GaugeKind, E> {
    /// Project every link back onto SU(3)
    /// ([`crate::tensor::su3::project_su3`]: Gram-Schmidt rows, unitary
    /// completion with `det = +1`).
    ///
    /// This is an *explicit* maintenance step for long molecular-dynamics
    /// chains, never applied implicitly: silently projecting on checkpoint
    /// load would break the bit-exact resume contract, so loaders only
    /// *diagnose* drift ([`max_unitarity_deviation`]) and leave the links
    /// untouched.
    pub fn reunitarize(&mut self) {
        let grid = self.grid().clone();
        for x in grid.coords() {
            for mu in 0..NDIM {
                let fixed =
                    crate::tensor::su3::project_su3(&crate::tensor::su3::peek_link(self, &x, mu));
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        self.poke(&x, crate::field::gauge_comp(mu, r, c), fixed[r][c]);
                    }
                }
            }
        }
    }
}

/// Average plaquette: `(1/6V) Σ_x Σ_{µ<ν} Re tr[U_µ(x) U_ν(x+µ̂) U†_µ(x+ν̂)
/// U†_ν(x)] / 3` — the basic gauge-invariant observable (1 on a unit gauge
/// configuration, ~0 deep in the random/strong-coupling regime).
pub fn average_plaquette(u: &GaugeField) -> f64 {
    let grid = u.grid().clone();
    let fd = grid.fdims();
    let mut total = 0.0;
    let mut count = 0usize;
    for x in grid.coords() {
        for mu in 0..NDIM {
            for nu in (mu + 1)..NDIM {
                let mut xp_mu = x;
                xp_mu[mu] = (xp_mu[mu] + 1) % fd[mu];
                let mut xp_nu = x;
                xp_nu[nu] = (xp_nu[nu] + 1) % fd[nu];
                let u1 = crate::tensor::su3::peek_link(u, &x, mu);
                let u2 = crate::tensor::su3::peek_link(u, &xp_mu, nu);
                let u3 = crate::tensor::su3::peek_link(u, &xp_nu, mu);
                let u4 = crate::tensor::su3::peek_link(u, &x, nu);
                let p = mat_mul_scalar(
                    &mat_mul_scalar(&u1, &u2),
                    &mat_mul_scalar(&dagger(&u3), &dagger(&u4)),
                );
                let tr: Complex = (0..NCOLOR).fold(Complex::ZERO, |acc, i| acc + p[i][i]);
                total += tr.re / NCOLOR as f64;
                count += 1;
            }
        }
    }
    total / count as f64
}

/// Product of links along a straight line of `len` steps in direction `mu`
/// starting at `x` (helper for loops).
fn line_product(u: &GaugeField, x: &crate::layout::Coor, mu: usize, len: usize) -> ColorMatrix {
    let fd = u.grid().fdims();
    let mut m: ColorMatrix = std::array::from_fn(|r| {
        std::array::from_fn(|c| if r == c { Complex::ONE } else { Complex::ZERO })
    });
    let mut pos = *x;
    for _ in 0..len {
        m = mat_mul_scalar(&m, &crate::tensor::su3::peek_link(u, &pos, mu));
        pos[mu] = (pos[mu] + 1) % fd[mu];
    }
    m
}

/// Average Polyakov loop: `(1/V_s) Σ_x⃗ tr Π_t U_t(x⃗,t) / 3` — the order
/// parameter of deconfinement; a closed gauge-invariant line winding the
/// time direction.
pub fn average_polyakov_loop(u: &GaugeField) -> Complex {
    let grid = u.grid().clone();
    let fd = grid.fdims();
    let mut total = Complex::ZERO;
    let mut count = 0usize;
    for x in grid.coords() {
        if x[3] != 0 {
            continue; // one line per spatial site
        }
        let m = line_product(u, &x, 3, fd[3]);
        let tr = (0..NCOLOR).fold(Complex::ZERO, |acc, i| acc + m[i][i]);
        total += tr.scale(1.0 / NCOLOR as f64);
        count += 1;
    }
    total.scale(1.0 / count as f64)
}

/// Average `R x T` Wilson loop in the (`mu`, `nu`) plane:
/// `Re tr [ line_µ(R) · line_ν(T) · line_µ(R)† · line_ν(T)† ] / 3`,
/// averaged over all sites. `wilson_loop(u, mu, nu, 1, 1)` is the
/// (`mu`,`nu`) plaquette.
pub fn wilson_loop(u: &GaugeField, mu: usize, nu: usize, r: usize, t: usize) -> f64 {
    assert!(mu != nu);
    let grid = u.grid().clone();
    let fd = grid.fdims();
    let mut total = 0.0;
    let mut count = 0usize;
    for x in grid.coords() {
        let bottom = line_product(u, &x, mu, r);
        let mut xr = x;
        xr[mu] = (xr[mu] + r) % fd[mu];
        let right = line_product(u, &xr, nu, t);
        let mut xt = x;
        xt[nu] = (xt[nu] + t) % fd[nu];
        let top = line_product(u, &xt, mu, r);
        let left = line_product(u, &x, nu, t);
        let m = mat_mul_scalar(
            &mat_mul_scalar(&bottom, &right),
            &mat_mul_scalar(&dagger(&top), &dagger(&left)),
        );
        let tr = (0..NCOLOR).fold(Complex::ZERO, |acc, i| acc + m[i][i]);
        total += tr.re / NCOLOR as f64;
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::WilsonDirac;
    use crate::simd::SimdBackend;
    use crate::tensor::su3::{peek_link, random_gauge, unit_gauge, unitarity_defect};
    use sve::VectorLength;

    fn grid(bits: usize) -> Arc<Grid> {
        Grid::new([4, 4, 4, 4], VectorLength::of(bits), SimdBackend::Fcmla)
    }

    #[test]
    fn transformed_links_stay_in_su3() {
        let gr = grid(512);
        let u = random_gauge(gr.clone(), 81);
        let g = random_transform(gr.clone(), 82);
        let up = transform_links(&u, &g);
        for x in gr.coords().step_by(11) {
            for mu in 0..4 {
                assert!(unitarity_defect(&peek_link(&up, &x, mu)) < 1e-11);
            }
        }
    }

    #[test]
    fn reunitarize_removes_injected_drift() {
        let gr = grid(256);
        let mut u = random_gauge(gr.clone(), 41);
        assert!(max_unitarity_deviation(&u) < 1e-12);
        // Inject multiplicative rounding-style drift on every link entry.
        for (i, v) in u.data_mut().iter_mut().enumerate() {
            *v *= 1.0 + 1e-7 * ((i % 13) as f64 - 6.0);
        }
        let drifted = max_unitarity_deviation(&u);
        assert!(drifted > 1e-8, "injected drift invisible: {drifted}");
        let before = u.clone();
        u.reunitarize();
        assert!(max_unitarity_deviation(&u) < 1e-13);
        // The projection is a small correction, not a rebuild.
        assert!(u.max_abs_diff(&before) < 1e-5);
        for x in gr.coords().step_by(17) {
            for mu in 0..4 {
                let d = crate::tensor::su3::det(&peek_link(&u, &x, mu));
                assert!((d - Complex::ONE).abs() < 1e-13, "det {d:?}");
            }
        }
    }

    #[test]
    fn unit_gauge_plaquette_is_one() {
        let gr = grid(256);
        assert!((average_plaquette(&unit_gauge(gr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_gauge_plaquette_is_small() {
        // Haar-random links: <P> = 0 in expectation; on a 4^4 lattice the
        // average should be well inside (-0.2, 0.2).
        let gr = grid(256);
        let p = average_plaquette(&random_gauge(gr, 83));
        assert!(p.abs() < 0.2, "plaquette {p}");
    }

    #[test]
    fn plaquette_is_gauge_invariant() {
        let gr = grid(512);
        let u = random_gauge(gr.clone(), 84);
        let g = random_transform(gr.clone(), 85);
        let p0 = average_plaquette(&u);
        let p1 = average_plaquette(&transform_links(&u, &g));
        assert!((p0 - p1).abs() < 1e-11, "{p0} vs {p1}");
    }

    #[test]
    fn hopping_term_is_gauge_covariant() {
        // Dh[U'] (gψ) == g (Dh[U] ψ): the whole stack in one identity,
        // for every backend.
        for backend in SimdBackend::all() {
            let gr = Grid::new([4, 4, 4, 4], VectorLength::of(512), backend);
            let u = random_gauge(gr.clone(), 86);
            let g = random_transform(gr.clone(), 87);
            let psi = FermionField::random(gr.clone(), 88);

            let lhs = WilsonDirac::new(transform_links(&u, &g), 0.1)
                .hopping(&transform_fermion(&psi, &g));
            let rhs = transform_fermion(&WilsonDirac::new(u, 0.1).hopping(&psi), &g);
            let diff = lhs.max_abs_diff(&rhs);
            assert!(diff < 1e-11, "{backend:?}: covariance broken by {diff}");
        }
    }

    #[test]
    fn covariance_holds_across_vector_lengths() {
        for bits in [128usize, 1024] {
            let gr = grid(bits);
            let u = random_gauge(gr.clone(), 89);
            let g = random_transform(gr.clone(), 90);
            let psi = FermionField::random(gr.clone(), 91);
            let lhs = WilsonDirac::new(transform_links(&u, &g), 0.1)
                .hopping(&transform_fermion(&psi, &g));
            let rhs = transform_fermion(&WilsonDirac::new(u, 0.1).hopping(&psi), &g);
            assert!(lhs.max_abs_diff(&rhs) < 1e-11, "vl={bits}");
        }
    }

    #[test]
    fn one_by_one_wilson_loop_is_the_plaquette() {
        let gr = grid(256);
        let u = random_gauge(gr.clone(), 97);
        // Average of W(1,1) over all planes equals the average plaquette.
        let mut total = 0.0;
        let mut n = 0;
        for mu in 0..4 {
            for nu in (mu + 1)..4 {
                total += wilson_loop(&u, mu, nu, 1, 1);
                n += 1;
            }
        }
        let p = average_plaquette(&u);
        assert!((total / n as f64 - p).abs() < 1e-12);
    }

    #[test]
    fn loops_on_unit_gauge_are_one() {
        let gr = grid(128);
        let u = unit_gauge(gr.clone());
        assert!((wilson_loop(&u, 0, 3, 2, 3) - 1.0).abs() < 1e-12);
        let p = average_polyakov_loop(&u);
        assert!((p - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn wilson_and_polyakov_loops_are_gauge_invariant() {
        let gr = grid(512);
        let u = random_gauge(gr.clone(), 98);
        let g = random_transform(gr.clone(), 99);
        let up = transform_links(&u, &g);
        for (r, t) in [(1, 2), (2, 2)] {
            let a = wilson_loop(&u, 1, 3, r, t);
            let b = wilson_loop(&up, 1, 3, r, t);
            assert!((a - b).abs() < 1e-11, "W({r},{t}): {a} vs {b}");
        }
        let pa = average_polyakov_loop(&u);
        let pb = average_polyakov_loop(&up);
        assert!((pa - pb).abs() < 1e-11);
    }

    #[test]
    fn larger_loops_decay_on_random_backgrounds() {
        // Area-law-like behaviour on strongly fluctuating links: bigger
        // loops average closer to zero.
        let gr = grid(256);
        let u = random_gauge(gr.clone(), 100);
        let w11 = wilson_loop(&u, 0, 1, 1, 1).abs();
        let w22 = wilson_loop(&u, 0, 1, 2, 2).abs();
        assert!(w22 < w11.max(0.05), "W(2,2)={w22} W(1,1)={w11}");
    }

    #[test]
    fn plaquette_survives_two_row_compression() {
        // The compressed operator mode stores only two rows per link and
        // rebuilds the third in registers. Round-tripping every link
        // through that compression must leave the plaquette (and every
        // other observable of the links) unchanged to rounding, because
        // SU(3) makes the third row redundant.
        use crate::tensor::su3::{compress_su3, reconstruct_su3};
        let gr = grid(512);
        let u = random_gauge(gr.clone(), 101);
        let mut rec = u.clone();
        for x in gr.coords() {
            for mu in 0..4 {
                let link = reconstruct_su3(&compress_su3(&peek_link(&u, &x, mu)));
                for r in 0..NCOLOR {
                    for c in 0..NCOLOR {
                        rec.poke(&x, crate::field::gauge_comp(mu, r, c), link[r][c]);
                    }
                }
            }
        }
        // Rows 0 and 1 are carried verbatim; only row 2 is rebuilt.
        assert!(rec.max_abs_diff(&u) <= 1e-13);
        let p0 = average_plaquette(&u);
        let p1 = average_plaquette(&rec);
        assert!((p0 - p1).abs() <= 1e-13, "{p0} vs {p1}");
        assert!(max_unitarity_deviation(&rec) < 1e-12);
    }

    #[test]
    fn fermion_transform_preserves_norm() {
        let gr = grid(256);
        let g = random_transform(gr.clone(), 92);
        let psi = FermionField::random(gr.clone(), 93);
        let tpsi = transform_fermion(&psi, &g);
        assert!((tpsi.norm2() - psi.norm2()).abs() < 1e-9 * psi.norm2());
    }

    #[test]
    fn wilson_spectrum_is_gauge_invariant() {
        // CG iteration count and solution norm are gauge invariant (the
        // operator is unitarily equivalent).
        let gr = grid(256);
        let u = random_gauge(gr.clone(), 94);
        let g = random_transform(gr.clone(), 95);
        let b = FermionField::random(gr.clone(), 96);
        let op = WilsonDirac::new(u.clone(), 0.3);
        let opp = WilsonDirac::new(transform_links(&u, &g), 0.3);
        let (x, r1) = crate::solver::cg(&op, &b, 1e-8, 1000);
        let (xp, r2) = crate::solver::cg(&opp, &transform_fermion(&b, &g), 1e-8, 1000);
        assert_eq!(r1.iterations, r2.iterations);
        assert!((x.norm2() - xp.norm2()).abs() < 1e-6 * x.norm2());
    }
}
